// Fault-injection overhead table (no paper analogue — operational extension).
//
// Two panels:
//   1. Functional: a small dataset run on a simulated 8-node fleet under a
//      ladder of fault plans. Every plan must keep the greedy selections
//      bit-identical to the fault-free serial reference (the recovery
//      invariant); the table reports what each fault class costs in modeled
//      wall-clock.
//   2. Analytic: the paper-scale BRCA run at 1000 nodes under a per-node
//      MTBF sweep — what §IV-A's 2-hour-allocation reality would add to the
//      paper's reported times once failures and periodic checkpoints are
//      accounted for.

#include <iostream>
#include <string>

#include "cluster/distributed.hpp"
#include "cluster/model.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"
#include "obs/bench.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  log::set_level(log::Level::kWarn);  // keep per-event INFO records off stderr
  std::cout << "Fault-injection and recovery overhead (fault layer, src/fault).\n";

  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 4;
  spec.num_combinations = 4;
  spec.background_rate = 0.015;
  spec.seed = 777;
  const Dataset data = generate_dataset(spec);

  EngineConfig engine;
  engine.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, engine, make_serial_evaluator(4));

  SummitConfig summit;
  summit.nodes = 8;
  const ClusterRunner runner(summit);

  const auto crash = [](std::uint32_t rank, std::uint32_t iter, double frac) {
    return FaultEvent{FaultKind::kRankCrash, rank, iter, frac, 1};
  };
  const auto straggle = [](std::uint32_t rank, std::uint32_t iter, double factor) {
    return FaultEvent{FaultKind::kStraggler, rank, iter, factor, 2};
  };

  struct Case {
    std::string name;
    std::string key;  ///< stable BENCH series name
    FaultPlan plan;
    std::uint32_t checkpoint_every = 0;
  };
  std::vector<Case> cases;
  cases.push_back({"fault-free", "fault_free", {}, 0});
  cases.push_back({"1 crash (r1@i0, 50%)", "one_crash", {{crash(1, 0, 0.5)}}, 0});
  cases.push_back({"2 crashes (r1@i0, r5@i1)", "two_crashes",
                   {{crash(1, 0, 0.5), crash(5, 1, 0.9)}}, 0});
  cases.push_back({"straggler x2 (r2, 2 iters)", "straggler_2x", {{straggle(2, 0, 2.0)}}, 0});
  cases.push_back({"straggler x8 (r2, 2 iters)", "straggler_8x", {{straggle(2, 0, 8.0)}}, 0});
  cases.push_back({"drops (r3: 4 lost sends@i0)", "drops",
                   {{{FaultKind::kMessageDrop, 3, 0, 0.0, 4}}}, 0});
  cases.push_back({"mixed (crash+straggler+drop)", "mixed",
                   {{crash(4, 0, 0.3), straggle(1, 0, 2.5),
                     {FaultKind::kMessageDrop, 2, 1, 0.0, 3}}},
                   0});
  cases.push_back({"abort@i2 + checkpoint every iter", "abort_checkpointed",
                   {{{FaultKind::kJobAbort, 0, 2, 0.0, 1}}},
                   1});

  print_section(std::cout,
                "Functional: 8 nodes / 48 GPUs, G=40 4-hit, vs fault-free serial");
  Table table({"fault plan", "total s", "overhead %", "recovery s", "ckpts",
               "ranks lost", "identical"});
  table.set_precision(3);

  obs::BenchReporter bench("tab_fault_overhead");
  double baseline = 0.0;
  bool all_identical = true;
  for (const Case& c : cases) {
    DistributedOptions options;
    options.faults = c.plan;
    options.checkpoint_every = c.checkpoint_every;
    // Every case runs fully instrumented (spans + comm/gpu/fault metrics);
    // the differential test guarantees this cannot change the numbers.
    obs::Recorder recorder;
    options.recorder = &recorder;
    const ClusterRunResult result = runner.run(data, options);
    if (baseline == 0.0) baseline = result.total_time;
    bench.series("total_s." + c.key, result.total_time, "s");
    bench.series("recovery_s." + c.key, result.recovery_time, "s");
    bench.series("fault_events." + c.key, static_cast<double>(result.fault_events.size()));

    bool identical = result.greedy.iterations.size() == serial.iterations.size() &&
                     result.greedy.uncovered_tumor == serial.uncovered_tumor;
    for (std::size_t i = 0; identical && i < serial.iterations.size(); ++i) {
      identical = result.greedy.iterations[i].genes == serial.iterations[i].genes;
    }
    all_identical = all_identical && identical;

    table.add_row({c.name, result.total_time,
                   100.0 * (result.total_time - baseline) / baseline,
                   result.recovery_time, static_cast<long long>(result.checkpoints_taken),
                   static_cast<long long>(result.ranks_lost),
                   std::string(identical ? "yes" : "NO")});
  }
  table.print(std::cout);
  std::cout << (all_identical
                    ? "Invariant holds: every plan reproduced the serial selections.\n"
                    : "INVARIANT VIOLATED: some plan changed the selections!\n")
            << '\n';

  print_section(std::cout,
                "Analytic: BRCA @ 1000 nodes, per-node MTBF sweep (checkpoint every 5 min)");
  SummitConfig big;
  big.nodes = 1000;
  Table sweep({"per-node MTBF (h)", "expected failures", "fault overhead s",
               "checkpoint overhead s", "total s", "vs fault-free %"});
  sweep.set_precision(4);

  ModelInputs inputs;  // BRCA defaults
  const double fault_free = model_cluster_run(big, inputs).total_time;
  for (const double mtbf : {0.0, 50000.0, 10000.0, 2000.0, 500.0, 100.0}) {
    ModelInputs faulty = inputs;
    faulty.rank_mtbf_hours = mtbf;
    faulty.checkpoint_every_seconds = mtbf > 0.0 ? 300.0 : 0.0;
    const ModeledRun run = model_cluster_run(big, faulty);
    sweep.add_row({mtbf > 0.0 ? std::to_string(static_cast<long long>(mtbf)) : "off",
                   run.expected_failures, run.fault_overhead, run.checkpoint_overhead,
                   run.total_time, 100.0 * (run.total_time - fault_free) / fault_free});
  }
  bench.series("all_plans_identical", all_identical ? 1.0 : 0.0);
  bench.write();

  sweep.print(std::cout);
  std::cout << "Shape check: recovery is nearly free at this scale. The resumable state\n"
               "(selections + spliced matrix) is a few MB, so snapshots cost milliseconds,\n"
               "and each failure costs ~a detection window plus 1/1000th of an iteration —\n"
               "the same 20-byte-candidate frugality that hides communication under\n"
               "compute (Fig. 8) also makes fault tolerance cheap insurance.\n";
  return all_identical ? 0 : 1;
}
