// Fig. 7 — Compute utilization across MPI processes for the 3x1 scheme on
// the BRCA dataset, 100-node run. The paper's point (§IV-D): after switching
// from 2x2 to 3x1, utilization is balanced across all 600 GPUs — every
// equi-area partition holds millions of light threads, so every device runs
// at full occupancy and finishes together.

#include <iostream>

#include "cluster/model.hpp"
#include "obs/bench.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  SummitConfig config;
  config.nodes = 100;

  ModelInputs inputs;  // BRCA defaults
  inputs.first_iteration_only = true;
  obs::Recorder recorder;
  recorder.profile.enable();
  inputs.recorder = &recorder;

  std::cout << "Reproduces paper Fig. 7 (per-GPU utilization, 3x1 scheme, BRCA, "
            << config.units() << " GPUs).\n";
  const ModeledRun run = model_cluster_run(config, inputs);
  const auto& gpus = run.iterations.front().gpus;

  double max_time = 0.0;
  std::vector<double> utilization;
  utilization.reserve(gpus.size());
  for (const auto& g : gpus) max_time = std::max(max_time, g.time);
  for (const auto& g : gpus) utilization.push_back(100.0 * g.time / max_time);

  print_section(std::cout, "Fig. 7 — utilization sampled every 10th GPU");
  Table table({"gpu", "utilization %", "occupancy %", "bound"});
  table.set_precision(1);
  for (std::size_t g = 0; g < gpus.size(); g += 10) {
    table.add_row({static_cast<long long>(g), utilization[g], 100.0 * gpus[g].occupancy,
                   std::string(gpus[g].memory_bound ? "memory" : "compute")});
  }
  table.print(std::cout);

  std::cout << "utilization: mean = " << stats::mean(utilization)
            << "%, min = " << stats::min(utilization) << "%, stddev = "
            << stats::stddev(utilization) << "%\n"
            << "Shape check vs paper: near-uniform utilization across all GPUs "
               "(contrast with Fig. 6's 2x2 decay).\n";

  // BENCH record: figure statistics plus the profiler's view of the same run
  // (utilization re-derivable from per-kernel gpu_seconds — see
  // tests/test_profile.cpp crosscheck).
  {
    obs::BenchReporter reporter("fig7_util_3x1");
    reporter.series("util_mean_pct", stats::mean(utilization), "%");
    reporter.series("util_min_pct", stats::min(utilization), "%");
    reporter.series("util_stddev_pct", stats::stddev(utilization), "%");
    const obs::JsonValue profile = obs::profile_report(recorder.profile);
    const obs::JsonValue& roofline = *profile.find("roofline");
    reporter.series("profile_kernels", profile.find("totals")->find("kernels")->as_number(),
                    "kernels");
    reporter.series("profile_mean_occupancy_pct",
                    100.0 * roofline.find("mean_occupancy")->as_number(), "%");
    reporter.series("profile_memory_bound_kernels",
                    roofline.find("memory_bound_kernels")->as_number(), "kernels");
    reporter.series("profile_gpu_seconds",
                    profile.find("totals")->find("gpu_seconds")->as_number(), "s");
    reporter.write();
  }
  return 0;
}
