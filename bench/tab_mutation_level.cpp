// Extension — mutation-level combinations (paper §V).
//
// The paper's discussion shows gene-level combinations mix drivers (IDH1,
// hotspot at R132) with passengers (MUC6, uniform positions) and proposes
// searching combinations of specific mutation sites instead: ~4e5 rows
// versus ~2e4 genes, i.e. a ~10^5-fold compute increase for 4-hit, possibly
// addressed by (1) all 27,648 Summit GPUs and (3) restricting to recurrent
// mutations.
//
// Part 1 runs the mutation-level pipeline functionally: the greedy engine on
// site-level matrices picks driver *hotspot sites*, separating drivers from
// passengers where the gene-level run cannot.
// Part 2 prices 4-hit at mutation scale (G = 4e5) on 1000 nodes and on full
// Summit (4608 nodes = 27,648 GPUs) with the analytic model, plus the
// recurrence-threshold mitigation.

#include <cmath>
#include <iostream>

#include "cluster/model.hpp"
#include "core/engine.hpp"
#include "data/mutation_level.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  std::cout << "Extension: mutation-level combinations (paper §V).\n";

  // ---- Part 1: functional driver/passenger separation ----
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 90;
  spec.normal_samples = 60;
  spec.hits = 3;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = 777;
  const MafStudy study = generate_maf_study(spec);
  const MutationLevelData ml = build_mutation_level(study, 2);

  EngineConfig config;
  config.hits = 3;
  const GreedyResult gene_level = run_greedy(summarize_maf(study).tumor,
                                             summarize_maf(study).normal, config,
                                             make_kernel_evaluator(3));
  const GreedyResult site_level =
      run_greedy(ml.data.tumor, ml.data.normal, config, make_kernel_evaluator(3));

  auto hotspot_fraction = [&](const GreedyResult& result, bool sites) {
    std::size_t hot = 0, total = 0;
    for (const auto& it : result.iterations) {
      for (const std::uint32_t row : it.genes) {
        ++total;
        if (sites) {
          const MutationSite& site = ml.sites[row];
          const GeneInfo& info = study.genes[site.gene];
          hot += (info.driver && site.position == info.hotspot_position) ? 1 : 0;
        } else {
          hot += study.genes[row].driver ? 1 : 0;
        }
      }
    }
    return total ? static_cast<double>(hot) / static_cast<double>(total) : 0.0;
  };

  print_section(std::cout, "Gene-level vs mutation-level discovery (functional)");
  Table part1({"granularity", "rows in matrix", "combos selected",
               "driver(-hotspot) fraction of selected rows"});
  part1.add_row({std::string("gene-level"), static_cast<long long>(spec.genes),
                 static_cast<long long>(gene_level.iterations.size()),
                 hotspot_fraction(gene_level, false)});
  part1.add_row({std::string("mutation-level (recurrence >= 2)"),
                 static_cast<long long>(ml.sites.size()),
                 static_cast<long long>(site_level.iterations.size()),
                 hotspot_fraction(site_level, true)});
  part1.print(std::cout);
  std::cout << "[paper: gene-level combinations include passengers like MUC6;\n"
               " mutation-level search should isolate IDH1-R132-like hotspot sites]\n";

  // ---- Part 2: paper-scale cost projection ----
  print_section(std::cout, "4-hit cost projection, gene level vs mutation level (modeled)");
  ModelInputs genes_in;  // BRCA gene level
  genes_in.first_iteration_only = true;

  ModelInputs sites_in = genes_in;
  sites_in.genes = 400000;  // ~4e5 protein-altering mutation sites (paper §V)
  sites_in.tumor_samples = 911;
  sites_in.normal_samples = 520;

  ModelInputs recurrent_in = sites_in;
  recurrent_in.genes = 40000;  // strategy 3: recurrent sites only (~10x cut)

  Table part2({"input rows", "nodes", "GPUs", "modeled first-iteration time"});
  auto add = [&](const char* label, const ModelInputs& in, std::uint32_t nodes) {
    SummitConfig cfg;
    cfg.nodes = nodes;
    const auto run = model_cluster_run(cfg, in);
    const double t = run.total_time;
    const std::string pretty = t > 2 * 86400.0 ? std::to_string(t / 86400.0) + " days"
                                               : std::to_string(t / 3600.0) + " h";
    part2.add_row({std::string(label), static_cast<long long>(nodes),
                   static_cast<long long>(nodes * 6), pretty});
  };
  add("19411 genes", genes_in, 1000);
  add("400000 mutation sites", sites_in, 1000);
  add("400000 mutation sites", sites_in, 4608);  // full Summit, strategy 1
  add("40000 recurrent sites", recurrent_in, 4608);  // + strategy 3
  part2.print(std::cout);

  const double ratio = std::pow(400000.0 / 19411.0, 4);
  std::cout << "work ratio (4e5/1.94e4)^4 = " << ratio
            << " [paper: ~1e5x speedup required beyond the current code]\n"
            << "Full Summit (strategy 1) plus recurrence restriction (strategy 3)\n"
               "brings mutation-level 4-hit back into allocation-sized runs.\n";
  return 0;
}
