// Contribution-2 ablation — idle threads and warp divergence.
//
// The paper's second contribution maps the upper-triangular / tetrahedral
// index space to a dense linear thread id so no warp slot is wasted on the
// idle j <= i half of a naive 2-D launch. This bench quantifies warp-issue
// efficiency (useful work / issued warp-slots·work) for:
//   - the naive G x G launch of the 3-hit Algorithm 1 (paper's baseline),
//   - the linearized triangular mapping (2x1), and
//   - the tetrahedral mapping (3x1) used for 4-hit,
// at warp size 32 (V100).

#include <iostream>

#include "sched/divergence.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  std::cout << "Quantifies paper contribution 2 (idle-thread elimination).\n";

  print_section(std::cout, "Thread utilization and warp-issue efficiency, warp size 32");
  Table table({"mapping", "G", "threads launched", "threads working",
               "thread utilization", "work-time efficiency"});
  table.set_precision(4);

  auto add_row = [&](const std::string& name, std::uint32_t G, const DivergenceStats& s) {
    table.add_row({name, static_cast<long long>(G),
                   static_cast<long long>(s.launched_threads),
                   static_cast<long long>(s.working_threads), s.thread_utilization,
                   s.efficiency});
  };

  for (const std::uint32_t G : {256u, 1024u, 2048u}) {
    add_row("naive GxG grid (3-hit, idle half)", G, naive_triangular_divergence(G, 32));

    const auto tri_model = WorkloadModel::for_scheme3(Scheme3::k2x1, G);
    add_row("linearized triangular (2x1)", G,
            warp_divergence(tri_model, {0, tri_model.total_threads()}, 32));

    const auto tet_model = WorkloadModel::for_scheme4(Scheme4::k3x1, G);
    add_row("linearized tetrahedral (3x1)", G,
            warp_divergence(tet_model, {0, tet_model.total_threads()}, 32));
  }
  table.print(std::cout);

  std::cout << "Shape check vs paper: the naive grid leaves ~half its launched threads\n"
               "idle (the j <= i half); the linear-index mappings launch > 99% working\n"
               "threads and keep work-time divergence confined to warps straddling\n"
               "workload-level boundaries.\n";
  return 0;
}
