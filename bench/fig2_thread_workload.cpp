// Fig. 2 — Thread workload distribution for the sequential mapping of the
// upper triangular (2x2 scheme, Algorithm 2) and upper tetrahedral (3x1
// scheme, Algorithm 3) matrices, at G = 10 exactly as in the paper.
//
// The figure's message: tetrahedral mapping spreads the same total work
// (C(10,4) = 210 combinations) over C(10,3) = 120 threads with a max
// workload of G-3 = 7, versus C(10,2) = 45 threads with a max workload of
// C(8,2) = 28 for the triangular mapping.

#include <iostream>

#include "sched/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace multihit;

void print_scheme(Scheme4 scheme, std::uint32_t genes) {
  const auto model = WorkloadModel::for_scheme4(scheme, genes);
  print_section(std::cout, std::string("Fig. 2 — per-thread workload, ") +
                               scheme_name(scheme) + " scheme, G = " +
                               std::to_string(genes));
  Table table({"thread (lambda)", "workload (combinations)"});
  for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
    table.add_row({static_cast<long long>(lambda),
                   static_cast<long long>(model.work_at(lambda))});
  }
  table.print(std::cout);
  std::cout << "threads = " << model.total_threads()
            << ", total work = " << static_cast<unsigned long long>(model.total_work())
            << ", max/min per-thread = " << model.work_at(0) << "/"
            << model.work_at(model.total_threads() - 1) << "\n";
}

}  // namespace

int main() {
  std::cout << "Reproduces paper Fig. 2 (workload per thread, G = 10).\n";
  print_scheme(Scheme4::k2x2, 10);
  print_scheme(Scheme4::k3x1, 10);
  std::cout << "\nShape check: 2x2 spread is C(G-2,2)-0 = 28 over 45 threads; "
               "3x1 spread is (G-3)-0 = 7 over 120 threads.\n";
  return 0;
}
