// Fig. 6 — Compute utilization, DRAM read/write throughput, and warp-stall
// breakdown across the 600 GPUs of a 100-node run, 2x2 scheme, ACC (the
// smallest dataset) — the paper's diagnosis of why 2x2 scales poorly:
//  (a) utilization decreases with GPU index (later GPUs finish early and
//      idle while GPU 0, at 100%, still runs);
//  (b) DRAM throughput rises with GPU index until the processors transition
//      from memory-bound to compute-bound;
//  (c) stalls are dominated by memory dependency, memory throttle, and
//      execution dependency.
//
// Mechanism in the model: equi-area gives every GPU the same combination
// count, but early partitions hold few heavy threads (poor occupancy, so
// DRAM latency cannot be hidden -> slow, low achieved throughput), while
// late partitions hold millions of light threads (full occupancy, high
// throughput, fast finish -> idle).

#include <iostream>

#include "cluster/model.hpp"
#include "data/registry.hpp"
#include "obs/bench.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  const auto acc = find_cancer_type("ACC");
  if (!acc) return 1;

  SummitConfig config;
  config.nodes = 100;

  ModelInputs inputs;
  inputs.genes = acc->paper_genes;
  inputs.tumor_samples = acc->paper_tumor_samples;
  inputs.normal_samples = acc->paper_normal_samples;
  inputs.scheme4 = Scheme4::k2x2;
  inputs.first_iteration_only = true;
  obs::Recorder recorder;
  recorder.profile.enable();
  inputs.recorder = &recorder;

  std::cout << "Reproduces paper Fig. 6 (per-GPU utilization, 2x2 scheme, ACC, "
            << config.units() << " GPUs).\n";
  const ModeledRun run = model_cluster_run(config, inputs);
  const auto& gpus = run.iterations.front().gpus;

  double max_time = 0.0;
  for (const auto& g : gpus) max_time = std::max(max_time, g.time);

  print_section(std::cout, "Fig. 6(a)-(c) — sampled every 10th GPU");
  Table table({"gpu", "utilization %", "dram throughput %", "occupancy %", "bound",
               "stall mem-dep %", "stall mem-throttle %", "stall exec-dep %"});
  table.set_precision(1);
  for (std::size_t g = 0; g < gpus.size(); g += 10) {
    const auto& t = gpus[g];
    const auto stalls = stall_breakdown(t);
    table.add_row({static_cast<long long>(g), 100.0 * t.time / max_time,
                   100.0 * t.dram_throughput / config.device.dram_bandwidth,
                   100.0 * t.occupancy, std::string(t.memory_bound ? "memory" : "compute"),
                   100.0 * stalls.memory_dependency, 100.0 * stalls.memory_throttle,
                   100.0 * stalls.execution_dependency});
  }
  table.print(std::cout);

  // Shape summary.
  const auto& first = gpus.front();
  const auto& last = gpus.back();
  std::cout << "GPU 0 utilization = 100% (slowest, defines the iteration).\n"
            << "GPU " << gpus.size() - 1
            << " utilization = " << 100.0 * last.time / max_time << "%\n"
            << "throughput rises " << first.dram_throughput / 1e9 << " -> "
            << last.dram_throughput / 1e9 << " GB/s with GPU index\n"
            << "Shape check vs paper: utilization decreasing with GPU index, DRAM\n"
               "throughput increasing; the inverse utilization/throughput correlation\n"
               "holds up to the point where throughput saturates (the paper's ~GPU #500\n"
               "transition), after which utilization flattens instead of tracking it.\n";

  // BENCH record: the headline figure values plus the same quantities read
  // back from the run's multihit.profile.v1 rollups, so bench_compare.py can
  // catch drift in either the model or the profiler independently.
  {
    const auto first_stalls = stall_breakdown(first);
    obs::BenchReporter reporter("fig6_util_2x2");
    reporter.series("util_gpu0_pct", 100.0 * first.time / max_time, "%");
    reporter.series("util_last_pct", 100.0 * last.time / max_time, "%");
    reporter.series("occupancy_gpu0_pct", 100.0 * first.occupancy, "%");
    reporter.series("stall_mem_dep_gpu0_pct", 100.0 * first_stalls.memory_dependency, "%");
    reporter.series("throughput_rise_ratio", last.dram_throughput / first.dram_throughput,
                    "x");
    const obs::JsonValue profile = obs::profile_report(recorder.profile);
    const obs::JsonValue& roofline = *profile.find("roofline");
    reporter.series("profile_kernels", profile.find("totals")->find("kernels")->as_number(),
                    "kernels");
    reporter.series("profile_memory_bound_kernels",
                    roofline.find("memory_bound_kernels")->as_number(), "kernels");
    reporter.series("profile_mean_occupancy_pct",
                    100.0 * roofline.find("mean_occupancy")->as_number(), "%");
    reporter.series("profile_peak_dram_throughput_gbs",
                    roofline.find("peak_dram_throughput")->as_number() / 1e9, "GB/s");
    reporter.series("profile_stall_mem_dep_pct",
                    100.0 * roofline.find("stall_memory_dependency")->as_number(), "%");
    reporter.series("profile_stall_mem_throttle_pct",
                    100.0 * roofline.find("stall_memory_throttle")->as_number(), "%");
    reporter.write();
  }
  return 0;
}
