// Fig. 9 — Classification performance of the identified 4-hit combinations
// for the 11 cancer types estimated to require four or more hits. Protocol
// (paper §III-G / §IV-F): 75% of samples train the greedy WSC engine, the
// held-out 25% are classified (tumor iff all genes of any identified
// combination are mutated). The paper reports 83% average sensitivity
// (95% CI 72-90%) and 90% average specificity (95% CI 81-96%).
//
// Data here is the synthetic registry (planted combinations + background
// noise + imperfect detection) at functional scale, so the discovered
// combinations can additionally be checked against ground truth.

#include <algorithm>
#include <iostream>

#include "classify/classifier.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "data/registry.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  std::cout << "Reproduces paper Fig. 9 (per-cancer-type sensitivity/specificity, 4-hit).\n";

  Table table({"cancer", "combos", "sensitivity", "sens 95% CI", "specificity",
               "spec 95% CI", "planted recovered"});
  table.set_precision(2);

  std::vector<double> sensitivities, specificities;
  std::size_t total_selected = 0;

  for (const CancerType& type : four_plus_hit_types()) {
    const Dataset data = generate_functional_dataset(type);
    const auto split = split_dataset(data, 0.75, type.functional.seed ^ 0xABCD);

    EngineConfig config;
    config.hits = type.hits;
    const Evaluator evaluator = [](const BitMatrix& tumor, const BitMatrix& normal,
                                   const FContext& ctx) {
      return evaluate_range_4hit(tumor, normal, ctx, Scheme4::k3x1,
                                 0, scheme4_threads(Scheme4::k3x1, tumor.genes()),
                                 MemOpts{.prefetch_i = true, .prefetch_j = true});
    };
    const GreedyResult trained =
        run_greedy(split.train.tumor, split.train.normal, config, evaluator);
    total_selected += trained.iterations.size();

    const CombinationClassifier classifier(trained.combinations());
    const ClassificationReport report = evaluate_classifier(classifier, split.test);
    sensitivities.push_back(report.sensitivity());
    specificities.push_back(report.specificity());

    std::size_t recovered = 0;
    const auto selected = trained.combinations();
    for (const auto& truth : data.planted) {
      if (std::find(selected.begin(), selected.end(), truth) != selected.end()) ++recovered;
    }

    const auto sci = report.sensitivity_ci();
    const auto pci = report.specificity_ci();
    table.add_row({type.code, static_cast<long long>(trained.iterations.size()),
                   report.sensitivity(),
                   "[" + std::to_string(sci.lo).substr(0, 4) + "," +
                       std::to_string(sci.hi).substr(0, 4) + "]",
                   report.specificity(),
                   "[" + std::to_string(pci.lo).substr(0, 4) + "," +
                       std::to_string(pci.hi).substr(0, 4) + "]",
                   std::to_string(recovered) + "/" + std::to_string(data.planted.size())});
  }

  print_section(std::cout, "Fig. 9 — test-set classification per cancer type");
  table.print(std::cout);

  double mean_sens = 0.0, mean_spec = 0.0;
  for (double v : sensitivities) mean_sens += v;
  for (double v : specificities) mean_spec += v;
  mean_sens /= static_cast<double>(sensitivities.size());
  mean_spec /= static_cast<double>(specificities.size());
  std::cout << "combinations identified across 11 cancer types: " << total_selected
            << "   [paper: 151]\n"
            << "average sensitivity = " << mean_sens << "   [paper: 0.83]\n"
            << "average specificity = " << mean_spec << "   [paper: 0.90]\n";
  return 0;
}
