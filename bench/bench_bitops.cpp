// Bit-kernel microbenchmark: combinations/sec per bitops backend.
//
// Times the dispatched inner kernels (popcount_row, and_popcount 2/3/4,
// and_rows) for every *supported* backend at paper-relevant row lengths:
//
//   w=4    (256 samples  — small cohorts)
//   w=15   (911 tumor samples = the paper's BRCA row, 960 bits)
//   w=64   (4096 samples — one full Harley-Seal block)
//   w=257  (16448 samples — block + vector tail + word tail)
//
// Timing is hand-rolled steady_clock over a calibrated repetition count: no
// google-benchmark, so the binary stays dependency-light and the BENCH
// record schema stays ours. Wall-clock throughput is machine-dependent and
// therefore lands ONLY in the metrics section (gauges) for drill-down; the
// strict-gated `series` list carries deterministic booleans:
//
//   identity_all_backends   every backend × op × length bit-identical to
//                           scalar on adversarial + random patterns
//   avx2_supported          CPU has AVX2+BMI2 (informational, committed as 1
//                           because CI runs on AVX2 hosts)
//   speedup_and4_w15_ge2    AVX2 ≥ 2x scalar on 4-ary AND+popcount, w=15
//   speedup_and4_w64_ge2    same at w=64
//   speedup_andnot2_w15_ge2 AVX2 ≥ 2x scalar on ANDNOT+popcount, w=15
//
// A checksum accumulator feeds every timed call so the optimizer cannot
// dead-code the kernels.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bitmat/bitops.hpp"
#include "obs/bench.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using multihit::BitopsBackend;
using Clock = std::chrono::steady_clock;

std::vector<std::uint64_t> random_row(std::size_t words, std::uint64_t seed) {
  multihit::Rng rng(seed);
  std::vector<std::uint64_t> row(words);
  for (auto& w : row) {
    w = (static_cast<std::uint64_t>(rng.uniform(1u << 16)) << 48) ^
        (static_cast<std::uint64_t>(rng.uniform(1u << 16)) << 32) ^
        (static_cast<std::uint64_t>(rng.uniform(1u << 16)) << 16) ^
        static_cast<std::uint64_t>(rng.uniform(1u << 16));
  }
  return row;
}

struct Op {
  const char* name;
  // Runs the op once through the backend's *direct* entry points — the
  // per-call dispatch cost (one relaxed atomic load) is identical for both
  // backends, so excluding it measures kernel throughput, not harness
  // overhead. Returns a value to fold into the checksum.
  std::uint64_t (*run)(bool avx2, const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b, const std::vector<std::uint64_t>& c,
                       const std::vector<std::uint64_t>& d, std::vector<std::uint64_t>& out);
};

namespace sc = multihit::bitops_scalar;
namespace av = multihit::bitops_avx2;

const Op kOps[] = {
    {"popcount", [](bool avx2, const auto& a, const auto&, const auto&, const auto&, auto&) {
       return avx2 ? av::popcount_row(a) : sc::popcount_row(a);
     }},
    {"and2", [](bool avx2, const auto& a, const auto& b, const auto&, const auto&, auto&) {
       return avx2 ? av::and_popcount2(a, b) : sc::and_popcount2(a, b);
     }},
    {"and3", [](bool avx2, const auto& a, const auto& b, const auto& c, const auto&, auto&) {
       return avx2 ? av::and_popcount3(a, b, c) : sc::and_popcount3(a, b, c);
     }},
    {"and4", [](bool avx2, const auto& a, const auto& b, const auto& c, const auto& d, auto&) {
       return avx2 ? av::and_popcount4(a, b, c, d) : sc::and_popcount4(a, b, c, d);
     }},
    {"and_rows", [](bool avx2, const auto& a, const auto& b, const auto&, const auto&, auto& out) {
       if (avx2) {
         av::and_rows(out, a, b);
       } else {
         sc::and_rows(out, a, b);
       }
       return out.empty() ? std::uint64_t{0} : out[0];
     }},
    {"andnot2", [](bool avx2, const auto& a, const auto& b, const auto&, const auto&, auto&) {
       return avx2 ? av::andnot_popcount2(a, b) : sc::andnot_popcount2(a, b);
     }},
    {"andnot_rows",
     [](bool avx2, const auto& a, const auto& b, const auto&, const auto&, auto& out) {
       if (avx2) {
         av::andnot_rows(out, a, b);
       } else {
         sc::andnot_rows(out, a, b);
       }
       return out.empty() ? std::uint64_t{0} : out[0];
     }},
};

/// Calls/sec for scalar ([0]) and AVX2 ([1]) at one row length. The two
/// backends are timed in alternation (5 interleaved rounds, best rate kept
/// per backend) so slow drift — frequency scaling, a noisy neighbour on the
/// core — hits both sides rather than biasing the ratio.
void measure(const Op& op, std::size_t words, bool avx2_ok, std::uint64_t* checksum,
             double rates[2]) {
  const auto a = random_row(words, 101 + words);
  const auto b = random_row(words, 211 + words);
  const auto c = random_row(words, 307 + words);
  const auto d = random_row(words, 401 + words);
  std::vector<std::uint64_t> out(words);

  const auto timed = [&](bool avx2, std::uint64_t reps) {
    const auto t0 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) *checksum += op.run(avx2, a, b, c, d, out) + r;
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Calibrate on the scalar side: grow reps until the timed region clears
  // ~10 ms, then reuse the same rep count for both backends.
  std::uint64_t reps = 256;
  while (timed(false, reps) < 0.01 && reps < (1ull << 30)) reps *= 4;

  rates[0] = rates[1] = 0.0;
  for (int round = 0; round < 5; ++round) {
    for (int bi = 0; bi < 2; ++bi) {
      if (bi == 1 && !avx2_ok) continue;
      const double sec = timed(bi == 1, reps);
      if (sec > 0.0) rates[bi] = std::max(rates[bi], static_cast<double>(reps) / sec);
    }
  }
}

bool identity_check(std::size_t words, std::uint64_t seed) {
  const auto a = random_row(words, seed);
  const auto b = random_row(words, seed + 1);
  const auto c = random_row(words, seed + 2);
  const auto d = random_row(words, seed + 3);
  std::vector<std::uint64_t> out_s(words), out_v(words);

  bool ok = sc::popcount_row(a) == av::popcount_row(a) &&
            sc::and_popcount2(a, b) == av::and_popcount2(a, b) &&
            sc::and_popcount3(a, b, c) == av::and_popcount3(a, b, c) &&
            sc::and_popcount4(a, b, c, d) == av::and_popcount4(a, b, c, d) &&
            sc::andnot_popcount2(a, b) == av::andnot_popcount2(a, b);
  sc::and_rows(out_s, a, b);
  av::and_rows(out_v, a, b);
  ok = ok && out_s == out_v;
  sc::andnot_rows(out_s, a, b);
  av::andnot_rows(out_v, a, b);
  ok = ok && out_s == out_v;
  return ok;
}

}  // namespace

int main() {
  using namespace multihit;
  std::cout << "Bit-kernel throughput by backend (dispatched via MULTIHIT_BITOPS).\n";

  obs::BenchReporter bench("bench_bitops");
  const bool avx2_ok = backend_supported(BitopsBackend::kAvx2);
  bench.series("avx2_supported", avx2_ok ? 1.0 : 0.0);

  // Differential identity across lengths covering every tail path.
  bool identical = true;
  for (const std::size_t words : {0, 1, 3, 4, 15, 63, 64, 65, 128, 256, 257}) {
    identical = identical && identity_check(words, 9000 + words);
  }
  bench.series("identity_all_backends", identical ? 1.0 : 0.0);
  std::cout << "  differential identity (all ops, 11 lengths): "
            << (identical ? "PASS" : "FAIL") << "\n"
            << "  avx2+bmi2 supported: " << (avx2_ok ? "yes" : "no") << "\n\n";

  const std::size_t kLengths[] = {4, 15, 64, 257};

  Table table({"op", "words", "scalar calls/s", "avx2 calls/s", "speedup"});
  table.set_precision(3);
  std::uint64_t checksum = 0;
  double speedup_and4_w15 = 0.0, speedup_and4_w64 = 0.0, speedup_andnot2_w15 = 0.0;

  for (const Op& op : kOps) {
    for (const std::size_t words : kLengths) {
      double rates[2] = {0.0, 0.0};
      measure(op, words, avx2_ok, &checksum, rates);
      for (int bi = 0; bi < 2; ++bi) {
        const std::string key = std::string(op.name) + ".w" + std::to_string(words) + "." +
                                (bi == 0 ? "scalar" : "avx2");
        bench.metrics().gauge("bitops.calls_per_sec", {{"series", key}}).set(rates[bi]);
      }
      const double speedup = rates[0] > 0.0 && rates[1] > 0.0 ? rates[1] / rates[0] : 0.0;
      if (std::string(op.name) == "and4" && words == 15) speedup_and4_w15 = speedup;
      if (std::string(op.name) == "and4" && words == 64) speedup_and4_w64 = speedup;
      if (std::string(op.name) == "andnot2" && words == 15) speedup_andnot2_w15 = speedup;
      table.add_row({std::string(op.name), static_cast<long long>(words), rates[0], rates[1],
                     speedup});
    }
  }
  table.print(std::cout);

  bench.series("speedup_and4_w15_ge2", (!avx2_ok || speedup_and4_w15 >= 2.0) ? 1.0 : 0.0);
  bench.series("speedup_and4_w64_ge2", (!avx2_ok || speedup_and4_w64 >= 2.0) ? 1.0 : 0.0);
  bench.series("speedup_andnot2_w15_ge2", (!avx2_ok || speedup_andnot2_w15 >= 2.0) ? 1.0 : 0.0);
  bench.metrics().gauge("bitops.speedup_and4_w15").set(speedup_and4_w15);
  bench.metrics().gauge("bitops.speedup_and4_w64").set(speedup_and4_w64);
  bench.metrics().gauge("bitops.speedup_andnot2_w15").set(speedup_andnot2_w15);
  bench.write();

  std::cout << "\nand4 speedup: " << speedup_and4_w15 << "x at w=15 (paper BRCA row), "
            << speedup_and4_w64 << "x at w=64\n"
            << "andnot2 speedup: " << speedup_andnot2_w15 << "x at w=15 "
            << "(gate: >= 2x when AVX2 is available)\n"
            << "[checksum " << (checksum & 0xff) << "]\n";

  const bool gates = identical && (!avx2_ok || (speedup_and4_w15 >= 2.0 &&
                                                speedup_and4_w64 >= 2.0 &&
                                                speedup_andnot2_w15 >= 2.0));
  if (!gates) std::cout << "GATE FAILURE: identity or speedup threshold not met.\n";
  return gates ? 0 : 1;
}
