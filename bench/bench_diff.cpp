// Regression-engine self-check: BENCH_diff.json boolean gate series.
//
// The cross-run diff engine (src/obs/diff) is itself a CI gate, so its own
// load-bearing invariants get a BENCH record that scripts/bench_compare.py
// --strict pins against bench/baselines/BENCH_diff.json. Everything here is
// deterministic — in-process RunInputs built from hand-rolled documents, no
// wall clock — so the committed baseline is exact:
//
//   self_identical        diffing a run against itself yields zero
//                         non-identical series and a clean verdict
//   regression_detected   a planted makespan regression flips the verdict
//   tolerance_covers      the same drift under a covering `tol` rule is
//                         within-tolerance, not a regression
//   attribution_exact     phase×lane cell deltas + residual == makespan
//                         delta, bit-exact
//   roundtrip_identical   diff_report_json(diff_from_json(x)) is
//                         byte-identical to x
//
// All five are committed as 1; any drop to 0 is a real engine break.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "util/table.hpp"

namespace {

using multihit::obs::DiffOptions;
using multihit::obs::DiffReport;
using multihit::obs::JsonValue;
using multihit::obs::RunInput;

JsonValue segment(const char* phase, std::uint32_t lane, double begin, double end) {
  JsonValue seg = JsonValue::object();
  seg.set("lane", static_cast<double>(lane));
  seg.set("phase", phase);
  seg.set("begin_seconds", begin);
  seg.set("end_seconds", end);
  return seg;
}

/// A toy analysis document: compute on rank 0 then reduce on rank 1, with
/// the compute span scaled by `stretch` (1.0 = the baseline run).
JsonValue analysis_doc(double stretch) {
  const double compute_end = 6.0 * stretch;
  const double makespan = compute_end + 4.0;
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(multihit::obs::kAnalysisSchema));
  doc.set("makespan_seconds", makespan);
  JsonValue critical = JsonValue::object();
  critical.set("total_seconds", makespan);
  JsonValue segs = JsonValue::array();
  segs.push_back(segment("compute", 0, 0.0, compute_end));
  segs.push_back(segment("mpi_reduce", 1, compute_end, makespan));
  critical.set("segments", std::move(segs));
  doc.set("critical_path", std::move(critical));
  return doc;
}

RunInput make_run(const char* label, double stretch) {
  RunInput run;
  run.label = label;
  multihit::obs::add_doc(run, "analysis", analysis_doc(stretch));
  return run;
}

bool self_identical() {
  const DiffReport report =
      multihit::obs::diff_runs(make_run("a", 1.0), make_run("b", 1.0), DiffOptions{});
  return !multihit::obs::diff_regression(report) && report.series.empty() &&
         report.counts.identical == report.counts.compared;
}

bool regression_detected() {
  const DiffReport report =
      multihit::obs::diff_runs(make_run("a", 1.0), make_run("b", 1.25), DiffOptions{});
  return multihit::obs::diff_regression(report);
}

bool tolerance_covers() {
  DiffOptions options;
  options.tolerances = multihit::obs::parse_tolerances("tol analysis.* rel 0.5\n");
  const DiffReport report =
      multihit::obs::diff_runs(make_run("a", 1.0), make_run("b", 1.25), options);
  return !multihit::obs::diff_regression(report) && report.counts.within_tolerance > 0;
}

bool attribution_exact() {
  const DiffReport report =
      multihit::obs::diff_runs(make_run("a", 1.0), make_run("b", 1.25), DiffOptions{});
  const JsonValue doc = multihit::obs::diff_report_json(report);
  const JsonValue* critical = doc.find("critical_path");
  if (!critical) return false;
  double cell_sum = 0.0;
  for (const JsonValue& cell : critical->find("cells")->as_array()) {
    cell_sum += cell.find("delta")->as_number();
  }
  return cell_sum + critical->find("residual")->as_number() ==
         critical->find("delta")->as_number();
}

bool roundtrip_identical() {
  DiffOptions options;
  options.tolerances = multihit::obs::parse_tolerances("tol analysis.*fraction* rel 0.5\n");
  const DiffReport report =
      multihit::obs::diff_runs(make_run("a", 1.0), make_run("b", 1.25), options);
  const std::string first = multihit::obs::diff_report_json(report).dump();
  const DiffReport reparsed = multihit::obs::diff_from_json(JsonValue::parse(first));
  return multihit::obs::diff_report_json(reparsed).dump() == first;
}

}  // namespace

int main() {
  const std::vector<std::pair<const char*, bool>> checks = {
      {"self_identical", self_identical()},
      {"regression_detected", regression_detected()},
      {"tolerance_covers", tolerance_covers()},
      {"attribution_exact", attribution_exact()},
      {"roundtrip_identical", roundtrip_identical()},
  };

  multihit::Table table({"check", "pass"});
  multihit::obs::BenchReporter reporter("diff");
  bool all = true;
  for (const auto& [name, pass] : checks) {
    table.add_row({std::string(name), static_cast<long long>(pass ? 1 : 0)});
    reporter.series(name, pass ? 1.0 : 0.0, "bool");
    all = all && pass;
  }
  std::cout << "bench_diff: regression-engine invariants\n";
  table.print(std::cout);
  reporter.write();
  std::cout << "bench record: " << reporter.path() << "\n";
  return all ? 0 : 1;
}
