// Fig. 4 — Scaling efficiency for the 3x1 scheme at paper scale (BRCA,
// G = 19411, 911 tumor samples):
//  (a) strong scaling, 100 -> 1000 nodes (600 -> 6000 GPUs); the paper
//      reports 80.96%-97.96% with 84.18% at 1000 nodes and a 90.14% average,
//  (b) weak scaling, 100 -> 500 nodes, first greedy iteration only, with G
//      grown as (nodes)^(1/4) to hold per-GPU work constant; the paper
//      reports ~90% at 500 nodes (94.6% average 200-500).
//
// Times are produced by the analytic machine model (exact combination and
// traffic counts + V100 roofline/occupancy + binomial-tree MPI); see
// EXPERIMENTS.md for paper-vs-modeled values.

#include <iostream>
#include <vector>

#include "cluster/scaling.hpp"
#include "obs/bench.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  SummitConfig base;
  ModelInputs inputs;  // BRCA defaults
  obs::BenchReporter bench("fig4_scaling");

  std::cout << "Reproduces paper Fig. 4 (strong/weak scaling, BRCA, 3x1 scheme).\n";

  print_section(std::cout, "Fig. 4(a) — strong scaling, 100 to 1000 nodes");
  const std::vector<std::uint32_t> strong_nodes{100, 200, 300, 400, 500,
                                                600, 700, 800, 900, 1000};
  const auto strong = strong_scaling(base, inputs, strong_nodes);
  Table sa({"nodes", "GPUs", "modeled time (s)", "efficiency vs 100 nodes"});
  double sum = 0.0;
  for (const auto& p : strong) {
    sa.add_row({static_cast<long long>(p.nodes), static_cast<long long>(p.nodes * 6), p.time,
                p.efficiency});
    if (p.nodes > 100) sum += p.efficiency;
  }
  sa.print(std::cout);
  std::cout << "average efficiency (200-1000 nodes) = " << sum / 9.0
            << "   [paper: 0.9014; 0.8418 at 1000 nodes]\n";
  bench.series("strong_time_100_nodes_s", strong.front().time, "s");
  bench.series("strong_time_1000_nodes_s", strong.back().time, "s");
  bench.series("strong_efficiency_1000_nodes", strong.back().efficiency);
  bench.series("strong_efficiency_mean_200_1000", sum / 9.0);

  print_section(std::cout, "Fig. 4(b) — weak scaling, 100 to 500 nodes (first iteration)");
  const std::vector<std::uint32_t> weak_nodes{100, 200, 300, 400, 500};
  const auto weak = weak_scaling(base, inputs, weak_nodes);
  Table wb({"nodes", "GPUs", "G (scaled)", "modeled time (s)", "efficiency"});
  for (const auto& p : weak) {
    wb.add_row({static_cast<long long>(p.nodes), static_cast<long long>(p.nodes * 6),
                static_cast<long long>(p.genes), p.time, p.efficiency});
  }
  wb.print(std::cout);
  std::cout << "[paper: ~0.90 at 500 nodes, 0.946 average 200-500]\n";
  bench.series("weak_time_500_nodes_s", weak.back().time, "s");
  bench.series("weak_efficiency_500_nodes", weak.back().efficiency);
  bench.write();
  return 0;
}
