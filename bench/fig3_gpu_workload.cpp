// Fig. 3 — Workload distribution per GPU for G = 50 and 5 nodes (30 GPUs),
// 2x2 scheme:
//  (a) per-thread workload with equi-distance partition boundaries,
//  (b) equi-area partition boundaries,
//  (c) workload per GPU under both schedulers.
//
// The figure's message: equal thread counts give wildly unequal areas under
// the exponentially decaying workload curve; equi-area partitioning makes
// per-GPU work nearly uniform.

#include <iostream>

#include "sched/schedule.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  constexpr std::uint32_t kGenes = 50;
  constexpr std::uint32_t kNodes = 5;
  constexpr std::uint32_t kGpus = kNodes * 6;

  std::cout << "Reproduces paper Fig. 3 (per-GPU workload, G = " << kGenes << ", " << kNodes
            << " nodes = " << kGpus << " GPUs, 2x2 scheme).\n";

  const auto model = WorkloadModel::for_scheme4(Scheme4::k2x2, kGenes);
  const auto ed = equidistance_schedule(model, kGpus);
  const auto ea = equiarea_schedule(model, kGpus);

  print_section(std::cout, "Fig. 3(a)/(b) — partition boundaries (thread id ranges)");
  Table bounds({"gpu", "ED begin", "ED end", "EA begin", "EA end"});
  for (std::uint32_t g = 0; g < kGpus; ++g) {
    bounds.add_row({static_cast<long long>(g), static_cast<long long>(ed[g].begin),
                    static_cast<long long>(ed[g].end), static_cast<long long>(ea[g].begin),
                    static_cast<long long>(ea[g].end)});
  }
  bounds.print(std::cout);

  print_section(std::cout, "Fig. 3(c) — workload per GPU (combinations)");
  const auto ed_work = schedule_work(model, ed);
  const auto ea_work = schedule_work(model, ea);
  Table work({"gpu", "equi-distance", "equi-area"});
  work.set_precision(0);
  for (std::uint32_t g = 0; g < kGpus; ++g) {
    work.add_row({static_cast<long long>(g), ed_work[g], ea_work[g]});
  }
  work.print(std::cout);

  const auto ed_stats = schedule_imbalance(model, ed);
  const auto ea_stats = schedule_imbalance(model, ea);
  std::cout << "total work C(" << kGenes << ",4) = "
            << static_cast<unsigned long long>(model.total_work()) << "\n"
            << "ED imbalance (max/mean) = " << ed_stats.imbalance
            << ", EA imbalance = " << ea_stats.imbalance << "\n"
            << "Shape check: ED front-loads GPU 0 with ~" << ed_work[0] / ea_work[0]
            << "x the balanced share; EA areas are equal to within level granularity.\n";
  return 0;
}
