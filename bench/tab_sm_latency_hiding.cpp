// SM-level latency hiding from first principles.
//
// The analytic V100 model prices memory time through mem_eff = floor +
// (1-floor)·occupancy^kappa. This bench derives the same curve from the
// cycle-level warp-scheduler simulation (gpusim/smsim.hpp): request
// throughput versus resident warps, for a pure-load stream and for the
// enumeration kernels' actual compute/load mix. It is the mechanism behind
// Fig. 6: 2x2 partitions with few heavy threads sit on the left of this
// curve; 3x1 partitions sit at saturation.

#include <cmath>
#include <iostream>
#include <vector>

#include "gpusim/perfmodel.hpp"
#include "gpusim/smsim.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  std::cout << "Cycle-level SM simulation vs the analytic latency-hiding law.\n";

  SmConfig config;
  config.memory_latency = 400;
  config.max_outstanding_requests = 64;

  const DeviceSpec analytic = DeviceSpec::v100();

  print_section(std::cout, "Request throughput vs resident warps (pure load stream)");
  Table table({"resident warps", "occupancy", "simulated rate (req/cycle)",
               "simulated / saturated", "analytic mem_eff(occupancy)"});
  const double ceiling =
      static_cast<double>(config.max_outstanding_requests) / config.memory_latency;
  for (const std::size_t warp_count : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<WarpWork> warps(warp_count, WarpWork{0, 200});
    const SmResult r = simulate_sm(config, warps);
    const double occupancy = static_cast<double>(warp_count) / config.max_resident_warps;
    const double analytic_eff =
        analytic.mem_eff_floor +
        (1.0 - analytic.mem_eff_floor) * std::pow(occupancy, analytic.occupancy_exponent);
    table.add_row({static_cast<long long>(warp_count), occupancy, r.request_rate,
                   r.request_rate / ceiling, analytic_eff});
  }
  table.print(std::cout);

  print_section(std::cout, "Stall taxonomy for the kernels' compute/load mix (Fig. 6c analogue)");
  Table stalls({"resident warps", "issue efficiency", "stall mem-dep %", "stall throttle %",
                "stall exec-dep %"});
  stalls.set_precision(1);
  for (const std::size_t warp_count : {2u, 8u, 32u, 64u}) {
    // ~24 AND+popcount word ops per row load, the 3x1 kernel's mix.
    std::vector<WarpWork> warps(warp_count, WarpWork{4800, 200});
    const SmResult r = simulate_sm(config, warps);
    const double c = static_cast<double>(r.cycles);
    stalls.add_row({static_cast<long long>(warp_count), r.issue_efficiency,
                    100.0 * r.stall_memory_dependency / c,
                    100.0 * r.stall_memory_throttle / c,
                    100.0 * r.stall_execution_dependency / c});
  }
  stalls.print(std::cout);
  std::cout << "Shape check: throughput rises monotonically and concavely with\n"
               "occupancy and saturates at max_outstanding/latency — the law the\n"
               "analytic model assumes; memory-dependency stalls dominate at low\n"
               "occupancy exactly as the paper observes on the slow 2x2 GPUs.\n";
  return 0;
}
