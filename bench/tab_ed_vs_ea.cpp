// §IV-B table — Equi-distance vs equi-area scheduler runtimes for the 4-hit
// 2x2 scheme on 100 nodes. The paper reports ED = 13943 s vs EA = 4607 s
// (~3x) for BRCA.
//
// Two views: the paper-scale modeled runtimes, and a measured functional run
// at reduced G where both schedulers execute the real kernels and must pick
// identical combinations.

#include <iostream>

#include "cluster/distributed.hpp"
#include "cluster/model.hpp"
#include "data/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace multihit;
  std::cout << "Reproduces the paper's §IV-B ED-vs-EA comparison (2x2 scheme, 100 nodes).\n";

  // Paper-scale model, BRCA.
  SummitConfig config;
  ModelInputs inputs;
  inputs.scheme4 = Scheme4::k2x2;
  const double ea_time = model_cluster_run(config, inputs).total_time;
  ModelInputs ed_inputs = inputs;
  ed_inputs.scheduler = SchedulerKind::kEquiDistance;
  const double ed_time = model_cluster_run(config, ed_inputs).total_time;

  print_section(std::cout, "Modeled runtimes at paper scale (BRCA, G = 19411)");
  Table model_table({"scheduler", "modeled time (s)", "paper (s)"});
  model_table.set_precision(0);
  model_table.add_row({std::string("equi-distance"), ed_time, 13943.0});
  model_table.add_row({std::string("equi-area"), ea_time, 4607.0});
  model_table.print(std::cout);
  std::cout << "speedup EA over ED: modeled " << ed_time / ea_time << "x, paper "
            << 13943.0 / 4607.0 << "x\n";

  // Functional cross-check at reduced G: identical results, EA balances work.
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.seed = 99;
  const Dataset data = generate_dataset(spec);

  SummitConfig small;
  small.nodes = 5;
  const ClusterRunner runner(small);
  DistributedOptions ea_opts;
  ea_opts.scheme4 = Scheme4::k2x2;
  DistributedOptions ed_opts = ea_opts;
  ed_opts.scheduler = SchedulerKind::kEquiDistance;

  const auto ea_run = runner.run(data, ea_opts);
  const auto ed_run = runner.run(data, ed_opts);

  print_section(std::cout, "Functional cross-check (G = 40, 5 nodes, real kernels)");
  Table func({"scheduler", "modeled time (s)", "combinations selected", "same results"});
  const bool same = ea_run.greedy.combinations() == ed_run.greedy.combinations();
  func.add_row({std::string("equi-distance"), ed_run.total_time,
                static_cast<long long>(ed_run.greedy.iterations.size()),
                std::string(same ? "yes" : "NO")});
  func.add_row({std::string("equi-area"), ea_run.total_time,
                static_cast<long long>(ea_run.greedy.iterations.size()),
                std::string(same ? "yes" : "NO")});
  func.print(std::cout);
  return 0;
}
