// Host-profiler overhead gate: how much wall clock does attaching the
// profiler (span timing + claim histograms + counted bitops dispatch) add to
// the real host-threaded sweep?
//
// Runs the Part 1b workload from brca_scaleout — the BRCA-shaped 4-hit
// downscale (G=90, 120/80 samples, seed 911) — as a full greedy cover with
// 4 host threads, plain and profiled, in alternation (5 interleaved rounds,
// best time kept per variant so frequency drift hits both sides). Wall-clock
// numbers land only in gauges; the strict-gated series are booleans:
//
//   profiled_identical     profiled and unprofiled greedy runs select the
//                          same combinations (bit-identical cover)
//   overhead_lt_5pct       best profiled time < 1.05x best plain time
//   replay_identity        report -> parse -> re-render is byte-identical
//   deterministic_stable   two profiled runs project byte-identical
//                          deterministic documents
//   crosscheck_clean       the profile reconciles against itself
//
// The <5% budget is the ISSUE 9 acceptance gate: the profiled loop adds two
// steady_clock reads per ~1024-combination chunk plus one thread_local
// increment per dispatched bitops call, both of which amortize to noise
// against the kernel work a chunk carries.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "core/hostsweep.hpp"
#include "data/generator.hpp"
#include "obs/bench.hpp"
#include "obs/hostprof.hpp"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  using namespace multihit;
  std::cout << "Host-profiler overhead on the Part 1b sweep (4-hit, 4 host threads).\n";

  SyntheticSpec spec;
  spec.genes = 90;
  spec.tumor_samples = 120;
  spec.normal_samples = 80;
  spec.hits = 4;
  spec.num_combinations = 5;
  spec.background_rate = 0.012;
  spec.seed = 911;
  const Dataset data = generate_dataset(spec);

  EngineConfig config;
  config.hits = 4;
  HostSweepOptions options;
  options.hits = 4;
  options.threads = 4;
  options.chunk = 1024;

  const auto run_once = [&](obs::HostProfiler* profiler, double* seconds) {
    HostSweepOptions sweep = options;
    sweep.profiler = profiler;
    const auto t0 = Clock::now();
    const GreedyResult result =
        run_greedy(data.tumor, data.normal, config, make_host_sweep_evaluator(sweep));
    *seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  };

  // Interleaved best-of-5: plain, then profiled, per round. The profiled
  // variant uses a fresh profiler each round so every round measures the
  // same amount of collection work.
  double best_plain = 0.0, best_profiled = 0.0;
  GreedyResult plain, profiled;
  std::string deterministic_first;
  bool deterministic_stable = true;
  for (int round = 0; round < 5; ++round) {
    double seconds = 0.0;
    plain = run_once(nullptr, &seconds);
    if (round == 0 || seconds < best_plain) best_plain = seconds;

    obs::HostProfiler profiler;
    profiled = run_once(&profiler, &seconds);
    if (round == 0 || seconds < best_profiled) best_profiled = seconds;

    const std::string projection = obs::hostprof_deterministic(profiler.profile()).dump();
    if (round == 0) {
      deterministic_first = projection;
    } else if (projection != deterministic_first) {
      deterministic_stable = false;
    }
    if (round == 4) {
      const std::string report = obs::hostprof_report(profiler.profile()).dump();
      const obs::HostProfile parsed = obs::hostprof_from_json(obs::JsonValue::parse(report));
      const bool replay_identity = obs::hostprof_report(parsed).dump() == report;
      const bool crosscheck_clean = obs::hostprof_crosscheck(profiler.profile()).empty() &&
                                    obs::hostprof_crosscheck(parsed).empty();

      const bool profiled_identical = profiled.combinations() == plain.combinations();
      const double overhead =
          best_plain > 0.0 ? (best_profiled - best_plain) / best_plain : 0.0;
      const bool overhead_ok = overhead < 0.05;

      obs::BenchReporter bench("hostprof");
      bench.series("profiled_identical", profiled_identical ? 1.0 : 0.0);
      bench.series("overhead_lt_5pct", overhead_ok ? 1.0 : 0.0);
      bench.series("replay_identity", replay_identity ? 1.0 : 0.0);
      bench.series("deterministic_stable", deterministic_stable ? 1.0 : 0.0);
      bench.series("crosscheck_clean", crosscheck_clean ? 1.0 : 0.0);
      bench.metrics().gauge("hostprof.overhead_fraction").set(overhead);
      bench.metrics().gauge("hostprof.plain_seconds").set(best_plain);
      bench.metrics().gauge("hostprof.profiled_seconds").set(best_profiled);
      bench.metrics()
          .gauge("hostprof.combos_per_sec")
          .set(best_profiled > 0.0
                   ? static_cast<double>(profiler.profile().total_combinations) / best_profiled
                   : 0.0);
      bench.write();

      std::cout << "  plain:    " << best_plain << " s (best of 5)\n"
                << "  profiled: " << best_profiled << " s (best of 5)\n"
                << "  overhead: " << overhead * 100.0 << "% (gate: < 5%)\n"
                << "  selections identical: " << (profiled_identical ? "yes" : "NO") << "\n"
                << "  replay byte-identical: " << (replay_identity ? "yes" : "NO") << "\n"
                << "  deterministic projection stable: "
                << (deterministic_stable ? "yes" : "NO") << "\n"
                << "  crosscheck clean: " << (crosscheck_clean ? "yes" : "NO") << "\n";

      const bool gates = profiled_identical && overhead_ok && replay_identity &&
                         deterministic_stable && crosscheck_clean;
      if (!gates) {
        std::cout << "GATE FAILURE: profiler overhead or determinism gate not met.\n";
        return 1;
      }
    }
  }
  return 0;
}
