// §III-A / §IV-D ablation — the four parallelization schemes. The paper
// implements 2x2 and 3x1 and rejects 1x3 (too few threads) and 4x1
// (astronomically many trivial threads); §IV-D reports 2x2 dropping to 36%
// efficiency (ESCA, 500 vs 100 nodes) where 3x1 averages 91.14%.
//
// Three views: thread-space geometry at paper scale, modeled 100-node
// runtimes per scheme, and the ESCA 2x2-vs-3x1 strong-scaling collapse.

#include <iostream>

#include "cluster/model.hpp"
#include "cluster/scaling.hpp"
#include "sched/workload.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  constexpr std::uint32_t kGenes = 19411;  // BRCA

  std::cout << "Reproduces the paper's parallelization-scheme ablation.\n";

  print_section(std::cout, "Thread-space geometry at G = 19411 (BRCA)");
  Table geometry({"scheme", "threads", "max per-thread work", "min per-thread work"});
  for (const Scheme4 scheme :
       {Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1, Scheme4::k4x1}) {
    const auto model = WorkloadModel::for_scheme4(scheme, kGenes);
    geometry.add_row({std::string(scheme_name(scheme)),
                      static_cast<long long>(model.total_threads()),
                      static_cast<long long>(model.work_at(0)),
                      static_cast<long long>(model.work_at(model.total_threads() - 1))});
  }
  geometry.print(std::cout);
  std::cout << "1x3: only G threads (cannot feed 6000 GPUs); 4x1: C(G,4) ~ 5.9e15 threads\n"
               "of unit work (launch overhead dominates); 2x2 spreads work O(G^2) wide;\n"
               "3x1 narrows the spread to O(G) — the paper's choice.\n";

  print_section(std::cout, "Modeled 100-node BRCA runtime per implementable scheme");
  Table runtimes({"scheme", "modeled time (s)"});
  runtimes.set_precision(0);
  for (const Scheme4 scheme : {Scheme4::k2x2, Scheme4::k3x1}) {
    ModelInputs inputs;
    inputs.scheme4 = scheme;
    SummitConfig config;
    runtimes.add_row({std::string(scheme_name(scheme)),
                      model_cluster_run(config, inputs).total_time});
  }
  runtimes.print(std::cout);

  print_section(std::cout, "Strong scaling 100 -> 500 nodes, ESCA (paper §IV-D)");
  ModelInputs esca;
  esca.genes = 18364;
  esca.tumor_samples = 184;
  esca.normal_samples = 150;
  const std::vector<std::uint32_t> nodes{100, 200, 300, 400, 500};
  Table scaling({"nodes", "2x2 efficiency", "3x1 efficiency"});
  ModelInputs esca22 = esca;
  esca22.scheme4 = Scheme4::k2x2;
  ModelInputs esca31 = esca;
  esca31.scheme4 = Scheme4::k3x1;
  SummitConfig config;
  const auto eff22 = strong_scaling(config, esca22, nodes);
  const auto eff31 = strong_scaling(config, esca31, nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    scaling.add_row({static_cast<long long>(nodes[i]), eff22[i].efficiency,
                     eff31[i].efficiency});
  }
  scaling.print(std::cout);
  std::cout << "[paper: 2x2 fell to 36% at 500 nodes; 3x1 averaged 91.14%]\n";
  return 0;
}
