// Fig. 8 — Computation- and communication-time distribution across MPI
// processes for a 1000-node run (3x1 scheme, BRCA). The paper's point
// (§IV-E): because each rank contributes a single 20-byte candidate to a
// binomial-tree reduction, message-passing overhead is hidden under the
// slight variance of per-rank computation time.

#include <iostream>

#include "cluster/model.hpp"
#include "obs/bench.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  SummitConfig config;
  config.nodes = 1000;

  ModelInputs inputs;  // BRCA defaults
  inputs.first_iteration_only = true;

  std::cout << "Reproduces paper Fig. 8 (compute vs communication per MPI rank, "
            << config.nodes << " nodes).\n";
  const ModeledRun run = model_cluster_run(config, inputs);
  const auto& iteration = run.iterations.front();

  print_section(std::cout, "Fig. 8 — per-rank times, sampled every 25th rank");
  Table table({"rank", "compute (s)", "communication incl. wait (s)", "comm %"});
  for (std::size_t r = 0; r < config.nodes; r += 25) {
    const double compute = iteration.rank_compute[r];
    const double comm = iteration.rank_comm[r];
    table.add_row({static_cast<long long>(r), compute, comm,
                   100.0 * comm / (compute + comm)});
  }
  table.print(std::cout);

  const double mean_compute = stats::mean(iteration.rank_compute);
  const double max_compute = stats::max(iteration.rank_compute);
  const double max_comm = stats::max(iteration.rank_comm);
  std::cout << "compute: mean = " << mean_compute << " s, max = " << max_compute
            << " s (skew = " << max_compute - stats::min(iteration.rank_compute) << " s)\n"
            << "communication (incl. waiting for stragglers): max = " << max_comm << " s\n"
            << "pure message cost for a 20-byte binomial-tree reduce over " << config.nodes
            << " ranks ~ " << 1e6 * 10 * config.comm.cost(20) << " us\n"
            << "Shape check vs paper: communication is hidden under the compute-time "
               "variance of the slowest rank.\n";

  obs::BenchReporter bench("fig8_comm_overhead");
  bench.series("iteration_time_s", iteration.time, "s");
  bench.series("compute_mean_s", mean_compute, "s");
  bench.series("compute_max_s", max_compute, "s");
  bench.series("comm_max_s", max_comm, "s");
  bench.series("comm_fraction_of_iteration", max_comm / iteration.time);
  bench.write();
  return 0;
}
