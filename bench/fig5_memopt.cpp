// Fig. 5 — Effect of the three memory optimizations on runtime (paper
// §III-D / §IV-B): MemOpt1 (prefetch gene-i rows), MemOpt2 (prefetch gene-j
// rows / fold fixed-row ANDs), and BitSplicing (compact covered samples),
// cumulatively applied to the 3-hit algorithm on a single GPU. The paper
// reports a combined ~3x speedup.
//
// Two views are produced:
//  - MEASURED: google-benchmark wall time of the real kernels on a
//    functional-scale dataset. On a CPU the matrices are cache-resident, so
//    the prefetch variants mostly break even and BitSplicing provides the
//    measured win — the point of MemOpt1/2 is specifically GPU global-memory
//    traffic, which a CPU cannot exhibit;
//  - MODELED: the V100 model at full BRCA scale, where the removed global
//    traffic shows up directly (the paper's dominant effect: 1.5x / 3x).

#include <benchmark/benchmark.h>

#include <iostream>

#include "cluster/model.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "data/generator.hpp"
#include "obs/bench.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace {

using namespace multihit;

Dataset bench_dataset() {
  SyntheticSpec spec;
  spec.genes = 110;
  spec.tumor_samples = 911;  // BRCA-like widths so splicing matters
  spec.normal_samples = 520;
  spec.hits = 3;
  spec.num_combinations = 5;
  spec.background_rate = 0.02;
  spec.seed = 4242;
  return generate_dataset(spec);
}

void run_greedy_3hit(benchmark::State& state, const MemOpts& opts, bool splice) {
  const Dataset data = bench_dataset();
  EngineConfig config;
  config.hits = 3;
  config.bit_splicing = splice;
  const Evaluator evaluator = [&opts](const BitMatrix& tumor, const BitMatrix& normal,
                                      const FContext& ctx) {
    return evaluate_range_3hit(tumor, normal, ctx, Scheme3::k2x1, 0,
                               scheme3_threads(Scheme3::k2x1, tumor.genes()), opts);
  };
  std::size_t combos = 0;
  for (auto _ : state) {
    const GreedyResult result = run_greedy(data.tumor, data.normal, config, evaluator);
    combos = result.iterations.size();
    benchmark::DoNotOptimize(combos);
  }
  state.counters["combinations_selected"] = static_cast<double>(combos);
}

void BM_Fig5_Baseline(benchmark::State& state) {
  run_greedy_3hit(state, MemOpts{}, /*splice=*/false);
}
void BM_Fig5_MemOpt1(benchmark::State& state) {
  run_greedy_3hit(state, MemOpts{.prefetch_i = true}, /*splice=*/false);
}
void BM_Fig5_MemOpt1_2(benchmark::State& state) {
  run_greedy_3hit(state, MemOpts{.prefetch_i = true, .prefetch_j = true}, /*splice=*/false);
}
void BM_Fig5_MemOpt1_2_BitSplicing(benchmark::State& state) {
  run_greedy_3hit(state, MemOpts{.prefetch_i = true, .prefetch_j = true}, /*splice=*/true);
}

BENCHMARK(BM_Fig5_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_MemOpt1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_MemOpt1_2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_MemOpt1_2_BitSplicing)->Unit(benchmark::kMillisecond);

void print_modeled_fig5() {
  // Single-GPU 3-hit BRCA under the V100 model, cumulative optimizations.
  // Each stage runs with the kernel profiler attached: the stage's DRAM and
  // prefetch traffic in the BENCH record comes from the multihit.profile.v1
  // rollups, so the figure bench and the profiler cannot silently diverge
  // (tests/test_profile.cpp re-derives both from a saved artifact).
  ModelInputs inputs;
  inputs.hits = 3;
  struct Stage {
    const char* name;
    const char* key;
    MemOpts opts;
    bool splice;
  };
  const Stage stages[] = {
      {"baseline (no optimizations)", "baseline", MemOpts{}, false},
      {"+ MemOpt1 (prefetch i)", "memopt1", MemOpts{.prefetch_i = true}, false},
      {"+ MemOpt2 (prefetch j)", "memopt1_2",
       MemOpts{.prefetch_i = true, .prefetch_j = true}, false},
      {"+ BitSplicing", "memopt1_2_splice",
       MemOpts{.prefetch_i = true, .prefetch_j = true}, true},
  };

  print_section(std::cout,
                "Fig. 5 (modeled) — 3-hit BRCA on one V100, cumulative optimizations");
  obs::BenchReporter reporter("fig5_memopt");
  Table table({"configuration", "modeled time (s)", "speedup vs baseline"});
  double baseline = 0.0;
  double baseline_dram = 0.0;
  for (const Stage& stage : stages) {
    ModelInputs staged = inputs;
    staged.mem_opts = stage.opts;
    staged.bit_splicing = stage.splice;
    obs::Recorder recorder;
    recorder.profile.enable();
    staged.recorder = &recorder;
    const double t = model_single_gpu_time(DeviceSpec::v100(), staged);
    if (baseline == 0.0) baseline = t;
    table.add_row({std::string(stage.name), t, baseline / t});

    const obs::JsonValue profile = obs::profile_report(recorder.profile);
    const obs::JsonValue& totals = *profile.find("totals");
    const double dram_bytes = totals.find("dram_bytes")->as_number();
    if (baseline_dram == 0.0) baseline_dram = dram_bytes;
    const std::string key = stage.key;
    reporter.series("modeled_time_" + key, t, "s");
    reporter.series("speedup_" + key, baseline / t, "x");
    reporter.series("profile_dram_bytes_" + key, dram_bytes, "B");
    reporter.series("profile_local_bytes_" + key,
                    totals.find("local_bytes")->as_number(), "B");
    reporter.series("profile_dram_reduction_" + key, baseline_dram / dram_bytes, "x");
  }
  table.print(std::cout);
  std::cout << "[paper: combined ~3x speedup from the three optimizations]\n";
  reporter.write();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Reproduces paper Fig. 5 (memory-optimization ablation, 3-hit, 1 GPU).\n\n";
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  print_modeled_fig5();
  return 0;
}
