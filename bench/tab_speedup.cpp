// §I / §II-C table — the paper's headline runtime magnitudes:
//   3-hit BRCA: 13860 min on one CPU, 23 min on one V100;
//   4-hit BRCA: > 500 years on one CPU (estimated), > 40 days on one V100
//               (estimated), and ~7192x speedup on 6000 V100s vs one V100.
// This bench regenerates the same table from the analytic machine model.

#include <iostream>

#include "cluster/model.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  std::cout << "Reproduces the paper's runtime-magnitude claims (BRCA).\n";

  ModelInputs three;
  three.hits = 3;
  ModelInputs four;  // defaults are 4-hit BRCA

  // The paper's sequential baseline predates the bit-packed optimization
  // work; 2.2e8 words/s reproduces its measured 13860-minute 3-hit run.
  constexpr double kCpuWordRate = 2.2e8;

  const double cpu3 = model_single_cpu_time(three, kCpuWordRate);
  const double gpu3 = model_single_gpu_time(DeviceSpec::v100(), three);
  const double cpu4 = model_single_cpu_time(four, kCpuWordRate);
  const double gpu4 = model_single_gpu_time(DeviceSpec::v100(), four);

  SummitConfig big;
  big.nodes = 1000;
  const double cluster4 = model_cluster_run(big, four).total_time;
  SummitConfig base;
  const double cluster4_100 = model_cluster_run(base, four).total_time;

  print_section(std::cout, "Runtime magnitudes (modeled vs paper)");
  Table table({"configuration", "modeled", "paper"});
  table.add_row({std::string("3-hit, 1 CPU core"),
                 std::to_string(cpu3 / 60.0) + " min", std::string("13860 min")});
  table.add_row({std::string("3-hit, 1 V100"), std::to_string(gpu3 / 60.0) + " min",
                 std::string("23 min")});
  table.add_row({std::string("4-hit, 1 CPU core"),
                 std::to_string(cpu4 / 86400.0 / 365.0) + " years",
                 std::string("> 500 years (estimated)")});
  table.add_row({std::string("4-hit, 1 V100"), std::to_string(gpu4 / 86400.0) + " days",
                 std::string("> 40 days (estimated)")});
  table.add_row({std::string("4-hit, 100 nodes (600 V100s)"),
                 std::to_string(cluster4_100 / 3600.0) + " h", std::string("< 2 h limit")});
  table.add_row({std::string("4-hit, 1000 nodes (6000 V100s)"),
                 std::to_string(cluster4 / 60.0) + " min", std::string("-")});
  table.print(std::cout);

  print_section(std::cout, "Speedups");
  Table speedups({"comparison", "modeled", "paper"});
  speedups.set_precision(0);
  speedups.add_row({std::string("1 V100 vs 1 CPU (3-hit)"), cpu3 / gpu3, 13860.0 / 23.0});
  speedups.add_row({std::string("6000 V100s vs 1 V100 (4-hit)"), gpu4 / cluster4, 7192.0});
  speedups.print(std::cout);
  std::cout << "Shape check: CPU infeasible for 4-hit (decades+), single GPU infeasible\n"
               "(a month+), thousands-fold speedup restores a sub-hour turnaround.\n";
  return 0;
}
