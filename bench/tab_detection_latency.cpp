// Detection-latency table (no paper analogue — operational extension).
//
// For each injected fault class, run the functional cluster pipeline with a
// recorder attached, replay the Chrome trace through the health monitor
// (src/obs/monitor.hpp), score the incidents against the injected ground
// truth, and tabulate per-class detection latency in simulated seconds.
// Everything runs on the simulated clock, so the series are deterministic
// and the committed baseline in bench/baselines/ is a hard regression gate:
// a detector that silently loses recall or gains latency shows up as a
// series diff, not as a flaky wall-clock number.
//
// The monitor itself is a pure replay of the trace — it adds zero modeled
// seconds to the run (the differential test in tests/test_monitor.cpp pins
// this), which the `monitor_overhead_s` series records explicitly.

#include <iostream>
#include <string>
#include <vector>

#include "cluster/distributed.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"
#include "fault/injector.hpp"
#include "obs/analyze.hpp"
#include "obs/bench.hpp"
#include "obs/monitor.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace multihit;
  log::set_level(log::Level::kWarn);
  std::cout << "Health-monitor detection latency (obs layer, src/obs/monitor).\n";

  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = 4242;
  const Dataset data = generate_dataset(spec);

  SummitConfig summit;
  summit.nodes = 3;
  const ClusterRunner runner(summit);

  struct Case {
    std::string name;
    std::string key;    ///< stable BENCH series suffix
    std::string truth;  ///< truth-event kind this case injects
    FaultPlan plan;
    std::uint32_t checkpoint_every = 0;
  };
  std::vector<Case> cases;
  cases.push_back({"rank crash (r1@i1, 50%)", "crash", "crash",
                   {{{FaultKind::kRankCrash, 1, 1, 0.5, 1}}}, 0});
  cases.push_back({"straggler x3 (r2@i1, 2 iters)", "straggler", "straggler",
                   {{{FaultKind::kStraggler, 2, 1, 3.0, 2}}}, 0});
  cases.push_back({"message drops (r2@i1, 2 lost)", "drop", "drop",
                   {{{FaultKind::kMessageDrop, 2, 1, 0.0, 2}}}, 0});
  cases.push_back({"job abort (@i2, ckpt every iter)", "abort", "abort",
                   {{{FaultKind::kJobAbort, 0, 2, 0.0, 1}}}, 1});

  constexpr double kDetectionWindow = 0.25;  ///< scoring window (sim s)

  Table table({"fault class", "injected", "detected", "latency mean s",
               "latency max s", "false pos", "verdict"});
  table.set_precision(4);

  obs::BenchReporter bench("tab_detection_latency");
  bool all_perfect = true;
  for (const Case& c : cases) {
    DistributedOptions options;
    options.faults = c.plan;
    options.checkpoint_every = c.checkpoint_every;
    obs::Recorder recorder;
    options.recorder = &recorder;
    const ClusterRunResult result = runner.run(data, options);

    // Monitor the microsecond-rounded Chrome replay — exactly what an
    // offline `multihit-obstool monitor` invocation would see.
    const obs::Tracer replay = obs::tracer_from_chrome(
        obs::JsonValue::parse(recorder.trace.to_chrome_json()));
    const obs::HealthReport health = obs::monitor_trace(replay);
    const std::vector<obs::TruthEvent> truth = truth_events(result.fault_events);
    const obs::HealthScore score =
        obs::score_incidents(health, truth, kDetectionWindow);

    const obs::ClassScore& cls = score.by_class.at(c.truth);
    const bool perfect = score.perfect();
    all_perfect = all_perfect && perfect;

    bench.series("latency_mean_s." + c.key, cls.latency_mean, "s");
    bench.series("latency_max_s." + c.key, cls.latency_max, "s");
    bench.series("detected." + c.key, static_cast<double>(cls.detected));
    bench.series("injected." + c.key, static_cast<double>(cls.injected));
    bench.series("false_positives." + c.key,
                 static_cast<double>(score.false_positives));
    bench.series("incidents." + c.key,
                 static_cast<double>(health.incidents.size()));

    table.add_row({c.name, static_cast<long long>(cls.injected),
                   static_cast<long long>(cls.detected), cls.latency_mean,
                   cls.latency_max, static_cast<long long>(score.false_positives),
                   std::string(perfect ? "perfect" : "IMPERFECT")});
  }

  // Fault-free control: the monitor must stay silent, and because it is a
  // pure replay its modeled-time overhead is zero by construction.
  {
    obs::Recorder recorder;
    DistributedOptions options;
    options.recorder = &recorder;
    const ClusterRunResult with = runner.run(data, options);
    const ClusterRunResult without = runner.run(data, {});
    const obs::Tracer replay = obs::tracer_from_chrome(
        obs::JsonValue::parse(recorder.trace.to_chrome_json()));
    const obs::HealthReport health = obs::monitor_trace(replay);
    bench.series("fault_free_incidents", static_cast<double>(health.incidents.size()));
    bench.series("monitor_overhead_s", with.total_time - without.total_time, "s");
    all_perfect = all_perfect && health.incidents.empty() &&
                  with.total_time == without.total_time;
    table.add_row({"fault-free control", 0LL, 0LL, 0.0, 0.0,
                   static_cast<long long>(health.incidents.size()),
                   std::string(health.incidents.empty() ? "silent" : "NOISY")});
  }
  bench.series("all_perfect", all_perfect ? 1.0 : 0.0);
  bench.write();

  table.print(std::cout);
  std::cout << (all_perfect
                    ? "Every class detected within the window, zero false "
                      "positives, zero overhead.\n"
                    : "DETECTION GATE FAILED: see verdict column.\n")
            << "Latencies are simulated seconds from injection instant to "
               "incident fire;\nthe monitor samples every 5 ms of simulated "
               "time, so sub-15 ms latency means\ndetection within three "
               "sample boundaries of the fault landing.\n";
  return all_perfect ? 0 : 1;
}
