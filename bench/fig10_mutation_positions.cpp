// Fig. 10 — Distribution of mutations within genes of a top 4-hit
// combination: the paper contrasts IDH1 (a driver in brain low grade glioma:
// 400 of 532 tumor samples mutate amino-acid position 132, while normal
// samples show no such hotspot) with MUC6 (a passenger: positions spread
// uniformly in both tumor and normal samples).
//
// The synthetic MAF substrate plants exactly this structure; this bench
// regenerates the four panels as position histograms for one planted driver
// gene and one passenger gene.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "data/maf.hpp"
#include "util/table.hpp"

namespace {

using namespace multihit;

void print_histogram(const MafStudy& study, std::uint32_t gene, bool tumor,
                     const std::string& panel) {
  const auto hist = position_histogram(study, gene, tumor);
  const auto total = std::accumulate(hist.begin(), hist.end(), 0u);
  print_section(std::cout, panel + " — gene " + study.genes[gene].symbol + ", " +
                               (tumor ? "tumor" : "normal") + " samples (" +
                               std::to_string(total) + " mutations)");
  Table table({"amino-acid position", "mutations", "% of gene's mutations"});
  table.set_precision(1);
  for (std::uint32_t p = 0; p < hist.size(); ++p) {
    if (hist[p] == 0) continue;  // figures plot only occupied positions
    table.add_row({static_cast<long long>(p + 1), static_cast<long long>(hist[p]),
                   total ? 100.0 * hist[p] / total : 0.0});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace multihit;
  std::cout << "Reproduces paper Fig. 10 (driver hotspot vs passenger spread).\n";

  SyntheticSpec spec;
  spec.genes = 80;
  spec.tumor_samples = 532;  // LGG's tumor count in the paper
  spec.normal_samples = 329; // and its normal count
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.03;
  spec.seed = 13232;  // IDH1's hotspot residue, for flavor
  const MafStudy study = generate_maf_study(spec);

  const std::uint32_t driver = study.planted[0][0];  // IDH1-like
  std::uint32_t passenger = 0;                        // MUC6-like
  while (study.genes[passenger].driver) ++passenger;

  print_histogram(study, driver, /*tumor=*/true, "Fig. 10(a) driver");
  print_histogram(study, driver, /*tumor=*/false, "Fig. 10(b) driver");
  print_histogram(study, passenger, /*tumor=*/true, "Fig. 10(c) passenger");
  print_histogram(study, passenger, /*tumor=*/false, "Fig. 10(d) passenger");

  const auto tumor_hist = position_histogram(study, driver, true);
  const auto hotspot = study.genes[driver].hotspot_position;
  const auto total = std::accumulate(tumor_hist.begin(), tumor_hist.end(), 0u);
  std::cout << "driver hotspot at position " << hotspot << " carries "
            << (total ? 100.0 * tumor_hist[hotspot - 1] / total : 0.0)
            << "% of tumor mutations; normal samples show no hotspot.\n"
            << "[paper: IDH1 R132 mutated in 400/532 LGG tumors, 0/329 normals; "
               "MUC6 spread uniformly]\n";
  return 0;
}
