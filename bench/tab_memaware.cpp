// Extension ablation — memory-aware equi-area scheduling (paper §V,
// future-work item 4: "incorporate memory latency into the scheduling
// algorithm").
//
// Plain equi-area balances combination counts, but each thread additionally
// streams its h-1 fixed rows once; tail partitions (many short threads)
// therefore carry more bytes per combination and become stragglers as the
// fleet grows. Reweighting the same O(G) equi-area walk by modeled traffic
// (cost = combinations + (h-1) per thread) removes the effect.

#include <algorithm>
#include <iostream>

#include "cluster/model.hpp"
#include "cluster/scaling.hpp"
#include "sched/memaware.hpp"
#include "util/table.hpp"

namespace {

using namespace multihit;

struct Spread {
  double min_time = 1e30;
  double max_time = 0.0;
};

Spread gpu_spread(const SummitConfig& config, const ModelInputs& inputs) {
  const auto run = model_cluster_run(config, inputs);
  Spread s;
  for (const auto& g : run.iterations.front().gpus) {
    s.min_time = std::min(s.min_time, g.time);
    s.max_time = std::max(s.max_time, g.time);
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "Extension: memory-aware equi-area scheduler (paper future work #4).\n";

  SummitConfig config;
  config.gpu_jitter = 0.0;  // isolate scheduling effects
  ModelInputs inputs;       // BRCA 4-hit, 3x1, full prefetch
  inputs.first_iteration_only = true;

  print_section(std::cout, "Per-GPU modeled time spread (BRCA, first iteration)");
  Table spread_table({"nodes", "EA max/min", "memory-aware max/min"});
  for (const std::uint32_t nodes : {100u, 400u, 1000u}) {
    config.nodes = nodes;
    ModelInputs ea = inputs;
    ModelInputs aware = inputs;
    aware.scheduler = SchedulerKind::kMemoryAware;
    const Spread a = gpu_spread(config, ea);
    const Spread b = gpu_spread(config, aware);
    spread_table.add_row({static_cast<long long>(nodes), a.max_time / a.min_time,
                          b.max_time / b.min_time});
  }
  spread_table.print(std::cout);

  print_section(std::cout, "Strong scaling with and without memory-aware scheduling");
  config.gpu_jitter = 0.03;  // back to the realistic configuration
  ModelInputs full;          // full greedy run
  const std::vector<std::uint32_t> nodes{100, 200, 400, 600, 800, 1000};
  const auto plain = strong_scaling(config, full, nodes);
  ModelInputs aware_full = full;
  aware_full.scheduler = SchedulerKind::kMemoryAware;
  const auto aware = strong_scaling(config, aware_full, nodes);
  Table eff({"nodes", "EA efficiency", "memory-aware efficiency"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    eff.add_row({static_cast<long long>(nodes[i]), plain[i].efficiency, aware[i].efficiency});
  }
  eff.print(std::cout);
  std::cout << "The scheduler changes *when* partitions finish, never *what* is found\n"
               "(asserted by MemAware.DistributedResultsUnchanged).\n";
  return 0;
}
