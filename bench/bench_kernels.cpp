// Kernel microbenchmarks (google-benchmark): measured throughput of the
// bit-matrix primitives and enumeration kernels that everything else is
// built on. These are the numbers the performance model's word_op_rate is
// sanity-checked against, and they demonstrate the paper's claim that the
// compressed binary representation turns F-evaluation into a handful of
// AND+popcount word operations per combination.

#include <benchmark/benchmark.h>

#include "bitmat/bitops.hpp"
#include "combinat/linearize.hpp"
#include "core/schemes.hpp"
#include "core/serial.hpp"
#include "data/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace multihit;

Dataset kernel_dataset(std::uint32_t genes) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 911;
  spec.normal_samples = 520;
  spec.hits = 3;
  spec.num_combinations = 4;
  spec.background_rate = 0.02;
  spec.seed = 7;
  return generate_dataset(spec);
}

void BM_AndPopcount2(benchmark::State& state) {
  Rng rng(1);
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> a(words), b(words);
  for (auto& w : a) w = rng();
  for (auto& w : b) w = rng();
  for (auto _ : state) {
    benchmark::DoNotOptimize(and_popcount(a, b));
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_AndPopcount2)->Arg(8)->Arg(64)->Arg(512);

void BM_AndPopcount4(benchmark::State& state) {
  Rng rng(2);
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> a(words), b(words), c(words), d(words);
  for (auto* row : {&a, &b, &c, &d}) {
    for (auto& w : *row) w = rng();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(and_popcount(a, b, c, d));
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_AndPopcount4)->Arg(8)->Arg(64)->Arg(512);

void BM_UnrankTriple(benchmark::State& state) {
  Rng rng(3);
  std::uint64_t lambda = 0;
  for (auto _ : state) {
    lambda = rng.uniform(tetrahedral(19411));
    benchmark::DoNotOptimize(unrank_triple(lambda));
  }
}
BENCHMARK(BM_UnrankTriple);

void BM_UnrankTripleLogExp(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t lambda = 0;
  for (auto _ : state) {
    lambda = rng.uniform(tetrahedral(19411));
    benchmark::DoNotOptimize(unrank_triple_logexp(lambda));
  }
}
BENCHMARK(BM_UnrankTripleLogExp);

void BM_Kernel3x1_4hit(benchmark::State& state) {
  const Dataset data = kernel_dataset(static_cast<std::uint32_t>(state.range(0)));
  const FContext ctx{FParams{}, data.tumor_samples(), data.normal_samples()};
  const u64 total = scheme4_threads(Scheme4::k3x1, data.genes());
  std::uint64_t combos = 0;
  for (auto _ : state) {
    KernelStats stats;
    benchmark::DoNotOptimize(evaluate_range_4hit(
        data.tumor, data.normal, ctx, Scheme4::k3x1, 0, total,
        MemOpts{.prefetch_i = true, .prefetch_j = true}, &stats));
    combos = stats.combinations;
  }
  state.SetItemsProcessed(state.iterations() * combos);
  state.counters["combinations"] = static_cast<double>(combos);
}
BENCHMARK(BM_Kernel3x1_4hit)->Arg(40)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_Kernel2x1_3hit(benchmark::State& state) {
  const Dataset data = kernel_dataset(static_cast<std::uint32_t>(state.range(0)));
  const FContext ctx{FParams{}, data.tumor_samples(), data.normal_samples()};
  const u64 total = scheme3_threads(Scheme3::k2x1, data.genes());
  std::uint64_t combos = 0;
  for (auto _ : state) {
    KernelStats stats;
    benchmark::DoNotOptimize(evaluate_range_3hit(
        data.tumor, data.normal, ctx, Scheme3::k2x1, 0, total,
        MemOpts{.prefetch_i = true, .prefetch_j = true}, &stats));
    combos = stats.combinations;
  }
  state.SetItemsProcessed(state.iterations() * combos);
}
BENCHMARK(BM_Kernel2x1_3hit)->Arg(60)->Arg(110)->Unit(benchmark::kMillisecond);

void BM_SerialReference_3hit(benchmark::State& state) {
  const Dataset data = kernel_dataset(60);
  const FContext ctx{FParams{}, data.tumor_samples(), data.normal_samples()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial_find_best(data.tumor, data.normal, ctx, 3));
  }
}
BENCHMARK(BM_SerialReference_3hit)->Unit(benchmark::kMillisecond);

void BM_BitSplice(benchmark::State& state) {
  const Dataset data = kernel_dataset(200);
  Rng rng(5);
  std::vector<std::uint64_t> covered(data.tumor.words_per_row());
  for (auto& w : covered) w = rng() & rng();  // ~25% of samples covered
  for (auto _ : state) {
    state.PauseTiming();
    BitMatrix copy = data.tumor;
    state.ResumeTiming();
    benchmark::DoNotOptimize(copy.splice_covered(covered));
  }
}
BENCHMARK(BM_BitSplice)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
