#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace multihit {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table table({"name", "value"});
  table.add_row({std::string("alpha"), 42LL});
  table.add_row({std::string("b"), 7LL});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 42    |"), std::string::npos);
  EXPECT_NE(text.find("+-------+-------+"), std::string::npos);
}

TEST(Table, DoublePrecisionConfigurable) {
  Table table({"x"});
  table.set_precision(2);
  table.add_row({3.14159});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("3.14"), std::string::npos);
  EXPECT_EQ(out.str().find("3.142"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({1LL}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"key", "text"});
  table.add_row({std::string("k1"), std::string("hello, \"world\"")});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundNumbers) {
  Table table({"n", "v"});
  table.add_row({1LL, 2.5});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "n,v\n1,2.5000\n");
}

TEST(Table, RowCount) {
  Table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({1LL});
  table.add_row({2LL});
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace multihit
