#include "data/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generator.hpp"

namespace multihit {
namespace {

Dataset sample_dataset() {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 20;
  spec.normal_samples = 15;
  spec.hits = 2;
  spec.num_combinations = 3;
  spec.seed = 77;
  Dataset data = generate_dataset(spec);
  data.name = "roundtrip";
  return data;
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  const Dataset original = sample_dataset();
  std::stringstream buffer;
  write_dataset(buffer, original);
  const Dataset loaded = read_dataset(buffer);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.tumor, original.tumor);
  EXPECT_EQ(loaded.normal, original.normal);
  EXPECT_EQ(loaded.planted, original.planted);
}

TEST(DatasetIo, EmptyMatricesRoundTrip) {
  Dataset data;
  data.name = "empty";
  data.tumor = BitMatrix(5, 0);
  data.normal = BitMatrix(5, 0);
  std::stringstream buffer;
  write_dataset(buffer, data);
  const Dataset loaded = read_dataset(buffer);
  EXPECT_EQ(loaded.genes(), 5u);
  EXPECT_EQ(loaded.tumor_samples(), 0u);
}

TEST(DatasetIo, RejectsBadMagic) {
  std::stringstream buffer("not-a-dataset\n");
  EXPECT_THROW(read_dataset(buffer), std::runtime_error);
}

TEST(DatasetIo, RejectsTruncatedHeader) {
  std::stringstream buffer("multihit-dataset v1\nname x\ngenes 3\n");
  EXPECT_THROW(read_dataset(buffer), std::runtime_error);
}

TEST(DatasetIo, RejectsOutOfRangeEntries) {
  std::stringstream buffer(
      "multihit-dataset v1\nname x\ngenes 3\ntumor-samples 2\nnormal-samples 2\n"
      "planted 0\nt 5 0\nend\n");
  EXPECT_THROW(read_dataset(buffer), std::runtime_error);
}

TEST(DatasetIo, RejectsMissingEnd) {
  std::stringstream buffer(
      "multihit-dataset v1\nname x\ngenes 3\ntumor-samples 2\nnormal-samples 2\n"
      "planted 0\nt 1 0\n");
  EXPECT_THROW(read_dataset(buffer), std::runtime_error);
}

TEST(DatasetIo, FileRoundTrip) {
  const Dataset original = sample_dataset();
  const std::string path = testing::TempDir() + "/multihit_io_test.txt";
  save_dataset(path, original);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.tumor, original.tumor);
  EXPECT_EQ(loaded.normal, original.normal);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/path/file.txt"), std::ios_base::failure);
}

}  // namespace
}  // namespace multihit
