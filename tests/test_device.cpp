#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include "core/serial.hpp"
#include "data/generator.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t genes, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 4;
  spec.num_combinations = 2;
  spec.background_rate = 0.04;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

TEST(ParallelReduceMax, MatchesLinearScan) {
  Rng rng(3);
  for (const std::size_t n : {1u, 2u, 3u, 7u, 64u, 100u, 513u}) {
    std::vector<EvalResult> candidates(n);
    EvalResult linear;
    for (std::size_t i = 0; i < n; ++i) {
      candidates[i].valid = true;
      candidates[i].f = rng.uniform_double();
      candidates[i].combo_rank = rng.uniform(1000);
      linear = merge_results(linear, candidates[i]);
    }
    const EvalResult tree = parallel_reduce_max(candidates);
    EXPECT_EQ(tree.combo_rank, linear.combo_rank) << "n=" << n;
    EXPECT_DOUBLE_EQ(tree.f, linear.f);
  }
}

TEST(ParallelReduceMax, EmptyAndInvalid) {
  EXPECT_FALSE(parallel_reduce_max({}).valid);
  std::vector<EvalResult> all_invalid(5);
  EXPECT_FALSE(parallel_reduce_max(all_invalid).valid);
}

TEST(GpuDevice, FullPartitionMatchesSerial) {
  const auto f = make_fixture(24, 88);
  const GpuDevice device;
  const Partition whole{0, scheme4_threads(Scheme4::k3x1, 24)};
  const auto run = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, whole,
                                   MemOpts{.prefetch_i = true, .prefetch_j = true});
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 4);
  ASSERT_TRUE(run.best.valid);
  EXPECT_EQ(run.best.combo_rank, serial.combo_rank);
  EXPECT_DOUBLE_EQ(run.best.f, serial.f);
}

TEST(GpuDevice, BlockCountMatchesBlockSize) {
  const auto f = make_fixture(24, 89);
  const GpuDevice device;
  const u64 total = scheme4_threads(Scheme4::k3x1, 24);  // C(24,3) = 2024
  const auto run =
      device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, {0, total});
  EXPECT_EQ(run.blocks, (total + 511) / 512);
  // §III-E: candidate list is one 20-byte struct per block, a 512-fold
  // reduction versus one per thread.
  EXPECT_EQ(run.candidate_bytes, run.blocks * kCandidateBytes);
  EXPECT_LT(run.candidate_bytes, total * kCandidateBytes / 400);
}

TEST(GpuDevice, SplitAcrossDevicesMatchesSingleDevice) {
  // Six devices, each a sixth of the space: merged winner identical.
  const auto f = make_fixture(22, 90);
  const GpuDevice device;
  const u64 total = scheme4_threads(Scheme4::k3x1, 22);
  const auto whole = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1,
                                     {0, total});
  EvalResult merged;
  for (u64 d = 0; d < 6; ++d) {
    const auto part = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1,
                                      {total * d / 6, total * (d + 1) / 6});
    merged = merge_results(merged, part.best);
  }
  EXPECT_EQ(merged.combo_rank, whole.best.combo_rank);
}

TEST(GpuDevice, ThreeHitPipelineMatchesSerial) {
  const auto f = make_fixture(30, 91);
  const GpuDevice device;
  const auto run = device.run_3hit(f.data.tumor, f.data.normal, f.ctx, Scheme3::k2x1,
                                   {0, scheme3_threads(Scheme3::k2x1, 30)});
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 3);
  EXPECT_EQ(run.best.combo_rank, serial.combo_rank);
}

TEST(GpuDevice, EmptyPartition) {
  const auto f = make_fixture(20, 92);
  const GpuDevice device;
  const auto run = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, {5, 5});
  EXPECT_FALSE(run.best.valid);
  EXPECT_EQ(run.blocks, 0u);
  EXPECT_EQ(run.stats.combinations, 0u);
}

TEST(GpuDevice, TimingIsPopulated) {
  const auto f = make_fixture(20, 93);
  const GpuDevice device;
  const auto run = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1,
                                   {0, scheme4_threads(Scheme4::k3x1, 20)});
  EXPECT_GT(run.timing.time, 0.0);
  EXPECT_GT(run.stats.word_ops, 0u);
  EXPECT_GT(run.timing.dram_throughput, 0.0);
}

TEST(GpuDevice, PrefetchReducesModeledTime) {
  // The Fig. 5 mechanism: MemOpt2 cuts global traffic, so modeled time for
  // the same partition drops.
  const auto f = make_fixture(26, 94);
  const GpuDevice device;
  const Partition whole{0, scheme4_threads(Scheme4::k3x1, 26)};
  const auto plain =
      device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, whole, MemOpts{});
  const auto opt = device.run_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, whole,
                                   MemOpts{.prefetch_i = true, .prefetch_j = true});
  EXPECT_LT(opt.stats.global_words, plain.stats.global_words);
  EXPECT_LT(opt.timing.time, plain.timing.time);
  EXPECT_EQ(opt.best.combo_rank, plain.best.combo_rank);
}

}  // namespace
}  // namespace multihit
