#include "sched/divergence.hpp"

#include <gtest/gtest.h>

namespace multihit {
namespace {

// Brute-force reference: walk every warp, take the max directly.
DivergenceStats brute_divergence(const WorkloadModel& model, const Partition& range,
                                 std::uint32_t warp_size) {
  DivergenceStats stats;
  for (u64 warp = range.begin; warp < range.end; warp += warp_size) {
    const u64 end = std::min<u64>(warp + warp_size, range.end);
    u64 max_work = 0;
    for (u64 lambda = warp; lambda < end; ++lambda) {
      const u64 work = model.work_at(lambda);
      stats.useful_work += work;
      max_work = std::max(max_work, work);
    }
    stats.issued_work += static_cast<u128>(end - warp) * max_work;
  }
  stats.efficiency = stats.issued_work == 0
                         ? 1.0
                         : static_cast<double>(stats.useful_work) /
                               static_cast<double>(stats.issued_work);
  return stats;
}

TEST(Divergence, MatchesBruteForceAcrossSchemes) {
  for (const Scheme4 scheme : {Scheme4::k2x2, Scheme4::k3x1, Scheme4::k4x1}) {
    const auto model = WorkloadModel::for_scheme4(scheme, 40);
    for (const std::uint32_t warp : {1u, 8u, 32u}) {
      const Partition whole{0, model.total_threads()};
      const auto fast = warp_divergence(model, whole, warp);
      const auto brute = brute_divergence(model, whole, warp);
      EXPECT_TRUE(fast.useful_work == brute.useful_work) << scheme_name(scheme);
      EXPECT_TRUE(fast.issued_work == brute.issued_work)
          << scheme_name(scheme) << " warp=" << warp;
    }
  }
}

TEST(Divergence, MatchesBruteForceOnSubranges) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 35);
  const u64 total = model.total_threads();
  for (const auto& [a, b] : {std::pair<u64, u64>{3, 777}, {100, total}, {total / 2, total / 2 + 65}}) {
    const Partition range{a, b};
    const auto fast = warp_divergence(model, range, 32);
    const auto brute = brute_divergence(model, range, 32);
    EXPECT_TRUE(fast.issued_work == brute.issued_work) << a << "," << b;
    EXPECT_TRUE(fast.useful_work == brute.useful_work);
  }
}

TEST(Divergence, WarpSizeOneIsPerfect) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k2x2, 30);
  const auto stats = warp_divergence(model, {0, model.total_threads()}, 1);
  EXPECT_TRUE(stats.useful_work == stats.issued_work);
  EXPECT_DOUBLE_EQ(stats.efficiency, 1.0);
}

TEST(Divergence, EmptyRange) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 20);
  const auto stats = warp_divergence(model, {5, 5}, 32);
  EXPECT_TRUE(stats.issued_work == 0);
  EXPECT_DOUBLE_EQ(stats.efficiency, 1.0);
}

TEST(Divergence, LinearizedBeatsNaiveMapping) {
  // Paper contribution 2: the naive G x G launch leaves ~half its threads
  // idle (thread-slot waste) and loses additional work-time to mixed warps;
  // the linearized 2x1 mapping wastes almost nothing on either axis.
  const std::uint32_t G = 512;
  const auto naive = naive_triangular_divergence(G, 32);
  EXPECT_LT(naive.thread_utilization, 0.51);   // "half the threads are idle"
  EXPECT_LT(naive.efficiency, 0.9);            // work-time divergence on top

  const auto model = WorkloadModel::for_scheme3(Scheme3::k2x1, G);
  const auto linear = warp_divergence(model, {0, model.total_threads()}, 32);
  EXPECT_GT(linear.thread_utilization, 0.99);
  EXPECT_GT(linear.efficiency, 0.99);
}

TEST(Divergence, ThreadAccountingConsistency) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 30);
  const Partition whole{0, model.total_threads()};
  const auto stats = warp_divergence(model, whole, 32);
  EXPECT_EQ(stats.launched_threads, model.total_threads());
  // Zero-work threads of 3x1 are exactly the C(G-1,2) with k = G-1.
  EXPECT_EQ(stats.launched_threads - stats.working_threads, triangular(29));
}

TEST(Divergence, TetrahedralMappingNearPerfectAtScale) {
  // 3x1 levels hold C(k,2) threads each — enormous relative to a warp — so
  // straddling warps are a vanishing fraction.
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 2000);
  const auto stats = warp_divergence(model, {0, model.total_threads()}, 32);
  EXPECT_GT(stats.efficiency, 0.999);
}

}  // namespace
}  // namespace multihit
