#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "combinat/binomial.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

void expect_contiguous_cover(const std::vector<Partition>& schedule, u64 total_threads) {
  ASSERT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.front().begin, 0u);
  for (std::size_t p = 1; p < schedule.size(); ++p) {
    EXPECT_EQ(schedule[p].begin, schedule[p - 1].end) << "gap/overlap at unit " << p;
  }
  EXPECT_EQ(schedule.back().end, total_threads);
}

TEST(Schedule, EquidistanceCoversExactly) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 60);
  for (std::uint32_t units : {1u, 5u, 7u, 30u, 64u}) {
    const auto schedule = equidistance_schedule(model, units);
    ASSERT_EQ(schedule.size(), units);
    expect_contiguous_cover(schedule, model.total_threads());
    // Sizes differ by at most one.
    u64 min_size = ~u64{0}, max_size = 0;
    for (const auto& p : schedule) {
      min_size = std::min(min_size, p.size());
      max_size = std::max(max_size, p.size());
    }
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(Schedule, EquiareaCoversExactly) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 60);
  for (std::uint32_t units : {1u, 5u, 7u, 30u, 64u}) {
    const auto schedule = equiarea_schedule(model, units);
    ASSERT_EQ(schedule.size(), units);
    expect_contiguous_cover(schedule, model.total_threads());
  }
}

TEST(Schedule, EquiareaWorkConservation) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 50);
  const auto schedule = equiarea_schedule(model, 30);
  u128 total = 0;
  for (const auto& p : schedule) total += partition_work(model, p);
  EXPECT_TRUE(total == model.total_work());
}

class ScheduleAgreement : public ::testing::TestWithParam<Scheme4> {};

TEST_P(ScheduleAgreement, FastEquiareaMatchesNaive) {
  // The paper's O(G) level-based scheduler must produce exactly the
  // boundaries of the thread-by-thread accumulation it replaced.
  const auto model = WorkloadModel::for_scheme4(GetParam(), 40);
  for (std::uint32_t units : {2u, 6u, 13u, 30u}) {
    const auto fast = equiarea_schedule(model, units);
    const auto naive = equiarea_schedule_naive(model, units);
    EXPECT_EQ(fast, naive) << scheme_name(GetParam()) << " units=" << units;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScheduleAgreement,
                         ::testing::Values(Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1,
                                           Scheme4::k4x1),
                         [](const auto& info) { return scheme_name(info.param); });

TEST(Schedule, EquiareaBalancesFarBetterThanEquidistance) {
  // The heart of Fig. 3: for the 2x2 scheme, ED has wildly unequal areas
  // while EA is near-uniform.
  const auto model = WorkloadModel::for_scheme4(Scheme4::k2x2, 50);
  const std::uint32_t units = 30;  // 5 nodes x 6 GPUs, the figure's setup
  const auto ed = schedule_imbalance(model, equidistance_schedule(model, units));
  const auto ea = schedule_imbalance(model, equiarea_schedule(model, units));
  EXPECT_GT(ed.imbalance, 3.0);   // first GPU carries several times the mean
  // At G = 50 one 2x2 thread carries up to C(48,2)/C(50,4)*30 ≈ 15% of a
  // unit's share, so EA can only balance to within that granularity.
  EXPECT_LT(ea.imbalance, 1.15);
}

TEST(Schedule, EquiareaAtPaperScaleIsBalanced) {
  // 1000 nodes x 6 GPUs on BRCA's 3x1 space: every GPU within 0.1%.
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 19411);
  const auto schedule = equiarea_schedule(model, 6000);
  expect_contiguous_cover(schedule, model.total_threads());
  const auto imbalance = schedule_imbalance(model, schedule);
  EXPECT_LT(imbalance.imbalance, 1.001);
  EXPECT_GT(imbalance.min_work, imbalance.mean_work * 0.999);
}

TEST(Schedule, SingleUnitGetsEverything) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 30);
  const auto schedule = equiarea_schedule(model, 1);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].begin, 0u);
  EXPECT_EQ(schedule[0].end, model.total_threads());
}

TEST(Schedule, MoreUnitsThanWorkYieldsEmptyPartitions) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 6);  // C(6,3)=20 threads
  const auto schedule = equiarea_schedule(model, 64);
  expect_contiguous_cover(schedule, model.total_threads());
  std::uint32_t non_empty = 0;
  for (const auto& p : schedule) non_empty += p.size() > 0 ? 1 : 0;
  EXPECT_LE(non_empty, 20u);
}

// --- randomized invariants ---------------------------------------------------

/// The invariants every scheduler must hold for any workload and unit count:
/// exactly `units` partitions, contiguous and disjoint, covering [0, total),
/// boundaries matching the naive per-thread reference, and a well-defined
/// imbalance statistic (>= 1 by construction).
void expect_schedule_invariants(const WorkloadModel& model, std::uint32_t units,
                                const std::string& context) {
  const auto fast = equiarea_schedule(model, units);
  ASSERT_EQ(fast.size(), units) << context;
  expect_contiguous_cover(fast, model.total_threads());
  EXPECT_EQ(fast, equiarea_schedule_naive(model, units)) << context;
  u128 total = 0;
  for (const auto& p : fast) total += partition_work(model, p);
  EXPECT_TRUE(total == model.total_work()) << context;
  EXPECT_GE(schedule_imbalance(model, fast).imbalance, 1.0) << context;

  const auto ed = equidistance_schedule(model, units);
  ASSERT_EQ(ed.size(), units) << context;
  expect_contiguous_cover(ed, model.total_threads());
  EXPECT_GE(schedule_imbalance(model, ed).imbalance, 1.0) << context;
}

TEST(ScheduleProperty, RandomWorkloadsHoldAllInvariants) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 40; ++trial) {
    const auto genes = static_cast<std::uint32_t>(6 + rng.uniform(90));  // 6..95
    WorkloadModel model = [&] {
      switch (rng.uniform(6)) {
        case 0:
          return WorkloadModel::for_scheme4(Scheme4::k1x3, genes);
        case 1:
          return WorkloadModel::for_scheme4(Scheme4::k2x2, genes);
        case 2:
          return WorkloadModel::for_scheme4(Scheme4::k3x1, genes);
        case 3:
          return WorkloadModel::for_scheme4(Scheme4::k4x1, genes);
        case 4:
          return WorkloadModel::for_scheme3(Scheme3::k2x1, genes);
        default:
          return WorkloadModel::for_scheme2(Scheme2::k1x1, genes);
      }
    }();
    const std::string base = "trial " + std::to_string(trial) + ", G=" + std::to_string(genes);
    // units = 1, a random moderate count, and more units than threads.
    expect_schedule_invariants(model, 1, base + ", units=1");
    const auto units = static_cast<std::uint32_t>(2 + rng.uniform(200));
    expect_schedule_invariants(model, units, base + ", units=" + std::to_string(units));
    const auto oversubscribed =
        static_cast<std::uint32_t>(model.total_threads() + 1 + rng.uniform(50));
    if (oversubscribed < 5000) {
      expect_schedule_invariants(model, oversubscribed,
                                 base + ", units=" + std::to_string(oversubscribed));
    }
  }
}

TEST(Schedule, ZeroUnitsRejected) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 10);
  EXPECT_THROW(equidistance_schedule(model, 0), std::invalid_argument);
  EXPECT_THROW(equiarea_schedule(model, 0), std::invalid_argument);
}

TEST(Schedule, ImbalanceStatsSanity) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 40);
  const auto schedule = equiarea_schedule(model, 10);
  const auto s = schedule_imbalance(model, schedule);
  EXPECT_GE(s.max_work, s.mean_work);
  EXPECT_LE(s.min_work, s.mean_work);
  EXPECT_GE(s.imbalance, 1.0);
  EXPECT_NEAR(s.mean_work * 10, static_cast<double>(binomial(40, 4)), 1.0);
}

}  // namespace
}  // namespace multihit
