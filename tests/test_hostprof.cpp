// Host-profiler harness (src/obs/hostprof.hpp + the core/hostsweep.cpp
// instrumentation seam).
//
// The load-bearing properties, in order:
//   * attaching a profiler never changes what the sweep selects (the
//     selections stay bit-identical to the unprofiled run);
//   * the deterministic projection is byte-identical across repeated runs
//     and across bitops backends of the same configuration — wall clock and
//     kernel implementation leave no fingerprint on gated fields;
//   * the full report round-trips exactly: parse -> re-render reproduces the
//     in-process document byte for byte (the offline-replay gate);
//   * the crosscheck catches corrupted documents (the obstool exit-1 path).

#include "obs/hostprof.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bitmat/bitops.hpp"
#include "core/engine.hpp"
#include "core/hostsweep.hpp"
#include "core/serial.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

using obs::HostProfile;
using obs::HostProfiler;

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 28;
  spec.tumor_samples = 60;
  spec.normal_samples = 44;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.04;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

HostSweepOptions sweep_options(std::uint32_t hits, std::uint32_t threads, std::uint64_t chunk,
                               HostProfiler* profiler = nullptr) {
  HostSweepOptions options;
  options.hits = hits;
  options.threads = threads;
  options.chunk = chunk;
  options.profiler = profiler;
  return options;
}

// --- profiling leaves selections untouched ----------------------------------

TEST(HostProf, ProfiledSweepSelectsIdenticallyToUnprofiled) {
  const Fixture f = make_fixture(3, 701);
  for (const std::uint32_t threads : {1u, 4u}) {
    const EvalResult plain = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx,
                                                  sweep_options(3, threads, 57));
    HostProfiler profiler;
    const EvalResult profiled = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx,
                                                     sweep_options(3, threads, 57, &profiler));
    ASSERT_TRUE(plain.valid);
    EXPECT_EQ(profiled.f, plain.f) << "threads=" << threads;
    EXPECT_EQ(profiled.combo_rank, plain.combo_rank) << "threads=" << threads;
    EXPECT_EQ(profiled.tp, plain.tp);
    EXPECT_EQ(profiled.tn, plain.tn);
  }
}

// --- collection invariants ---------------------------------------------------

TEST(HostProf, ProfileAccountsForEveryChunkPollAndCall) {
  const Fixture f = make_fixture(2, 702);
  HostProfiler profiler;
  const EvalResult best = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx,
                                               sweep_options(2, 3, 19, &profiler));
  ASSERT_TRUE(best.valid);

  const HostProfile& profile = profiler.profile();
  ASSERT_EQ(profile.sweeps.size(), 1u);
  const obs::HostSweepStat& sweep = profile.sweeps[0];
  EXPECT_EQ(sweep.chunks, sweep.chunk_count);
  // Each launched worker's drain fails exactly once, so the queue cursor at
  // quiescence is chunk_count + workers — the deterministic starvation
  // invariant read straight off ChunkQueue::polls().
  EXPECT_EQ(sweep.polls, sweep.chunk_count + sweep.workers);
  EXPECT_EQ(profile.total_empty_polls, sweep.workers);
  EXPECT_EQ(profile.total_chunks, sweep.chunk_count);
  EXPECT_EQ(profile.total_claims, profile.total_chunks);
  EXPECT_GT(profile.total_combinations, 0u);
  EXPECT_TRUE(profile.bitops_counted);
  EXPECT_GT(profile.total_calls.total(), 0u);
  EXPECT_GT(profile.arena_peak_words_max, 0u);

  // Per-worker claim histograms carry one entry per poll (successful or
  // empty), so their mass reconciles against chunks + empty polls.
  for (const obs::HostWorkerStat& worker : profile.worker_stats) {
    std::uint64_t mass = 0;
    for (const std::uint64_t count : worker.claim_histogram) mass += count;
    EXPECT_EQ(mass, worker.chunks + worker.empty_polls) << "worker " << worker.worker;
    EXPECT_EQ(worker.sweeps, 1u);
  }

  EXPECT_TRUE(obs::hostprof_crosscheck(profile).empty());
  // Counting is restored after the profiled sweep — callers never pay.
  EXPECT_FALSE(call_counting());
}

TEST(HostProf, WorkerClampAndMultiSweepAccumulation) {
  const Fixture f = make_fixture(2, 703);
  HostProfiler profiler;
  // Chunk big enough that the whole λ space is a handful of chunks: the
  // requested 8 workers clamp down, and the profile must report the clamped
  // count, not the request.
  const HostSweepOptions options = sweep_options(2, 8, 100, &profiler);
  const EvalResult first = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options);
  const EvalResult second = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options);
  ASSERT_TRUE(first.valid);
  EXPECT_EQ(second.f, first.f);

  const HostProfile& profile = profiler.profile();
  ASSERT_EQ(profile.sweeps.size(), 2u);
  EXPECT_LE(profile.workers, 8u);
  EXPECT_EQ(profile.workers, profile.sweeps[0].workers);
  EXPECT_EQ(profile.total_chunks, profile.sweeps[0].chunks + profile.sweeps[1].chunks);
  EXPECT_EQ(profile.total_combinations,
            profile.sweeps[0].combinations + profile.sweeps[1].combinations);
  for (const obs::HostWorkerStat& worker : profile.worker_stats) {
    EXPECT_EQ(worker.sweeps, 2u) << "worker " << worker.worker;
  }
  EXPECT_TRUE(obs::hostprof_crosscheck(profile).empty());
}

// --- determinism across backends and runs -----------------------------------

TEST(HostProf, DeterministicProjectionIdenticalAcrossRunsAndBackends) {
  const Fixture f = make_fixture(3, 704);
  const auto project = [&]() {
    HostProfiler profiler;
    EngineConfig config;
    config.hits = 3;
    (void)run_greedy(f.data.tumor, f.data.normal, config,
                     make_host_sweep_evaluator(sweep_options(3, 4, 41, &profiler)));
    return obs::hostprof_deterministic(profiler.profile()).dump();
  };

  const BitopsBackend previous = active_backend();
  ASSERT_TRUE(set_backend(BitopsBackend::kScalar));
  const std::string scalar_run1 = project();
  const std::string scalar_run2 = project();
  EXPECT_EQ(scalar_run1, scalar_run2) << "projection varies run to run";

  if (backend_supported(BitopsBackend::kAvx2)) {
    ASSERT_TRUE(set_backend(BitopsBackend::kAvx2));
    EXPECT_EQ(project(), scalar_run1) << "projection varies across bitops backends";
  }
  set_backend(previous);
}

TEST(HostProf, CallCountsAreDispatchLevelIdenticalAcrossThreadCounts) {
  // The counting wrappers count dispatched calls, not kernel work, so the
  // totals depend only on the enumeration — not on how chunks land on
  // workers.
  const Fixture f = make_fixture(2, 705);
  obs::HostBitopsCalls reference;
  for (const std::uint32_t threads : {1u, 2u, 5u}) {
    HostProfiler profiler;
    (void)host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx,
                               sweep_options(2, threads, 23, &profiler));
    const obs::HostBitopsCalls& calls = profiler.profile().total_calls;
    if (threads == 1u) {
      reference = calls;
      EXPECT_GT(calls.total(), 0u);
    } else {
      EXPECT_EQ(calls.total(), reference.total()) << "threads=" << threads;
      EXPECT_EQ(calls.and2, reference.and2);
      EXPECT_EQ(calls.andnot2, reference.andnot2);
    }
  }
}

TEST(HostProf, CountBitopsOptOutLeavesCallTablesAlone) {
  const Fixture f = make_fixture(2, 706);
  HostProfiler profiler;
  profiler.count_bitops = false;
  const EvalResult best = host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx,
                                               sweep_options(2, 2, 23, &profiler));
  ASSERT_TRUE(best.valid);
  EXPECT_FALSE(profiler.profile().bitops_counted);
  EXPECT_EQ(profiler.profile().total_calls.total(), 0u);
  EXPECT_TRUE(obs::hostprof_crosscheck(profiler.profile()).empty());
}

// --- rendering round trip ----------------------------------------------------

HostProfile profiled_greedy(const Fixture& f) {
  HostProfiler profiler;
  EngineConfig config;
  config.hits = 3;
  (void)run_greedy(f.data.tumor, f.data.normal, config,
                   make_host_sweep_evaluator(sweep_options(3, 3, 67, &profiler)));
  return profiler.profile();
}

TEST(HostProf, ReportReplaysByteIdentically) {
  const Fixture f = make_fixture(3, 707);
  const HostProfile profile = profiled_greedy(f);
  const std::string emitted = obs::hostprof_report(profile).dump();

  const HostProfile parsed = obs::hostprof_from_json(obs::JsonValue::parse(emitted));
  EXPECT_EQ(obs::hostprof_report(parsed).dump(), emitted);
  EXPECT_EQ(obs::hostprof_deterministic(parsed).dump(),
            obs::hostprof_deterministic(profile).dump());
  EXPECT_EQ(obs::hostprof_folded(parsed), obs::hostprof_folded(profile));
  EXPECT_TRUE(obs::hostprof_crosscheck(parsed).empty());
}

TEST(HostProf, FromJsonRejectsWrongSchemaAndIllShapedDocs) {
  EXPECT_THROW(obs::hostprof_from_json(
                   obs::JsonValue::parse(R"({"schema":"multihit.metrics.v1"})")),
               obs::HostprofError);
  EXPECT_THROW(obs::hostprof_from_json(
                   obs::JsonValue::parse(R"({"schema":"multihit.hostprof.v1"})")),
               obs::HostprofError);
}

// --- crosscheck --------------------------------------------------------------

TEST(HostProf, CrosscheckFlagsCorruptedTotalsAndHistograms) {
  const Fixture f = make_fixture(3, 708);
  HostProfile profile = profiled_greedy(f);
  ASSERT_TRUE(obs::hostprof_crosscheck(profile).empty());

  HostProfile corrupt_totals = profile;
  corrupt_totals.total_chunks += 1;
  EXPECT_FALSE(obs::hostprof_crosscheck(corrupt_totals).empty());

  HostProfile corrupt_claims = profile;
  corrupt_claims.total_claims += 1;
  EXPECT_FALSE(obs::hostprof_crosscheck(corrupt_claims).empty());

  HostProfile corrupt_histogram = profile;
  ASSERT_FALSE(corrupt_histogram.worker_stats.empty());
  corrupt_histogram.worker_stats[0].claim_histogram[0] += 1;
  EXPECT_FALSE(obs::hostprof_crosscheck(corrupt_histogram).empty());

  HostProfile corrupt_polls = profile;
  ASSERT_FALSE(corrupt_polls.sweeps.empty());
  corrupt_polls.sweeps[0].polls += 1;
  EXPECT_FALSE(obs::hostprof_crosscheck(corrupt_polls).empty());
}

// --- folded export -----------------------------------------------------------

TEST(HostProf, FoldedExportIsSortedIntegerMicrosecondStacks) {
  const Fixture f = make_fixture(3, 709);
  const HostProfile profile = profiled_greedy(f);
  const std::string folded = obs::hostprof_folded(profile);
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("hostsweep;worker 0;evaluate "), std::string::npos);

  std::istringstream lines(folded);
  std::string line, previous_stack;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string micros = line.substr(space + 1);
    EXPECT_GT(stack.size(), 0u);
    EXPECT_GT(micros.size(), 0u);
    for (const char c : micros) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_LT(previous_stack, stack) << "stacks must be sorted and distinct";
    previous_stack = stack;
  }
}

// --- claim bucketing ---------------------------------------------------------

TEST(HostProf, ClaimBucketsCoverTheLatencyRange) {
  EXPECT_EQ(obs::claim_bucket(0.0), 0u);
  EXPECT_EQ(obs::claim_bucket(1e-7), 0u);
  EXPECT_EQ(obs::claim_bucket(2e-7), 1u);
  EXPECT_EQ(obs::claim_bucket(5e-4), 4u);
  EXPECT_EQ(obs::claim_bucket(1e-1), 6u);
  EXPECT_EQ(obs::claim_bucket(2.0), obs::kClaimBuckets - 1);
}

// --- profiler misuse ---------------------------------------------------------

TEST(HostProf, ProfilerRejectsOutOfOrderSweepCalls) {
  HostProfiler profiler;
  EXPECT_THROW(profiler.end_sweep({}), std::logic_error);
  EXPECT_THROW(profiler.record_worker(0, {}), std::logic_error);

  obs::HostSweepSetup setup;
  setup.workers = 1;
  profiler.begin_sweep(setup);
  EXPECT_THROW(profiler.begin_sweep(setup), std::logic_error);
  EXPECT_THROW(profiler.record_worker(5, {}), std::logic_error);
  profiler.end_sweep({});
  EXPECT_EQ(profiler.profile().sweeps.size(), 1u);
}

}  // namespace
}  // namespace multihit
