#include "combinat/binomial.hpp"

#include <gtest/gtest.h>

namespace multihit {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 5), 0u);
}

TEST(Binomial, PascalIdentityHolds) {
  for (u64 n = 1; n <= 60; ++n) {
    for (u64 k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Binomial, PaperScaleValues) {
  // The paper's key magnitudes: C(20000,4) ~ 6.66e15, BRCA's
  // C(19411,4) ~ 5.9e15 (the "1.22e12 entries * 512 block" list, §III-E
  // divides this by block size), C(19411,3) ~ 1.218e12 (3-hit space).
  EXPECT_EQ(binomial(20000, 2), 199990000u);
  EXPECT_EQ(binomial(19411, 3), 19411ULL * 19410 * 19409 / 6);
  EXPECT_EQ(binomial(20000, 4), 6664666849995000ULL);
}

TEST(Binomial, CheckedOverflowDetection) {
  EXPECT_FALSE(binomial_checked(20000, 5).has_value());  // ~2.7e19 > 2^64-1
  EXPECT_TRUE(binomial_checked(20000, 4).has_value());
  EXPECT_TRUE(binomial_checked(67, 33).has_value());  // near the u64 edge
  EXPECT_FALSE(binomial_checked(68, 34).has_value());
}

TEST(Binomial, Binomial128HandlesLargerSpace) {
  const auto value = binomial128(20000, 5);
  ASSERT_TRUE(value.has_value());
  // C(20000,5) = C(20000,4) * 19996 / 5.
  const u128 expected = static_cast<u128>(6664666849995000ULL) * 19996u / 5u;
  EXPECT_TRUE(*value == expected);
}

TEST(Binomial, TriangularMatchesBinomial) {
  for (u64 n = 0; n <= 2000; n += 7) EXPECT_EQ(triangular(n), binomial(n, 2));
  EXPECT_EQ(triangular(20000), binomial(20000, 2));
}

TEST(Binomial, TetrahedralMatchesBinomial) {
  for (u64 n = 0; n <= 2000; n += 7) EXPECT_EQ(tetrahedral(n), binomial(n, 3));
  EXPECT_EQ(tetrahedral(20000), binomial(20000, 3));
}

TEST(Binomial, QuarticMatchesBinomial) {
  for (u64 n = 0; n <= 2000; n += 7) EXPECT_EQ(quartic(n), binomial(n, 4));
  EXPECT_EQ(quartic(20000), binomial(20000, 4));
  EXPECT_EQ(quartic(3), 0u);
  EXPECT_EQ(quartic(4), 1u);
}

TEST(Binomial, FiguratesAreConstexpr) {
  static_assert(triangular(4) == 6);
  static_assert(tetrahedral(5) == 10);
  static_assert(quartic(6) == 15);
  SUCCEED();
}

}  // namespace
}  // namespace multihit
