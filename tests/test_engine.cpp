#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/schemes.hpp"
#include "data/generator.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

Dataset planted_dataset(std::uint32_t hits, std::uint32_t combos, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = hits;
  spec.num_combinations = combos;
  spec.background_rate = 0.01;
  spec.seed = seed;
  return generate_dataset(spec);
}

TEST(Engine, RecoversPlantedTwoHitCombinations) {
  const Dataset data = planted_dataset(2, 3, 11);
  EngineConfig config;
  config.hits = 2;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(2));
  EXPECT_EQ(result.uncovered_tumor, 0u);
  // Every planted combination must appear among the selections.
  const auto selected = result.combinations();
  for (const auto& truth : data.planted) {
    EXPECT_NE(std::find(selected.begin(), selected.end(), truth), selected.end())
        << "planted combination not recovered";
  }
}

TEST(Engine, RecoversPlantedThreeHitCombinations) {
  const Dataset data = planted_dataset(3, 3, 29);
  EngineConfig config;
  config.hits = 3;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(3));
  EXPECT_EQ(result.uncovered_tumor, 0u);
  const auto selected = result.combinations();
  for (const auto& truth : data.planted) {
    EXPECT_NE(std::find(selected.begin(), selected.end(), truth), selected.end());
  }
}

TEST(Engine, CoverageIsMonotonic) {
  const Dataset data = planted_dataset(3, 4, 31);
  EngineConfig config;
  config.hits = 3;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(3));
  std::uint32_t previous = data.tumor_samples();
  for (const auto& it : result.iterations) {
    EXPECT_EQ(it.tumor_remaining_before, previous);
    EXPECT_LT(it.tumor_remaining_after, it.tumor_remaining_before);
    EXPECT_EQ(it.tumor_remaining_before - it.tumor_remaining_after, it.tp);
    EXPECT_GT(it.tp, 0u);
    previous = it.tumor_remaining_after;
  }
}

TEST(Engine, GreedyFValuesAreRecorded) {
  const Dataset data = planted_dataset(2, 2, 41);
  EngineConfig config;
  config.hits = 2;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(2));
  for (const auto& it : result.iterations) {
    EXPECT_GT(it.f, 0.0);
    EXPECT_LE(it.f, 1.0);
    EXPECT_EQ(it.genes.size(), 2u);
    EXPECT_TRUE(std::is_sorted(it.genes.begin(), it.genes.end()));
  }
}

TEST(Engine, SpliceAndZeroOutAreResultIdentical) {
  // BitSplicing is a performance optimization; it must not change which
  // combinations the greedy picks.
  const Dataset data = planted_dataset(3, 3, 53);
  EngineConfig splice;
  splice.hits = 3;
  splice.bit_splicing = true;
  EngineConfig zero = splice;
  zero.bit_splicing = false;
  const GreedyResult a = run_greedy(data.tumor, data.normal, splice, make_serial_evaluator(3));
  const GreedyResult b = run_greedy(data.tumor, data.normal, zero, make_serial_evaluator(3));
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].genes, b.iterations[i].genes);
    EXPECT_EQ(a.iterations[i].tp, b.iterations[i].tp);
  }
}

TEST(Engine, ParallelEvaluatorMatchesSerialAcrossIterations) {
  // Run the whole greedy loop with the 3x1 kernel as evaluator and compare
  // the full selection sequence to the serial engine.
  const Dataset data = planted_dataset(4, 3, 67);
  EngineConfig config;
  config.hits = 4;
  const Evaluator kernel_eval = [](const BitMatrix& tumor, const BitMatrix& normal,
                                   const FContext& ctx) {
    return evaluate_range_4hit(tumor, normal, ctx, Scheme4::k3x1, 0,
                               scheme4_threads(Scheme4::k3x1, tumor.genes()));
  };
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(4));
  const GreedyResult parallel = run_greedy(data.tumor, data.normal, config, kernel_eval);
  ASSERT_EQ(serial.iterations.size(), parallel.iterations.size());
  for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
    EXPECT_EQ(serial.iterations[i].genes, parallel.iterations[i].genes);
  }
}

TEST(Engine, MaxIterationsCapsSelections) {
  const Dataset data = planted_dataset(2, 4, 71);
  EngineConfig config;
  config.hits = 2;
  config.max_iterations = 2;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(2));
  EXPECT_EQ(result.iterations.size(), 2u);
  EXPECT_GT(result.uncovered_tumor, 0u);
}

TEST(Engine, StopsWhenNoCombinationCovers) {
  // Tumor samples with no mutations at all can never be covered; the engine
  // must stop rather than loop.
  BitMatrix tumor(5, 4);  // all-zero tumor matrix
  BitMatrix normal(5, 4);
  EngineConfig config;
  config.hits = 2;
  const GreedyResult result = run_greedy(tumor, normal, config, make_serial_evaluator(2));
  EXPECT_TRUE(result.iterations.empty());
  EXPECT_EQ(result.uncovered_tumor, 4u);
}

TEST(Engine, EmptyTumorMatrixIsNoop) {
  BitMatrix tumor(5, 0);
  BitMatrix normal(5, 3);
  EngineConfig config;
  config.hits = 2;
  const GreedyResult result = run_greedy(tumor, normal, config, make_serial_evaluator(2));
  EXPECT_TRUE(result.iterations.empty());
  EXPECT_EQ(result.uncovered_tumor, 0u);
}

TEST(Engine, RejectsMismatchedGeneCounts) {
  BitMatrix tumor(5, 4);
  BitMatrix normal(6, 4);
  EngineConfig config;
  EXPECT_THROW(run_greedy(tumor, normal, config, make_serial_evaluator(4)),
               std::invalid_argument);
}

// Exhaustive-optimal comparison: BFS over coverage bitmask states gives the
// true minimum cover size; the greedy's (weighted) cover must stay within
// the classic H(n) approximation envelope on small instances.
TEST(Engine, GreedyStaysNearOptimalCover) {
  Rng rng(271828);
  for (int trial = 0; trial < 10; ++trial) {
    constexpr std::uint32_t kGenes = 12;
    constexpr std::uint32_t kTumor = 10;
    BitMatrix tumor(kGenes, kTumor);
    // Normal matrix left empty: every combination then has identical TN, so
    // the F-greedy degenerates to the classic max-coverage greedy and the
    // H(n) bound applies. (With normal-side noise, a zero-coverage
    // combination can legitimately out-score a covering one through its TN
    // term — the engine stops there by design.)
    BitMatrix normal(kGenes, 8);
    for (std::uint32_t g = 0; g < kGenes; ++g) {
      for (std::uint32_t s = 0; s < kTumor; ++s) {
        if (rng.bernoulli(0.45)) tumor.set(g, s);
      }
    }

    // Coverage mask per 2-hit combination.
    std::vector<std::uint32_t> masks;
    for (std::uint32_t i = 0; i < kGenes; ++i) {
      for (std::uint32_t j = i + 1; j < kGenes; ++j) {
        std::uint32_t mask = 0;
        for (std::uint32_t s = 0; s < kTumor; ++s) {
          if (tumor.get(i, s) && tumor.get(j, s)) mask |= 1u << s;
        }
        if (mask) masks.push_back(mask);
      }
    }
    std::uint32_t coverable = 0;
    for (std::uint32_t m : masks) coverable |= m;

    // BFS over states for the optimal cover of the coverable set.
    std::vector<int> dist(1u << kTumor, -1);
    dist[0] = 0;
    std::vector<std::uint32_t> frontier{0};
    int optimal = -1;
    while (!frontier.empty() && optimal < 0) {
      std::vector<std::uint32_t> next;
      for (std::uint32_t state : frontier) {
        for (std::uint32_t m : masks) {
          const std::uint32_t successor = state | m;
          if (dist[successor] < 0) {
            dist[successor] = dist[state] + 1;
            if (successor == coverable) {
              optimal = dist[successor];
              break;
            }
            next.push_back(successor);
          }
        }
        if (optimal >= 0) break;
      }
      frontier = std::move(next);
    }
    if (coverable == 0) continue;
    ASSERT_GT(optimal, 0);

    EngineConfig config;
    config.hits = 2;
    const GreedyResult greedy = run_greedy(tumor, normal, config, make_serial_evaluator(2));
    // Everything coverable gets covered.
    EXPECT_EQ(greedy.uncovered_tumor,
              kTumor - static_cast<std::uint32_t>(std::popcount(coverable)));
    // Classic greedy set-cover bound (+1 slack for the F-weighting).
    const double bound = optimal * (1.0 + std::log(static_cast<double>(kTumor))) + 1.0;
    EXPECT_LE(static_cast<double>(greedy.iterations.size()), bound) << "trial " << trial;
  }
}

TEST(Engine, RejectsBadHitCount) {
  BitMatrix tumor(5, 4);
  BitMatrix normal(5, 4);
  EngineConfig config;
  config.hits = 0;
  EXPECT_THROW(run_greedy(tumor, normal, config, make_serial_evaluator(0)),
               std::invalid_argument);
  config.hits = 9;
  EXPECT_THROW(run_greedy(tumor, normal, config, make_serial_evaluator(9)),
               std::invalid_argument);
}

}  // namespace
}  // namespace multihit
