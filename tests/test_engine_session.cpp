// Engine session API equivalence suite (src/core/session.hpp).
//
// The contract: run_greedy() is now a thin wrapper over a one-shot Engine
// session, and ANY interleaving of step() calls — including checkpoint/resume
// round trips between them — commits exactly the same iteration sequence as
// the batch call. Pinned here for the serial, kernel, and host-sweep
// evaluators, against the simulated-cluster pipeline, and across both
// exclusion modes (BitSplicing and the zero-out ablation, whose resume paths
// reconstruct the uncovered count differently).

#include "core/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/distributed.hpp"
#include "core/checkpoint.hpp"
#include "core/hostsweep.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

Dataset make_data(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 32;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.04;
  spec.seed = seed;
  return generate_dataset(spec);
}

void expect_same_result(const GreedyResult& a, const GreedyResult& b, const char* what) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size()) << what;
  EXPECT_EQ(a.uncovered_tumor, b.uncovered_tumor) << what;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].genes, b.iterations[i].genes) << what << " iteration " << i;
    EXPECT_EQ(a.iterations[i].f, b.iterations[i].f) << what << " iteration " << i;
    EXPECT_EQ(a.iterations[i].tp, b.iterations[i].tp) << what << " iteration " << i;
    EXPECT_EQ(a.iterations[i].tn, b.iterations[i].tn) << what << " iteration " << i;
    EXPECT_EQ(a.iterations[i].tumor_remaining_after, b.iterations[i].tumor_remaining_after)
        << what << " iteration " << i;
  }
}

TEST(EngineSession, RunMatchesBatchForEveryEvaluator) {
  const Dataset data = make_data(901);
  EngineConfig config;
  config.hits = 4;

  HostSweepOptions sweep;
  sweep.hits = 4;
  sweep.threads = 2;
  sweep.chunk = 97;
  const std::vector<std::pair<const char*, Evaluator>> evaluators = {
      {"serial", make_serial_evaluator(4)},
      {"kernel", make_kernel_evaluator(4)},
      {"host-sweep", make_host_sweep_evaluator(sweep)},
  };
  for (const auto& [name, evaluator] : evaluators) {
    const GreedyResult batch = run_greedy(data.tumor, data.normal, config, evaluator);
    ASSERT_FALSE(batch.iterations.empty()) << name;

    Engine session(data.tumor, data.normal, config, evaluator);
    expect_same_result(session.run(), batch, name);
    EXPECT_TRUE(session.done()) << name;
    EXPECT_EQ(session.uncovered(), batch.uncovered_tumor) << name;
  }

  // The simulated-cluster pipeline is a separate execution substrate, not an
  // Evaluator — but its selections must still match the session's.
  const GreedyResult serial = run_greedy(data.tumor, data.normal, config,
                                         make_serial_evaluator(4));
  SummitConfig summit;
  summit.nodes = 2;
  const ClusterRunResult cluster = ClusterRunner(summit).run(data, DistributedOptions{});
  EXPECT_EQ(cluster.greedy.combinations(), serial.combinations());
}

TEST(EngineSession, StepInterleavingsCommitTheSameIterations) {
  const Dataset data = make_data(902);
  EngineConfig config;
  config.hits = 4;
  const Evaluator evaluator = make_kernel_evaluator(4);
  const GreedyResult batch = run_greedy(data.tumor, data.normal, config, evaluator);
  ASSERT_GE(batch.iterations.size(), 2u);

  // One iteration at a time.
  {
    Engine session(data.tumor, data.normal, config, evaluator);
    std::uint32_t total = 0;
    while (!session.done()) {
      const std::uint32_t committed = session.step(1);
      EXPECT_LE(committed, 1u);
      total += committed;
    }
    EXPECT_EQ(total, batch.iterations.size());
    expect_same_result(session.result(), batch, "step(1) loop");
    // A done session refuses further work without changing state.
    EXPECT_EQ(session.step(5), 0u);
    expect_same_result(session.result(), batch, "step after done");
  }

  // Mixed batch sizes, including the uncapped tail.
  {
    Engine session(data.tumor, data.normal, config, evaluator);
    (void)session.step(2);
    (void)session.step(1);
    (void)session.step(0);  // 0 = no per-call cap: run to the stop condition
    EXPECT_TRUE(session.done());
    expect_same_result(session.result(), batch, "mixed step sizes");
  }
}

TEST(EngineSession, CheckpointResumeRoundTripIsExact) {
  const Dataset data = make_data(903);
  for (const bool splicing : {true, false}) {
    EngineConfig config;
    config.hits = 4;
    config.bit_splicing = splicing;
    const Evaluator evaluator = make_kernel_evaluator(4);
    const GreedyResult batch = run_greedy(data.tumor, data.normal, config, evaluator);
    ASSERT_GE(batch.iterations.size(), 2u) << "splicing=" << splicing;

    Engine first(data.tumor, data.normal, config, evaluator);
    ASSERT_EQ(first.step(1), 1u);
    const CheckpointState snapshot = first.checkpoint();
    EXPECT_EQ(snapshot.progress.iterations.size(), 1u);
    EXPECT_EQ(snapshot.bit_splicing, splicing);

    // Resume in a brand-new session (the snapshot carries hits/splicing and
    // the tumor state; config supplies the rest) and run both to completion.
    Engine resumed(snapshot, data.normal, config, evaluator);
    EXPECT_EQ(resumed.iterations_committed(), 1u);
    EXPECT_EQ(resumed.uncovered(), batch.iterations[0].tumor_remaining_after)
        << "splicing=" << splicing;
    resumed.run();
    first.run();
    expect_same_result(resumed.result(), batch,
                       splicing ? "resumed (splicing)" : "resumed (zero-out)");
    expect_same_result(first.result(), batch, "interrupted original");
  }
}

TEST(EngineSession, CheckpointInteroperatesWithLegacyResume) {
  // A session checkpoint must be consumable by the pre-session resume path
  // (and vice versa: run_greedy_checkpointed state opens as a session).
  const Dataset data = make_data(904);
  EngineConfig config;
  config.hits = 4;
  const Evaluator evaluator = make_kernel_evaluator(4);
  const GreedyResult batch = run_greedy(data.tumor, data.normal, config, evaluator);

  Engine session(data.tumor, data.normal, config, evaluator);
  (void)session.step(1);
  CheckpointState state = session.checkpoint();
  resume_greedy(state, data.normal, evaluator);
  expect_same_result(state.progress, batch, "session checkpoint -> legacy resume");

  CheckpointState legacy =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 1);
  Engine reopened(std::move(legacy), data.normal, config, evaluator);
  reopened.run();
  expect_same_result(reopened.result(), batch, "legacy checkpoint -> session resume");
}

TEST(EngineSession, MaxIterationsPausesWithoutMarkingDone) {
  const Dataset data = make_data(905);
  EngineConfig config;
  config.hits = 4;
  config.max_iterations = 1;
  Engine session(data.tumor, data.normal, config, make_kernel_evaluator(4));
  session.run();
  EXPECT_EQ(session.iterations_committed(), 1u);
  // The cap pauses the session; it does NOT mean the cover finished.
  EXPECT_FALSE(session.done());
  EXPECT_EQ(session.step(1), 0u);
}

TEST(EngineSession, MismatchedEvaluatorRankFailsLoudly) {
  // An evaluator enumerating a different hit count than config.hits returns
  // ranks from the wrong combination space; unranking one fabricates gene
  // indices past the matrix (cancer_panel once fed BRCA's 2-hit config a
  // 4-hit kernel and read wild). The session must throw, not read OOB.
  const Dataset data = make_data(907);
  EngineConfig config;
  config.hits = 2;
  const Evaluator wrong_space = [](const BitMatrix&, const BitMatrix&, const FContext&) {
    EvalResult r;
    r.valid = true;
    r.tp = 1;
    r.f = 1.0;
    r.combo_rank = 35959;  // C(32,4)-1: a 4-hit rank, far past C(32,2)-1 = 495
    return r;
  };
  Engine session(data.tumor, data.normal, config, wrong_space);
  EXPECT_THROW(session.step(1), std::logic_error);
}

TEST(EngineSession, ValidatesLikeRunGreedy) {
  const Dataset data = make_data(906);
  EngineConfig config;
  config.hits = 4;
  const BitMatrix wrong_normal(data.genes() + 1, 10);
  EXPECT_THROW(Engine(data.tumor, wrong_normal, config, make_serial_evaluator(4)),
               std::invalid_argument);
  EngineConfig zero_hits;
  zero_hits.hits = 0;
  EXPECT_THROW(Engine(data.tumor, data.normal, zero_hits, make_serial_evaluator(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace multihit
