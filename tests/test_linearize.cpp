#include "combinat/linearize.hpp"

#include <gtest/gtest.h>

namespace multihit {
namespace {

TEST(Linearize, PairRankFirstValues) {
  // Colex order: (0,1) (0,2) (1,2) (0,3) (1,3) (2,3) ...
  EXPECT_EQ(rank_pair({0, 1}), 0u);
  EXPECT_EQ(rank_pair({0, 2}), 1u);
  EXPECT_EQ(rank_pair({1, 2}), 2u);
  EXPECT_EQ(rank_pair({0, 3}), 3u);
  EXPECT_EQ(rank_pair({2, 3}), 5u);
}

TEST(Linearize, PairRoundTripExhaustive) {
  // Full bijection over G = 200: every λ < C(200,2) maps to a unique valid
  // pair and back.
  const u64 total = triangular(200);
  for (u64 lambda = 0; lambda < total; ++lambda) {
    const Pair p = unrank_pair(lambda);
    ASSERT_LT(p.i, p.j);
    ASSERT_LT(p.j, 200u);
    ASSERT_EQ(rank_pair(p), lambda) << "lambda=" << lambda;
  }
}

TEST(Linearize, PairRoundTripAtScale) {
  // Spot checks at the paper's scale (C(20000,2) ≈ 2e8) and at u64-stressing
  // magnitudes where naive sqrt would go wrong.
  for (const u64 lambda :
       {u64{0}, u64{1}, triangular(20000) - 1, u64{1} << 40, (u64{1} << 52) + 12345}) {
    const Pair p = unrank_pair(lambda);
    EXPECT_EQ(rank_pair(p), lambda);
  }
}

TEST(Linearize, TripleRankFirstValues) {
  // Colex: (0,1,2) (0,1,3) (0,2,3) (1,2,3) (0,1,4) ...
  EXPECT_EQ(rank_triple({0, 1, 2}), 0u);
  EXPECT_EQ(rank_triple({0, 1, 3}), 1u);
  EXPECT_EQ(rank_triple({0, 2, 3}), 2u);
  EXPECT_EQ(rank_triple({1, 2, 3}), 3u);
  EXPECT_EQ(rank_triple({0, 1, 4}), 4u);
}

TEST(Linearize, TripleRoundTripExhaustive) {
  const u64 total = tetrahedral(60);
  for (u64 lambda = 0; lambda < total; ++lambda) {
    const Triple t = unrank_triple(lambda);
    ASSERT_LT(t.i, t.j);
    ASSERT_LT(t.j, t.k);
    ASSERT_LT(t.k, 60u);
    ASSERT_EQ(rank_triple(t), lambda) << "lambda=" << lambda;
  }
}

TEST(Linearize, TripleRoundTripAtScale) {
  // C(19411,3) is the BRCA 3x1 thread space; also push beyond to 2^62.
  // ~u64{0} exercises the fix-up probes whose C(k+1,3) exceeds u64.
  for (const u64 lambda : {u64{0}, u64{1}, tetrahedral(19411) - 1, tetrahedral(20000) - 1,
                           u64{1} << 45, (u64{1} << 62) + 987654321, ~u64{0}}) {
    const Triple t = unrank_triple(lambda);
    EXPECT_EQ(rank_triple(t), lambda) << "lambda=" << lambda;
  }
}

TEST(Linearize, LogExpVariantMatchesExactExhaustive) {
  const u64 total = tetrahedral(80);
  for (u64 lambda = 0; lambda < total; ++lambda) {
    const Triple exact = unrank_triple(lambda);
    const Triple paper = unrank_triple_logexp(lambda);
    ASSERT_EQ(exact, paper) << "lambda=" << lambda;
  }
}

TEST(Linearize, LogExpVariantMatchesExactAtScale) {
  // The log/exp trick exists precisely because 729λ² overflows u64 at the
  // paper's scale (§III-F); verify it stays exact there.
  for (u64 lambda = 1; lambda < tetrahedral(19411); lambda = lambda * 3 + 17) {
    const Triple exact = unrank_triple(lambda);
    const Triple paper = unrank_triple_logexp(lambda);
    ASSERT_EQ(exact, paper) << "lambda=" << lambda;
  }
  EXPECT_EQ(unrank_triple_logexp(0), (Triple{0, 1, 2}));
}

TEST(Linearize, TetrahedralLevelBoundaries) {
  // Level k covers λ ∈ [C(k,3), C(k+1,3)).
  for (std::uint32_t k = 2; k < 200; ++k) {
    EXPECT_EQ(tetrahedral_level(tetrahedral(k)), k);
    EXPECT_EQ(tetrahedral_level(tetrahedral(k + 1) - 1), k);
  }
}

TEST(Linearize, TetrahedralLevelAtScale) {
  EXPECT_EQ(tetrahedral_level(tetrahedral(19411)), 19411u);
  EXPECT_EQ(tetrahedral_level(tetrahedral(19411) - 1), 19410u);
}

}  // namespace
}  // namespace multihit
