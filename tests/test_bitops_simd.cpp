// Differential harness pinning every bitops backend bit-identical to the
// scalar reference.
//
// The sweep is exhaustive over the dimensions where SIMD kernels actually
// break: row length (every word count 0..257, crossing the 4-word vector
// boundary, the 64-word Harley-Seal block boundary, and both tails at once),
// span alignment (offsets 0/1/3 words into a backing buffer — rows are only
// 8-byte aligned and BitSplicing shifts spans), and bit pattern (all-zeros,
// all-ones, alternating, single-bit, seeded random — carry-save adders and
// nibble LUTs fail differently on dense vs sparse inputs).
//
// Dispatch behaviour (parse/set/active/backend_supported) and the debug-mode
// length contract (mismatched spans must abort, not truncate) are covered at
// the bottom.

#include "bitmat/bitops.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace multihit {
namespace {

enum class Pattern { kZeros, kOnes, kAlternating, kSingleBit, kRandom };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kZeros: return "zeros";
    case Pattern::kOnes: return "ones";
    case Pattern::kAlternating: return "alternating";
    case Pattern::kSingleBit: return "single-bit";
    case Pattern::kRandom: return "random";
  }
  return "?";
}

/// Fills `row`; `salt` decorrelates the operands of one AND so intersections
/// are non-trivial (a rotated single bit vs the same single bit, alternating
/// phases, distinct random streams).
void fill(std::span<std::uint64_t> row, Pattern p, std::uint64_t salt) {
  Rng rng(0x5eed + salt * 7919 + row.size());
  for (std::size_t w = 0; w < row.size(); ++w) {
    switch (p) {
      case Pattern::kZeros:
        row[w] = 0;
        break;
      case Pattern::kOnes:
        row[w] = ~0ULL;
        break;
      case Pattern::kAlternating:
        row[w] = (salt % 2 == 0) ? 0xAAAAAAAAAAAAAAAAULL : 0x5555555555555555ULL;
        break;
      case Pattern::kSingleBit:
        row[w] = w == row.size() / 2 ? (1ULL << ((salt * 13 + w) % 64)) : 0;
        break;
      case Pattern::kRandom:
        row[w] = rng();
        break;
    }
  }
}

struct OffsetRows {
  // Backing buffers are over-allocated so spans can start mid-buffer: the
  // kernels must honour arbitrary word offsets, not just vector-aligned ones.
  std::vector<std::uint64_t> buf_a, buf_b, buf_c, buf_d, buf_dst_s, buf_dst_v;
  std::span<const std::uint64_t> a, b, c, d;
  std::span<std::uint64_t> dst_s, dst_v;

  OffsetRows(std::size_t words, std::size_t offset, Pattern p) {
    const std::size_t alloc = words + offset;
    buf_a.resize(alloc);
    buf_b.resize(alloc);
    buf_c.resize(alloc);
    buf_d.resize(alloc);
    buf_dst_s.resize(alloc);
    buf_dst_v.resize(alloc);
    a = std::span<const std::uint64_t>(buf_a).subspan(offset, words);
    b = std::span<const std::uint64_t>(buf_b).subspan(offset, words);
    c = std::span<const std::uint64_t>(buf_c).subspan(offset, words);
    d = std::span<const std::uint64_t>(buf_d).subspan(offset, words);
    dst_s = std::span<std::uint64_t>(buf_dst_s).subspan(offset, words);
    dst_v = std::span<std::uint64_t>(buf_dst_v).subspan(offset, words);
    fill({buf_a.data() + offset, words}, p, 0);
    fill({buf_b.data() + offset, words}, p, 1);
    fill({buf_c.data() + offset, words}, p, 2);
    fill({buf_d.data() + offset, words}, p, 3);
  }
};

/// One backend-vs-scalar comparison of all eight ops on one operand set.
void expect_identical(const OffsetRows& r, const std::string& label) {
  namespace sc = bitops_scalar;
  namespace av = bitops_avx2;
  EXPECT_EQ(sc::popcount_row(r.a), av::popcount_row(r.a)) << label;
  EXPECT_EQ(sc::and_popcount2(r.a, r.b), av::and_popcount2(r.a, r.b)) << label;
  EXPECT_EQ(sc::and_popcount3(r.a, r.b, r.c), av::and_popcount3(r.a, r.b, r.c)) << label;
  EXPECT_EQ(sc::and_popcount4(r.a, r.b, r.c, r.d), av::and_popcount4(r.a, r.b, r.c, r.d))
      << label;
  // ANDNOT is order-sensitive (a & ~b != b & ~a on asymmetric operands), so
  // check both orders against scalar.
  EXPECT_EQ(sc::andnot_popcount2(r.a, r.b), av::andnot_popcount2(r.a, r.b)) << label;
  EXPECT_EQ(sc::andnot_popcount2(r.b, r.a), av::andnot_popcount2(r.b, r.a)) << label;

  std::vector<std::uint64_t> out_s(r.a.size()), out_v(r.a.size());
  sc::and_rows(r.dst_s, r.a, r.b);
  av::and_rows(r.dst_v, r.a, r.b);
  EXPECT_TRUE(std::equal(r.dst_s.begin(), r.dst_s.end(), r.dst_v.begin())) << label;

  // In-place AND starts from the just-computed (identical) staged rows.
  sc::and_rows_inplace(r.dst_s, r.c);
  av::and_rows_inplace(r.dst_v, r.c);
  EXPECT_TRUE(std::equal(r.dst_s.begin(), r.dst_s.end(), r.dst_v.begin())) << label;

  sc::andnot_rows(r.dst_s, r.a, r.b);
  av::andnot_rows(r.dst_v, r.a, r.b);
  EXPECT_TRUE(std::equal(r.dst_s.begin(), r.dst_s.end(), r.dst_v.begin())) << label;
}

class BitopsSimd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!backend_supported(BitopsBackend::kAvx2)) {
      GTEST_SKIP() << "AVX2 backend not supported on this host";
    }
  }
};

TEST_F(BitopsSimd, EveryLengthEveryPatternEveryOffsetMatchesScalar) {
  const Pattern kPatterns[] = {Pattern::kZeros, Pattern::kOnes, Pattern::kAlternating,
                               Pattern::kSingleBit, Pattern::kRandom};
  // 0..257 words crosses the empty row, sub-vector rows, the 4-word vector
  // step, the 64-word Harley-Seal block, multi-block rows, and every tail
  // combination (block+vector, block+word, vector+word, all three).
  for (std::size_t words = 0; words <= 257; ++words) {
    for (const Pattern p : kPatterns) {
      for (const std::size_t offset : {0, 1, 3}) {
        const OffsetRows rows(words, offset, p);
        expect_identical(rows, "words=" + std::to_string(words) + " pattern=" +
                                   pattern_name(p) + " offset=" + std::to_string(offset));
        if (HasFailure()) return;  // one exact counterexample beats 4000 repeats
      }
    }
  }
}

TEST_F(BitopsSimd, RandomRegressionSweepWithDenseAndSparseMixes) {
  // Adversarial mixes the fixed patterns miss: one operand dense, one sparse,
  // boundary words saturated. Seeded, so failures replay exactly.
  Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t words = rng.uniform(130);
    OffsetRows rows(words, rng.uniform(4), Pattern::kRandom);
    if (words > 0) {
      rows.buf_a[0] = ~0ULL;
      rows.buf_b[words - 1] = ~0ULL;
      if (trial % 3 == 0) std::fill(rows.buf_c.begin(), rows.buf_c.end(), ~0ULL);
    }
    expect_identical(rows, "trial=" + std::to_string(trial));
    if (HasFailure()) return;
  }
}

TEST_F(BitopsSimd, DispatchedEntryPointsFollowSetBackend) {
  const BitopsBackend previous = active_backend();
  std::vector<std::uint64_t> a(17), b(17);
  fill(a, Pattern::kRandom, 11);
  fill(b, Pattern::kRandom, 12);

  ASSERT_TRUE(set_backend(BitopsBackend::kScalar));
  EXPECT_EQ(active_backend(), BitopsBackend::kScalar);
  const std::uint64_t via_scalar = and_popcount(a, b);

  ASSERT_TRUE(set_backend(BitopsBackend::kAvx2));
  EXPECT_EQ(active_backend(), BitopsBackend::kAvx2);
  EXPECT_EQ(and_popcount(a, b), via_scalar);

  set_backend(previous);
}

TEST(BitopsDispatch, AndnotComplementIdentities) {
  // Backend-independent semantics: popcount(a & ~b) == popcount(a) -
  // popcount(a & b), and (a & ~b) | (a & b) reassembles a. Catches an
  // operand-order swap (b & ~a) that the differential sweep alone would
  // miss if both backends swapped the same way.
  std::vector<std::uint64_t> a(19), b(19);
  fill(a, Pattern::kRandom, 21);
  fill(b, Pattern::kRandom, 22);
  EXPECT_EQ(andnot_popcount(a, b), popcount_row(a) - and_popcount(a, b));

  std::vector<std::uint64_t> masked(19), common(19);
  andnot_rows(masked, a, b);
  and_rows(common, a, b);
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(masked[w] | common[w], a[w]) << "word " << w;
    EXPECT_EQ(masked[w] & b[w], 0u) << "word " << w;
  }
}

TEST(BitopsDispatch, CallCountingCountsDispatchedCallsOnly) {
  // Counting swaps the dispatch table; the backend selection must survive
  // the swap, counters only advance while enabled, and every public entry
  // point bumps exactly its own counter.
  const BitopsBackend backend_before = active_backend();
  ASSERT_FALSE(call_counting());

  std::vector<std::uint64_t> a(9), b(9), c(9), d(9), dst(9);
  fill(a, Pattern::kRandom, 31);
  fill(b, Pattern::kRandom, 32);
  fill(c, Pattern::kRandom, 33);
  fill(d, Pattern::kRandom, 34);

  const BitopsCallCounts before_off = thread_bitops_calls();
  (void)and_popcount(a, b);
  EXPECT_EQ((thread_bitops_calls() - before_off).total(), 0u)
      << "counters advanced while counting was off";

  EXPECT_FALSE(set_call_counting(true));
  EXPECT_TRUE(call_counting());
  EXPECT_EQ(active_backend(), backend_before);

  const BitopsCallCounts t0 = thread_bitops_calls();
  (void)popcount_row(a);
  (void)and_popcount(a, b);
  (void)and_popcount(a, b, c);
  (void)and_popcount(a, b, c, d);
  (void)andnot_popcount(a, b);
  and_rows(dst, a, b);
  and_rows_inplace(dst, c);
  andnot_rows(dst, a, b);
  const BitopsCallCounts delta = thread_bitops_calls() - t0;
  EXPECT_EQ(delta.popcount_row, 1u);
  EXPECT_EQ(delta.and2, 1u);
  EXPECT_EQ(delta.and3, 1u);
  EXPECT_EQ(delta.and4, 1u);
  EXPECT_EQ(delta.andnot2, 1u);
  EXPECT_EQ(delta.and_rows, 1u);
  EXPECT_EQ(delta.and_rows_inplace, 1u);
  EXPECT_EQ(delta.andnot_rows, 1u);
  EXPECT_EQ(delta.total(), 8u);

  // Counted results match uncounted ones (the wrappers only forward).
  const std::uint64_t counted = and_popcount(a, b);
  EXPECT_TRUE(set_call_counting(false));
  EXPECT_FALSE(call_counting());
  EXPECT_EQ(active_backend(), backend_before);
  EXPECT_EQ(and_popcount(a, b), counted);

  const BitopsCallCounts after_off = thread_bitops_calls();
  (void)and_popcount(a, b);
  EXPECT_EQ((thread_bitops_calls() - after_off).total(), 0u);
}

TEST(BitopsDispatch, ParseBackendRoundTrips) {
  bool ok = false;
  EXPECT_EQ(parse_backend("scalar", &ok), BitopsBackend::kScalar);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_backend("avx2", &ok), BitopsBackend::kAvx2);
  EXPECT_TRUE(ok);
  parse_backend("riscv-vector", &ok);
  EXPECT_FALSE(ok);
  parse_backend("", &ok);
  EXPECT_FALSE(ok);

  EXPECT_STREQ(backend_name(BitopsBackend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(BitopsBackend::kAvx2), "avx2");
}

TEST(BitopsDispatch, ScalarIsAlwaysSupportedAndSelectable) {
  EXPECT_TRUE(backend_supported(BitopsBackend::kScalar));
  const BitopsBackend previous = active_backend();
  EXPECT_TRUE(set_backend(BitopsBackend::kScalar));
  EXPECT_EQ(active_backend(), BitopsBackend::kScalar);
  set_backend(previous);
}

// The length contract is compiled in for assert builds and for MULTIHIT_CHECKS
// builds (the ASan preset); elsewhere the checks are zero-cost and this test
// documents that by skipping.
#if !defined(NDEBUG) || defined(MULTIHIT_CHECKS)
using BitopsContractDeathTest = ::testing::Test;

TEST(BitopsContractDeathTest, MismatchedSpanLengthsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<std::uint64_t> a(4), b(5), c(4), d(6);
  std::vector<std::uint64_t> dst(5);
  EXPECT_DEATH((void)and_popcount(a, b), "span length mismatch");
  EXPECT_DEATH((void)and_popcount(a, b, c), "span length mismatch");
  EXPECT_DEATH((void)and_popcount(a, c, b, d), "span length mismatch");
  EXPECT_DEATH((void)andnot_popcount(a, b), "span length mismatch");
  EXPECT_DEATH(and_rows(dst, a, c), "span length mismatch");
  EXPECT_DEATH(and_rows_inplace(dst, a), "span length mismatch");
  EXPECT_DEATH(andnot_rows(dst, a, c), "span length mismatch");
}
#else
TEST(BitopsContractDeathTest, MismatchedSpanLengthsAbort) {
  GTEST_SKIP() << "length contract compiled out (NDEBUG without MULTIHIT_CHECKS)";
}
#endif

}  // namespace
}  // namespace multihit
