#include "data/mutation_level.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/engine.hpp"

namespace multihit {
namespace {

SyntheticSpec study_spec() {
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 90;
  spec.normal_samples = 60;
  spec.hits = 3;
  spec.num_combinations = 3;
  spec.background_rate = 0.02;
  spec.seed = 333;
  return spec;
}

TEST(MutationLevel, SitesAreSortedAndUnique) {
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData ml = build_mutation_level(study);
  ASSERT_FALSE(ml.sites.empty());
  for (std::size_t s = 1; s < ml.sites.size(); ++s) {
    const auto& a = ml.sites[s - 1];
    const auto& b = ml.sites[s];
    EXPECT_TRUE(a.gene < b.gene || (a.gene == b.gene && a.position < b.position));
  }
  EXPECT_EQ(ml.data.genes(), ml.sites.size());
  EXPECT_EQ(ml.data.tumor_samples(), study.tumor_samples);
  EXPECT_EQ(ml.data.normal_samples(), study.normal_samples);
}

TEST(MutationLevel, MatrixMatchesRecords) {
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData ml = build_mutation_level(study);
  // Every tumor record above threshold must be set; spot-check via records.
  for (const MafRecord& rec : study.records) {
    const auto row = find_site(ml, {rec.gene, rec.position});
    if (!row) continue;
    if (rec.tumor) {
      EXPECT_TRUE(ml.data.tumor.get(*row, rec.sample));
    } else {
      EXPECT_TRUE(ml.data.normal.get(*row, rec.sample));
    }
  }
}

TEST(MutationLevel, SiteSpaceIsLargerThanGeneSpace) {
  // The paper's §V point: mutation-level rows far outnumber genes.
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData ml = build_mutation_level(study);
  EXPECT_GT(ml.sites.size(), 3u * study.genes.size());
}

TEST(MutationLevel, RecurrenceThresholdPrunes) {
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData all = build_mutation_level(study, 1);
  const MutationLevelData recurrent = build_mutation_level(study, 3);
  EXPECT_LT(recurrent.sites.size(), all.sites.size() / 2);
  // Hotspot sites recur across most carrying samples and must survive.
  for (const auto& combo : study.planted) {
    for (const std::uint32_t gene : combo) {
      const auto site = MutationSite{gene, study.genes[gene].hotspot_position};
      EXPECT_TRUE(find_site(recurrent, site).has_value())
          << "hotspot of gene " << gene << " pruned";
    }
  }
}

TEST(MutationLevel, PlantedCombinationsMapToHotspotSites) {
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData ml = build_mutation_level(study);
  ASSERT_EQ(ml.data.planted.size(), study.planted.size());
  for (std::size_t c = 0; c < ml.data.planted.size(); ++c) {
    ASSERT_EQ(ml.data.planted[c].size(), 3u);
    std::set<std::uint32_t> genes;
    for (const std::uint32_t row : ml.data.planted[c]) {
      const MutationSite& site = ml.sites[row];
      genes.insert(site.gene);
      EXPECT_EQ(site.position, study.genes[site.gene].hotspot_position);
    }
    // The site combination covers exactly the planted gene set.
    const std::set<std::uint32_t> expected(study.planted[c].begin(), study.planted[c].end());
    EXPECT_EQ(genes, expected);
  }
}

TEST(MutationLevel, GreedyRecoversHotspotSites) {
  // The §V promise: at mutation level, the greedy picks driver hotspot
  // sites, not passenger positions.
  auto spec = study_spec();
  spec.background_rate = 0.01;
  const MafStudy study = generate_maf_study(spec);
  const MutationLevelData ml = build_mutation_level(study, 2);

  EngineConfig config;
  config.hits = 3;
  const GreedyResult result = run_greedy(ml.data.tumor, ml.data.normal, config,
                                         make_kernel_evaluator(3));
  ASSERT_FALSE(result.iterations.empty());
  // Count selected rows that are driver hotspots.
  std::size_t hotspot_rows = 0, total_rows = 0;
  for (const auto& it : result.iterations) {
    for (const std::uint32_t row : it.genes) {
      const MutationSite& site = ml.sites[row];
      const GeneInfo& info = study.genes[site.gene];
      ++total_rows;
      if (info.driver && site.position == info.hotspot_position) ++hotspot_rows;
    }
  }
  EXPECT_GT(static_cast<double>(hotspot_rows) / static_cast<double>(total_rows), 0.6);
}

TEST(MutationLevel, FindSiteMissReturnsNothing) {
  const MafStudy study = generate_maf_study(study_spec());
  const MutationLevelData ml = build_mutation_level(study);
  EXPECT_FALSE(find_site(ml, {9999, 1}).has_value());
}

}  // namespace
}  // namespace multihit
