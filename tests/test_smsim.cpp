#include "gpusim/smsim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/perfmodel.hpp"

namespace multihit {
namespace {

SmConfig fast_config() {
  SmConfig config;
  config.memory_latency = 50;  // keep cycle counts small in tests
  config.max_outstanding_requests = 16;
  return config;
}

TEST(SmSim, EmptyInput) {
  const SmResult r = simulate_sm(fast_config(), {});
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.issued_instructions, 0u);
}

TEST(SmSim, PureComputeRunsAtFullIssue) {
  const std::vector<WarpWork> warps{{1000, 0}};
  const SmResult r = simulate_sm(fast_config(), warps);
  EXPECT_EQ(r.issued_instructions, 1000u);
  EXPECT_NEAR(r.issue_efficiency, 1.0, 0.01);
  EXPECT_EQ(r.stall_memory_dependency, 0u);
  EXPECT_EQ(r.stall_memory_throttle, 0u);
}

TEST(SmSim, SingleWarpMemoryIsLatencyBound) {
  SmConfig config = fast_config();
  const std::vector<WarpWork> warps{{0, 20}};
  const SmResult r = simulate_sm(config, warps);
  // Each request costs ~latency cycles of exposure with nothing to overlap.
  EXPECT_GE(r.cycles, 20u * config.memory_latency);
  EXPECT_GT(r.stall_memory_dependency, r.cycles / 2);
  EXPECT_NEAR(r.request_rate, 1.0 / config.memory_latency, 0.01);
}

TEST(SmSim, ManyWarpsHideLatency) {
  // The occupancy law from first principles: request throughput rises with
  // resident warps until the outstanding-request cap saturates it.
  SmConfig config = fast_config();
  auto rate = [&](std::size_t warp_count) {
    std::vector<WarpWork> warps(warp_count, WarpWork{0, 50});
    return simulate_sm(config, warps).request_rate;
  };
  const double r1 = rate(1);
  const double r4 = rate(4);
  const double r16 = rate(16);
  EXPECT_GT(r4, 3.0 * r1);
  EXPECT_GT(r16, 3.0 * r4);
  // Cap: max_outstanding / latency requests per cycle.
  const double ceiling =
      static_cast<double>(config.max_outstanding_requests) / config.memory_latency;
  EXPECT_LE(rate(64), ceiling * 1.02);
  EXPECT_GT(rate(64), ceiling * 0.8);
}

TEST(SmSim, ThrottleAppearsWhenQueueSaturates) {
  SmConfig config = fast_config();
  config.max_outstanding_requests = 4;  // tiny queue
  std::vector<WarpWork> warps(32, WarpWork{0, 30});
  const SmResult r = simulate_sm(config, warps);
  EXPECT_GT(r.stall_memory_throttle, 0u);
}

TEST(SmSim, ComputeOverlapsMemory) {
  // Mixed warps: compute from other warps fills memory stall cycles, so the
  // mix finishes far faster than the sum of isolated runs.
  SmConfig config = fast_config();
  std::vector<WarpWork> mixed(16, WarpWork{500, 10});
  const SmResult r = simulate_sm(config, mixed);
  const double total_instr = 16.0 * 510.0;
  EXPECT_GT(r.issue_efficiency, 0.5);
  EXPECT_LT(static_cast<double>(r.cycles), 2.5 * total_instr);
}

TEST(SmSim, AccountingIsConsistent) {
  SmConfig config = fast_config();
  std::vector<WarpWork> warps(8, WarpWork{100, 20});
  const SmResult r = simulate_sm(config, warps);
  const std::uint64_t accounted = r.issued_instructions + r.stall_memory_dependency +
                                  r.stall_memory_throttle + r.stall_execution_dependency;
  // Every cycle either issues or is attributed to exactly one stall class.
  EXPECT_EQ(accounted, r.cycles);
  EXPECT_EQ(r.issued_instructions, 8u * 120u);
}

TEST(SmSim, BlockSchedulingProcessesAllWarps) {
  // More warps than residency: later warps run as earlier ones retire.
  SmConfig config = fast_config();
  config.max_resident_warps = 4;
  std::vector<WarpWork> warps(20, WarpWork{50, 2});
  const SmResult r = simulate_sm(config, warps);
  EXPECT_EQ(r.issued_instructions, 20u * 52u);
}

TEST(SmSim, DeterministicAcrossRuns) {
  SmConfig config = fast_config();
  std::vector<WarpWork> warps(12, WarpWork{37, 11});
  const SmResult a = simulate_sm(config, warps);
  const SmResult b = simulate_sm(config, warps);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.issued_instructions, b.issued_instructions);
  EXPECT_EQ(a.stall_memory_dependency, b.stall_memory_dependency);
}

TEST(SmSim, CrossValidatesAnalyticLatencyHidingShape) {
  // The analytic model uses mem_eff = floor + (1-floor)·occ^kappa. The
  // simulated request rate, normalized to its saturated value, must be
  // monotone increasing and concave in warp count — the same shape.
  SmConfig config = fast_config();
  std::vector<double> rates;
  for (const std::size_t w : {2u, 8u, 32u}) {
    std::vector<WarpWork> warps(w, WarpWork{0, 40});
    rates.push_back(simulate_sm(config, warps).request_rate);
  }
  EXPECT_LT(rates[0], rates[1]);
  EXPECT_LT(rates[1], rates[2]);
  // Concavity: quadrupling warps less than quadruples the rate near the cap.
  EXPECT_LT(rates[2] / rates[1], 4.0);
}

TEST(SmSim, StallAttributionMatchesAnalyticTaxonomyOrdering) {
  // Satellite crosscheck for the profiler's stall taxonomy: on the
  // tab_sm_latency_hiding sweep (V100-shaped SM, the 3x1 kernels' ~24-ops-
  // per-load mix), the cycle-level scheduler and the analytic
  // stall_breakdown must agree on the SHAPE of Fig. 6c — memory-dependency
  // stalls dominate at low occupancy and fall monotonically as resident
  // warps rise.
  SmConfig config;  // paper-scale latency, not fast_config()
  config.memory_latency = 400;
  config.max_outstanding_requests = 64;
  const DeviceSpec spec = DeviceSpec::v100();

  const std::vector<std::size_t> warp_counts{2, 8, 32, 64};
  std::vector<double> simulated, analytic;
  for (const std::size_t w : warp_counts) {
    std::vector<WarpWork> warps(w, WarpWork{4800, 200});
    const SmResult r = simulate_sm(config, warps);
    simulated.push_back(static_cast<double>(r.stall_memory_dependency) /
                        static_cast<double>(r.cycles));

    // The analytic timing at matching occupancy (w warps on each of the 80
    // SMs) and the same per-thread op/traffic mix.
    KernelStats stats;
    const std::uint64_t threads =
        static_cast<std::uint64_t>(w) * spec.warp_size * spec.sm_count;
    stats.word_ops = threads * 4800;
    stats.global_words = threads * 200;
    stats.combinations = threads;
    const GpuTiming t = model_gpu_time(spec, stats, threads);
    EXPECT_NEAR(t.occupancy, static_cast<double>(w) / 64.0, 1e-12);
    analytic.push_back(stall_breakdown(t).memory_dependency);
  }

  for (std::size_t i = 0; i + 1 < warp_counts.size(); ++i) {
    EXPECT_GT(simulated[i], simulated[i + 1]) << "simulated not decreasing at " << i;
    EXPECT_GT(analytic[i], analytic[i + 1]) << "analytic not decreasing at " << i;
  }
  // At starved occupancy both attribute the majority of cycles to memory
  // dependency — the paper's diagnosis of the slow 2x2 GPUs.
  EXPECT_GT(simulated.front(), 0.5);
  EXPECT_GT(analytic.front(), 0.5);
}

}  // namespace
}  // namespace multihit
