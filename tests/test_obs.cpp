#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "cluster/distributed.hpp"
#include "data/generator.hpp"
#include "obs/bench.hpp"
#include "util/stats.hpp"

namespace multihit {
namespace {

using obs::JsonValue;

// ---------------------------------------------------------------- JSON model

TEST(ObsJson, DumpParseRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue("multi\"hit\n"));
  doc.set("count", JsonValue(42.0));
  doc.set("ratio", JsonValue(0.1));
  doc.set("on", JsonValue(true));
  doc.set("none", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(1.0));
  arr.push_back(JsonValue(-2.5));
  doc.set("values", std::move(arr));

  const std::string text = doc.dump();
  const JsonValue parsed = JsonValue::parse(text);
  EXPECT_EQ(parsed.dump(), text);  // dump is a fixed point
  EXPECT_EQ(parsed.find("name")->as_string(), "multi\"hit\n");
  EXPECT_DOUBLE_EQ(parsed.find("ratio")->as_number(), 0.1);
  EXPECT_TRUE(parsed.find("on")->as_bool());
  EXPECT_EQ(parsed.find("values")->size(), 2u);
}

TEST(ObsJson, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1 2]"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("nul"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), obs::JsonParseError);
}

TEST(ObsJson, ObjectsPreserveInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("z", JsonValue(1.0));
  doc.set("a", JsonValue(2.0));
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2}");
}

// ------------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterIsMonotone) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("events");
  c.add(2.0);
  c.add();
  EXPECT_DOUBLE_EQ(c.value(), 3.0);
  EXPECT_THROW(c.add(-1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(c.value(), 3.0);
}

TEST(ObsMetrics, LabeledSeriesAreSeparateAndOrderInsensitive) {
  obs::MetricsRegistry registry;
  registry.counter("ops", {{"op", "reduce"}}).add(1.0);
  registry.counter("ops", {{"op", "broadcast"}}).add(5.0);
  EXPECT_DOUBLE_EQ(registry.counter("ops", {{"op", "reduce"}}).value(), 1.0);
  // Label order never creates a new series: labels are canonicalized.
  registry.counter("multi", {{"a", "1"}, {"b", "2"}}).add(1.0);
  registry.counter("multi", {{"b", "2"}, {"a", "1"}}).add(1.0);
  EXPECT_DOUBLE_EQ(registry.counter("multi", {{"a", "1"}, {"b", "2"}}).value(), 2.0);
}

TEST(ObsMetrics, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x").add(1.0);
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(ObsMetrics, HistogramPercentileMatchesStats) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  std::vector<double> samples;
  for (int i = 0; i < 37; ++i) {
    const double v = (i * 7919 % 101) * 0.25;
    samples.push_back(v);
    h.observe(v);
  }
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), stats::percentile(samples, p)) << p;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_THROW(h.observe(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
}

TEST(ObsMetrics, HistogramCacheStaysCorrectAcrossInterleavedObserves) {
  // percentile() serves from a lazily sorted cache; observing after a read
  // must invalidate it, and repeated reads between observes must reuse it
  // without changing any answer.
  obs::Histogram h;
  std::vector<double> samples;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 11; ++i) {
      const double v = ((round * 11 + i) * 6271 % 89) * 0.5;
      samples.push_back(v);
      h.observe(v);
    }
    for (const double p : {50.0, 90.0, 99.0}) {
      const double expected = stats::percentile(samples, p);
      EXPECT_DOUBLE_EQ(h.percentile(p), expected) << "round " << round << " p" << p;
      // Second read hits the cache and must agree with the first.
      EXPECT_DOUBLE_EQ(h.percentile(p), expected) << "cached, round " << round;
    }
  }
}

TEST(ObsMetrics, SnapshotSchemaRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("comm.messages", {{"op", "reduce"}}).add(4.0);
  registry.gauge("alive").set(7.0);
  registry.histogram("secs").observe(1.5);
  registry.histogram("secs").observe(2.5);

  const JsonValue parsed = JsonValue::parse(registry.to_json());
  EXPECT_EQ(parsed.find("schema")->as_string(), obs::kMetricsSchema);
  const JsonValue* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  EXPECT_EQ(counters->at(0).find("name")->as_string(), "comm.messages");
  EXPECT_EQ(counters->at(0).find("labels")->find("op")->as_string(), "reduce");
  EXPECT_DOUBLE_EQ(counters->at(0).find("value")->as_number(), 4.0);
  const JsonValue* hists = parsed.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_DOUBLE_EQ(hists->at(0).find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hists->at(0).find("sum")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(hists->at(0).find("p50")->as_number(), 2.0);
}

// -------------------------------------------------------------------- tracer

TEST(ObsTrace, RejectsBackwardsSpans) {
  obs::Tracer tracer;
  EXPECT_THROW(tracer.complete(0, "bad", "test", 2.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(tracer.complete(0, "ok", "test", 1.0, 1.0));
}

TEST(ObsTrace, RejectsNonFiniteTimestamps) {
  // Regression guard: a NaN timestamp must be rejected at the recording API,
  // not discovered later as a corrupt ts in the exported trace. NaN defeats
  // ordinary `end >= begin` comparisons, so the guards test finiteness
  // explicitly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  obs::Tracer tracer;
  EXPECT_THROW(tracer.complete(0, "s", "t", nan, 1.0), std::invalid_argument);
  EXPECT_THROW(tracer.complete(0, "s", "t", 0.0, nan), std::invalid_argument);
  EXPECT_THROW(tracer.complete(0, "s", "t", nan, nan), std::invalid_argument);
  EXPECT_THROW(tracer.complete(0, "s", "t", 0.0, inf), std::invalid_argument);
  EXPECT_THROW(tracer.complete(0, "s", "t", -inf, 0.0), std::invalid_argument);
  EXPECT_THROW(tracer.instant(0, "i", "t", nan), std::invalid_argument);
  EXPECT_THROW(tracer.instant(0, "i", "t", inf), std::invalid_argument);
  EXPECT_TRUE(tracer.empty());  // nothing was recorded by the rejected calls
}

TEST(ObsTrace, FlowValidationAndChromeExport) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  obs::Tracer tracer;
  EXPECT_THROW(tracer.flow(0, nan, 1, 1.0, "m", "comm", true), std::invalid_argument);
  EXPECT_THROW(tracer.flow(0, 0.0, 1, nan, "m", "comm", true), std::invalid_argument);
  EXPECT_THROW(tracer.flow(0, 2.0, 1, 1.0, "m", "comm", true),
               std::invalid_argument);  // arrival before departure
  ASSERT_TRUE(tracer.flows().empty());

  tracer.complete(0, "send", "comm", 0.0, 1.0);
  tracer.complete(1, "recv", "comm", 0.0, 2.0);
  tracer.flow(0, 1.0, 1, 2.0, "p2p", "comm", true, {{"bytes", "8"}});

  // Chrome export: each flow is an "s"/"f" pair, paired by id, finishing
  // with bp:"e" so the arrow attaches to the enclosing slice's end.
  const JsonValue doc = JsonValue::parse(tracer.to_chrome_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonValue* start = nullptr;
  const JsonValue* finish = nullptr;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "s") start = &e;
    if (ph == "f") finish = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(start->find("id")->as_number(), finish->find("id")->as_number());
  EXPECT_DOUBLE_EQ(start->find("ts")->as_number(), 1.0e6);
  EXPECT_DOUBLE_EQ(start->find("tid")->as_number(), 0.0);
  EXPECT_EQ(start->find("args")->find("bytes")->as_string(), "8");
  EXPECT_EQ(start->find("args")->find("binding")->as_string(), "true");
  EXPECT_DOUBLE_EQ(finish->find("ts")->as_number(), 2.0e6);
  EXPECT_DOUBLE_EQ(finish->find("tid")->as_number(), 1.0);
  EXPECT_EQ(finish->find("bp")->as_string(), "e");
}

TEST(ObsTrace, PerLaneMonotoneDetectsViolations) {
  obs::Tracer ok;
  ok.complete(0, "a", "t", 0.0, 2.0);
  ok.complete(0, "b", "t", 1.0, 3.0);
  ok.complete(1, "c", "t", 0.5, 0.75);  // other lanes are independent
  EXPECT_TRUE(ok.per_lane_monotone());

  obs::Tracer bad;
  bad.complete(0, "a", "t", 1.0, 2.0);
  bad.complete(0, "b", "t", 0.5, 3.0);
  EXPECT_FALSE(bad.per_lane_monotone());
}

TEST(ObsTrace, ChromeTraceShapeAndMicroseconds) {
  obs::Tracer tracer;
  tracer.set_lane_name(3, "rank 3");
  tracer.complete(3, "compute", "compute", 0.5, 1.5, {{"iteration", "0"}});
  tracer.instant(3, "fault.crash", "fault", 1.25);

  const JsonValue doc = JsonValue::parse(tracer.to_chrome_json());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_meta = false, saw_span = false, saw_instant = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M" && e.find("name")->as_string() == "thread_name") {
      saw_meta = e.find("args")->find("name")->as_string() == "rank 3";
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 0.5e6);   // microseconds
      EXPECT_DOUBLE_EQ(e.find("dur")->as_number(), 1.0e6);
      EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 3.0);
      EXPECT_EQ(e.find("args")->find("iteration")->as_string(), "0");
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 1.25e6);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(ObsTrace, CounterTracksExportAsChromeCEvents) {
  obs::Tracer tracer;
  tracer.complete(2, "compute", "compute", 0.0, 1.0);
  tracer.counter(2, "occupancy", 0.25, 0.875);
  tracer.counter(2, "occupancy", 1.0, 0.0);

  ASSERT_EQ(tracer.counters().size(), 2u);
  EXPECT_EQ(tracer.counters()[0].name, "occupancy");
  EXPECT_EQ(tracer.counters()[0].lane, 2u);
  EXPECT_DOUBLE_EQ(tracer.counters()[0].at, 0.25);
  EXPECT_DOUBLE_EQ(tracer.counters()[0].value, 0.875);
  // Counters sit outside the span stream, so they never break the per-lane
  // monotone append invariant even when sampled between spans.
  EXPECT_TRUE(tracer.per_lane_monotone());

  const JsonValue doc = JsonValue::parse(tracer.to_chrome_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    if (e.find("ph")->as_string() != "C") continue;
    if (seen == 0) {
      EXPECT_EQ(e.find("name")->as_string(), "occupancy");
      EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 2.0);
      EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 0.25e6);  // microseconds
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->as_number(), 0.875);
    }
    ++seen;
  }
  EXPECT_EQ(seen, 2u);
}

TEST(ObsTrace, CounterRejectsNonFiniteInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  obs::Tracer tracer;
  EXPECT_THROW(tracer.counter(0, "c", nan, 1.0), std::invalid_argument);
  EXPECT_THROW(tracer.counter(0, "c", 0.0, nan), std::invalid_argument);
  EXPECT_THROW(tracer.counter(0, "c", inf, 1.0), std::invalid_argument);
  EXPECT_THROW(tracer.counter(0, "c", 0.0, -inf), std::invalid_argument);
  EXPECT_TRUE(tracer.counters().empty());
}

// ------------------------------------------------------------ bench reporter

TEST(ObsBench, RecordSchemaAndEnvOutputDir) {
  obs::BenchReporter reporter("unit_test");
  reporter.series("total_time", 12.5, "s");
  reporter.series("efficiency", 0.9);
  reporter.metrics().counter("work").add(3.0);

  const JsonValue record = reporter.record();
  EXPECT_EQ(record.find("schema")->as_string(), obs::kBenchSchema);
  EXPECT_EQ(record.find("bench")->as_string(), "unit_test");
  const JsonValue* series = record.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ(series->at(0).find("name")->as_string(), "total_time");
  EXPECT_DOUBLE_EQ(series->at(0).find("value")->as_number(), 12.5);
  EXPECT_EQ(series->at(0).find("unit")->as_string(), "s");
  EXPECT_EQ(record.find("metrics")->find("schema")->as_string(), obs::kMetricsSchema);

  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  ::setenv("MULTIHIT_BENCH_DIR", dir.c_str(), 1);
  EXPECT_EQ(reporter.path(), dir + "/BENCH_unit_test.json");
  ASSERT_TRUE(reporter.write());
  ::unsetenv("MULTIHIT_BENCH_DIR");

  std::ifstream in(dir + "/BENCH_unit_test.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue reread = JsonValue::parse(buffer.str());
  EXPECT_EQ(reread.dump(), record.dump());
}

// --------------------------------------------------- end-to-end differential

Dataset obs_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

TEST(ObsDifferential, TracingLeavesRunBitIdentical) {
  // The acceptance invariant: a null recorder and an attached recorder yield
  // the same selections and the same modeled clocks — instrumentation reads
  // simulated time, it never advances it.
  const Dataset data = obs_dataset(901);
  SummitConfig config;
  config.nodes = 5;

  DistributedOptions plain;
  DistributedOptions observed;
  obs::Recorder rec;
  observed.recorder = &rec;
  // Exercise the fault paths too (crash recovery + drops + checkpoints).
  FaultPlan plan;
  plan.events.push_back({FaultKind::kRankCrash, 2, 1, 0.5, 1});
  plan.events.push_back({FaultKind::kMessageDrop, 1, 0, 0.5, 2});
  plain.faults = plan;
  observed.faults = plan;
  plain.checkpoint_every = 2;
  observed.checkpoint_every = 2;

  const ClusterRunner runner(config);
  const ClusterRunResult a = runner.run(data, plain);
  const ClusterRunResult b = runner.run(data, observed);

  ASSERT_EQ(a.greedy.iterations.size(), b.greedy.iterations.size());
  for (std::size_t i = 0; i < a.greedy.iterations.size(); ++i) {
    EXPECT_EQ(a.greedy.iterations[i].genes, b.greedy.iterations[i].genes) << i;
  }
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.schedule_time, b.schedule_time);
  EXPECT_DOUBLE_EQ(a.recovery_time, b.recovery_time);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iterations[i].iteration_time, b.iterations[i].iteration_time) << i;
  }

  // The recorder actually observed the run, and its trace is well-formed.
  EXPECT_FALSE(rec.trace.empty());
  EXPECT_TRUE(rec.trace.per_lane_monotone());
  EXPECT_FALSE(rec.trace.counters().empty());  // per-rank occupancy/DRAM tracks
  EXPECT_GT(rec.metrics.counter("cluster.iterations").value(), 0.0);
  EXPECT_GT(rec.metrics.counter("engine.iterations").value(), 0.0);
  EXPECT_GT(rec.metrics.counter("gpu.kernel_launches").value(), 0.0);
  EXPECT_GT(rec.metrics.counter("comm.collectives", {{"op", "reduce"}}).value(), 0.0);
  EXPECT_DOUBLE_EQ(rec.metrics.counter("cluster.ranks_lost").value(), 1.0);
  EXPECT_DOUBLE_EQ(rec.metrics.counter("fault.events", {{"kind", "crash"}}).value(), 1.0);
  EXPECT_NO_THROW(JsonValue::parse(rec.trace.to_chrome_json()));
  EXPECT_NO_THROW(JsonValue::parse(rec.metrics.to_json()));
}

TEST(ObsDifferential, RepeatedInstrumentedRunsAreByteIdentical) {
  // Determinism end-to-end: the exported artifacts of two identical runs are
  // byte-identical (simulated clocks only, ordered registry, ordered JSON).
  const Dataset data = obs_dataset(902);
  SummitConfig config;
  config.nodes = 3;
  const ClusterRunner runner(config);

  const auto artifacts = [&] {
    obs::Recorder rec;
    DistributedOptions options;
    options.recorder = &rec;
    options.max_iterations = 3;
    runner.run(data, options);
    return std::pair{rec.metrics.to_json(), rec.trace.to_chrome_json()};
  };
  const auto [metrics_a, trace_a] = artifacts();
  const auto [metrics_b, trace_b] = artifacts();
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
}

}  // namespace
}  // namespace multihit
