// Cross-run regression engine suite (src/obs/diff + src/obs/runinfo).
//
// The load-bearing properties, in order of importance:
//   1. Determinism: manifest and diff documents round-trip byte-identically
//      through their JSON renderers — the contract that lets ci.sh `cmp`
//      reports across invocations.
//   2. Exact-by-default classification: identical runs diff clean, a moved
//      series is a regression unless a committed tolerance rule covers it,
//      and the improved/regressed label follows series direction.
//   3. Attribution accounting: phase×lane cell deltas plus the explicit
//      residual sum to the makespan delta exactly — the "87% attributed to
//      reduce on rank 3" sentence is arithmetic, not an estimate.
//   4. Input hygiene: tolerance-grammar errors name the offending line, and
//      manifests with stale digests are refused, not silently diffed.

#include "obs/diff.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/runinfo.hpp"
#include "obs/schema.hpp"

namespace multihit {
namespace {

using obs::DeltaClass;
using obs::DiffError;
using obs::DiffOptions;
using obs::DiffReport;
using obs::JsonValue;
using obs::RunInput;
using obs::RunManifest;
using obs::SeriesDelta;
using obs::ToleranceRule;

// ------------------------------------------------------------------ fixtures

JsonValue metric_entry(const char* name, double value) {
  JsonValue entry = JsonValue::object();
  entry.set("name", name);
  entry.set("labels", JsonValue::object());
  entry.set("value", value);
  return entry;
}

/// A minimal multihit.metrics.v1 document with the given counters.
JsonValue metrics_doc(const std::vector<std::pair<const char*, double>>& counters) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(obs::kMetricsSchema));
  JsonValue entries = JsonValue::array();
  for (const auto& [name, value] : counters) entries.push_back(metric_entry(name, value));
  doc.set("counters", std::move(entries));
  doc.set("gauges", JsonValue::array());
  doc.set("histograms", JsonValue::array());
  return doc;
}

JsonValue segment(const char* phase, std::uint32_t lane, double begin, double end) {
  JsonValue seg = JsonValue::object();
  seg.set("lane", static_cast<double>(lane));
  seg.set("phase", phase);
  seg.set("begin_seconds", begin);
  seg.set("end_seconds", end);
  return seg;
}

/// A minimal multihit.analysis.v1 document whose critical path is the given
/// segments (assumed to tile [0, makespan]).
JsonValue analysis_doc(double makespan, std::vector<JsonValue> segments) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(obs::kAnalysisSchema));
  doc.set("makespan_seconds", makespan);
  JsonValue critical = JsonValue::object();
  critical.set("total_seconds", makespan);
  JsonValue segs = JsonValue::array();
  for (JsonValue& seg : segments) segs.push_back(std::move(seg));
  critical.set("segments", std::move(segs));
  doc.set("critical_path", std::move(critical));
  return doc;
}

RunInput metrics_run(const char* label,
                     const std::vector<std::pair<const char*, double>>& counters) {
  RunInput run;
  run.label = label;
  obs::add_doc(run, "metrics", metrics_doc(counters));
  return run;
}

/// Temp directory unique to one test, cleaned up on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("multihit_diff_") + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const char* name, const std::string& contents) const {
    const std::string full = (path / name).string();
    std::ofstream out(full);
    out << contents;
    return full;
  }
};

const SeriesDelta* find_series(const DiffReport& report, std::string_view name) {
  for (const SeriesDelta& delta : report.series) {
    if (delta.series == name) return &delta;
  }
  return nullptr;
}

// ----------------------------------------------------------------- tolerance

TEST(DiffTolerance, ParsesRulesCommentsAndBlanks) {
  const std::vector<ToleranceRule> rules = obs::parse_tolerances(
      "# wall clock drifts\n"
      "\n"
      "tol hostprof.* rel 0.5\n"
      "tol metrics.counter.host.claims abs 2  # flaky counter\n");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].glob, "hostprof.*");
  EXPECT_TRUE(rules[0].relative);
  EXPECT_DOUBLE_EQ(rules[0].bound, 0.5);
  EXPECT_EQ(rules[1].glob, "metrics.counter.host.claims");
  EXPECT_FALSE(rules[1].relative);
  EXPECT_DOUBLE_EQ(rules[1].bound, 2.0);
}

TEST(DiffTolerance, ErrorsNameTheOffendingLine) {
  const auto expect_line = [](std::string_view text, const char* needle) {
    try {
      obs::parse_tolerances(text);
      FAIL() << "expected DiffError for: " << text;
    } catch (const DiffError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_line("tol a rel 0.1\ntol b rel\n", "tol line 2");
  expect_line("nottol a rel 0.1\n", "tol line 1");
  expect_line("tol a sideways 0.1\n", "tol line 1");
  expect_line("tol a rel minusnine\n", "tol line 1");
  expect_line("tol a abs -1\n", "tol line 1");
}

TEST(DiffTolerance, GlobMatching) {
  EXPECT_TRUE(obs::glob_match("*", "anything.at.all"));
  EXPECT_TRUE(obs::glob_match("hostprof.*", "hostprof.totals.combinations"));
  EXPECT_FALSE(obs::glob_match("hostprof.*", "analysis.makespan_seconds"));
  EXPECT_TRUE(obs::glob_match("*.p9?", "metrics.histogram.latency.p99"));
  EXPECT_TRUE(obs::glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(obs::glob_match("a*b*c", "a-x-b-y"));
  EXPECT_TRUE(obs::glob_match("exact", "exact"));
  EXPECT_FALSE(obs::glob_match("exact", "exactly"));
}

// -------------------------------------------------------------- classification

TEST(DiffClassify, SelfDiffIsAllIdentical) {
  const RunInput a = metrics_run("a", {{"engine.iterations", 5}, {"gpu.launches", 60}});
  const RunInput b = metrics_run("b", {{"engine.iterations", 5}, {"gpu.launches", 60}});
  const DiffReport report = obs::diff_runs(a, b, DiffOptions{});
  EXPECT_EQ(report.counts.compared, 2u);
  EXPECT_EQ(report.counts.identical, 2u);
  EXPECT_TRUE(report.series.empty());
  EXPECT_FALSE(obs::diff_regression(report));
}

TEST(DiffClassify, DirectionPicksImprovedOrRegressed) {
  // seconds: lower is better; per_sec: higher is better.
  const RunInput a =
      metrics_run("a", {{"sweep.eval_seconds", 10}, {"sweep.combos_per_sec", 100}});
  const RunInput b =
      metrics_run("b", {{"sweep.eval_seconds", 12}, {"sweep.combos_per_sec", 90}});
  const DiffReport report = obs::diff_runs(a, b, DiffOptions{});
  EXPECT_EQ(report.counts.regressed, 2u);
  EXPECT_TRUE(obs::diff_regression(report));

  const DiffReport reverse = obs::diff_runs(b, a, DiffOptions{});
  EXPECT_EQ(reverse.counts.improved, 2u);
  EXPECT_EQ(reverse.counts.regressed, 0u);
  EXPECT_FALSE(obs::diff_regression(reverse));
}

TEST(DiffClassify, AddedAndRemovedSeries) {
  const RunInput a = metrics_run("a", {{"engine.iterations", 5}, {"old.counter", 1}});
  const RunInput b = metrics_run("b", {{"engine.iterations", 5}, {"new.counter", 1}});
  const DiffReport report = obs::diff_runs(a, b, DiffOptions{});
  EXPECT_EQ(report.counts.added, 1u);
  EXPECT_EQ(report.counts.removed, 1u);
  // A removed series means coverage shrank — that is a regression; a new
  // series alone is not.
  EXPECT_TRUE(obs::diff_regression(report));

  const SeriesDelta* added = find_series(report, "metrics.counter.new.counter");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->cls, DeltaClass::kAdded);
  EXPECT_FALSE(added->has_a);
}

TEST(DiffClassify, ToleranceCoversDriftAndLastRuleWins) {
  const RunInput a = metrics_run("a", {{"host.wall_seconds", 10}});
  const RunInput b = metrics_run("b", {{"host.wall_seconds", 11}});

  DiffOptions covered;
  covered.tolerances = obs::parse_tolerances("tol metrics.counter.host.* rel 0.5\n");
  const DiffReport ok = obs::diff_runs(a, b, covered);
  EXPECT_EQ(ok.counts.within_tolerance, 1u);
  EXPECT_FALSE(obs::diff_regression(ok));
  const SeriesDelta* delta = find_series(ok, "metrics.counter.host.wall_seconds");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->cls, DeltaClass::kWithinTolerance);
  EXPECT_EQ(delta->tolerance, "metrics.counter.host.*");

  // A later, tighter rule overrides the broad one: 10 -> 11 is outside
  // rel 0.01, so the drift regresses again.
  DiffOptions tightened;
  tightened.tolerances = obs::parse_tolerances(
      "tol metrics.counter.host.* rel 0.5\n"
      "tol metrics.counter.host.wall_seconds rel 0.01\n");
  const DiffReport bad = obs::diff_runs(a, b, tightened);
  EXPECT_EQ(bad.counts.regressed, 1u);
  EXPECT_TRUE(obs::diff_regression(bad));
}

TEST(DiffClassify, LowerIsBetterHeuristic) {
  EXPECT_TRUE(obs::lower_is_better("analysis.makespan_seconds"));
  EXPECT_TRUE(obs::lower_is_better("serve.aggregate.p99_latency"));
  EXPECT_FALSE(obs::lower_is_better("slo.tenants.attainment"));
  EXPECT_FALSE(obs::lower_is_better("hostprof.totals.combos_per_sec"));
  EXPECT_FALSE(obs::lower_is_better("profile.totals.occupancy"));
}

// --------------------------------------------------------------- attribution

TEST(DiffAttribution, CellsPlusResidualSumToMakespanDelta) {
  // A: compute 6s on rank 0, reduce 4s on rank 1. B: compute stretches to
  // 9s, reduce shrinks to 3.5s. Makespan 10 -> 12.5.
  RunInput a;
  a.label = "a";
  std::vector<JsonValue> segs_a;
  segs_a.push_back(segment("compute", 0, 0.0, 6.0));
  segs_a.push_back(segment("mpi_reduce", 1, 6.0, 10.0));
  obs::add_doc(a, "analysis", analysis_doc(10.0, std::move(segs_a)));

  RunInput b;
  b.label = "b";
  std::vector<JsonValue> segs_b;
  segs_b.push_back(segment("compute", 0, 0.0, 9.0));
  segs_b.push_back(segment("mpi_reduce", 1, 9.0, 12.5));
  obs::add_doc(b, "analysis", analysis_doc(12.5, std::move(segs_b)));

  const DiffReport report = obs::diff_runs(a, b, DiffOptions{});
  ASSERT_TRUE(report.critical_path.present);
  EXPECT_DOUBLE_EQ(report.critical_path.makespan_a, 10.0);
  EXPECT_DOUBLE_EQ(report.critical_path.makespan_b, 12.5);
  ASSERT_EQ(report.critical_path.cells.size(), 2u);

  // Cells are sorted by (phase, lane): compute/0 then mpi_reduce/1.
  EXPECT_EQ(report.critical_path.cells[0].phase, "compute");
  EXPECT_DOUBLE_EQ(report.critical_path.cells[0].b_seconds -
                       report.critical_path.cells[0].a_seconds,
                   3.0);
  EXPECT_EQ(report.critical_path.cells[1].phase, "mpi_reduce");
  EXPECT_DOUBLE_EQ(report.critical_path.cells[1].b_seconds -
                       report.critical_path.cells[1].a_seconds,
                   -0.5);

  // The rendered document's residual makes the attribution an identity:
  // sum(cell deltas) + residual == makespan delta, exactly.
  const JsonValue doc = obs::diff_report_json(report);
  const JsonValue* critical = doc.find("critical_path");
  ASSERT_NE(critical, nullptr);
  const double makespan_delta = critical->find("delta")->as_number();
  double cell_sum = 0.0;
  for (const JsonValue& cell : critical->find("cells")->as_array()) {
    cell_sum += cell.find("delta")->as_number();
  }
  const double residual = critical->find("residual")->as_number();
  EXPECT_EQ(cell_sum + residual, makespan_delta);
  EXPECT_DOUBLE_EQ(makespan_delta, 2.5);
}

// ------------------------------------------------------------- round-tripping

TEST(DiffReportJson, RoundTripsByteIdentically) {
  const RunInput a =
      metrics_run("runA", {{"engine.iterations", 5}, {"sweep.eval_seconds", 10}});
  const RunInput b =
      metrics_run("runB", {{"engine.iterations", 6}, {"sweep.eval_seconds", 9.5}});
  DiffOptions options;
  options.tolerances = obs::parse_tolerances("tol sweep.* rel 0.25\n");
  const DiffReport report = obs::diff_runs(a, b, options);

  const std::string first = obs::diff_report_json(report).dump();
  const DiffReport reparsed = obs::diff_from_json(JsonValue::parse(first));
  const std::string second = obs::diff_report_json(reparsed).dump();
  EXPECT_EQ(first, second);
}

TEST(DiffReportJson, RejectsWrongSchema) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(obs::kMetricsSchema));
  try {
    obs::diff_from_json(doc);
    FAIL() << "expected DiffError";
  } catch (const DiffError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::string(obs::kDiffSchema)), std::string::npos);
    EXPECT_NE(what.find(std::string(obs::kMetricsSchema)), std::string::npos);
  }
}

TEST(RunManifestJson, RoundTripsByteIdentically) {
  TempDir dir("manifest_roundtrip");
  const std::string artifact =
      dir.file("run.metrics.json", metrics_doc({{"engine.iterations", 5}}).dump() + "\n");

  RunManifest manifest;
  manifest.driver = "brca_scaleout";
  obs::set_config(manifest, "nodes", "2");
  obs::set_config(manifest, "scheduler", "equi_area");
  obs::add_artifact_from_file(manifest, "metrics", std::string(obs::kMetricsSchema),
                              artifact);

  const std::string first = obs::manifest_json(manifest).dump();
  const RunManifest reparsed = obs::manifest_from_json(JsonValue::parse(first));
  const std::string second = obs::manifest_json(reparsed).dump();
  EXPECT_EQ(first, second);
}

// -------------------------------------------------------------- input hygiene

TEST(DiffLoadRun, SingleArtifactLoadsUnderItsKind) {
  TempDir dir("single_artifact");
  const std::string path =
      dir.file("metrics.json", metrics_doc({{"engine.iterations", 5}}).dump() + "\n");
  const RunInput run = obs::load_run(path);
  EXPECT_FALSE(run.has_manifest);
  ASSERT_EQ(run.docs.size(), 1u);
  EXPECT_EQ(run.docs[0].first, "metrics");
}

TEST(DiffLoadRun, ManifestLoadsInventoryAndVerifiesDigests) {
  TempDir dir("manifest_ok");
  const std::string metrics_path =
      dir.file("run.metrics.json", metrics_doc({{"engine.iterations", 5}}).dump() + "\n");
  RunManifest manifest;
  manifest.driver = "brca_scaleout";
  obs::add_artifact_from_file(manifest, "metrics", std::string(obs::kMetricsSchema),
                              metrics_path);
  // Store the relative spelling, as the drivers do, to prove paths resolve
  // against the manifest's own directory.
  manifest.artifacts[0].path = "run.metrics.json";
  const std::string manifest_path = (dir.path / "manifest.json").string();
  ASSERT_TRUE(obs::write_manifest(manifest, manifest_path));

  const RunInput run = obs::load_run(manifest_path);
  EXPECT_TRUE(run.has_manifest);
  ASSERT_EQ(run.docs.size(), 1u);
  EXPECT_EQ(run.docs[0].first, "metrics");
}

TEST(DiffLoadRun, StaleDigestIsRefused) {
  TempDir dir("manifest_stale");
  const std::string metrics_path =
      dir.file("run.metrics.json", metrics_doc({{"engine.iterations", 5}}).dump() + "\n");
  RunManifest manifest;
  manifest.driver = "brca_scaleout";
  obs::add_artifact_from_file(manifest, "metrics", std::string(obs::kMetricsSchema),
                              metrics_path);
  const std::string manifest_path = (dir.path / "manifest.json").string();
  ASSERT_TRUE(obs::write_manifest(manifest, manifest_path));

  // Rewrite the artifact after the manifest was sealed.
  dir.file("run.metrics.json", metrics_doc({{"engine.iterations", 6}}).dump() + "\n");
  try {
    obs::load_run(manifest_path);
    FAIL() << "expected DiffError";
  } catch (const DiffError& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(DiffLoadRun, ContentDigestIsStable) {
  EXPECT_EQ(obs::content_digest(""), "cbf29ce484222325");
  EXPECT_EQ(obs::content_digest("a"), obs::content_digest("a"));
  EXPECT_NE(obs::content_digest("a"), obs::content_digest("b"));
  EXPECT_EQ(obs::content_digest("x").size(), 16u);
}

// ----------------------------------------------------------------- incidents

TEST(DiffIncidents, NewIncidentInBIsARegression) {
  const auto health = [](bool with_incident) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", std::string(obs::kHealthSchema));
    JsonValue incidents = JsonValue::array();
    if (with_incident) {
      JsonValue incident = JsonValue::object();
      incident.set("rule", "straggler");
      incident.set("kind", "imbalance");
      incident.set("lane", 3);
      incident.set("tenant", "");
      incident.set("fired", 1.5);
      incident.set("cleared", 2.5);
      incident.set("value", 2.0);
      incidents.push_back(std::move(incident));
    }
    doc.set("incidents", std::move(incidents));
    doc.set("series", JsonValue::array());
    return doc;
  };
  RunInput a;
  a.label = "a";
  obs::add_doc(a, "health", health(false));
  RunInput b;
  b.label = "b";
  obs::add_doc(b, "health", health(true));

  const DiffReport report = obs::diff_runs(a, b, DiffOptions{});
  ASSERT_TRUE(report.incidents.present);
  ASSERT_EQ(report.incidents.added.size(), 1u);
  EXPECT_EQ(report.incidents.added[0].rule, "straggler");
  EXPECT_EQ(report.incidents.added[0].lane, 3u);
  EXPECT_TRUE(obs::diff_regression(report));

  // Same incident on both sides matches and is no longer a regression.
  RunInput a2;
  a2.label = "a2";
  obs::add_doc(a2, "health", health(true));
  const DiffReport matched = obs::diff_runs(a2, b, DiffOptions{});
  EXPECT_EQ(matched.incidents.matched, 1u);
  EXPECT_TRUE(matched.incidents.added.empty());
  EXPECT_FALSE(obs::diff_regression(matched));
}

}  // namespace
}  // namespace multihit
