// Tests for the 2-hit / 5-hit extension (paper §V trajectory).

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/distributed.hpp"
#include "cluster/model.hpp"
#include "combinat/binomial.hpp"
#include "combinat/linearize.hpp"
#include "combinat/unrank.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "core/serial.hpp"
#include "data/generator.hpp"
#include "gpusim/analytic.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t genes, std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 2;
  spec.background_rate = 0.05;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

// --- quadruple linearization -------------------------------------------------

TEST(Quad, RankFirstValues) {
  // Colex order: {0,1,2,3} {0,1,2,4} {0,1,3,4} {0,2,3,4} {1,2,3,4} {0,1,2,5}...
  EXPECT_EQ(rank_quad({0, 1, 2, 3}), 0u);
  EXPECT_EQ(rank_quad({0, 1, 2, 4}), 1u);
  EXPECT_EQ(rank_quad({0, 1, 3, 4}), 2u);
  EXPECT_EQ(rank_quad({1, 2, 3, 4}), 4u);
  EXPECT_EQ(rank_quad({0, 1, 2, 5}), 5u);
}

TEST(Quad, RoundTripExhaustive) {
  const u64 total = quartic(30);
  for (u64 lambda = 0; lambda < total; ++lambda) {
    const Quad q = unrank_quad(lambda);
    ASSERT_LT(q.i, q.j);
    ASSERT_LT(q.j, q.k);
    ASSERT_LT(q.k, q.l);
    ASSERT_LT(q.l, 30u);
    ASSERT_EQ(rank_quad(q), lambda) << lambda;
  }
}

TEST(Quad, RoundTripAtScale) {
  // Includes the near-u64-max region where the C(l,4) fix-up probes exceed
  // u64 (the overflow a naive implementation hangs on).
  for (const u64 lambda : {u64{0}, quartic(19411) - 1, u64{1} << 50,
                           (u64{1} << 62) + 123456789, ~u64{0} - 5, ~u64{0}}) {
    EXPECT_EQ(rank_quad(unrank_quad(lambda)), lambda) << lambda;
  }
}

TEST(Quad, MatchesGenericUnranking) {
  for (u64 lambda = 0; lambda < quartic(15); ++lambda) {
    const Quad q = unrank_quad(lambda);
    const auto generic = unrank_combination(lambda, 4);
    EXPECT_EQ(generic, (std::vector<std::uint32_t>{q.i, q.j, q.k, q.l}));
  }
}

TEST(Quad, QuarticLevelBoundaries) {
  for (std::uint32_t l = 3; l < 150; ++l) {
    EXPECT_EQ(quartic_level(quartic(l)), l);
    EXPECT_EQ(quartic_level(quartic(l + 1) - 1), l);
  }
  EXPECT_EQ(quartic_level(quartic(19411)), 19411u);
}

TEST(Quintic, MatchesBinomial) {
  for (u64 n = 0; n <= 1000; n += 13) EXPECT_EQ(quintic(n), binomial(n, 5));
  EXPECT_EQ(quintic(5), 1u);
  EXPECT_EQ(quintic(4), 0u);
  // Find the largest n whose C(n,5) fits u64 and verify quintic there.
  u64 n = 18000;
  while (binomial_checked(n + 1, 5).has_value()) ++n;
  EXPECT_GT(n, 18400u);
  EXPECT_LT(n, 18800u);
  EXPECT_EQ(quintic(n), binomial(n, 5));
  EXPECT_FALSE(binomial_checked(n + 1, 5).has_value());
}

// --- thread spaces -----------------------------------------------------------

TEST(Schemes25, ThreadCounts) {
  EXPECT_EQ(scheme2_threads(Scheme2::k1x1, 100), 100u);
  EXPECT_EQ(scheme2_threads(Scheme2::k2x1, 100), binomial(100, 2));
  EXPECT_EQ(scheme5_threads(Scheme5::k3x2, 100), binomial(100, 3));
  EXPECT_EQ(scheme5_threads(Scheme5::k4x1, 100), binomial(100, 4));
}

TEST(Schemes25, WorkSumsToWholeSpace) {
  const std::uint32_t G = 20;
  for (const Scheme2 scheme : {Scheme2::k1x1, Scheme2::k2x1}) {
    u64 total = 0;
    for (u64 lambda = 0; lambda < scheme2_threads(scheme, G); ++lambda) {
      total += scheme2_thread_work(scheme, G, lambda);
    }
    EXPECT_EQ(total, binomial(G, 2)) << scheme_name(scheme);
  }
  for (const Scheme5 scheme : {Scheme5::k3x2, Scheme5::k4x1}) {
    u64 total = 0;
    for (u64 lambda = 0; lambda < scheme5_threads(scheme, G); ++lambda) {
      total += scheme5_thread_work(scheme, G, lambda);
    }
    EXPECT_EQ(total, binomial(G, 5)) << scheme_name(scheme);
  }
}

// --- kernel equivalence ------------------------------------------------------

class Scheme2Equivalence : public ::testing::TestWithParam<Scheme2> {};

TEST_P(Scheme2Equivalence, FullRangeMatchesSerial) {
  const auto f = make_fixture(50, 2, 808);
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 2);
  const EvalResult parallel = evaluate_range_2hit(
      f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, scheme2_threads(GetParam(), 50));
  ASSERT_TRUE(parallel.valid);
  EXPECT_EQ(parallel.combo_rank, serial.combo_rank);
  EXPECT_DOUBLE_EQ(parallel.f, serial.f);
}

TEST_P(Scheme2Equivalence, PartialRangesMergeToFull) {
  const auto f = make_fixture(30, 2, 809);
  const u64 end = scheme2_threads(GetParam(), 30);
  const EvalResult full =
      evaluate_range_2hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end);
  EvalResult merged;
  for (u64 piece = 0; piece < 5; ++piece) {
    merged = merge_results(
        merged, evaluate_range_2hit(f.data.tumor, f.data.normal, f.ctx, GetParam(),
                                    end * piece / 5, end * (piece + 1) / 5));
  }
  EXPECT_EQ(merged.combo_rank, full.combo_rank);
}

TEST_P(Scheme2Equivalence, StatsCountExactTotal) {
  const auto f = make_fixture(25, 2, 810);
  KernelStats stats;
  evaluate_range_2hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                      scheme2_threads(GetParam(), 25), {}, &stats);
  EXPECT_EQ(stats.combinations, binomial(25, 2));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Scheme2Equivalence,
                         ::testing::Values(Scheme2::k1x1, Scheme2::k2x1),
                         [](const auto& info) { return scheme_name(info.param); });

class Scheme5Equivalence : public ::testing::TestWithParam<Scheme5> {};

TEST_P(Scheme5Equivalence, FullRangeMatchesSerial) {
  const auto f = make_fixture(15, 5, 811);
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 5);
  const EvalResult parallel = evaluate_range_5hit(
      f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, scheme5_threads(GetParam(), 15));
  ASSERT_TRUE(parallel.valid);
  EXPECT_EQ(parallel.combo_rank, serial.combo_rank);
  EXPECT_DOUBLE_EQ(parallel.f, serial.f);
}

TEST_P(Scheme5Equivalence, PrefetchVariantsAreResultIdentical) {
  const auto f = make_fixture(13, 5, 812);
  const u64 end = scheme5_threads(GetParam(), 13);
  const EvalResult plain =
      evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end, {});
  const EvalResult opt1 = evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, GetParam(),
                                              0, end, {.prefetch_i = true});
  const EvalResult opt12 = evaluate_range_5hit(
      f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end,
      {.prefetch_i = true, .prefetch_j = true});
  EXPECT_EQ(plain.combo_rank, opt1.combo_rank);
  EXPECT_EQ(plain.combo_rank, opt12.combo_rank);
}

TEST_P(Scheme5Equivalence, PartialRangesMergeToFull) {
  const auto f = make_fixture(12, 5, 813);
  const u64 end = scheme5_threads(GetParam(), 12);
  const EvalResult full =
      evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end);
  EvalResult merged;
  for (u64 piece = 0; piece < 7; ++piece) {
    merged = merge_results(
        merged, evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, GetParam(),
                                    end * piece / 7, end * (piece + 1) / 7));
  }
  EXPECT_EQ(merged.combo_rank, full.combo_rank);
}

TEST_P(Scheme5Equivalence, StatsCountExactTotal) {
  const auto f = make_fixture(12, 5, 814);
  KernelStats stats;
  evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                      scheme5_threads(GetParam(), 12), {}, &stats);
  EXPECT_EQ(stats.combinations, binomial(12, 5));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Scheme5Equivalence,
                         ::testing::Values(Scheme5::k3x2, Scheme5::k4x1),
                         [](const auto& info) { return scheme_name(info.param); });

// --- analytic accounting -----------------------------------------------------

using OptCase = std::tuple<bool, bool>;

class Analytic25 : public ::testing::TestWithParam<OptCase> {};

TEST_P(Analytic25, TwoHitMatchesCounted) {
  const MemOpts opts{std::get<0>(GetParam()), std::get<1>(GetParam())};
  const auto f = make_fixture(30, 2, 815);
  const std::uint32_t wt = f.data.tumor.words_per_row();
  const std::uint32_t wn = f.data.normal.words_per_row();
  Rng rng(4);
  for (const Scheme2 scheme : {Scheme2::k1x1, Scheme2::k2x1}) {
    const u64 total = scheme2_threads(scheme, 30);
    for (int trial = 0; trial < 8; ++trial) {
      u64 a = rng.uniform(total + 1), b = rng.uniform(total + 1);
      if (a > b) std::swap(a, b);
      KernelStats counted;
      evaluate_range_2hit(f.data.tumor, f.data.normal, f.ctx, scheme, a, b, opts, &counted);
      const KernelStats analytic = analytic_stats_2hit(scheme, 30, a, b, opts, wt, wn);
      ASSERT_EQ(analytic.combinations, counted.combinations) << scheme_name(scheme);
      ASSERT_EQ(analytic.word_ops, counted.word_ops) << scheme_name(scheme);
      ASSERT_EQ(analytic.global_words, counted.global_words) << scheme_name(scheme);
      ASSERT_EQ(analytic.local_words, counted.local_words) << scheme_name(scheme);
      ASSERT_EQ(analytic.distinct_rows, counted.distinct_rows) << scheme_name(scheme);
    }
  }
}

TEST_P(Analytic25, FiveHitMatchesCounted) {
  const MemOpts opts{std::get<0>(GetParam()), std::get<1>(GetParam())};
  const auto f = make_fixture(14, 5, 816);
  const std::uint32_t wt = f.data.tumor.words_per_row();
  const std::uint32_t wn = f.data.normal.words_per_row();
  Rng rng(5);
  for (const Scheme5 scheme : {Scheme5::k3x2, Scheme5::k4x1}) {
    const u64 total = scheme5_threads(scheme, 14);
    for (int trial = 0; trial < 8; ++trial) {
      u64 a = rng.uniform(total + 1), b = rng.uniform(total + 1);
      if (a > b) std::swap(a, b);
      KernelStats counted;
      evaluate_range_5hit(f.data.tumor, f.data.normal, f.ctx, scheme, a, b, opts, &counted);
      const KernelStats analytic = analytic_stats_5hit(scheme, 14, a, b, opts, wt, wn);
      ASSERT_EQ(analytic.combinations, counted.combinations) << scheme_name(scheme);
      ASSERT_EQ(analytic.word_ops, counted.word_ops) << scheme_name(scheme);
      ASSERT_EQ(analytic.global_words, counted.global_words) << scheme_name(scheme);
      ASSERT_EQ(analytic.local_words, counted.local_words) << scheme_name(scheme);
      ASSERT_EQ(analytic.distinct_rows, counted.distinct_rows) << scheme_name(scheme);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Opts, Analytic25,
                         ::testing::Values(OptCase{false, false}, OptCase{true, false},
                                           OptCase{false, true}, OptCase{true, true}));

// --- workload / scheduling ---------------------------------------------------

TEST(Workload25, TotalsMatchCombinatorics) {
  const std::uint32_t G = 40;
  for (const Scheme2 scheme : {Scheme2::k1x1, Scheme2::k2x1}) {
    const auto model = WorkloadModel::for_scheme2(scheme, G);
    EXPECT_EQ(model.total_threads(), scheme2_threads(scheme, G));
    EXPECT_TRUE(model.total_work() == static_cast<u128>(binomial(G, 2)));
  }
  for (const Scheme5 scheme : {Scheme5::k3x2, Scheme5::k4x1}) {
    const auto model = WorkloadModel::for_scheme5(scheme, G);
    EXPECT_EQ(model.total_threads(), scheme5_threads(scheme, G));
    EXPECT_TRUE(model.total_work() == static_cast<u128>(binomial(G, 5)));
  }
}

TEST(Workload25, WorkAtMatchesPerThreadFormula) {
  const std::uint32_t G = 18;
  for (const Scheme5 scheme : {Scheme5::k3x2, Scheme5::k4x1}) {
    const auto model = WorkloadModel::for_scheme5(scheme, G);
    for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
      ASSERT_EQ(model.work_at(lambda), scheme5_thread_work(scheme, G, lambda))
          << scheme_name(scheme) << " " << lambda;
    }
  }
}

TEST(Workload25, EquiAreaBalancesFiveHit) {
  const auto model = WorkloadModel::for_scheme5(Scheme5::k4x1, 200);
  const auto ea = equiarea_schedule(model, 60);
  const auto stats = schedule_imbalance(model, ea);
  EXPECT_LT(stats.imbalance, 1.01);
  const auto fast = equiarea_schedule(model, 24);
  const auto naive = equiarea_schedule_naive(model, 24);
  EXPECT_EQ(fast, naive);
}

// --- engine / cluster integration -------------------------------------------

TEST(KernelEvaluator, MatchesSerialForAllHitCounts) {
  for (const std::uint32_t hits : {2u, 3u, 4u, 5u}) {
    const auto f = make_fixture(hits == 5 ? 14 : 24, hits, 900 + hits);
    const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, hits);
    const EvalResult kernel = make_kernel_evaluator(hits)(f.data.tumor, f.data.normal, f.ctx);
    EXPECT_EQ(kernel.combo_rank, serial.combo_rank) << "hits=" << hits;
    EXPECT_DOUBLE_EQ(kernel.f, serial.f) << "hits=" << hits;
  }
}

TEST(KernelEvaluator, FallsBackToSerialForOtherHitCounts) {
  const auto f = make_fixture(14, 3, 905);
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 6);
  const EvalResult fallback = make_kernel_evaluator(6)(f.data.tumor, f.data.normal, f.ctx);
  EXPECT_EQ(fallback.combo_rank, serial.combo_rank);
}

TEST(Cluster25, DistributedTwoHitMatchesSerialEngine) {
  const auto f = make_fixture(30, 2, 910);
  EngineConfig engine;
  engine.hits = 2;
  const GreedyResult serial =
      run_greedy(f.data.tumor, f.data.normal, engine, make_serial_evaluator(2));
  SummitConfig config;
  config.nodes = 3;
  DistributedOptions options;
  options.hits = 2;
  const auto result = ClusterRunner(config).run(f.data, options);
  ASSERT_EQ(result.greedy.iterations.size(), serial.iterations.size());
  for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
    EXPECT_EQ(result.greedy.iterations[i].genes, serial.iterations[i].genes);
  }
}

TEST(Cluster25, DistributedFiveHitMatchesSerialEngine) {
  const auto f = make_fixture(14, 5, 911);
  EngineConfig engine;
  engine.hits = 5;
  const GreedyResult serial =
      run_greedy(f.data.tumor, f.data.normal, engine, make_serial_evaluator(5));
  SummitConfig config;
  config.nodes = 2;
  DistributedOptions options;
  options.hits = 5;
  const auto result = ClusterRunner(config).run(f.data, options);
  ASSERT_EQ(result.greedy.iterations.size(), serial.iterations.size());
  for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
    EXPECT_EQ(result.greedy.iterations[i].genes, serial.iterations[i].genes);
  }
}

TEST(ClusterModel25, FiveHitAtScaleIsModellable) {
  // §V: each extra hit costs ~G/h more work; 5-hit at paper scale must be
  // priceable by the analytic model without enumeration.
  SummitConfig config;
  config.nodes = 1000;
  ModelInputs inputs;
  inputs.hits = 5;
  inputs.genes = 15000;  // C(15000,5) ~ 6.3e18 still fits u64
  inputs.first_iteration_only = true;
  const auto run = model_cluster_run(config, inputs);
  EXPECT_GT(run.total_time, 0.0);
  // 4-hit at the same G for comparison: 5-hit is ~(G-4)/5 ~ 3000x slower.
  ModelInputs four = inputs;
  four.hits = 4;
  const auto run4 = model_cluster_run(config, four);
  EXPECT_GT(run.total_time / run4.total_time, 500.0);
}

}  // namespace
}  // namespace multihit
