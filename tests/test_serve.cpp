// Multi-tenant job service suite (src/serve).
//
// The load-bearing properties, in order of importance:
//   1. Determinism: replaying one seeded trace twice produces byte-identical
//      multihit.serve.v1 reports.
//   2. Answer invariance: every completed job's selections are bit-identical
//      to a standalone single-job run — time-sharing the fleet, preemption,
//      caching, and invalidation must never change an answer.
//   3. Policy: admission control (queue bound, per-tenant quotas) and
//      priority scheduling actually bite.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "data/registry.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"

namespace multihit::serve {
namespace {

// --- the N-jobs-over-G-GPUs split -------------------------------------------

TEST(PartitionGpus, ProportionalWithFloorAndExactSum) {
  const std::vector<double> work{3.0, 1.0};
  const auto grants = partition_gpus_across_jobs(work, 8);
  // Floor of 1 each, spare 6 split 4.5/1.5 -> 4/1 by floor, the leftover GPU
  // to the larger fraction; .5/.5 ties break to the lower index.
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{6, 2}));

  // Sum always equals the fleet, every job gets at least one GPU.
  const std::vector<double> skew{100.0, 1.0, 1.0, 0.0};
  const auto g2 = partition_gpus_across_jobs(skew, 24);
  EXPECT_EQ(std::accumulate(g2.begin(), g2.end(), 0u), 24u);
  for (const std::uint32_t g : g2) EXPECT_GE(g, 1u);
  EXPECT_GT(g2[0], g2[1]);
  EXPECT_EQ(g2[3], 1u) << "a zero-work job keeps only the liveness floor";
}

TEST(PartitionGpus, ZeroSignalSpreadsEvenly) {
  const auto grants = partition_gpus_across_jobs({0.0, 0.0, 0.0}, 8);
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{3, 3, 2}));
}

TEST(PartitionGpus, RejectsImpossibleInputs) {
  EXPECT_THROW(partition_gpus_across_jobs({}, 4), std::invalid_argument);
  EXPECT_THROW(partition_gpus_across_jobs({1.0, 1.0, 1.0}, 2), std::invalid_argument);
  EXPECT_THROW(partition_gpus_across_jobs({-1.0}, 4), std::invalid_argument);
}

// --- trace generation --------------------------------------------------------

TEST(TraceGen, DeterministicPerSeedAcrossAllMixes) {
  for (const ArrivalMix mix :
       {ArrivalMix::kOpen, ArrivalMix::kClosed, ArrivalMix::kBursty, ArrivalMix::kDiurnal}) {
    TraceSpec spec;
    spec.mix = mix;
    spec.jobs = 20;
    spec.seed = 99;
    if (mix != ArrivalMix::kClosed) spec.invalidate_rate = 0.15;
    const RequestTrace a = generate_trace(spec);
    const RequestTrace b = generate_trace(spec);
    ASSERT_EQ(a.requests.size(), b.requests.size()) << mix_name(mix);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival) << mix_name(mix) << " " << i;
      EXPECT_EQ(a.requests[i].tenant, b.requests[i].tenant);
      EXPECT_EQ(a.requests[i].cancer, b.requests[i].cancer);
      EXPECT_EQ(a.requests[i].kind, b.requests[i].kind);
    }
    // Tenants and cancer codes came from the defaults.
    EXPECT_EQ(a.spec.tenants.size(), 3u);
    EXPECT_EQ(a.spec.cancers.size(), cancer_registry().size());
  }
}

TEST(TraceGen, ValidatesSpecs) {
  TraceSpec zero_jobs;
  zero_jobs.jobs = 0;
  EXPECT_THROW(generate_trace(zero_jobs), std::invalid_argument);

  TraceSpec bad_rate;
  bad_rate.mean_interarrival = 0.0;
  EXPECT_THROW(generate_trace(bad_rate), std::invalid_argument);

  TraceSpec no_clients;
  no_clients.mix = ArrivalMix::kClosed;
  no_clients.clients = 0;
  EXPECT_THROW(generate_trace(no_clients), std::invalid_argument);

  TraceSpec bad_amplitude;
  bad_amplitude.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(bad_amplitude), std::invalid_argument);

  TraceSpec no_burst;
  no_burst.mix = ArrivalMix::kBursty;
  no_burst.burst_size = 0;
  EXPECT_THROW(generate_trace(no_burst), std::invalid_argument);
}

// --- cancer cache ------------------------------------------------------------

TEST(CancerCache, InvalidationDropsResultsAndRebuildsIdenticalMatrices) {
  CancerCache cache;
  const Dataset& first = cache.dataset("BRCA");
  const BitMatrix tumor_before = first.tumor;
  cache.store_result("BRCA", 4, {{1, 2, 3, 4}});
  ASSERT_NE(cache.find_result("BRCA", 4), nullptr);
  EXPECT_EQ(cache.generation("BRCA"), 0u);

  cache.invalidate("BRCA");
  EXPECT_EQ(cache.generation("BRCA"), 1u);
  EXPECT_EQ(cache.find_result("BRCA", 4), nullptr) << "results die with their generation";
  // The generator is deterministic per spec: the rebuilt matrices are
  // bit-identical — which is exactly why invalidations cannot change answers.
  EXPECT_EQ(cache.dataset("BRCA").tumor, tumor_before);

  EXPECT_EQ(cache.stats().dataset_builds, 2u);
  EXPECT_EQ(cache.stats().dataset_rebuilds, 1u) << "only the forced rebuild counts";
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_THROW(cache.dataset("NOPE"), std::invalid_argument);
}

// --- service replay ----------------------------------------------------------

ServiceOptions quick_options() {
  ServiceOptions options;
  options.gpus = 12;
  options.max_concurrent = 4;
  return options;
}

TEST(JobService, ReplayIsDeterministicByteForByte) {
  TraceSpec spec;
  spec.mix = ArrivalMix::kBursty;
  spec.jobs = 20;
  spec.seed = 3;
  spec.invalidate_rate = 0.2;
  const RequestTrace trace = generate_trace(spec);

  JobService a(quick_options());
  JobService b(quick_options());
  const std::string report_a = serve_report(a.replay(trace), trace, a.options()).dump();
  const std::string report_b = serve_report(b.replay(trace), trace, b.options()).dump();
  EXPECT_EQ(report_a, report_b);
}

TEST(JobService, EveryServedSelectionMatchesAStandaloneRun) {
  TraceSpec spec;
  spec.mix = ArrivalMix::kOpen;
  spec.jobs = 20;
  spec.seed = 5;
  spec.invalidate_rate = 0.2;  // answers must survive cache invalidation too
  const RequestTrace trace = generate_trace(spec);

  JobService service(quick_options());
  const ServeResult result = service.replay(trace);
  ASSERT_GE(result.completed, 20u * 9 / 10);

  std::uint32_t checked = 0;
  for (const JobRecord& job : result.jobs) {
    if (job.outcome != JobOutcome::kCompleted) continue;
    const auto type = find_cancer_type(job.cancer);
    ASSERT_TRUE(type.has_value());
    const Dataset data = generate_dataset(CancerCache::serve_spec(*type));
    EngineConfig config;
    config.hits = job.hits;
    const GreedyResult standalone =
        run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(job.hits));
    EXPECT_EQ(job.selections, standalone.combinations())
        << "job " << job.id << " (" << job.cancer << ", " << job.hits << "-hit)";
    ++checked;
  }
  EXPECT_EQ(checked, result.completed);
}

TEST(JobService, SecondReplayIsServedFromTheResultCache) {
  TraceSpec spec;
  spec.jobs = 12;
  spec.seed = 17;
  const RequestTrace trace = generate_trace(spec);

  JobService service(quick_options());
  const ServeResult cold = service.replay(trace);
  const ServeResult warm = service.replay(trace);
  EXPECT_EQ(warm.completed, cold.completed);
  EXPECT_EQ(warm.cache_hits, warm.completed) << "every warm job is a result-cache hit";
  EXPECT_EQ(warm.rounds, 0u) << "no GPU round runs when every answer is cached";
  for (std::size_t i = 0; i < warm.jobs.size(); ++i) {
    EXPECT_EQ(warm.jobs[i].selections, cold.jobs[i].selections);
  }
}

TEST(JobService, QueueBoundAndQuotaRejectDeterministically) {
  // A thundering herd into a tiny queue: admissions stop at capacity.
  TraceSpec spec;
  spec.mix = ArrivalMix::kBursty;
  spec.jobs = 12;
  spec.burst_size = 12;  // all twelve arrive at t = 0
  spec.seed = 23;
  spec.tenants = {{"solo", 0, 1.0}};
  // Twelve distinct codes so no request is absorbed by the result cache.
  for (const CancerType& type : cancer_registry()) spec.cancers.push_back(type.code);
  const RequestTrace trace = generate_trace(spec);

  ServiceOptions tight = quick_options();
  tight.queue_capacity = 3;
  tight.tenant_quota = 8;
  JobService queue_bound(tight);
  const ServeResult queued = queue_bound.replay(trace);
  std::uint32_t queue_rejects = 0;
  for (const JobRecord& job : queued.jobs) {
    if (job.outcome == JobOutcome::kRejectedQueueFull) ++queue_rejects;
  }
  EXPECT_EQ(queue_rejects, 9u) << "capacity 3 admits exactly 3 of the herd";

  ServiceOptions quota = quick_options();
  quota.queue_capacity = 16;
  quota.tenant_quota = 2;
  JobService quota_bound(quota);
  const ServeResult quotad = quota_bound.replay(trace);
  std::uint32_t quota_rejects = 0;
  for (const JobRecord& job : quotad.jobs) {
    if (job.outcome == JobOutcome::kRejectedQuota) ++quota_rejects;
  }
  EXPECT_EQ(quota_rejects, 10u) << "quota 2 caps the single tenant's in-flight jobs";
}

TEST(JobService, PriorityPreemptsAtIterationBoundaries) {
  // Four bronze jobs saturate a two-slot service; a gold job arriving
  // mid-flight must enter the running set at the next round boundary, ahead
  // of every queued bronze job.
  RequestTrace trace;
  trace.spec.mix = ArrivalMix::kBursty;
  trace.spec.jobs = 5;
  const std::vector<std::string> codes{"BRCA", "ACC", "ESCA", "LUAD"};
  for (std::size_t i = 0; i < 4; ++i) {
    Request r;
    r.arrival = 0.0;
    r.tenant = "bronze";
    r.priority = 0;
    r.cancer = codes[i];
    trace.requests.push_back(r);
  }
  Request gold;
  gold.arrival = 0.5;  // lands inside round 0
  gold.tenant = "gold";
  gold.priority = 2;
  gold.cancer = "LUSC";
  trace.requests.push_back(gold);

  ServiceOptions options;
  options.gpus = 4;
  options.max_concurrent = 2;
  JobService service(options);
  const ServeResult result = service.replay(trace);
  ASSERT_EQ(result.completed, 5u);

  const JobRecord& gold_job = result.jobs[4];
  EXPECT_EQ(gold_job.tenant, "gold");
  // Bronze jobs 2 and 3 were still queued when gold arrived; gold runs first.
  EXPECT_LT(gold_job.start, result.jobs[2].start);
  EXPECT_LT(gold_job.start, result.jobs[3].start);
  EXPECT_GT(gold_job.start, 0.0) << "gold still waits for the round boundary";
}

TEST(JobService, ClosedLoopClientsNeverOverlapThemselves) {
  TraceSpec spec;
  spec.mix = ArrivalMix::kClosed;
  spec.jobs = 16;
  spec.clients = 4;
  spec.seed = 29;
  const RequestTrace trace = generate_trace(spec);

  JobService service(quick_options());
  const ServeResult result = service.replay(trace);
  EXPECT_EQ(result.completed + result.rejected, 16u);

  // Per client, request k+1 arrives exactly think_time after request k
  // resolved — the closed-loop contract.
  std::vector<const JobRecord*> last(spec.clients, nullptr);
  for (const JobRecord& job : result.jobs) {
    if (const JobRecord* prev = last[job.client]; prev != nullptr) {
      const double resolved =
          prev->outcome == JobOutcome::kCompleted ? prev->finish : prev->arrival;
      EXPECT_NEAR(job.arrival, resolved + spec.think_time, 1e-9)
          << "client " << job.client << " job " << job.id;
    }
    last[job.client] = &job;
  }
}

TEST(JobService, ReportCarriesSchemaAndPerTenantStats) {
  TraceSpec spec;
  spec.jobs = 10;
  spec.seed = 31;
  const RequestTrace trace = generate_trace(spec);
  JobService service(quick_options());
  const ServeResult result = service.replay(trace);
  const obs::JsonValue doc = serve_report(result, trace, service.options());

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "multihit.serve.v1");
  EXPECT_EQ(doc.find("jobs")->size(), result.jobs.size());
  EXPECT_EQ(doc.find("tenants")->size(), result.tenants.size());
  EXPECT_EQ(static_cast<std::uint64_t>(doc.find("summary")->find("completed")->as_number()),
            result.completed);
  // Percentiles are ordered and makespan bounds every latency.
  EXPECT_LE(result.p50_latency, result.p99_latency);
  EXPECT_LE(result.p99_latency, result.makespan);
}

// --- serve telemetry ---------------------------------------------------------

TEST(JobService, LatencyHistogramsSplitBySourceAndCacheHitsCostCacheHitSeconds) {
  TraceSpec spec;
  spec.jobs = 12;
  spec.seed = 5;
  const RequestTrace trace = generate_trace(spec);
  ServiceOptions options = quick_options();
  obs::Recorder rec;
  options.recorder = &rec;
  JobService service(options);
  const ServeResult first = service.replay(trace);
  const ServeResult second = service.replay(trace);  // mostly result-cache hits
  ASSERT_GT(second.cache_hits, 0u);

  std::uint64_t cache_samples = 0;
  std::uint64_t computed_samples = 0;
  for (const TenantSpec& tenant : trace.spec.tenants) {
    const obs::Histogram& cache = rec.metrics.histogram(
        "serve.job_latency", {{"source", "cache"}, {"tenant", tenant.name}});
    // A cache hit costs the modeled lookup+transfer time (to simulated-clock
    // rounding) — the regression this pins is cache hits billed a compute.
    for (const double v : cache.samples()) {
      EXPECT_NEAR(v, options.cache_hit_seconds, 1e-6);
    }
    cache_samples += cache.count();
    computed_samples += rec.metrics
                            .histogram("serve.job_latency",
                                       {{"source", "computed"}, {"tenant", tenant.name}})
                            .count();
  }
  EXPECT_EQ(cache_samples, first.cache_hits + second.cache_hits);
  EXPECT_EQ(computed_samples, (first.completed - first.cache_hits) +
                                  (second.completed - second.cache_hits));
}

TEST(JobService, QueueDepthIsSampledAtEveryRoundBoundary) {
  TraceSpec spec;
  spec.mix = ArrivalMix::kBursty;
  spec.jobs = 12;
  spec.seed = 9;
  spec.burst_size = 4;
  spec.burst_every = 120.0;  // long idle gaps between bursts
  const RequestTrace trace = generate_trace(spec);
  ServiceOptions options = quick_options();
  obs::Recorder rec;
  options.recorder = &rec;
  JobService service(options);
  const ServeResult result = service.replay(trace);

  std::vector<const obs::CounterSample*> depth;
  for (const obs::CounterSample& c : rec.trace.counters()) {
    if (c.name == "serve.queue_depth") depth.push_back(&c);
  }
  // One sample at t=0, one per service round (idle boundaries included), and
  // one per admission — never fewer than rounds+1.
  ASSERT_GE(depth.size(), result.rounds + 1);
  EXPECT_DOUBLE_EQ(depth.front()->at, 0.0);
  EXPECT_DOUBLE_EQ(depth.back()->value, 0.0) << "the backlog drains by the end";
  // The idle gaps between bursts still get boundary samples reading zero.
  const bool idle_zero = std::any_of(depth.begin(), depth.end(), [&](const auto* c) {
    return c->value == 0.0 && c->at > 0.0 && c->at < result.makespan;
  });
  EXPECT_TRUE(idle_zero);
  for (std::size_t i = 1; i < depth.size(); ++i) {
    EXPECT_LE(depth[i - 1]->at, depth[i]->at) << "samples arrive in time order";
  }
}

TEST(JobService, SloCountersAgreeWithTheEvaluatedReport) {
  TraceSpec spec;
  spec.mix = ArrivalMix::kBursty;
  spec.jobs = 14;
  spec.seed = 21;
  spec.burst_size = 7;  // each burst overwhelms the 4-deep queue
  spec.burst_every = 1000.0;
  const RequestTrace trace = generate_trace(spec);
  ServiceOptions options = quick_options();
  options.queue_capacity = 4;
  options.max_concurrent = 2;
  options.slo = obs::parse_slo("slo * latency p99 below 0.001\n");  // everything is bad
  obs::Recorder rec;
  options.recorder = &rec;
  JobService service(options);
  const ServeResult result = service.replay(trace);
  const obs::SloReport report = obs::evaluate_slo(slo_input(result), options.slo);

  // Final cumulative serve.slo_total / serve.slo_bad per tenant must equal
  // the offline evaluator's event and bad counts — the burn detectors read
  // these counters, so drift here desynchronizes alerts from verdicts.
  std::map<std::string, double> last;
  for (const obs::CounterSample& c : rec.trace.counters()) last[c.name] = c.value;
  for (const obs::SloTenantReport& tenant : report.tenants) {
    const double total = last[obs::series_with_labels("serve.slo_total",
                                                      {{"tenant", tenant.tenant}})];
    const double bad =
        last[obs::series_with_labels("serve.slo_bad", {{"tenant", tenant.tenant}})];
    EXPECT_DOUBLE_EQ(total, static_cast<double>(tenant.completed + tenant.rejected))
        << tenant.tenant;
    EXPECT_DOUBLE_EQ(bad, static_cast<double>(tenant.bad)) << tenant.tenant;
  }
  EXPECT_GT(result.rejected, 0u) << "the tight queue actually shed load";
}

}  // namespace
}  // namespace multihit::serve
