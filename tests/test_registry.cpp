#include "data/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace multihit {
namespace {

TEST(Registry, HasTwelveTypes) {
  EXPECT_EQ(cancer_registry().size(), 12u);
}

TEST(Registry, ElevenFourPlusHitTypes) {
  // The paper studies 11 cancer types estimated to require >= 4 hits.
  EXPECT_EQ(four_plus_hit_types().size(), 11u);
  for (const auto& t : four_plus_hit_types()) EXPECT_GE(t.hits, 4u);
}

TEST(Registry, BrcaMatchesPaperDimensions) {
  const auto brca = find_cancer_type("BRCA");
  ASSERT_TRUE(brca.has_value());
  EXPECT_EQ(brca->paper_genes, 19411u);
  EXPECT_EQ(brca->paper_tumor_samples, 911u);
  EXPECT_LT(brca->hits, 4u);  // BRCA was estimated to need only 2-3 hits
}

TEST(Registry, AccIsSmallest) {
  const auto acc = find_cancer_type("ACC");
  ASSERT_TRUE(acc.has_value());
  for (const auto& t : cancer_registry()) {
    EXPECT_LE(acc->paper_tumor_samples, t.paper_tumor_samples);
  }
}

TEST(Registry, CodesAreUnique) {
  std::set<std::string> codes;
  for (const auto& t : cancer_registry()) {
    EXPECT_TRUE(codes.insert(t.code).second) << "duplicate code " << t.code;
  }
}

TEST(Registry, UnknownCodeReturnsNothing) {
  EXPECT_FALSE(find_cancer_type("NOPE").has_value());
}

TEST(Registry, FunctionalSpecsAreEnumerable) {
  // Functional downscales must stay laptop-enumerable for 4-hit spaces:
  // C(G,4) <= ~1e8 per registry entry.
  for (const auto& t : cancer_registry()) {
    EXPECT_LE(t.functional.genes, 160u) << t.code;
    EXPECT_GE(t.functional.genes, 4u * t.functional.num_combinations) << t.code;
    EXPECT_EQ(t.functional.hits, t.hits) << t.code;
  }
}

TEST(Registry, FunctionalDatasetGenerates) {
  const auto acc = find_cancer_type("ACC");
  ASSERT_TRUE(acc.has_value());
  const Dataset data = generate_functional_dataset(*acc);
  EXPECT_EQ(data.name, "ACC");
  EXPECT_EQ(data.genes(), acc->functional.genes);
  EXPECT_EQ(data.tumor_samples(), acc->functional.tumor_samples);
  EXPECT_FALSE(data.planted.empty());
}

TEST(Registry, SeedsDifferAcrossTypes) {
  std::set<std::uint64_t> seeds;
  for (const auto& t : cancer_registry()) {
    EXPECT_TRUE(seeds.insert(t.functional.seed).second) << t.code;
  }
}

}  // namespace
}  // namespace multihit
