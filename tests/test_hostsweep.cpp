// Determinism harness for the host-threaded sweep (src/core/hostsweep.hpp)
// and its building blocks (ChunkQueue, Arena).
//
// The load-bearing property: the sweep's selections are BIT-IDENTICAL across
// thread counts {1, 2, 8}, chunk sizes (dividing and non-dividing), and to
// both the serial reference and the simulated-cluster path — work stealing
// off the lock-free queue may deliver chunks to workers in any order, but
// the chunk-begin-sorted candidate fold plus EvalResult's strict total order
// make the winner independent of that order.

#include "core/hostsweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/distributed.hpp"
#include "core/arena.hpp"
#include "core/engine.hpp"
#include "core/serial.hpp"
#include "core/workqueue.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

// --- ChunkQueue -------------------------------------------------------------

TEST(ChunkQueue, CoversRangeExactlyOnceWithNonDividingChunk) {
  // 0..103 in chunks of 10: eleven chunks, last one short.
  ChunkQueue queue(0, 103, 10);
  EXPECT_EQ(queue.chunk_count(), 11u);
  std::vector<bool> seen(103, false);
  std::uint64_t begin = 0, end = 0;
  std::uint64_t chunks = 0;
  while (queue.next(&begin, &end)) {
    ++chunks;
    EXPECT_LT(begin, end);
    EXPECT_LE(end, 103u);
    for (std::uint64_t i = begin; i < end; ++i) {
      EXPECT_FALSE(seen[i]) << "index " << i << " claimed twice";
      seen[i] = true;
    }
  }
  EXPECT_EQ(chunks, 11u);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  // Exhausted queues stay exhausted.
  EXPECT_FALSE(queue.next(&begin, &end));
}

TEST(ChunkQueue, EmptyAndSingleChunkRanges) {
  ChunkQueue empty(5, 5, 8);
  std::uint64_t begin = 0, end = 0;
  EXPECT_EQ(empty.chunk_count(), 0u);
  EXPECT_FALSE(empty.next(&begin, &end));

  ChunkQueue one(7, 12, 100);
  EXPECT_EQ(one.chunk_count(), 1u);
  ASSERT_TRUE(one.next(&begin, &end));
  EXPECT_EQ(begin, 7u);
  EXPECT_EQ(end, 12u);
  EXPECT_FALSE(one.next(&begin, &end));
}

TEST(ChunkQueue, ConcurrentClaimsArePartition) {
  // 4 threads hammer one queue; the union of claims must be an exact
  // partition (no loss, no duplication) — the fetch_add contract.
  ChunkQueue queue(0, 10000, 7);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      std::uint64_t begin = 0, end = 0, local = 0;
      while (queue.next(&begin, &end)) local += end - begin;
      total.fetch_add(local);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(total.load(), 10000u);
}

// --- Arena ------------------------------------------------------------------

TEST(Arena, ResetReusesTheSameBlock) {
  Arena arena;
  const auto first = arena.alloc_words(100);
  EXPECT_EQ(first.size(), 100u);
  const std::uint64_t* base = first.data();
  const std::uint64_t blocks_after_first = arena.block_allocations();

  for (int round = 0; round < 50; ++round) {
    arena.reset();
    const auto again = arena.alloc_words(100);
    EXPECT_EQ(again.data(), base) << "reset must rewind to the same storage";
  }
  EXPECT_EQ(arena.block_allocations(), blocks_after_first)
      << "steady-state reset/alloc cycles must not touch the heap";
}

TEST(Arena, GrowsGeometricallyAndServesMixedSizes) {
  Arena arena;
  (void)arena.alloc_words(10);
  (void)arena.alloc_words(2000);  // forces a second block
  EXPECT_GE(arena.block_allocations(), 2u);
  EXPECT_GE(arena.capacity_words(), 2010u);

  arena.reset();
  EXPECT_EQ(arena.used_words(), 0u);
  // Everything fits in existing capacity now: no further heap traffic.
  const std::uint64_t blocks = arena.block_allocations();
  (void)arena.alloc_words(10);
  (void)arena.alloc_words(2000);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(Arena, ZeroSizedAllocationIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.alloc_words(0).empty());
}

// --- host sweep vs serial reference ----------------------------------------

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 32;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.05;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

TEST(HostSweep, MatchesSerialAcrossThreadsChunksAndHits) {
  for (const std::uint32_t hits : {2u, 3u, 4u}) {
    const Fixture f = make_fixture(hits, 4200 + hits);
    const EvalResult reference =
        serial_find_best(f.data.tumor, f.data.normal, f.ctx, hits);
    ASSERT_TRUE(reference.valid);

    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      // 64 divides most ranges here; 37 never does; 1'000'000 exceeds them.
      for (const std::uint64_t chunk : {64ull, 37ull, 1000000ull}) {
        HostSweepOptions options;
        options.hits = hits;
        options.threads = threads;
        options.chunk = chunk;
        HostSweepTelemetry telemetry;
        const EvalResult swept =
            host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options, &telemetry);
        ASSERT_TRUE(swept.valid);
        EXPECT_EQ(swept.combo_rank, reference.combo_rank)
            << "hits=" << hits << " threads=" << threads << " chunk=" << chunk;
        EXPECT_EQ(swept.f, reference.f);
        EXPECT_EQ(swept.tp, reference.tp);
        EXPECT_EQ(swept.tn, reference.tn);
        EXPECT_LE(telemetry.threads, threads);
        EXPECT_GE(telemetry.chunks, 1u);
      }
    }
  }
}

TEST(HostSweep, TelemetryCountsTheWholeSpace) {
  const Fixture f = make_fixture(4, 77);
  HostSweepOptions options;
  options.hits = 4;
  options.threads = 3;
  options.chunk = 50;
  HostSweepTelemetry telemetry;
  (void)host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options, &telemetry);
  // Every λ chunk must be evaluated exactly once regardless of scheduling.
  const std::uint64_t lambdas = scheme4_threads(Scheme4::k3x1, f.data.genes());
  EXPECT_EQ(telemetry.chunks, (lambdas + options.chunk - 1) / options.chunk);
  // 3x1 visits each 4-combination exactly once.
  EXPECT_EQ(telemetry.stats.combinations, binomial(f.data.genes(), 4));
}

TEST(HostSweep, RejectsInvalidConfigurations) {
  const Fixture f = make_fixture(3, 5);
  HostSweepOptions options;
  options.hits = 7;
  EXPECT_THROW((void)host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options),
               std::invalid_argument);
}

// --- full greedy determinism ------------------------------------------------

TEST(HostSweep, GreedySelectionsIdenticalAcrossThreadCountsAndToCluster) {
  SyntheticSpec spec;
  spec.genes = 36;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.02;
  spec.seed = 1337;
  const Dataset data = generate_dataset(spec);

  EngineConfig config;
  config.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(4));
  ASSERT_FALSE(serial.iterations.empty());

  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    for (const std::uint64_t chunk : {128ull, 97ull}) {
      HostSweepOptions options;
      options.hits = 4;
      options.threads = threads;
      options.chunk = chunk;
      const GreedyResult swept =
          run_greedy(data.tumor, data.normal, config, make_host_sweep_evaluator(options));
      EXPECT_EQ(swept.combinations(), serial.combinations())
          << "threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(swept.uncovered_tumor, serial.uncovered_tumor);
    }
  }

  // The simulated-cluster path must agree with the host sweep too: same
  // kernels, same merge semantics, different execution substrate.
  SummitConfig summit;
  summit.nodes = 2;
  const ClusterRunner runner(summit);
  const ClusterRunResult cluster = runner.run(data, DistributedOptions{});
  EXPECT_EQ(cluster.greedy.combinations(), serial.combinations());
}

}  // namespace
}  // namespace multihit
