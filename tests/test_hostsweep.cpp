// Determinism harness for the host-threaded sweep (src/core/hostsweep.hpp)
// and its building blocks (ChunkQueue, Arena).
//
// The load-bearing property: the sweep's selections are BIT-IDENTICAL across
// thread counts {1, 2, 8}, chunk sizes (dividing and non-dividing), and to
// both the serial reference and the simulated-cluster path — work stealing
// off the lock-free queue may deliver chunks to workers in any order, but
// the chunk-begin-sorted candidate fold plus EvalResult's strict total order
// make the winner independent of that order.

#include "core/hostsweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/distributed.hpp"
#include "core/arena.hpp"
#include "core/engine.hpp"
#include "core/serial.hpp"
#include "core/workqueue.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

// --- ChunkQueue -------------------------------------------------------------

TEST(ChunkQueue, CoversRangeExactlyOnceWithNonDividingChunk) {
  // 0..103 in chunks of 10: eleven chunks, last one short.
  ChunkQueue queue(0, 103, 10);
  EXPECT_EQ(queue.chunk_count(), 11u);
  std::vector<bool> seen(103, false);
  std::uint64_t begin = 0, end = 0;
  std::uint64_t chunks = 0;
  while (queue.next(&begin, &end)) {
    ++chunks;
    EXPECT_LT(begin, end);
    EXPECT_LE(end, 103u);
    for (std::uint64_t i = begin; i < end; ++i) {
      EXPECT_FALSE(seen[i]) << "index " << i << " claimed twice";
      seen[i] = true;
    }
  }
  EXPECT_EQ(chunks, 11u);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  // Exhausted queues stay exhausted.
  EXPECT_FALSE(queue.next(&begin, &end));
}

TEST(ChunkQueue, EmptyAndSingleChunkRanges) {
  ChunkQueue empty(5, 5, 8);
  std::uint64_t begin = 0, end = 0;
  EXPECT_EQ(empty.chunk_count(), 0u);
  EXPECT_FALSE(empty.next(&begin, &end));

  ChunkQueue one(7, 12, 100);
  EXPECT_EQ(one.chunk_count(), 1u);
  ASSERT_TRUE(one.next(&begin, &end));
  EXPECT_EQ(begin, 7u);
  EXPECT_EQ(end, 12u);
  EXPECT_FALSE(one.next(&begin, &end));
}

TEST(ChunkQueue, ConcurrentClaimsArePartition) {
  // 4 threads hammer one queue; the union of claims must be an exact
  // partition (no loss, no duplication) — the fetch_add contract.
  ChunkQueue queue(0, 10000, 7);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      std::uint64_t begin = 0, end = 0, local = 0;
      while (queue.next(&begin, &end)) local += end - begin;
      total.fetch_add(local);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(total.load(), 10000u);
}

// --- Arena ------------------------------------------------------------------

TEST(Arena, ResetReusesTheSameBlock) {
  Arena arena;
  const auto first = arena.alloc_words(100);
  EXPECT_EQ(first.size(), 100u);
  const std::uint64_t* base = first.data();
  const std::uint64_t blocks_after_first = arena.block_allocations();

  for (int round = 0; round < 50; ++round) {
    arena.reset();
    const auto again = arena.alloc_words(100);
    EXPECT_EQ(again.data(), base) << "reset must rewind to the same storage";
  }
  EXPECT_EQ(arena.block_allocations(), blocks_after_first)
      << "steady-state reset/alloc cycles must not touch the heap";
}

TEST(Arena, GrowsGeometricallyAndServesMixedSizes) {
  Arena arena;
  (void)arena.alloc_words(10);
  (void)arena.alloc_words(2000);  // forces a second block
  EXPECT_GE(arena.block_allocations(), 2u);
  EXPECT_GE(arena.capacity_words(), 2010u);

  arena.reset();
  EXPECT_EQ(arena.used_words(), 0u);
  // Everything fits in existing capacity now: no further heap traffic.
  const std::uint64_t blocks = arena.block_allocations();
  (void)arena.alloc_words(10);
  (void)arena.alloc_words(2000);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(Arena, ZeroSizedAllocationIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.alloc_words(0).empty());
}

// --- host sweep vs serial reference ----------------------------------------

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 32;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.05;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

TEST(HostSweep, MatchesSerialAcrossThreadsChunksAndHits) {
  for (const std::uint32_t hits : {2u, 3u, 4u}) {
    const Fixture f = make_fixture(hits, 4200 + hits);
    const EvalResult reference =
        serial_find_best(f.data.tumor, f.data.normal, f.ctx, hits);
    ASSERT_TRUE(reference.valid);

    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      // 64 divides most ranges here; 37 never does; 1'000'000 exceeds them.
      for (const std::uint64_t chunk : {64ull, 37ull, 1000000ull}) {
        HostSweepOptions options;
        options.hits = hits;
        options.threads = threads;
        options.chunk = chunk;
        HostSweepTelemetry telemetry;
        const EvalResult swept =
            host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options, &telemetry);
        ASSERT_TRUE(swept.valid);
        EXPECT_EQ(swept.combo_rank, reference.combo_rank)
            << "hits=" << hits << " threads=" << threads << " chunk=" << chunk;
        EXPECT_EQ(swept.f, reference.f);
        EXPECT_EQ(swept.tp, reference.tp);
        EXPECT_EQ(swept.tn, reference.tn);
        EXPECT_LE(telemetry.threads, threads);
        EXPECT_GE(telemetry.chunks, 1u);
      }
    }
  }
}

TEST(HostSweep, TelemetryCountsTheWholeSpace) {
  const Fixture f = make_fixture(4, 77);
  HostSweepOptions options;
  options.hits = 4;
  options.threads = 3;
  options.chunk = 50;
  HostSweepTelemetry telemetry;
  (void)host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options, &telemetry);
  // Every λ chunk must be evaluated exactly once regardless of scheduling.
  const std::uint64_t lambdas = scheme4_threads(Scheme4::k3x1, f.data.genes());
  EXPECT_EQ(telemetry.chunks, (lambdas + options.chunk - 1) / options.chunk);
  // 3x1 visits each 4-combination exactly once.
  EXPECT_EQ(telemetry.stats.combinations, binomial(f.data.genes(), 4));
}

TEST(HostSweep, RejectsInvalidConfigurations) {
  const Fixture f = make_fixture(3, 5);
  HostSweepOptions options;
  options.hits = 7;
  EXPECT_THROW((void)host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options),
               std::invalid_argument);
}

TEST(HostSweep, FiveHitRoutesToTheFiveHitKernel) {
  // evaluate_chunk's dispatch once reached 5-hit through a bare `default:`;
  // now case 5 is explicit and the default throws. Pin the 5-hit route
  // against the serial reference so a future mis-route can't score the
  // wrong combination space silently.
  SyntheticSpec spec;
  spec.genes = 22;
  spec.tumor_samples = 60;
  spec.normal_samples = 40;
  spec.hits = 5;
  spec.num_combinations = 3;
  spec.background_rate = 0.05;
  spec.seed = 86;
  const Dataset data = generate_dataset(spec);
  const FContext ctx{FParams{}, spec.tumor_samples, spec.normal_samples};
  const EvalResult reference = serial_find_best(data.tumor, data.normal, ctx, 5);
  ASSERT_TRUE(reference.valid);

  HostSweepOptions options;
  options.hits = 5;
  options.threads = 2;
  options.chunk = 61;
  HostSweepTelemetry telemetry;
  const EvalResult swept =
      host_sweep_find_best(data.tumor, data.normal, ctx, options, &telemetry);
  ASSERT_TRUE(swept.valid);
  EXPECT_EQ(swept.combo_rank, reference.combo_rank);
  EXPECT_EQ(swept.f, reference.f);
  // 4x1 visits each 5-combination exactly once.
  EXPECT_EQ(telemetry.stats.combinations, binomial(spec.genes, 5));
}

// --- worker-clamp edge cases ------------------------------------------------

TEST(HostSweep, EmptyLambdaSpaceRunsOneWorkerAndStaysInvalid) {
  // genes < scheme order: C(2,3) = 0 threads under 3x1 — zero chunks. The
  // clamp must still run exactly one worker (which drains nothing) instead
  // of underflowing, and the result must stay invalid.
  BitMatrix tumor(2, 8);
  BitMatrix normal(2, 8);
  tumor.set(0, 0);
  const FContext ctx{FParams{}, 8, 8};
  HostSweepOptions options;
  options.hits = 4;
  options.threads = 6;
  HostSweepTelemetry telemetry;
  const EvalResult best = host_sweep_find_best(tumor, normal, ctx, options, &telemetry);
  EXPECT_FALSE(best.valid);
  EXPECT_EQ(telemetry.chunks, 0u);
  EXPECT_EQ(telemetry.candidates, 0u);
  EXPECT_EQ(telemetry.threads, 1u);
  EXPECT_EQ(telemetry.threads_requested, 6u);
}

TEST(HostSweep, MoreWorkersThanChunksClampsAndReportsBothCounts) {
  const Fixture f = make_fixture(4, 11);
  HostSweepOptions options;
  options.hits = 4;
  options.threads = 8;
  options.chunk = 1000000;  // swallows the whole λ space: one chunk
  HostSweepTelemetry telemetry;
  const EvalResult best =
      host_sweep_find_best(f.data.tumor, f.data.normal, f.ctx, options, &telemetry);
  ASSERT_TRUE(best.valid);
  EXPECT_EQ(telemetry.chunks, 1u);
  EXPECT_EQ(telemetry.threads, 1u) << "8 workers for 1 chunk is 7 idle threads";
  EXPECT_EQ(telemetry.threads_requested, 8u);
  // The telemetry must report the chunk size the queue actually used —
  // before this field existed, consumers had to guess it from the options.
  EXPECT_EQ(telemetry.chunk_size, 1000000u);
}

// --- evaluator telemetry sink ----------------------------------------------

TEST(HostSweep, EvaluatorSinkAccumulatesWholeGreedyRunWithSerialParity) {
  // make_host_sweep_evaluator used to DROP HostSweepTelemetry on the floor;
  // the sink now accumulates every per-iteration sweep. Parity pin: the 3x1
  // scheme visits each 4-combination exactly once per iteration, so the
  // sink's combination count must equal iterations x C(genes, 4) — the same
  // space the serial reference scans.
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 64;
  spec.normal_samples = 48;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.03;
  spec.seed = 4242;
  const Dataset data = generate_dataset(spec);

  EngineConfig config;
  config.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(4));
  ASSERT_FALSE(serial.iterations.empty());

  HostSweepOptions options;
  options.hits = 4;
  options.threads = 3;
  options.chunk = 113;
  HostSweepTelemetry total;
  const GreedyResult swept = run_greedy(data.tumor, data.normal, config,
                                        make_host_sweep_evaluator(options, &total));
  EXPECT_EQ(swept.combinations(), serial.combinations());

  const std::uint64_t iterations = swept.iterations.size();
  const std::uint64_t lambdas = scheme4_threads(Scheme4::k3x1, data.genes());
  const std::uint64_t chunks_per_sweep = (lambdas + options.chunk - 1) / options.chunk;
  EXPECT_EQ(total.stats.combinations, iterations * binomial(data.genes(), 4));
  EXPECT_EQ(total.chunks, iterations * chunks_per_sweep);
  EXPECT_GE(total.candidates, iterations);  // at least one valid candidate each
  EXPECT_EQ(total.chunk_size, options.chunk);
  EXPECT_EQ(total.threads_requested, 3u);
}

// --- full greedy determinism ------------------------------------------------

TEST(HostSweep, GreedySelectionsIdenticalAcrossThreadCountsAndToCluster) {
  SyntheticSpec spec;
  spec.genes = 36;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.02;
  spec.seed = 1337;
  const Dataset data = generate_dataset(spec);

  EngineConfig config;
  config.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(4));
  ASSERT_FALSE(serial.iterations.empty());

  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    for (const std::uint64_t chunk : {128ull, 97ull}) {
      HostSweepOptions options;
      options.hits = 4;
      options.threads = threads;
      options.chunk = chunk;
      const GreedyResult swept =
          run_greedy(data.tumor, data.normal, config, make_host_sweep_evaluator(options));
      EXPECT_EQ(swept.combinations(), serial.combinations())
          << "threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(swept.uncovered_tumor, serial.uncovered_tumor);
    }
  }

  // The simulated-cluster path must agree with the host sweep too: same
  // kernels, same merge semantics, different execution substrate.
  SummitConfig summit;
  summit.nodes = 2;
  const ClusterRunner runner(summit);
  const ClusterRunResult cluster = runner.run(data, DistributedOptions{});
  EXPECT_EQ(cluster.greedy.combinations(), serial.combinations());
}

}  // namespace
}  // namespace multihit
