#include "util/log.hpp"

#include <gtest/gtest.h>

namespace multihit::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_level(Level::kWarn);
  EXPECT_EQ(level(), Level::kWarn);
  set_level(Level::kTrace);
  EXPECT_EQ(level(), Level::kTrace);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_level("trace"), Level::kTrace);
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("info"), Level::kInfo);
  EXPECT_EQ(parse_level("warn"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("off"), Level::kOff);
  EXPECT_EQ(parse_level("bogus"), Level::kInfo);  // unknown -> info
}

TEST(Log, MacrosSkipFormattingWhenDisabled) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  MH_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // the whole statement short-circuits
  set_level(Level::kTrace);
  MH_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitRespectsThreshold) {
  LogLevelGuard guard;
  set_level(Level::kError);
  // Below-threshold emits must be no-ops (no crash, no output assertions
  // possible on stderr here — the contract is simply "does not throw").
  emit(Level::kInfo, "suppressed");
  emit(Level::kError, "visible");
  SUCCEED();
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(Level::kTrace), static_cast<int>(Level::kDebug));
  EXPECT_LT(static_cast<int>(Level::kDebug), static_cast<int>(Level::kInfo));
  EXPECT_LT(static_cast<int>(Level::kInfo), static_cast<int>(Level::kWarn));
  EXPECT_LT(static_cast<int>(Level::kWarn), static_cast<int>(Level::kError));
  EXPECT_LT(static_cast<int>(Level::kError), static_cast<int>(Level::kOff));
}

}  // namespace
}  // namespace multihit::log
