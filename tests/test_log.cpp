#include "util/log.hpp"

#include <gtest/gtest.h>

namespace multihit::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_level(Level::kWarn);
  EXPECT_EQ(level(), Level::kWarn);
  set_level(Level::kTrace);
  EXPECT_EQ(level(), Level::kTrace);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_level("trace"), Level::kTrace);
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("info"), Level::kInfo);
  EXPECT_EQ(parse_level("warn"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("off"), Level::kOff);
}

TEST(Log, ParseLevelRejectsUnknownNames) {
  // Regression: unknown names used to map silently to kInfo, so a typo like
  // --log-level=dbug quietly ran at the default verbosity.
  EXPECT_EQ(parse_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_level("dbug"), std::nullopt);
  EXPECT_EQ(parse_level(""), std::nullopt);
  EXPECT_EQ(parse_level("INFO"), std::nullopt);  // names are case-sensitive
}

TEST(Log, LevelNamesListsEveryParseableName) {
  const std::string names{level_names()};
  for (const char* name : {"trace", "debug", "info", "warn", "error", "off"}) {
    EXPECT_NE(names.find(name), std::string::npos) << name;
  }
}

TEST(Log, MacrosSkipFormattingWhenDisabled) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  MH_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // the whole statement short-circuits
  set_level(Level::kTrace);
  MH_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitRespectsThreshold) {
  LogLevelGuard guard;
  set_level(Level::kError);
  // Below-threshold emits must be no-ops (no crash, no output assertions
  // possible on stderr here — the contract is simply "does not throw").
  emit(Level::kInfo, "suppressed");
  emit(Level::kError, "visible");
  SUCCEED();
}

TEST(Log, SinkCapturesFilteredRecords) {
  LogLevelGuard guard;
  set_level(Level::kInfo);
  std::vector<std::pair<Level, std::string>> seen;
  set_sink([&](Level level, std::string_view message) {
    seen.emplace_back(level, std::string(message));
  });
  emit(Level::kDebug, "below threshold");
  emit(Level::kWarn, "captured");
  MH_LOG_INFO << "streamed " << 7;
  set_sink({});  // restore stderr before asserting
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair{Level::kWarn, std::string("captured")}));
  EXPECT_EQ(seen[1], (std::pair{Level::kInfo, std::string("streamed 7")}));
  emit(Level::kError, "after sink removal");  // must not reach the old sink
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Log, FormatEventIsMachineParseable) {
  EXPECT_EQ(format_event("fault.crash",
                         {field("rank", 3u), field("iter", 1u), field("t", 2.5)}),
            "fault.crash rank=3 iter=1 t=2.5");
  // Values with spaces are quoted so a field never splits into two tokens.
  EXPECT_EQ(format_event("note", {field("msg", std::string("two words"))}),
            "note msg=\"two words\"");
  EXPECT_EQ(format_event("bare", {}), "bare");
}

TEST(Log, FormatEventQuotesAndEscapesHostileValues) {
  // Regression: a value containing '"' used to be emitted verbatim inside
  // quotes, and a value containing '=' was emitted unquoted — both corrupt
  // the record for any key=value consumer.
  EXPECT_EQ(format_event("note", {field("msg", std::string("say \"hi\""))}),
            "note msg=\"say \\\"hi\\\"\"");
  EXPECT_EQ(format_event("note", {field("expr", std::string("a=b"))}),
            "note expr=\"a=b\"");
  EXPECT_EQ(format_event("note", {field("path", std::string("c:\\tmp"))}),
            "note path=\"c:\\\\tmp\"");
  EXPECT_EQ(format_event("note", {field("text", std::string("line1\nline2"))}),
            "note text=\"line1\\nline2\"");
  EXPECT_EQ(format_event("note", {field("empty", std::string())}), "note empty=\"\"");
}

TEST(Log, FormatParseEventRoundTrip) {
  const std::vector<Fields> cases = {
      {field("rank", 3u), field("t", 2.5)},
      {field("msg", std::string("two words"))},
      {field("msg", std::string("say \"hi\"")), field("expr", std::string("a=b"))},
      {field("path", std::string("c:\\tmp\nnext"))},
      {field("empty", std::string()), field("tab", std::string("a\tb"))},
      {},
  };
  for (const Fields& fields : cases) {
    const std::string record = format_event("evt.name", fields);
    const auto parsed = parse_event(record);
    ASSERT_TRUE(parsed.has_value()) << record;
    EXPECT_EQ(parsed->event, "evt.name") << record;
    EXPECT_EQ(parsed->fields, fields) << record;
  }
}

TEST(Log, ParseEventRejectsMalformedRecords) {
  EXPECT_EQ(parse_event(""), std::nullopt);
  EXPECT_EQ(parse_event("evt k"), std::nullopt);              // no '='
  EXPECT_EQ(parse_event("evt k=\"unterminated"), std::nullopt);
  EXPECT_EQ(parse_event("evt k=a\"b"), std::nullopt);         // bare quote
  EXPECT_EQ(parse_event("evt  k=v"), std::nullopt);           // double space
  EXPECT_EQ(parse_event("evt k=\"bad\\q\""), std::nullopt);   // unknown escape
}

TEST(Log, EmitEventReachesSinkStructured) {
  LogLevelGuard guard;
  set_level(Level::kInfo);
  std::vector<std::string> seen;
  set_sink([&](Level, std::string_view message) { seen.emplace_back(message); });
  emit_event(Level::kInfo, "fault.straggler",
             {field("rank", 2u), field("factor", 4.0)});
  emit_event(Level::kDebug, "fault.suppressed", {});
  set_sink({});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "fault.straggler rank=2 factor=4");
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(Level::kTrace), static_cast<int>(Level::kDebug));
  EXPECT_LT(static_cast<int>(Level::kDebug), static_cast<int>(Level::kInfo));
  EXPECT_LT(static_cast<int>(Level::kInfo), static_cast<int>(Level::kWarn));
  EXPECT_LT(static_cast<int>(Level::kWarn), static_cast<int>(Level::kError));
  EXPECT_LT(static_cast<int>(Level::kError), static_cast<int>(Level::kOff));
}

}  // namespace
}  // namespace multihit::log
