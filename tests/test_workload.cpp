#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include "combinat/binomial.hpp"

namespace multihit {
namespace {

class WorkloadModel4 : public ::testing::TestWithParam<Scheme4> {};

TEST_P(WorkloadModel4, TotalsMatchCombinatorics) {
  const std::uint32_t G = 50;
  const auto model = WorkloadModel::for_scheme4(GetParam(), G);
  EXPECT_EQ(model.total_threads(), scheme4_threads(GetParam(), G));
  EXPECT_TRUE(model.total_work() == static_cast<u128>(binomial(G, 4)));
}

TEST_P(WorkloadModel4, WorkAtMatchesPerThreadFormula) {
  const std::uint32_t G = 30;
  const auto model = WorkloadModel::for_scheme4(GetParam(), G);
  for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
    ASSERT_EQ(model.work_at(lambda), scheme4_thread_work(GetParam(), G, lambda))
        << "lambda=" << lambda;
  }
}

TEST_P(WorkloadModel4, PrefixWorkIsRunningSum) {
  const std::uint32_t G = 25;
  const auto model = WorkloadModel::for_scheme4(GetParam(), G);
  u128 running = 0;
  for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
    ASSERT_TRUE(model.prefix_work(lambda) == running) << "lambda=" << lambda;
    running += model.work_at(lambda);
  }
  EXPECT_TRUE(model.prefix_work(model.total_threads()) == running);
  EXPECT_TRUE(model.total_work() == running);
}

TEST_P(WorkloadModel4, LambdaForPrefixIsInverse) {
  const std::uint32_t G = 25;
  const auto model = WorkloadModel::for_scheme4(GetParam(), G);
  // For every target, the returned λ must be the smallest with
  // prefix_work(λ) >= target.
  const u128 total = model.total_work();
  for (u128 target = 0; target <= total; target += 13) {
    const u64 lambda = model.lambda_for_prefix(target);
    EXPECT_TRUE(model.prefix_work(lambda) >= target);
    if (lambda > 0) {
      EXPECT_TRUE(model.prefix_work(lambda - 1) < target);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WorkloadModel4,
                         ::testing::Values(Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1,
                                           Scheme4::k4x1),
                         [](const auto& info) { return scheme_name(info.param); });

class WorkloadModel3 : public ::testing::TestWithParam<Scheme3> {};

TEST_P(WorkloadModel3, TotalsMatchCombinatorics) {
  const std::uint32_t G = 50;
  const auto model = WorkloadModel::for_scheme3(GetParam(), G);
  EXPECT_EQ(model.total_threads(), scheme3_threads(GetParam(), G));
  EXPECT_TRUE(model.total_work() == static_cast<u128>(binomial(G, 3)));
}

TEST_P(WorkloadModel3, WorkAtMatchesPerThreadFormula) {
  const std::uint32_t G = 30;
  const auto model = WorkloadModel::for_scheme3(GetParam(), G);
  for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
    ASSERT_EQ(model.work_at(lambda), scheme3_thread_work(GetParam(), G, lambda));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WorkloadModel3,
                         ::testing::Values(Scheme3::k1x2, Scheme3::k2x1, Scheme3::k3x1),
                         [](const auto& info) { return scheme_name(info.param); });

TEST(WorkloadModel, PaperScale3x1IsCheap) {
  // The O(G) level construction must handle G = 19411 instantly and report
  // the paper-scale totals exactly.
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 19411);
  EXPECT_EQ(model.total_threads(), binomial(19411, 3));
  EXPECT_TRUE(model.total_work() == *binomial128(19411, 4));
  EXPECT_EQ(model.levels().size(), 19409u);
  // First thread's work is G-3; the last level's is 0.
  EXPECT_EQ(model.work_at(0), 19408u);
  EXPECT_EQ(model.work_at(model.total_threads() - 1), 0u);
}

TEST(WorkloadModel, ThreadWorkSpreadFig2) {
  // Fig. 2's message at G = 10: the 2x2 spread is C(G-2,2)..0 over C(G,2)
  // threads; 3x1 spreads G-3..0 over C(G,3) threads.
  const auto m22 = WorkloadModel::for_scheme4(Scheme4::k2x2, 10);
  const auto m31 = WorkloadModel::for_scheme4(Scheme4::k3x1, 10);
  EXPECT_EQ(m22.work_at(0), 28u);  // C(8,2)
  EXPECT_EQ(m31.work_at(0), 7u);   // G-3
  EXPECT_EQ(m22.total_threads(), 45u);
  EXPECT_EQ(m31.total_threads(), 120u);
}

}  // namespace
}  // namespace multihit
