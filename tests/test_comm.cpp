#include "mpisim/comm.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/result.hpp"
#include "obs/recorder.hpp"

namespace multihit {
namespace {

TEST(CommCostModel, AlphaBetaCost) {
  const CommCostModel model{.latency = 2e-6, .bandwidth = 1e9};
  EXPECT_DOUBLE_EQ(model.cost(0), 2e-6);
  EXPECT_DOUBLE_EQ(model.cost(1000), 2e-6 + 1e-6);
}

TEST(SimComm, SingleRankIsTrivial) {
  SimComm comm(1);
  comm.compute(0, 5.0);
  comm.barrier();
  EXPECT_DOUBLE_EQ(comm.finish_time(), 5.0);
  EXPECT_DOUBLE_EQ(comm.comm_time(0), 0.0);
}

TEST(SimComm, ZeroRanksRejected) {
  EXPECT_THROW(SimComm(0), std::invalid_argument);
}

TEST(SimComm, ComputeAdvancesOnlyThatRank) {
  SimComm comm(3);
  comm.compute(1, 2.0);
  EXPECT_DOUBLE_EQ(comm.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(comm.clock(1), 2.0);
  EXPECT_DOUBLE_EQ(comm.compute_time(1), 2.0);
}

TEST(SimComm, SendWaitsForSender) {
  SimComm comm(2, CommCostModel{.latency = 1e-6, .bandwidth = 1e9});
  comm.compute(0, 1.0);  // sender busy until t=1
  comm.send(0, 1, 1000);
  // Receiver completes at max(1.0, 0.0) + (1e-6 + 1e-6) = 1.000002.
  EXPECT_NEAR(comm.clock(1), 1.000002, 1e-9);
  EXPECT_NEAR(comm.comm_time(1), 1.000002, 1e-9);  // it was idle-waiting
}

TEST(SimComm, ReduceProducesCorrectValue) {
  for (const std::uint32_t p : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 64u, 100u}) {
    SimComm comm(p);
    std::vector<int> values(p);
    std::iota(values.begin(), values.end(), 1);  // 1..p
    const int sum = comm.reduce(std::span<const int>(values), 0, 4,
                                [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, static_cast<int>(p * (p + 1) / 2)) << "p=" << p;
  }
}

TEST(SimComm, ReduceToNonzeroRoot) {
  SimComm comm(7);
  std::vector<int> values{5, 1, 9, 2, 8, 3, 4};
  const int best = comm.reduce(std::span<const int>(values), 3, 4,
                               [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(best, 9);
}

TEST(SimComm, ReduceMergesEvalResults) {
  // The project's actual reduction: 20-byte candidates, merge_results op.
  SimComm comm(6);
  std::vector<EvalResult> candidates(6);
  for (std::uint32_t r = 0; r < 6; ++r) {
    candidates[r].valid = true;
    candidates[r].f = 0.1 * r;
    candidates[r].combo_rank = 100 - r;
  }
  const EvalResult best =
      comm.reduce(std::span<const EvalResult>(candidates), 0, 20,
                  [](const EvalResult& a, const EvalResult& b) { return merge_results(a, b); });
  EXPECT_DOUBLE_EQ(best.f, 0.5);
  EXPECT_EQ(best.combo_rank, 95u);
}

TEST(SimComm, ReduceTimeGrowsLogarithmically) {
  const CommCostModel model{.latency = 1e-5, .bandwidth = 1e12};
  auto reduce_time = [&](std::uint32_t p) {
    SimComm comm(p, model);
    std::vector<int> values(p, 1);
    comm.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
    return comm.finish_time();
  };
  const double t4 = reduce_time(4);
  const double t64 = reduce_time(64);
  const double t1024 = reduce_time(1024);
  // log2: 2, 6, 10 rounds respectively.
  EXPECT_NEAR(t64 / t4, 3.0, 0.2);
  EXPECT_NEAR(t1024 / t64, 10.0 / 6.0, 0.1);
  EXPECT_LT(t1024, 1e-3);  // 20-byte reduce over 1024 ranks stays sub-ms
}

TEST(SimComm, ReduceAbsorbsSkew) {
  // Fig. 8's point: with compute skew much larger than message cost, the
  // reduce finishes essentially when the slowest rank does.
  SimComm comm(16);
  for (std::uint32_t r = 0; r < 16; ++r) comm.compute(r, 1.0 + 0.01 * r);
  std::vector<int> values(16, 0);
  comm.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
  EXPECT_NEAR(comm.finish_time(), 1.15, 0.001);  // slowest rank + tiny comm
}

TEST(SimComm, BroadcastAlignsClocks) {
  SimComm comm(8);
  comm.compute(0, 3.0);
  comm.broadcast(0, 20);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_GE(comm.clock(r), 3.0) << "rank " << r;
  }
}

TEST(SimComm, BarrierAlignsToSlowest) {
  SimComm comm(5);
  comm.compute(3, 7.0);
  comm.barrier();
  for (std::uint32_t r = 0; r < 5; ++r) EXPECT_GE(comm.clock(r), 7.0);
  EXPECT_DOUBLE_EQ(comm.compute_time(3), 7.0);
  EXPECT_GT(comm.comm_time(0), 6.9);  // rank 0 waited
}

TEST(SimComm, AllreduceDistributesResult) {
  SimComm comm(9);
  std::vector<int> values(9, 2);
  const int sum = comm.allreduce(std::span<const int>(values), 4,
                                 [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 18);
  const double done = comm.clock(0);
  for (std::uint32_t r = 1; r < 9; ++r) EXPECT_GT(comm.clock(r), 0.0);
  EXPECT_GT(done, 0.0);
}

TEST(SimComm, CommTimeAccountingIsConsistent) {
  SimComm comm(4);
  comm.compute(0, 1.0);
  comm.compute(1, 2.0);
  comm.barrier();
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(comm.compute_time(r) + comm.comm_time(r), comm.clock(r), 1e-12) << r;
  }
}

TEST(SimComm, ReduceClocksRejectsDeadRoot) {
  // Regression: reduce_clocks used to scan the survivor list for the root's
  // position without checking liveness first — a dead root meant the scan
  // walked one past the end of the list (UB) instead of throwing like
  // broadcast does.
  SimComm comm(4);
  comm.fail(2, 0.0);
  EXPECT_THROW(comm.reduce_clocks(2, 20), std::invalid_argument);
  EXPECT_NO_THROW(comm.reduce_clocks(0, 20));
}

TEST(SimComm, ReduceClocksDeadRootWithNonContiguousSurvivors) {
  // Non-contiguous survivor sets are the shape that made the old position
  // scan land anywhere: {0, 1, 3, 4, 6, 7} with dead roots inside and past
  // the survivor range.
  SimComm comm(8);
  comm.fail(2, 0.0);
  comm.fail(5, 0.0);
  EXPECT_THROW(comm.reduce_clocks(2, 20), std::invalid_argument);
  EXPECT_THROW(comm.reduce_clocks(5, 20), std::invalid_argument);
  EXPECT_THROW(comm.broadcast(5, 20), std::invalid_argument);
  // Alive roots anywhere in the survivor list still work, including the
  // highest one (the old scan's off-by-the-end position).
  EXPECT_NO_THROW(comm.reduce_clocks(7, 20));
  EXPECT_NO_THROW(comm.reduce_clocks(0, 20));
}

TEST(SimComm, ReduceWithDeadRootThrowsAndValuesSurvive) {
  SimComm comm(5);
  comm.fail(1, 0.0);
  std::vector<int> values{1, 2, 3, 4, 5};
  EXPECT_THROW(comm.reduce(std::span<const int>(values), 1, 4,
                           [](int a, int b) { return a + b; }),
               std::invalid_argument);
  // Reducing to an alive non-zero root skips dead contributions.
  const int sum =
      comm.reduce(std::span<const int>(values), 3, 4, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 1 + 3 + 4 + 5);
}

TEST(SimComm, RecorderCountsCollectivesAndBytes) {
  obs::Recorder rec;
  SimComm comm(4);
  comm.set_recorder(&rec);
  std::vector<int> values{1, 2, 3, 4};
  comm.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
  comm.broadcast(0, 20);
  comm.barrier();
  EXPECT_DOUBLE_EQ(rec.metrics.counter("comm.collectives", {{"op", "reduce"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(rec.metrics.counter("comm.collectives", {{"op", "broadcast"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(rec.metrics.counter("comm.collectives", {{"op", "barrier"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(rec.metrics.counter("comm.collective_bytes", {{"op", "reduce"}}).value(),
                   20.0);
  EXPECT_GT(rec.metrics.counter("comm.messages").value(), 0.0);
  EXPECT_GT(rec.metrics.counter("comm.message_bytes").value(), 0.0);
  EXPECT_EQ(rec.metrics.histogram("comm.collective_seconds", {{"op", "reduce"}}).count(), 1u);
}

TEST(SimComm, RecorderDoesNotChangeClocks) {
  SimComm plain(6);
  obs::Recorder rec;
  SimComm observed(6);
  observed.set_recorder(&rec);
  for (std::uint32_t r = 0; r < 6; ++r) {
    plain.compute(r, 0.5 * r);
    observed.compute(r, 0.5 * r);
  }
  std::vector<int> values(6, 1);
  plain.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
  observed.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
  plain.broadcast(0, 20);
  observed.broadcast(0, 20);
  for (std::uint32_t r = 0; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(observed.clock(r), plain.clock(r)) << r;
  }
}

TEST(SimComm, ReduceClocksMatchesReduceTiming) {
  // The timing-only walk must price exactly like a value-carrying reduce.
  SimComm with_values(6);
  SimComm clocks_only(6);
  for (std::uint32_t r = 0; r < 6; ++r) {
    with_values.compute(r, 0.25 * r);
    clocks_only.compute(r, 0.25 * r);
  }
  std::vector<int> values(6, 1);
  with_values.reduce(std::span<const int>(values), 0, 20, [](int a, int b) { return a + b; });
  clocks_only.reduce_clocks(0, 20);
  for (std::uint32_t r = 0; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(clocks_only.clock(r), with_values.clock(r)) << r;
  }
}

}  // namespace
}  // namespace multihit
