#include "data/maf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace multihit {
namespace {

SyntheticSpec maf_spec() {
  SyntheticSpec spec;
  spec.genes = 50;
  spec.tumor_samples = 60;
  spec.normal_samples = 40;
  spec.hits = 3;
  spec.num_combinations = 3;
  spec.background_rate = 0.03;
  spec.seed = 21;
  return spec;
}

TEST(Maf, SummarizeMatchesMatrixGenerator) {
  // The MAF layer must collapse to exactly the matrices the direct generator
  // produces for the same spec — it is the same data with positions added.
  const auto spec = maf_spec();
  const MafStudy study = generate_maf_study(spec);
  const Dataset from_maf = summarize_maf(study);
  const Dataset direct = generate_dataset(spec);
  EXPECT_EQ(from_maf.tumor, direct.tumor);
  EXPECT_EQ(from_maf.normal, direct.normal);
  EXPECT_EQ(from_maf.planted, direct.planted);
}

TEST(Maf, DriverGenesAreFlagged) {
  const MafStudy study = generate_maf_study(maf_spec());
  std::uint32_t drivers = 0;
  for (const auto& gene : study.genes) drivers += gene.driver ? 1 : 0;
  EXPECT_EQ(drivers, 9u);  // 3 combos x 3 hits
  for (const auto& combo : study.planted) {
    for (std::uint32_t g : combo) EXPECT_TRUE(study.genes[g].driver);
  }
}

TEST(Maf, DriverSymbolsAreDistinctive) {
  const MafStudy study = generate_maf_study(maf_spec());
  for (const auto& gene : study.genes) {
    if (gene.driver) {
      EXPECT_EQ(gene.symbol.rfind("DRV", 0), 0u);
      EXPECT_GE(gene.hotspot_position, 1u);
      EXPECT_LE(gene.hotspot_position, gene.protein_length);
      EXPECT_GT(gene.hotspot_fraction, 0.5);
    } else {
      EXPECT_EQ(gene.symbol.rfind("PSG", 0), 0u);
    }
  }
}

TEST(Maf, PositionsAreWithinProteins) {
  const MafStudy study = generate_maf_study(maf_spec());
  ASSERT_FALSE(study.records.empty());
  for (const MafRecord& rec : study.records) {
    ASSERT_LT(rec.gene, study.genes.size());
    EXPECT_GE(rec.position, 1u);
    EXPECT_LE(rec.position, study.genes[rec.gene].protein_length);
  }
}

TEST(Maf, DriverTumorMutationsConcentrateAtHotspot) {
  // The IDH1-like signature (paper Fig. 10a): in tumor samples most driver
  // mutations land on one position.
  const MafStudy study = generate_maf_study(maf_spec());
  const std::uint32_t driver = study.planted[0][0];
  const auto hist = position_histogram(study, driver, /*tumor=*/true);
  const std::uint32_t hotspot = study.genes[driver].hotspot_position;
  const auto total = std::accumulate(hist.begin(), hist.end(), 0u);
  ASSERT_GT(total, 10u);
  EXPECT_GT(static_cast<double>(hist[hotspot - 1]) / total, 0.5);
}

TEST(Maf, PassengerMutationsAreSpread) {
  // The MUC6-like signature (paper Fig. 10b): no dominant position.
  const MafStudy study = generate_maf_study(maf_spec());
  // Aggregate across all passenger genes (each gene alone has few records).
  std::uint32_t max_count = 0, total = 0;
  for (std::uint32_t g = 0; g < study.genes.size(); ++g) {
    if (study.genes[g].driver) continue;
    const auto hist = position_histogram(study, g, /*tumor=*/true);
    for (std::uint32_t c : hist) {
      max_count = std::max(max_count, c);
      total += c;
    }
  }
  ASSERT_GT(total, 20u);
  EXPECT_LT(static_cast<double>(max_count) / total, 0.2);
}

TEST(Maf, NormalDriverMutationsHaveNoHotspot) {
  // Paper Fig. 10: the hotspot appears in tumor samples only.
  auto spec = maf_spec();
  spec.background_rate = 0.2;  // ensure some normal-sample driver-gene records
  const MafStudy study = generate_maf_study(spec);
  const std::uint32_t driver = study.planted[0][0];
  const auto hist = position_histogram(study, driver, /*tumor=*/false);
  const std::uint32_t hotspot = study.genes[driver].hotspot_position;
  const auto total = std::accumulate(hist.begin(), hist.end(), 0u);
  if (total >= 5) {
    EXPECT_LT(static_cast<double>(hist[hotspot - 1]) / total, 0.5);
  }
}

TEST(Maf, HistogramRejectsBadGene) {
  const MafStudy study = generate_maf_study(maf_spec());
  EXPECT_THROW(position_histogram(study, 10000, true), std::out_of_range);
}

}  // namespace
}  // namespace multihit
