#include "gpusim/analytic.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "combinat/binomial.hpp"
#include "data/generator.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t genes) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 90;   // 2 words
  spec.normal_samples = 70;  // 2 words
  spec.hits = 3;
  spec.num_combinations = 2;
  spec.background_rate = 0.05;
  spec.seed = 20240;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

void expect_stats_eq(const KernelStats& a, const KernelStats& b, const char* context) {
  EXPECT_EQ(a.combinations, b.combinations) << context;
  EXPECT_EQ(a.word_ops, b.word_ops) << context;
  EXPECT_EQ(a.global_words, b.global_words) << context;
  EXPECT_EQ(a.local_words, b.local_words) << context;
  EXPECT_EQ(a.distinct_rows, b.distinct_rows) << context;
}

using OptCase = std::tuple<bool, bool>;  // prefetch_i, prefetch_j

class AnalyticStats4 : public ::testing::TestWithParam<std::tuple<Scheme4, OptCase>> {};

TEST_P(AnalyticStats4, MatchesCountedStatsOnRandomRanges) {
  // The whole-point property: the closed-form accounting must equal what the
  // real kernel counts, for every scheme, opt combination, and subrange.
  const auto [scheme, opt_case] = GetParam();
  const MemOpts opts{std::get<0>(opt_case), std::get<1>(opt_case)};
  const auto f = make_fixture(24);
  const std::uint32_t wt = f.data.tumor.words_per_row();
  const std::uint32_t wn = f.data.normal.words_per_row();
  const u64 total = scheme4_threads(scheme, 24);

  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    u64 a = rng.uniform(total + 1);
    u64 b = rng.uniform(total + 1);
    if (a > b) std::swap(a, b);
    KernelStats counted;
    evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, scheme, a, b, opts, &counted);
    const KernelStats analytic = analytic_stats_4hit(scheme, 24, a, b, opts, wt, wn);
    expect_stats_eq(analytic, counted,
                    (std::string(scheme_name(scheme)) + " range [" + std::to_string(a) + "," +
                     std::to_string(b) + ")")
                        .c_str());
  }
}

TEST_P(AnalyticStats4, FullRangeMatchesCounted) {
  const auto [scheme, opt_case] = GetParam();
  const MemOpts opts{std::get<0>(opt_case), std::get<1>(opt_case)};
  const auto f = make_fixture(20);
  KernelStats counted;
  evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, scheme, 0,
                      scheme4_threads(scheme, 20), opts, &counted);
  const KernelStats analytic =
      analytic_stats_4hit(scheme, 20, 0, scheme4_threads(scheme, 20), opts,
                          f.data.tumor.words_per_row(), f.data.normal.words_per_row());
  expect_stats_eq(analytic, counted, scheme_name(scheme));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndOpts, AnalyticStats4,
    ::testing::Combine(::testing::Values(Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1,
                                         Scheme4::k4x1),
                       ::testing::Values(OptCase{false, false}, OptCase{true, false},
                                         OptCase{false, true}, OptCase{true, true})));

class AnalyticStats3 : public ::testing::TestWithParam<std::tuple<Scheme3, OptCase>> {};

TEST_P(AnalyticStats3, MatchesCountedStatsOnRandomRanges) {
  const auto [scheme, opt_case] = GetParam();
  const MemOpts opts{std::get<0>(opt_case), std::get<1>(opt_case)};
  const auto f = make_fixture(30);
  const std::uint32_t wt = f.data.tumor.words_per_row();
  const std::uint32_t wn = f.data.normal.words_per_row();
  const u64 total = scheme3_threads(scheme, 30);

  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    u64 a = rng.uniform(total + 1);
    u64 b = rng.uniform(total + 1);
    if (a > b) std::swap(a, b);
    KernelStats counted;
    evaluate_range_3hit(f.data.tumor, f.data.normal, f.ctx, scheme, a, b, opts, &counted);
    const KernelStats analytic = analytic_stats_3hit(scheme, 30, a, b, opts, wt, wn);
    expect_stats_eq(analytic, counted, scheme_name(scheme));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndOpts, AnalyticStats3,
    ::testing::Combine(::testing::Values(Scheme3::k1x2, Scheme3::k2x1, Scheme3::k3x1),
                       ::testing::Values(OptCase{false, false}, OptCase{true, false},
                                         OptCase{false, true}, OptCase{true, true})));

TEST(AnalyticStats, PaperScaleTotalsAreFinite) {
  // Full BRCA 3x1 space: combination total must be exactly C(19411,4).
  const KernelStats stats = analytic_stats_4hit(
      Scheme4::k3x1, 19411, 0, scheme4_threads(Scheme4::k3x1, 19411),
      MemOpts{.prefetch_i = true, .prefetch_j = true}, 15, 9);
  EXPECT_EQ(stats.combinations, quartic(19411));
  // With full prefetch the inner loop reads one row per matrix per combo.
  EXPECT_GT(stats.global_words, stats.combinations * 24);
}

TEST(AnalyticStats, AdditivityOverAdjacentRanges) {
  const std::uint32_t G = 26;
  const u64 total = scheme4_threads(Scheme4::k3x1, G);
  const MemOpts opts{.prefetch_j = true};
  const auto whole = analytic_stats_4hit(Scheme4::k3x1, G, 0, total, opts, 3, 2);
  KernelStats sum;
  for (u64 piece = 0; piece < 5; ++piece) {
    sum += analytic_stats_4hit(Scheme4::k3x1, G, total * piece / 5, total * (piece + 1) / 5,
                               opts, 3, 2);
  }
  EXPECT_EQ(sum.combinations, whole.combinations);
  EXPECT_EQ(sum.word_ops, whole.word_ops);
  EXPECT_EQ(sum.global_words, whole.global_words);
  EXPECT_EQ(sum.local_words, whole.local_words);
  EXPECT_EQ(sum.distinct_rows, whole.distinct_rows);
}

}  // namespace
}  // namespace multihit
