#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace multihit::stats {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.0}), 7.0);
}

TEST(Stats, StddevBasics) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(min(v), -1.0);
  EXPECT_DOUBLE_EQ(max(v), 5.0);
  EXPECT_DOUBLE_EQ(min(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(max(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 40.0);  // clamped
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
}

TEST(Stats, WilsonIntervalContainsProportion) {
  const auto ci = wilson_interval(83, 100);
  EXPECT_LT(ci.lo, 0.83);
  EXPECT_GT(ci.hi, 0.83);
  EXPECT_GT(ci.lo, 0.70);
  EXPECT_LT(ci.hi, 0.92);
}

TEST(Stats, WilsonIntervalEdges) {
  const auto all = wilson_interval(10, 10);
  EXPECT_GT(all.lo, 0.6);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const auto none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.4);
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(Stats, WilsonIntervalNarrowsWithN) {
  const auto small = wilson_interval(8, 10);
  const auto large = wilson_interval(800, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateCases) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
  const std::vector<double> shorter{1.0, 2.0};
  EXPECT_DOUBLE_EQ(pearson(x, shorter), 0.0);
}

}  // namespace
}  // namespace multihit::stats
