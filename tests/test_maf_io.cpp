#include "data/maf_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace multihit {
namespace {

MafStudy sample_study() {
  SyntheticSpec spec;
  spec.genes = 25;
  spec.tumor_samples = 30;
  spec.normal_samples = 20;
  spec.hits = 2;
  spec.num_combinations = 2;
  spec.background_rate = 0.04;
  spec.seed = 4321;
  return generate_maf_study(spec);
}

TEST(MafIo, RoundTripPreservesEverything) {
  const MafStudy original = sample_study();
  std::stringstream buffer;
  write_maf(buffer, original);
  const MafStudy loaded = read_maf(buffer);

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.tumor_samples, original.tumor_samples);
  EXPECT_EQ(loaded.normal_samples, original.normal_samples);
  EXPECT_EQ(loaded.planted, original.planted);
  ASSERT_EQ(loaded.genes.size(), original.genes.size());
  for (std::size_t g = 0; g < original.genes.size(); ++g) {
    EXPECT_EQ(loaded.genes[g].symbol, original.genes[g].symbol);
    EXPECT_EQ(loaded.genes[g].protein_length, original.genes[g].protein_length);
    EXPECT_EQ(loaded.genes[g].driver, original.genes[g].driver);
    EXPECT_EQ(loaded.genes[g].hotspot_position, original.genes[g].hotspot_position);
    EXPECT_NEAR(loaded.genes[g].hotspot_fraction, original.genes[g].hotspot_fraction, 1e-5);
  }
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t r = 0; r < original.records.size(); ++r) {
    EXPECT_EQ(loaded.records[r].gene, original.records[r].gene);
    EXPECT_EQ(loaded.records[r].sample, original.records[r].sample);
    EXPECT_EQ(loaded.records[r].position, original.records[r].position);
    EXPECT_EQ(loaded.records[r].tumor, original.records[r].tumor);
  }
}

TEST(MafIo, RoundTripSummarizesIdentically) {
  // The loaded study must collapse to the same matrices.
  const MafStudy original = sample_study();
  std::stringstream buffer;
  write_maf(buffer, original);
  const MafStudy loaded = read_maf(buffer);
  const Dataset a = summarize_maf(original);
  const Dataset b = summarize_maf(loaded);
  EXPECT_EQ(a.tumor, b.tumor);
  EXPECT_EQ(a.normal, b.normal);
}

TEST(MafIo, RejectsBadMagic) {
  std::stringstream buffer("not-a-maf\n");
  EXPECT_THROW(read_maf(buffer), std::runtime_error);
}

TEST(MafIo, RejectsMissingStudyLine) {
  std::stringstream buffer("#multihit-maf v1\nHugo_Symbol\tGene_Id\tSample_Id\t"
                           "Protein_Position\tSample_Class\n");
  EXPECT_THROW(read_maf(buffer), std::runtime_error);
}

TEST(MafIo, RejectsOutOfRangeRecord) {
  std::stringstream buffer(
      "#multihit-maf v1\n#study x 2 2\n#gene 0 TP53 100 1 50 0.8\n"
      "Hugo_Symbol\tGene_Id\tSample_Id\tProtein_Position\tSample_Class\n"
      "TP53\t0\t5\t10\tTumor\n");
  EXPECT_THROW(read_maf(buffer), std::runtime_error);  // sample 5 >= 2
}

TEST(MafIo, RejectsUnknownSampleClass) {
  std::stringstream buffer(
      "#multihit-maf v1\n#study x 2 2\n#gene 0 TP53 100 1 50 0.8\n"
      "Hugo_Symbol\tGene_Id\tSample_Id\tProtein_Position\tSample_Class\n"
      "TP53\t0\t1\t10\tMetastatic\n");
  EXPECT_THROW(read_maf(buffer), std::runtime_error);
}

TEST(MafIo, RejectsPositionBeyondProtein) {
  std::stringstream buffer(
      "#multihit-maf v1\n#study x 2 2\n#gene 0 TP53 100 1 50 0.8\n"
      "Hugo_Symbol\tGene_Id\tSample_Id\tProtein_Position\tSample_Class\n"
      "TP53\t0\t1\t101\tTumor\n");
  EXPECT_THROW(read_maf(buffer), std::runtime_error);
}

TEST(MafIo, NameWithWhitespaceIsSanitized) {
  MafStudy study = sample_study();
  study.name = "two words\tand tab";
  std::stringstream buffer;
  write_maf(buffer, study);
  const MafStudy loaded = read_maf(buffer);
  EXPECT_EQ(loaded.name, "two_words_and_tab");
  EXPECT_EQ(loaded.tumor_samples, study.tumor_samples);  // header stayed in sync
}

TEST(MafIo, EmptyNameGetsPlaceholder) {
  MafStudy study = sample_study();
  study.name.clear();
  std::stringstream buffer;
  write_maf(buffer, study);
  EXPECT_EQ(read_maf(buffer).name, "unnamed");
}

TEST(MafIo, FileRoundTrip) {
  const MafStudy original = sample_study();
  const std::string path = testing::TempDir() + "/multihit_maf_test.maf";
  save_maf(path, original);
  const MafStudy loaded = load_maf(path);
  EXPECT_EQ(loaded.records.size(), original.records.size());
  EXPECT_THROW(load_maf("/nonexistent/file.maf"), std::ios_base::failure);
}

}  // namespace
}  // namespace multihit
