#include "sched/memaware.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/model.hpp"
#include "combinat/binomial.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

TEST(MemAware, WeightsFollowKernelFormulas) {
  const MemOpts both{.prefetch_i = true, .prefetch_j = true};
  const MemOpts only_i{.prefetch_i = true};
  const MemOpts none{};
  // 4-hit 3x1, full prefetch: 1 row/combination + 3 setup rows/thread.
  EXPECT_EQ(memory_cost_weights(4, both).per_combination, 1u);
  EXPECT_EQ(memory_cost_weights(4, both).per_thread, 3u);
  EXPECT_EQ(memory_cost_weights(4, only_i).per_combination, 3u);
  EXPECT_EQ(memory_cost_weights(4, only_i).per_thread, 1u);
  EXPECT_EQ(memory_cost_weights(4, none).per_combination, 4u);
  EXPECT_EQ(memory_cost_weights(4, none).per_thread, 0u);
  EXPECT_EQ(memory_cost_weights(5, both).per_thread, 4u);
  EXPECT_EQ(memory_cost_weights(2, both).per_combination, 1u);
  EXPECT_EQ(memory_cost_weights(2, both).per_thread, 1u);
}

TEST(MemAware, ReweightedModelTotals) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 30);
  const auto costed = model.reweighted(1, 3);
  EXPECT_EQ(costed.total_threads(), model.total_threads());
  // cost total = combos + 3 * (threads with positive work).
  u64 positive = 0;
  for (u64 lambda = 0; lambda < model.total_threads(); ++lambda) {
    if (model.work_at(lambda) > 0) ++positive;
  }
  EXPECT_TRUE(costed.total_work() ==
              model.total_work() + static_cast<u128>(3) * positive);
}

TEST(MemAware, ZeroWorkThreadsStayFree) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 20);
  const auto costed = model.reweighted(1, 5);
  EXPECT_EQ(costed.work_at(costed.total_threads() - 1), 0u);  // k = G-1 level
}

TEST(MemAware, ScheduleCoversExactly) {
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 60);
  const auto schedule = memaware_schedule(model, 30, {1, 3});
  ASSERT_EQ(schedule.size(), 30u);
  EXPECT_EQ(schedule.front().begin, 0u);
  for (std::size_t p = 1; p < schedule.size(); ++p) {
    EXPECT_EQ(schedule[p].begin, schedule[p - 1].end);
  }
  EXPECT_EQ(schedule.back().end, model.total_threads());
}

TEST(MemAware, BalancesTrafficBetterThanPlainEquiArea) {
  // The tail partitions of plain EA hold many short threads whose setup
  // traffic EA ignores; the memory-aware weights must equalize modeled cost.
  const auto model = WorkloadModel::for_scheme4(Scheme4::k3x1, 300);
  const MemoryCostWeights weights{1, 3};
  const auto costed = model.reweighted(weights.per_combination, weights.per_thread);
  const std::uint32_t units = 48;

  const auto plain = equiarea_schedule(model, units);
  const auto aware = memaware_schedule(model, units, weights);

  const auto plain_cost = schedule_imbalance(costed, plain);
  const auto aware_cost = schedule_imbalance(costed, aware);
  EXPECT_LT(aware_cost.imbalance, plain_cost.imbalance);
  EXPECT_LT(aware_cost.imbalance, 1.02);
}

TEST(MemAware, ImprovesModeledTailAtScale) {
  // At 1000 nodes on BRCA, the slowest GPU under plain EA is the tail
  // (setup-heavy) partition; memory-aware scheduling shrinks the spread of
  // modeled GPU times.
  SummitConfig config;
  config.nodes = 1000;
  config.gpu_jitter = 0.0;  // isolate the scheduling effect
  ModelInputs inputs;
  inputs.first_iteration_only = true;

  auto spread = [&](SchedulerKind kind) {
    ModelInputs in = inputs;
    in.scheduler = kind;
    const auto run = model_cluster_run(config, in);
    double lo = 1e30, hi = 0.0;
    for (const auto& g : run.iterations.front().gpus) {
      lo = std::min(lo, g.time);
      hi = std::max(hi, g.time);
    }
    return hi / lo;
  };

  const double plain = spread(SchedulerKind::kEquiArea);
  const double aware = spread(SchedulerKind::kMemoryAware);
  EXPECT_LT(aware, plain);
}

TEST(MemAware, DistributedResultsUnchanged) {
  // Scheduling must never change *what* is found, only when.
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 60;
  spec.normal_samples = 40;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.seed = 515;
  const Dataset data = generate_dataset(spec);
  SummitConfig config;
  config.nodes = 3;
  DistributedOptions ea;
  DistributedOptions aware;
  aware.scheduler = SchedulerKind::kMemoryAware;
  const auto a = ClusterRunner(config).run(data, ea);
  const auto b = ClusterRunner(config).run(data, aware);
  ASSERT_EQ(a.greedy.iterations.size(), b.greedy.iterations.size());
  for (std::size_t i = 0; i < a.greedy.iterations.size(); ++i) {
    EXPECT_EQ(a.greedy.iterations[i].genes, b.greedy.iterations[i].genes);
  }
}

}  // namespace
}  // namespace multihit
