#include <gtest/gtest.h>

#include "cluster/model.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

TEST(Calibration, EmptyRunUsesDefault) {
  EXPECT_DOUBLE_EQ(calibrate_coverage(GreedyResult{}), 0.45);
}

TEST(Calibration, PerfectSingleCoverIsOne) {
  GreedyResult result;
  IterationRecord it;
  it.tp = 50;
  it.tumor_remaining_before = 50;
  it.tumor_remaining_after = 0;
  result.iterations.push_back(it);
  EXPECT_DOUBLE_EQ(calibrate_coverage(result), 1.0);
}

TEST(Calibration, MatchesKnownTrajectory) {
  GreedyResult result;
  // 100 -> 40 (0.6 covered), 40 -> 20 (0.5), 20 -> 0 (1.0).
  const std::uint64_t tp[] = {60, 20, 20};
  const std::uint32_t before[] = {100, 40, 20};
  for (int i = 0; i < 3; ++i) {
    IterationRecord it;
    it.tp = tp[i];
    it.tumor_remaining_before = before[i];
    result.iterations.push_back(it);
  }
  EXPECT_NEAR(calibrate_coverage(result), (0.6 + 0.5 + 1.0) / 3.0, 1e-12);
}

TEST(Calibration, FunctionalRunFeedsTheModel) {
  // End-to-end: run the functional greedy, calibrate, and model with the
  // calibrated fraction — the modeled iteration count should be within a
  // couple of the functional one.
  SyntheticSpec spec;
  spec.genes = 60;
  spec.tumor_samples = 120;
  spec.normal_samples = 80;
  spec.hits = 3;
  spec.num_combinations = 5;
  spec.background_rate = 0.02;
  spec.seed = 616;
  const Dataset data = generate_dataset(spec);
  EngineConfig config;
  config.hits = 3;
  const GreedyResult run =
      run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(3));
  const double coverage = calibrate_coverage(run);
  EXPECT_GT(coverage, 0.05);
  EXPECT_LE(coverage, 1.0);

  ModelInputs inputs;
  inputs.hits = 3;
  inputs.genes = spec.genes;
  inputs.tumor_samples = spec.tumor_samples;
  inputs.normal_samples = spec.normal_samples;
  inputs.coverage_per_iteration = coverage;
  SummitConfig small;
  small.nodes = 1;
  const auto modeled = model_cluster_run(small, inputs);
  const auto functional_iterations = static_cast<double>(run.iterations.size());
  EXPECT_NEAR(static_cast<double>(modeled.iterations.size()), functional_iterations,
              functional_iterations * 0.6 + 2.0);
}

}  // namespace
}  // namespace multihit
