#include "classify/classifier.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

TEST(Classifier, PredictsTumorWhenAnyComboFullyMutated) {
  BitMatrix m(4, 3);
  // Sample 0: genes 0,1 mutated. Sample 1: gene 0 only. Sample 2: genes 2,3.
  m.set(0, 0);
  m.set(1, 0);
  m.set(0, 1);
  m.set(2, 2);
  m.set(3, 2);
  const CombinationClassifier clf({{0, 1}, {2, 3}});
  EXPECT_TRUE(clf.predict_tumor(m, 0));
  EXPECT_FALSE(clf.predict_tumor(m, 1));
  EXPECT_TRUE(clf.predict_tumor(m, 2));
}

TEST(Classifier, NoCombinationsPredictsNormal) {
  BitMatrix m(2, 1);
  m.set(0, 0);
  m.set(1, 0);
  const CombinationClassifier clf({});
  EXPECT_FALSE(clf.predict_tumor(m, 0));
}

TEST(Classifier, ReportCountsAndRates) {
  ClassificationReport r;
  r.true_positives = 8;
  r.false_negatives = 2;
  r.true_negatives = 9;
  r.false_positives = 1;
  EXPECT_DOUBLE_EQ(r.sensitivity(), 0.8);
  EXPECT_DOUBLE_EQ(r.specificity(), 0.9);
  const auto sci = r.sensitivity_ci();
  EXPECT_LT(sci.lo, 0.8);
  EXPECT_GT(sci.hi, 0.8);
}

TEST(Classifier, ReportDegenerateRates) {
  ClassificationReport r;
  EXPECT_DOUBLE_EQ(r.sensitivity(), 0.0);
  EXPECT_DOUBLE_EQ(r.specificity(), 0.0);
}

TEST(Classifier, EndToEndTrainTestRecovery) {
  // The paper's Fig. 9 protocol in miniature: train the greedy on 75% of a
  // planted dataset, classify the held-out 25%.
  SyntheticSpec spec;
  spec.genes = 50;
  spec.tumor_samples = 120;
  spec.normal_samples = 100;
  spec.hits = 3;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.driver_detect_rate = 1.0;
  spec.seed = 2024;
  const Dataset data = generate_dataset(spec);
  const auto split = split_dataset(data, 0.75, 7);

  EngineConfig config;
  config.hits = 3;
  const GreedyResult trained =
      run_greedy(split.train.tumor, split.train.normal, config, make_serial_evaluator(3));
  const CombinationClassifier clf(trained.combinations());
  const ClassificationReport report = evaluate_classifier(clf, split.test);

  // Planted data with full detection should classify nearly perfectly.
  EXPECT_GT(report.sensitivity(), 0.9);
  EXPECT_GT(report.specificity(), 0.9);
  EXPECT_EQ(report.true_positives + report.false_negatives, split.test.tumor_samples());
  EXPECT_EQ(report.true_negatives + report.false_positives, split.test.normal_samples());
}

TEST(Classifier, EvaluateCountsEverySample) {
  SyntheticSpec spec;
  spec.genes = 20;
  spec.tumor_samples = 30;
  spec.normal_samples = 25;
  spec.hits = 2;
  spec.num_combinations = 2;
  spec.seed = 5;
  const Dataset data = generate_dataset(spec);
  const CombinationClassifier clf({data.planted[0]});
  const auto report = evaluate_classifier(clf, data);
  EXPECT_EQ(report.true_positives + report.false_negatives, 30u);
  EXPECT_EQ(report.true_negatives + report.false_positives, 25u);
}

}  // namespace
}  // namespace multihit
