#include "cluster/distributed.hpp"

#include <gtest/gtest.h>

#include "cluster/model.hpp"
#include "cluster/scaling.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

Dataset small_dataset(std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

SummitConfig tiny_cluster(std::uint32_t nodes) {
  SummitConfig config;
  config.nodes = nodes;
  return config;
}

TEST(Cluster, DistributedRunMatchesSerialEngine) {
  // The distributed pipeline (EA schedule -> per-GPU two-kernel reduction ->
  // node merge -> MPI reduce) must pick the identical combination sequence
  // as the serial reference, at any node count.
  const Dataset data = small_dataset(4, 301);
  EngineConfig engine;
  engine.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, engine, make_serial_evaluator(4));

  for (const std::uint32_t nodes : {1u, 2u, 5u, 16u}) {
    const ClusterRunner runner(tiny_cluster(nodes));
    const ClusterRunResult result = runner.run(data, DistributedOptions{});
    ASSERT_EQ(result.greedy.iterations.size(), serial.iterations.size()) << nodes << " nodes";
    for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
      EXPECT_EQ(result.greedy.iterations[i].genes, serial.iterations[i].genes)
          << nodes << " nodes, iteration " << i;
    }
    EXPECT_EQ(result.greedy.uncovered_tumor, serial.uncovered_tumor);
  }
}

TEST(Cluster, ThreeHitDistributedRunMatchesSerial) {
  const Dataset data = small_dataset(3, 302);
  EngineConfig engine;
  engine.hits = 3;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, engine, make_serial_evaluator(3));
  DistributedOptions options;
  options.hits = 3;
  const ClusterRunner runner(tiny_cluster(4));
  const ClusterRunResult result = runner.run(data, options);
  ASSERT_EQ(result.greedy.iterations.size(), serial.iterations.size());
  for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
    EXPECT_EQ(result.greedy.iterations[i].genes, serial.iterations[i].genes);
  }
}

TEST(Cluster, SchedulerChoiceDoesNotChangeResults) {
  const Dataset data = small_dataset(4, 303);
  DistributedOptions ea;
  DistributedOptions ed;
  ed.scheduler = SchedulerKind::kEquiDistance;
  const ClusterRunner runner(tiny_cluster(3));
  const auto a = runner.run(data, ea);
  const auto b = runner.run(data, ed);
  ASSERT_EQ(a.greedy.iterations.size(), b.greedy.iterations.size());
  for (std::size_t i = 0; i < a.greedy.iterations.size(); ++i) {
    EXPECT_EQ(a.greedy.iterations[i].genes, b.greedy.iterations[i].genes);
  }
}

TEST(Cluster, TelemetryShapesAreConsistent) {
  const Dataset data = small_dataset(4, 304);
  const std::uint32_t nodes = 3;
  const ClusterRunner runner(tiny_cluster(nodes));
  const auto result = runner.run(data, DistributedOptions{});
  ASSERT_FALSE(result.iterations.empty());
  for (const auto& it : result.iterations) {
    EXPECT_EQ(it.gpus.size(), nodes * 6u);
    EXPECT_EQ(it.rank_compute.size(), nodes);
    EXPECT_EQ(it.rank_comm.size(), nodes);
    EXPECT_GT(it.iteration_time, 0.0);
    EXPECT_GT(it.candidate_bytes_total, 0u);
  }
  EXPECT_GT(result.total_time, result.schedule_time);
}

TEST(Cluster, FirstIterationEvaluatesWholeSpace) {
  const Dataset data = small_dataset(4, 305);
  const ClusterRunner runner(tiny_cluster(2));
  const auto result = runner.run(data, DistributedOptions{});
  EXPECT_EQ(result.iterations.front().combinations, quartic(30));
}

TEST(Cluster, CommunicationHiddenByCompute) {
  // Fig. 8: per-rank communication time is orders of magnitude below
  // compute time for any realistic configuration.
  const Dataset data = small_dataset(4, 306);
  const ClusterRunner runner(tiny_cluster(8));
  const auto result = runner.run(data, DistributedOptions{});
  const auto& it = result.iterations.front();
  double max_comm = 0.0, max_compute = 0.0;
  for (std::uint32_t r = 0; r < 8; ++r) {
    max_comm = std::max(max_comm, it.rank_comm[r]);
    max_compute = std::max(max_compute, it.rank_compute[r]);
  }
  EXPECT_GT(max_compute, 0.0);
  // Communication includes waiting for stragglers; actual message cost is
  // microseconds. The wait is bounded by compute skew, so comm < compute.
  EXPECT_LT(max_comm, max_compute);
}

TEST(Cluster, RejectsUnsupportedHitCount) {
  const Dataset data = small_dataset(4, 307);
  DistributedOptions options;
  const ClusterRunner runner(tiny_cluster(2));
  options.hits = 1;
  EXPECT_THROW(runner.run(data, options), std::invalid_argument);
  options.hits = 6;
  EXPECT_THROW(runner.run(data, options), std::invalid_argument);
}

// --- paper-scale analytic model ---------------------------------------------

TEST(ClusterModel, StrongScalingReproducesPaperBand) {
  // Paper Fig. 4a: 80.96%-97.96% efficiency for 200-1000 nodes vs 100,
  // 84.18% at 1000, 90.14% average.
  SummitConfig base;
  ModelInputs inputs;  // BRCA defaults
  const std::vector<std::uint32_t> nodes{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000};
  const auto points = strong_scaling(base, inputs, nodes);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  double sum = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].efficiency, 0.78) << points[i].nodes;
    EXPECT_LT(points[i].efficiency, 1.0) << points[i].nodes;
    sum += points[i].efficiency;
  }
  const double average = sum / 9.0;
  EXPECT_NEAR(average, 0.90, 0.04);                       // paper: 90.14%
  EXPECT_NEAR(points.back().efficiency, 0.84, 0.04);      // paper: 84.18% @1000
  // Monotone time reduction with fleet size.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].time, points[i - 1].time);
  }
}

TEST(ClusterModel, BaselineRuntimeUnderTwoHours) {
  // The paper used 100 nodes as baseline because smaller allocations exceed
  // Summit's 2-hour limit; the model must agree on both sides.
  SummitConfig base;
  ModelInputs inputs;
  base.nodes = 100;
  EXPECT_LT(model_cluster_run(base, inputs).total_time, 7200.0);
  base.nodes = 50;
  EXPECT_GT(model_cluster_run(base, inputs).total_time, 7200.0);
}

TEST(ClusterModel, WeakScalingReproducesPaperBand) {
  // Paper Fig. 4b: ~90% at 500 nodes, 94.6% average over 200-500.
  SummitConfig base;
  ModelInputs inputs;
  const std::vector<std::uint32_t> nodes{100, 200, 300, 400, 500};
  const auto points = weak_scaling(base, inputs, nodes);
  double sum = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].efficiency, 0.85);
    EXPECT_LE(points[i].efficiency, 1.02);
    sum += points[i].efficiency;
    EXPECT_GT(points[i].genes, points[i - 1].genes);  // problem grows with fleet
  }
  EXPECT_NEAR(sum / 4.0, 0.95, 0.05);
}

TEST(ClusterModel, EquiAreaBeatsEquiDistanceThreefold) {
  // §IV-B: ED 13943 s vs EA 4607 s for the 2x2 scheme on 100 nodes (~3x).
  SummitConfig base;
  ModelInputs inputs;
  inputs.scheme4 = Scheme4::k2x2;
  const double ea = model_cluster_run(base, inputs).total_time;
  ModelInputs ed_inputs = inputs;
  ed_inputs.scheduler = SchedulerKind::kEquiDistance;
  const double ed = model_cluster_run(base, ed_inputs).total_time;
  EXPECT_NEAR(ed / ea, 3.0, 0.6);
}

TEST(ClusterModel, TwoByTwoSchemeCollapsesAtScale) {
  // §IV-D: 2x2 fell to ~36% efficiency for ESCA at 500 nodes while 3x1 held.
  SummitConfig base;
  ModelInputs esca;
  esca.genes = 18364;
  esca.tumor_samples = 184;
  esca.normal_samples = 150;
  esca.scheme4 = Scheme4::k2x2;
  const std::vector<std::uint32_t> nodes{100, 500};
  const auto two_by_two = strong_scaling(base, esca, nodes);
  EXPECT_NEAR(two_by_two[1].efficiency, 0.36, 0.09);
  // 3x1 on the same dataset holds far higher efficiency (ESCA is small, so
  // fixed overheads still cost a little at 500 nodes).
  ModelInputs three_by_one = esca;
  three_by_one.scheme4 = Scheme4::k3x1;
  const auto tree = strong_scaling(base, three_by_one, nodes);
  EXPECT_GT(tree[1].efficiency, two_by_two[1].efficiency + 0.3);
  EXPECT_GT(tree[1].efficiency, 0.7);
}

TEST(ClusterModel, SingleGpuFourHitTakesOverAMonth) {
  // §I: four-hit on one GPU was estimated at > 40 days; one CPU at > 500
  // years. The model lands in the same infeasibility regime.
  ModelInputs inputs;
  const double gpu = model_single_gpu_time(DeviceSpec::v100(), inputs);
  EXPECT_GT(gpu, 25.0 * 86400);
  EXPECT_LT(gpu, 90.0 * 86400);
  const double cpu = model_single_cpu_time(inputs, 2.2e8);
  EXPECT_GT(cpu, 50.0 * 365 * 86400);
}

TEST(ClusterModel, ThousandsOfGpusGiveThousandsFoldSpeedup) {
  // §I: ~7192x on 6000 GPUs vs one GPU (superlinear vs their conservative
  // single-GPU estimate; the model gives the same order of magnitude).
  ModelInputs inputs;
  SummitConfig big;
  big.nodes = 1000;
  const double cluster = model_cluster_run(big, inputs).total_time;
  const double single = model_single_gpu_time(DeviceSpec::v100(), inputs);
  const double speedup = single / cluster;
  EXPECT_GT(speedup, 2000.0);
  EXPECT_LT(speedup, 8000.0);
}

TEST(ClusterModel, UtilizationBalancedFor3x1) {
  // Fig. 7: per-GPU modeled times are nearly uniform under EA + 3x1.
  SummitConfig base;
  base.gpu_jitter = 0.0;  // isolate the scheduler effect
  ModelInputs inputs;
  inputs.first_iteration_only = true;
  const auto run = model_cluster_run(base, inputs);
  const auto& gpus = run.iterations.front().gpus;
  double min_time = 1e30, max_time = 0.0;
  for (const auto& g : gpus) {
    min_time = std::min(min_time, g.time);
    max_time = std::max(max_time, g.time);
  }
  EXPECT_GT(min_time / max_time, 0.95);
}

TEST(ClusterModel, UtilizationImbalancedFor2x2) {
  // Fig. 6: under the 2x2 scheme utilization varies widely across GPUs.
  SummitConfig base;
  base.gpu_jitter = 0.0;
  ModelInputs inputs;
  inputs.scheme4 = Scheme4::k2x2;
  inputs.genes = 2000;  // ACC-like shrunken for test speed
  inputs.tumor_samples = 60;
  inputs.normal_samples = 55;
  inputs.first_iteration_only = true;
  const auto run = model_cluster_run(base, inputs);
  const auto& gpus = run.iterations.front().gpus;
  double min_time = 1e30, max_time = 0.0;
  for (const auto& g : gpus) {
    min_time = std::min(min_time, g.time);
    max_time = std::max(max_time, g.time);
  }
  EXPECT_LT(min_time / max_time, 0.7);
}

TEST(ClusterModel, CandidateListFitsInNodeMemory) {
  // §III-E: the per-block candidate list at paper scale shrinks from the
  // 24.3 TB thread-level list to tens of GB across the fleet.
  SummitConfig base;
  ModelInputs inputs;
  inputs.first_iteration_only = true;
  const auto run = model_cluster_run(base, inputs);
  const double total_bytes =
      static_cast<double>(run.iterations.front().candidate_bytes_total);
  const double thread_level_bytes = static_cast<double>(tetrahedral(19411)) * kCandidateBytes;
  EXPECT_LT(total_bytes, thread_level_bytes / 400.0);
  EXPECT_LT(total_bytes, 100e9);  // tens of GB, as in the paper
}

TEST(ClusterModel, FaultOverheadIsZeroByDefaultAndGrowsWithFailureRate) {
  SummitConfig base;
  ModelInputs inputs;
  const ModeledRun clean = model_cluster_run(base, inputs);
  EXPECT_DOUBLE_EQ(clean.expected_failures, 0.0);
  EXPECT_DOUBLE_EQ(clean.fault_overhead, 0.0);
  EXPECT_DOUBLE_EQ(clean.checkpoint_overhead, 0.0);

  ModelInputs flaky = inputs;
  flaky.rank_mtbf_hours = 10000.0;  // ~1.1 node-years
  flaky.checkpoint_every_seconds = 1800.0;
  const ModeledRun faulty = model_cluster_run(base, flaky);
  EXPECT_GT(faulty.expected_failures, 0.0);
  EXPECT_GT(faulty.fault_overhead, 0.0);
  EXPECT_GT(faulty.checkpoint_overhead, 0.0);
  EXPECT_NEAR(faulty.total_time,
              clean.total_time + faulty.fault_overhead + faulty.checkpoint_overhead, 1e-9);

  ModelInputs flakier = flaky;
  flakier.rank_mtbf_hours = 2000.0;
  EXPECT_GT(model_cluster_run(base, flakier).fault_overhead, faulty.fault_overhead);
}

TEST(ClusterModel, InvalidInputsRejected) {
  SummitConfig base;
  ModelInputs inputs;
  inputs.hits = 1;
  EXPECT_THROW(model_cluster_run(base, inputs), std::invalid_argument);
  inputs.hits = 6;
  EXPECT_THROW(model_cluster_run(base, inputs), std::invalid_argument);
  inputs.hits = 4;
  inputs.coverage_per_iteration = 0.0;
  EXPECT_THROW(model_cluster_run(base, inputs), std::invalid_argument);
}

}  // namespace
}  // namespace multihit
