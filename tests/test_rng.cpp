#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace multihit {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 1u);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, NormalHasUnitMoments) {
  Rng rng(29);
  constexpr int kDraws = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(31);
  for (double lambda : {0.1, 2.0, 20.0, 100.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / kDraws, lambda, std::max(0.05, lambda * 0.05));
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
  for (std::uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleZero) {
  Rng rng(47);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace multihit
