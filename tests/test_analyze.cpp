#include "obs/analyze.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/distributed.hpp"
#include "data/generator.hpp"
#include "obs/recorder.hpp"

namespace multihit {
namespace {

using obs::JsonValue;

// All hand-built timestamps below are dyadic (multiples of 0.25), so the
// seconds<->microseconds conversions in the Chrome export round-trip without
// floating-point drift and byte-identity assertions are exact.

/// Two ranks, one binding reduce hop, a broadcast tail — the minimal trace
/// with a cross-lane critical path.
obs::Tracer two_rank_tracer() {
  obs::Tracer tracer;
  tracer.set_lane_name(0, "rank 0");
  tracer.set_lane_name(1, "rank 1");
  tracer.complete(0, "compute", "compute", 0.0, 1.0);
  tracer.complete(0, "mpi_reduce", "comm", 1.0, 1.25);
  tracer.complete(1, "compute", "compute", 0.0, 2.0);
  tracer.complete(1, "mpi_reduce", "comm", 2.0, 2.25);
  tracer.complete(0, "mpi_broadcast", "comm", 2.5, 2.75);
  tracer.instant(1, "fault.crash", "fault", 0.5);
  // Counter tracks ride the same export/import path as spans.
  tracer.counter(0, "occupancy", 0.0, 0.75);
  tracer.counter(0, "occupancy", 1.0, 0.0);
  tracer.counter(1, "dram_throughput", 0.0, 512.0);
  // Rank 0 finished reducing at 1.25 and then waited for the straggler's
  // candidate: this edge is binding and carries the critical path to lane 1.
  tracer.flow(1, 2.25, 0, 2.5, "reduce", "comm", /*binding=*/true, {{"bytes", "20"}});
  // Rank 1 was behind when this message left rank 0 — non-binding, ignored
  // by the walk.
  tracer.flow(0, 1.25, 1, 1.5, "p2p", "comm", /*binding=*/false);
  return tracer;
}

TEST(AnalyzeCriticalPath, BackwardWalkCrossesBindingEdgesOnly) {
  const obs::TraceAnalysis a = obs::analyze_trace(two_rank_tracer());

  EXPECT_DOUBLE_EQ(a.makespan, 2.75);
  EXPECT_EQ(a.rank_lanes, 2u);
  EXPECT_DOUBLE_EQ(a.critical_total, a.makespan);  // tiles [0, makespan]

  // Chronological: straggler's compute + reduce, the wire hop, the broadcast.
  ASSERT_EQ(a.critical_path.size(), 4u);
  EXPECT_EQ(a.critical_path[0].lane, 1u);
  EXPECT_EQ(a.critical_path[0].phase, "compute");
  EXPECT_DOUBLE_EQ(a.critical_path[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(a.critical_path[0].end, 2.0);
  EXPECT_EQ(a.critical_path[1].phase, "mpi_reduce");
  EXPECT_DOUBLE_EQ(a.critical_path[1].end, 2.25);
  EXPECT_EQ(a.critical_path[2].phase, "transfer");
  EXPECT_DOUBLE_EQ(a.critical_path[2].begin, 2.25);
  EXPECT_DOUBLE_EQ(a.critical_path[2].end, 2.5);
  EXPECT_EQ(a.critical_path[3].lane, 0u);
  EXPECT_EQ(a.critical_path[3].phase, "mpi_broadcast");
  EXPECT_DOUBLE_EQ(a.critical_path[3].end, 2.75);

  double by_phase_total = 0.0;
  for (const auto& [phase, seconds] : a.critical_by_phase) by_phase_total += seconds;
  EXPECT_DOUBLE_EQ(by_phase_total, a.critical_total);
}

TEST(AnalyzeCriticalPath, PhaseStatsAttributeStragglerAndImbalance) {
  const obs::TraceAnalysis a = obs::analyze_trace(two_rank_tracer());

  const obs::PhaseStat* compute = nullptr;
  const obs::PhaseStat* broadcast = nullptr;
  for (const obs::PhaseStat& stat : a.phases) {
    if (stat.phase == "compute") compute = &stat;
    if (stat.phase == "mpi_broadcast") broadcast = &stat;
  }
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->category, "compute");
  EXPECT_DOUBLE_EQ(compute->total_seconds, 3.0);
  EXPECT_DOUBLE_EQ(compute->mean_seconds, 1.5);
  EXPECT_DOUBLE_EQ(compute->max_seconds, 2.0);
  EXPECT_EQ(compute->straggler_lane, 1u);
  EXPECT_DOUBLE_EQ(compute->max_over_mean, 2.0 / 1.5);
  EXPECT_DOUBLE_EQ(compute->stddev_seconds, std::sqrt(0.5));
  EXPECT_EQ(compute->lanes, 2u);

  // Only rank 0 broadcast, but the mean is over *all* rank lanes: a lane
  // that never entered the phase is imbalance, not a smaller denominator.
  ASSERT_NE(broadcast, nullptr);
  EXPECT_EQ(broadcast->lanes, 1u);
  EXPECT_DOUBLE_EQ(broadcast->mean_seconds, 0.125);
  EXPECT_DOUBLE_EQ(broadcast->max_over_mean, 2.0);

  EXPECT_DOUBLE_EQ(a.busy_seconds, 3.75);
  EXPECT_DOUBLE_EQ(a.comm_seconds, 0.75);
  EXPECT_DOUBLE_EQ(a.comm_fraction, 0.2);
}

TEST(AnalyzeCriticalPath, GapsBecomeWaitSegments) {
  obs::Tracer tracer;
  tracer.complete(0, "compute", "compute", 0.0, 1.0);
  tracer.complete(0, "compute", "compute", 2.0, 3.0);

  const obs::TraceAnalysis a = obs::analyze_trace(tracer);
  EXPECT_DOUBLE_EQ(a.makespan, 3.0);
  EXPECT_DOUBLE_EQ(a.critical_total, 3.0);
  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_EQ(a.critical_path[0].phase, "compute");
  EXPECT_EQ(a.critical_path[1].phase, "wait");
  EXPECT_DOUBLE_EQ(a.critical_path[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(a.critical_path[1].end, 2.0);
  EXPECT_EQ(a.critical_path[2].phase, "compute");
}

TEST(AnalyzeCriticalPath, IterationWindowsComeFromEngineLane) {
  obs::Tracer tracer;
  tracer.complete(0, "compute", "compute", 0.0, 1.0);
  tracer.complete(obs::kEngineLane, "greedy_iteration", "engine", 0.0, 0.5,
                  {{"iteration", "0"}});
  tracer.complete(obs::kEngineLane, "greedy_iteration", "engine", 0.5, 1.0,
                  {{"iteration", "1"}});

  const obs::TraceAnalysis a = obs::analyze_trace(tracer);
  EXPECT_EQ(a.rank_lanes, 1u);  // the engine lane is a driver lane, not a rank
  ASSERT_EQ(a.iterations.size(), 2u);
  EXPECT_EQ(a.iterations[0].index, 0u);
  EXPECT_DOUBLE_EQ(a.iterations[0].end, 0.5);
  EXPECT_EQ(a.iterations[1].index, 1u);
}

TEST(AnalyzeFolded, SelfTimeExcludesChildrenAndSiblingsShareStacks) {
  obs::Tracer tracer;
  tracer.set_lane_name(0, "r0");
  tracer.complete(0, "gpu_kernel", "gpu", 0.0, 0.5);
  tracer.complete(0, "gpu_kernel", "gpu", 0.0, 0.25);  // concurrent sibling
  tracer.complete(0, "compute", "compute", 0.0, 1.0);  // parent appended last

  // compute self = 1.0 - (0.5 + 0.25); the two kernels fold into one stack
  // (they are siblings, not a kernel-inside-kernel chain).
  EXPECT_EQ(obs::folded_stacks(tracer),
            "r0;compute 250000\n"
            "r0;compute;gpu_kernel 750000\n");
}

TEST(AnalyzeOffline, ChromeRoundTripIsLossless) {
  const obs::Tracer live = two_rank_tracer();
  const std::string chrome = live.to_chrome_json();
  const obs::Tracer offline = obs::tracer_from_chrome(JsonValue::parse(chrome));

  // Re-export, re-analysis, and flamegraph of the reconstructed tracer are
  // byte-identical to the live ones — obstool on a saved trace must agree
  // with the in-process report path.
  EXPECT_EQ(offline.to_chrome_json(), chrome);
  EXPECT_EQ(obs::folded_stacks(offline), obs::folded_stacks(live));
  const obs::TraceAnalysis a = obs::analyze_trace(live);
  const obs::TraceAnalysis b = obs::analyze_trace(offline);
  EXPECT_EQ(obs::analysis_report(a).dump(), obs::analysis_report(b).dump());
  EXPECT_EQ(obs::analysis_text(a), obs::analysis_text(b));
}

TEST(AnalyzeOffline, RejectsDocumentsThatAreNotTraces) {
  const auto analyze = [](const char* text) {
    return obs::tracer_from_chrome(JsonValue::parse(text));
  };
  EXPECT_THROW(analyze("{}"), obs::AnalysisError);
  EXPECT_THROW(analyze("{\"traceEvents\":5}"), obs::AnalysisError);
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"x\",\"cat\":\"t\","
                       "\"tid\":0,\"ts\":0}]}"),
               obs::AnalysisError);
  // Span with a non-string arg value.
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"cat\":\"t\","
                       "\"tid\":0,\"ts\":0,\"dur\":1,\"args\":{\"n\":3}}]}"),
               obs::AnalysisError);
  // Counter event without a numeric args.value.
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"C\",\"name\":\"occupancy\","
                       "\"cat\":\"counter\",\"tid\":0,\"ts\":0,"
                       "\"args\":{\"value\":\"high\"}}]}"),
               obs::AnalysisError);
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"C\",\"name\":\"occupancy\","
                       "\"cat\":\"counter\",\"tid\":0,\"ts\":0,\"args\":{}}]}"),
               obs::AnalysisError);
  // Unpaired flows: a start without a finish, a finish without a start, and
  // two starts sharing an id.
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"s\",\"name\":\"m\",\"cat\":\"c\","
                       "\"tid\":0,\"ts\":0,\"id\":7}]}"),
               obs::AnalysisError);
  EXPECT_THROW(analyze("{\"traceEvents\":[{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"m\","
                       "\"cat\":\"c\",\"tid\":1,\"ts\":1,\"id\":7}]}"),
               obs::AnalysisError);
  EXPECT_THROW(analyze("{\"traceEvents\":["
                       "{\"ph\":\"s\",\"name\":\"m\",\"cat\":\"c\",\"tid\":0,\"ts\":0,\"id\":7},"
                       "{\"ph\":\"s\",\"name\":\"m\",\"cat\":\"c\",\"tid\":0,\"ts\":0,\"id\":7},"
                       "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"m\",\"cat\":\"c\",\"tid\":1,"
                       "\"ts\":1,\"id\":7}]}"),
               obs::AnalysisError);
}

// --------------------------------------------------- cluster-model crosscheck

Dataset analyze_dataset(std::uint64_t seed, std::uint32_t genes = 40) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

TEST(AnalyzeCluster, ReportAgreesWithClusterModelClocks) {
  const Dataset data = analyze_dataset(903);
  SummitConfig config;
  config.nodes = 4;
  obs::Recorder rec;
  DistributedOptions options;
  options.recorder = &rec;
  const ClusterRunResult result = ClusterRunner(config).run(data, options);

  const obs::TraceAnalysis a = obs::analyze_trace(rec.trace);
  EXPECT_EQ(a.rank_lanes, config.nodes);

  // The trace timeline is the per-rank SimComm clocks, which start at zero
  // and telescope through the iterations: the makespan must equal the
  // cluster model's summed iteration times, and the critical path tiles it.
  double iteration_sum = 0.0;
  for (const IterationTelemetry& it : result.iterations) iteration_sum += it.iteration_time;
  EXPECT_NEAR(a.makespan, iteration_sum, 1e-9 * iteration_sum);
  EXPECT_NEAR(a.critical_total, a.makespan, 1e-9 * a.makespan);

  // Iteration windows line up with the model's per-iteration clocks.
  ASSERT_EQ(a.iterations.size(), result.greedy.iterations.size());
  ASSERT_LE(a.iterations.size(), result.iterations.size());
  double cursor = 0.0;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_NEAR(a.iterations[i].begin, cursor, 1e-9 * a.makespan) << i;
    EXPECT_NEAR(a.iterations[i].end - a.iterations[i].begin,
                result.iterations[i].iteration_time, 1e-9 * a.makespan)
        << i;
    cursor = a.iterations[i].end;
  }

  EXPECT_GT(a.comm_fraction, 0.0);
  EXPECT_LT(a.comm_fraction, 1.0);
  EXPECT_GT(a.busy_seconds, 0.0);

  // The report renders, carries the schema, and the critical-path fractions
  // sum to one.
  const JsonValue report = obs::analysis_report(a, nullptr);
  EXPECT_EQ(report.find("schema")->as_string(), obs::kAnalysisSchema);
  const JsonValue* by_phase = report.find("critical_path")->find("by_phase");
  ASSERT_NE(by_phase, nullptr);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < by_phase->size(); ++i) {
    fraction_sum += by_phase->at(i).find("fraction")->as_number();
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST(AnalyzeCluster, ReportsAreByteIdenticalAcrossRuns) {
  const Dataset data = analyze_dataset(904, 30);
  SummitConfig config;
  config.nodes = 3;
  const ClusterRunner runner(config);

  const auto artifacts = [&] {
    obs::Recorder rec;
    DistributedOptions options;
    options.recorder = &rec;
    options.max_iterations = 3;
    runner.run(data, options);
    const obs::TraceAnalysis a = obs::analyze_trace(rec.trace);
    const JsonValue metrics = rec.metrics.snapshot();
    return std::pair{obs::analysis_report(a, &metrics).dump(),
                     obs::folded_stacks(rec.trace)};
  };
  const auto [report_a, folded_a] = artifacts();
  const auto [report_b, folded_b] = artifacts();
  EXPECT_EQ(report_a, report_b);
  EXPECT_EQ(folded_a, folded_b);
}

TEST(AnalyzeCluster, EquiAreaBeatsEquiDistanceImbalance) {
  // The Fig. 3 claim, asserted on the analysis output: on the same workload
  // the equi-area schedule's compute-phase max/mean must not exceed the
  // naive equi-distance schedule's.
  const Dataset data = analyze_dataset(905);
  const auto compute_imbalance = [&](SchedulerKind kind) {
    SummitConfig config;
    config.nodes = 4;
    obs::Recorder rec;
    DistributedOptions options;
    options.scheduler = kind;
    options.recorder = &rec;
    ClusterRunner(config).run(data, options);
    const obs::TraceAnalysis a = obs::analyze_trace(rec.trace);
    for (const obs::PhaseStat& stat : a.phases) {
      if (stat.phase == "compute") return stat.max_over_mean;
    }
    ADD_FAILURE() << "no compute phase in analysis";
    return 0.0;
  };

  const double ea = compute_imbalance(SchedulerKind::kEquiArea);
  const double ed = compute_imbalance(SchedulerKind::kEquiDistance);
  EXPECT_GE(ea, 1.0);  // max/mean is >= 1 by construction
  EXPECT_LE(ea, ed + 1e-9);
}

}  // namespace
}  // namespace multihit
