#include "bitmat/bitmatrix.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "util/rng.hpp"

namespace multihit {
namespace {

TEST(BitMatrix, ConstructionAndDimensions) {
  const BitMatrix m(10, 130);
  EXPECT_EQ(m.genes(), 10u);
  EXPECT_EQ(m.samples(), 130u);
  EXPECT_EQ(m.words_per_row(), 3u);  // ceil(130/64)
  EXPECT_EQ(m.total_set_bits(), 0u);
}

TEST(BitMatrix, SetGetClear) {
  BitMatrix m(4, 100);
  m.set(2, 63);
  m.set(2, 64);
  m.set(3, 99);
  EXPECT_TRUE(m.get(2, 63));
  EXPECT_TRUE(m.get(2, 64));
  EXPECT_TRUE(m.get(3, 99));
  EXPECT_FALSE(m.get(2, 65));
  EXPECT_EQ(m.total_set_bits(), 3u);
  m.clear(2, 63);
  EXPECT_FALSE(m.get(2, 63));
  EXPECT_EQ(m.total_set_bits(), 2u);
}

TEST(BitMatrix, SetIsIdempotent) {
  BitMatrix m(2, 10);
  m.set(0, 5);
  m.set(0, 5);
  EXPECT_EQ(m.total_set_bits(), 1u);
}

TEST(BitMatrix, IntersectCountMatchesNaive) {
  Rng rng(7);
  BitMatrix m(8, 200);
  for (std::uint32_t g = 0; g < 8; ++g) {
    for (std::uint32_t s = 0; s < 200; ++s) {
      if (rng.bernoulli(0.3)) m.set(g, s);
    }
  }
  for (std::uint32_t h = 1; h <= 6; ++h) {
    std::vector<std::uint32_t> combo;
    for (std::uint32_t t = 0; t < h; ++t) combo.push_back(t);
    std::uint64_t naive = 0;
    for (std::uint32_t s = 0; s < 200; ++s) {
      bool all = true;
      for (std::uint32_t g : combo) all = all && m.get(g, s);
      naive += all ? 1 : 0;
    }
    EXPECT_EQ(m.intersect_count(combo), naive) << "h=" << h;
  }
}

TEST(BitMatrix, CombineRowsMatchesIntersectCount) {
  Rng rng(11);
  BitMatrix m(6, 150);
  for (std::uint32_t g = 0; g < 6; ++g) {
    for (std::uint32_t s = 0; s < 150; ++s) {
      if (rng.bernoulli(0.4)) m.set(g, s);
    }
  }
  const std::vector<std::uint32_t> combo{1, 3, 5};
  std::vector<std::uint64_t> buffer(m.words_per_row());
  EXPECT_EQ(m.combine_rows(combo, buffer), m.intersect_count(combo));
  // The buffer must mark exactly the intersecting samples.
  for (std::uint32_t s = 0; s < 150; ++s) {
    const bool expected = m.get(1, s) && m.get(3, s) && m.get(5, s);
    const bool actual = (buffer[s / 64] >> (s % 64)) & 1;
    EXPECT_EQ(actual, expected) << "s=" << s;
  }
}

TEST(BitMatrix, SpliceRemovesSelectedColumns) {
  BitMatrix m(3, 8);
  // Gene 0 mutated in samples 0..3; gene 1 in even samples; gene 2 in 7.
  for (std::uint32_t s = 0; s < 4; ++s) m.set(0, s);
  for (std::uint32_t s = 0; s < 8; s += 2) m.set(1, s);
  m.set(2, 7);

  // Keep samples 1, 2, 5, 7.
  std::vector<std::uint64_t> keep{0b10100110};
  EXPECT_EQ(m.splice_columns(keep), 4u);
  EXPECT_EQ(m.samples(), 4u);
  // New column order: old 1, 2, 5, 7.
  EXPECT_TRUE(m.get(0, 0));   // old sample 1
  EXPECT_TRUE(m.get(0, 1));   // old sample 2
  EXPECT_FALSE(m.get(0, 2));  // old sample 5
  EXPECT_FALSE(m.get(0, 3));  // old sample 7
  EXPECT_FALSE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_FALSE(m.get(1, 2));
  EXPECT_FALSE(m.get(1, 3));
  EXPECT_TRUE(m.get(2, 3));
}

TEST(BitMatrix, SpliceAcrossWordBoundaries) {
  Rng rng(13);
  BitMatrix m(5, 300);
  std::vector<std::vector<bool>> dense(5, std::vector<bool>(300, false));
  for (std::uint32_t g = 0; g < 5; ++g) {
    for (std::uint32_t s = 0; s < 300; ++s) {
      if (rng.bernoulli(0.25)) {
        m.set(g, s);
        dense[g][s] = true;
      }
    }
  }
  // Keep a pseudo-random subset.
  std::vector<std::uint64_t> keep(m.words_per_row(), 0);
  std::vector<std::uint32_t> kept_samples;
  for (std::uint32_t s = 0; s < 300; ++s) {
    if (rng.bernoulli(0.5)) {
      keep[s / 64] |= std::uint64_t{1} << (s % 64);
      kept_samples.push_back(s);
    }
  }
  const std::uint32_t new_count = m.splice_columns(keep);
  ASSERT_EQ(new_count, kept_samples.size());
  for (std::uint32_t g = 0; g < 5; ++g) {
    for (std::uint32_t ns = 0; ns < new_count; ++ns) {
      ASSERT_EQ(m.get(g, ns), dense[g][kept_samples[ns]]) << "g=" << g << " ns=" << ns;
    }
  }
}

TEST(BitMatrix, SpliceIgnoresBitsBeyondSampleCount) {
  BitMatrix m(1, 10);
  m.set(0, 9);
  // Keep mask with junk bits above position 9 set: they must not create
  // phantom columns.
  std::vector<std::uint64_t> keep{~0ULL};
  EXPECT_EQ(m.splice_columns(keep), 10u);
  EXPECT_EQ(m.samples(), 10u);
  EXPECT_TRUE(m.get(0, 9));
}

TEST(BitMatrix, SpliceCoveredComplementsMask) {
  BitMatrix m(2, 6);
  for (std::uint32_t s = 0; s < 6; ++s) m.set(0, s);
  m.set(1, 2);
  // Cover samples 0 and 2.
  std::vector<std::uint64_t> covered{0b000101};
  EXPECT_EQ(m.splice_covered(covered), 4u);
  EXPECT_EQ(m.samples(), 4u);
  EXPECT_EQ(m.intersect_count(std::vector<std::uint32_t>{0}), 4u);
  EXPECT_EQ(m.intersect_count(std::vector<std::uint32_t>{1}), 0u);  // sample 2 was covered
}

TEST(BitMatrix, SpliceToEmpty) {
  BitMatrix m(3, 5);
  m.set(1, 1);
  std::vector<std::uint64_t> keep{0};
  EXPECT_EQ(m.splice_columns(keep), 0u);
  EXPECT_EQ(m.samples(), 0u);
  EXPECT_EQ(m.words_per_row(), 0u);
  EXPECT_EQ(m.total_set_bits(), 0u);
}

TEST(BitMatrix, SplicePreservesIntersections) {
  // Splicing away columns outside the intersection must not change counts
  // over the kept columns — the invariant BitSplicing relies on.
  Rng rng(17);
  BitMatrix m(6, 128);
  for (std::uint32_t g = 0; g < 6; ++g) {
    for (std::uint32_t s = 0; s < 128; ++s) {
      if (rng.bernoulli(0.5)) m.set(g, s);
    }
  }
  const std::vector<std::uint32_t> combo{0, 2, 4};
  std::vector<std::uint64_t> covered(m.words_per_row());
  const std::uint64_t covered_count = m.combine_rows(combo, covered);
  BitMatrix spliced = m;
  spliced.splice_covered(covered);
  EXPECT_EQ(spliced.intersect_count(combo), 0u);  // all covered samples removed
  // Any other combination loses exactly the covered samples it shared.
  const std::vector<std::uint32_t> other{1, 3};
  std::vector<std::uint64_t> other_mask(m.words_per_row());
  m.combine_rows(other, other_mask);
  std::uint64_t shared = 0;
  for (std::size_t w = 0; w < covered.size(); ++w) {
    shared += static_cast<std::uint64_t>(std::popcount(other_mask[w] & covered[w]));
  }
  EXPECT_EQ(spliced.intersect_count(other), m.intersect_count(other) - shared);
  EXPECT_EQ(m.intersect_count(combo), covered_count);
}

TEST(BitMatrix, EqualityComparison) {
  BitMatrix a(2, 10), b(2, 10);
  EXPECT_EQ(a, b);
  a.set(1, 3);
  EXPECT_NE(a, b);
  b.set(1, 3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace multihit
