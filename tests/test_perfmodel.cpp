#include "gpusim/perfmodel.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace multihit {
namespace {

KernelStats sample_stats(std::uint64_t ops, std::uint64_t global) {
  KernelStats s;
  s.combinations = ops / 24;
  s.word_ops = ops;
  s.global_words = global;
  return s;
}

TEST(PerfModel, OccupancySaturates) {
  const DeviceSpec spec = DeviceSpec::v100();
  const auto low = model_gpu_time(spec, sample_stats(1e9, 1e9), 1000);
  const auto full = model_gpu_time(spec, sample_stats(1e9, 1e9), spec.resident_capacity());
  const auto over = model_gpu_time(spec, sample_stats(1e9, 1e9), 10 * spec.resident_capacity());
  EXPECT_LT(low.occupancy, 0.01);
  EXPECT_DOUBLE_EQ(full.occupancy, 1.0);
  EXPECT_DOUBLE_EQ(over.occupancy, 1.0);
}

TEST(PerfModel, LowOccupancyIsSlower) {
  // The §IV-C effect: same traffic, fewer resident threads => poorer latency
  // hiding => longer memory time.
  const DeviceSpec spec = DeviceSpec::v100();
  const auto starved = model_gpu_time(spec, sample_stats(1e8, 1e10), 2000);
  const auto saturated = model_gpu_time(spec, sample_stats(1e8, 1e10), 1u << 20);
  EXPECT_GT(starved.memory_time, 2.0 * saturated.memory_time);
  EXPECT_TRUE(starved.memory_bound);
}

TEST(PerfModel, RooflineTransition) {
  // Heavy traffic => memory bound; heavy ops with light traffic => compute
  // bound (the Fig. 6 transition past GPU #500).
  const DeviceSpec spec = DeviceSpec::v100();
  const auto memory = model_gpu_time(spec, sample_stats(1e8, 1e11), 1u << 21);
  const auto compute = model_gpu_time(spec, sample_stats(1e12, 1e8), 1u << 21);
  EXPECT_TRUE(memory.memory_bound);
  EXPECT_FALSE(compute.memory_bound);
  EXPECT_GT(memory.time, 0.0);
  EXPECT_GT(compute.time, 0.0);
}

TEST(PerfModel, TimeScalesLinearlyWithWork) {
  const DeviceSpec spec = DeviceSpec::v100();
  const auto one = model_gpu_time(spec, sample_stats(1e10, 1e10), 1u << 21);
  const auto two = model_gpu_time(spec, sample_stats(2e10, 2e10), 1u << 21);
  EXPECT_NEAR(two.time / one.time, 2.0, 0.05);  // overheads are small here
}

TEST(PerfModel, ThroughputNeverExceedsPeak) {
  const DeviceSpec spec = DeviceSpec::v100();
  for (const std::uint64_t threads : {1000ull, 100000ull, 1ull << 22}) {
    const auto t = model_gpu_time(spec, sample_stats(1e9, 1e11), threads);
    EXPECT_LE(t.dram_throughput, spec.dram_bandwidth * 1.0001);
    EXPECT_GT(t.dram_throughput, 0.0);
  }
}

TEST(PerfModel, LaunchOverheadPresent) {
  const DeviceSpec spec = DeviceSpec::v100();
  const auto t = model_gpu_time(spec, KernelStats{}, 1);
  EXPECT_GE(t.time, 2.0 * spec.kernel_launch_overhead);
}

TEST(PerfModel, StallBreakdownSumsToOne) {
  const DeviceSpec spec = DeviceSpec::v100();
  for (const std::uint64_t threads : {1000ull, 1ull << 18, 1ull << 22}) {
    for (const auto& [ops, global] : {std::pair{1e8, 1e11}, {1e12, 1e8}, {1e10, 1e10}}) {
      const auto timing = model_gpu_time(spec, sample_stats(ops, global), threads);
      const auto s = stall_breakdown(timing);
      EXPECT_NEAR(
          s.memory_dependency + s.memory_throttle + s.execution_dependency + s.other, 1.0,
          1e-9);
      EXPECT_GE(s.memory_dependency, 0.0);
      EXPECT_GE(s.memory_throttle, 0.0);
      EXPECT_GE(s.execution_dependency, 0.0);
      EXPECT_GE(s.other, 0.0);
    }
  }
}

TEST(PerfModel, MemoryDependencyDominatesWhenStarved) {
  // Fig. 6c: stalls on memory dependency are the largest contributor for the
  // low-occupancy memory-bound GPUs.
  const DeviceSpec spec = DeviceSpec::v100();
  const auto starved = model_gpu_time(spec, sample_stats(1e8, 1e11), 2000);
  const auto s = stall_breakdown(starved);
  EXPECT_GT(s.memory_dependency, s.memory_throttle);
  EXPECT_GT(s.memory_dependency, s.execution_dependency);
  EXPECT_GT(s.memory_dependency, 0.4);
}

TEST(PerfModel, StallBreakdownIsAPartitionOnRandomizedTimings) {
  // Property: for ANY GpuTiming — including adversarial hand-built profiles a
  // corrupted multihit.profile.v1 artifact could replay through the offline
  // tooling (negative times, occupancy outside [0,1]) — the taxonomy stays a
  // partition: every fraction in [0,1] and the four summing to 1 (+-1e-9).
  Rng rng(0xF16C5ULL);
  for (int trial = 0; trial < 2000; ++trial) {
    GpuTiming t;
    t.compute_time = (rng.uniform_double() - 0.25) * 1e3;   // 25% negative
    t.memory_time = (rng.uniform_double() - 0.25) * 1e3;
    t.occupancy = rng.uniform_double() * 2.0 - 0.5;         // strays past [0,1]
    t.mem_efficiency = rng.uniform_double() * 2.0 - 0.5;
    t.memory_bound = rng.bernoulli(0.5);
    t.time = t.compute_time + t.memory_time;
    const auto s = stall_breakdown(t);
    const double sum =
        s.memory_dependency + s.memory_throttle + s.execution_dependency + s.other;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "trial " << trial;
    for (const double f :
         {s.memory_dependency, s.memory_throttle, s.execution_dependency, s.other}) {
      EXPECT_GE(f, 0.0) << "trial " << trial;
      EXPECT_LE(f, 1.0) << "trial " << trial;
    }
  }
}

TEST(PerfModel, ExecutionDependencyRisesWhenComputeBound) {
  const DeviceSpec spec = DeviceSpec::v100();
  const auto memory = stall_breakdown(model_gpu_time(spec, sample_stats(1e8, 1e11), 1u << 22));
  const auto compute = stall_breakdown(model_gpu_time(spec, sample_stats(1e12, 1e8), 1u << 22));
  EXPECT_GT(compute.execution_dependency, memory.execution_dependency);
}

}  // namespace
}  // namespace multihit
