// Cross-module algebraic properties: the invariants the distributed design
// silently relies on (reduction algebra, F-score monotonicity, end-to-end
// determinism), fuzzed over seeds.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"
#include "data/generator.hpp"
#include "data/io.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace multihit {
namespace {

EvalResult random_result(Rng& rng) {
  EvalResult r;
  r.valid = rng.bernoulli(0.85);
  if (r.valid) {
    // Coarse grid so ties actually occur.
    r.f = static_cast<double>(rng.uniform(8)) / 8.0;
    r.combo_rank = rng.uniform(16);
    r.tp = rng.uniform(50);
    r.tn = rng.uniform(50);
  }
  return r;
}

bool same_winner(const EvalResult& a, const EvalResult& b) {
  if (a.valid != b.valid) return false;
  if (!a.valid) return true;
  return a.f == b.f && a.combo_rank == b.combo_rank;
}

TEST(ReductionAlgebra, MergeIsAssociative) {
  // parallelReduceMax and the MPI binomial tree apply merge_results in
  // different orders; associativity is what makes them agree.
  Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    const EvalResult a = random_result(rng);
    const EvalResult b = random_result(rng);
    const EvalResult c = random_result(rng);
    const EvalResult left = merge_results(merge_results(a, b), c);
    const EvalResult right = merge_results(a, merge_results(b, c));
    ASSERT_TRUE(same_winner(left, right)) << "trial " << trial;
  }
}

TEST(ReductionAlgebra, MergeIsCommutative) {
  Rng rng(271);
  for (int trial = 0; trial < 500; ++trial) {
    const EvalResult a = random_result(rng);
    const EvalResult b = random_result(rng);
    ASSERT_TRUE(same_winner(merge_results(a, b), merge_results(b, a))) << trial;
  }
}

TEST(ReductionAlgebra, InvalidIsIdentity) {
  Rng rng(577);
  const EvalResult identity;  // invalid
  for (int trial = 0; trial < 100; ++trial) {
    const EvalResult a = random_result(rng);
    EXPECT_TRUE(same_winner(merge_results(a, identity), a));
    EXPECT_TRUE(same_winner(merge_results(identity, a), a));
  }
}

TEST(ReductionAlgebra, MergeIsIdempotent) {
  Rng rng(717);
  for (int trial = 0; trial < 100; ++trial) {
    const EvalResult a = random_result(rng);
    EXPECT_TRUE(same_winner(merge_results(a, a), a));
  }
}

TEST(FScore, MonotoneInTruePositives) {
  const FContext ctx{FParams{}, 100, 80};
  for (std::uint64_t tp = 0; tp < 100; ++tp) {
    EXPECT_LT(f_score(ctx, tp, 10), f_score(ctx, tp + 1, 10));
  }
}

TEST(FScore, MonotoneInTrueNegatives) {
  const FContext ctx{FParams{}, 100, 80};
  for (std::uint64_t nh = 1; nh <= 80; ++nh) {
    EXPECT_LT(f_score(ctx, 10, nh), f_score(ctx, 10, nh - 1));
  }
}

TEST(FScore, AlphaWeightsTpVsTn) {
  // With alpha = 0.1, one extra TN outweighs one extra TP (the paper's bias
  // correction).
  const FContext ctx{FParams{}, 100, 80};
  const double base = f_score(ctx, 10, 10);
  const double plus_tp = f_score(ctx, 11, 10);
  const double plus_tn = f_score(ctx, 10, 9);
  EXPECT_GT(plus_tn - base, plus_tp - base);
  EXPECT_NEAR((plus_tp - base) / (plus_tn - base), 0.1, 1e-9);
}

TEST(FScore, BoundedByUnitInterval) {
  const FContext ctx{FParams{}, 50, 50};
  EXPECT_GE(f_score(ctx, 0, 50), 0.0);
  EXPECT_LE(f_score(ctx, 50, 0), 1.0);
}

TEST(EndToEnd, GreedyIsDeterministic) {
  for (const std::uint64_t seed : {1ull, 99ull, 4242ull}) {
    SyntheticSpec spec;
    spec.genes = 35;
    spec.tumor_samples = 60;
    spec.normal_samples = 40;
    spec.hits = 3;
    spec.num_combinations = 3;
    spec.seed = seed;
    const Dataset data = generate_dataset(spec);
    EngineConfig config;
    config.hits = 3;
    const GreedyResult a = run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(3));
    const GreedyResult b = run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(3));
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
      EXPECT_EQ(a.iterations[i].genes, b.iterations[i].genes);
      EXPECT_EQ(a.iterations[i].f, b.iterations[i].f);
    }
  }
}

TEST(EndToEnd, DatasetIoFuzzRoundTrips) {
  Rng rng(888);
  for (int trial = 0; trial < 5; ++trial) {
    SyntheticSpec spec;
    spec.genes = 10 + static_cast<std::uint32_t>(rng.uniform(80));
    spec.tumor_samples = 1 + static_cast<std::uint32_t>(rng.uniform(150));
    spec.normal_samples = 1 + static_cast<std::uint32_t>(rng.uniform(150));
    spec.hits = 2 + static_cast<std::uint32_t>(rng.uniform(2));
    spec.num_combinations = 1 + static_cast<std::uint32_t>(rng.uniform(3));
    if (spec.hits * spec.num_combinations > spec.genes) continue;
    spec.background_rate = rng.uniform_double() * 0.2;
    spec.seed = rng();
    const Dataset data = generate_dataset(spec);
    std::stringstream buffer;
    write_dataset(buffer, data);
    const Dataset loaded = read_dataset(buffer);
    ASSERT_EQ(loaded.tumor, data.tumor) << "trial " << trial;
    ASSERT_EQ(loaded.normal, data.normal) << "trial " << trial;
    ASSERT_EQ(loaded.planted, data.planted) << "trial " << trial;
  }
}

TEST(EndToEnd, SelectionsAreValidCombinations) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 50;
  spec.normal_samples = 40;
  spec.hits = 4;
  spec.num_combinations = 2;
  spec.seed = 999;
  const Dataset data = generate_dataset(spec);
  EngineConfig config;
  config.hits = 4;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(4));
  for (const auto& it : result.iterations) {
    ASSERT_EQ(it.genes.size(), 4u);
    for (std::size_t t = 1; t < it.genes.size(); ++t) {
      EXPECT_LT(it.genes[t - 1], it.genes[t]);  // strictly increasing
    }
    EXPECT_LT(it.genes.back(), spec.genes);
    // The recorded TP must equal the actual intersection on the original
    // matrix restricted to then-uncovered samples; at minimum it is bounded
    // by the full-matrix intersection.
    EXPECT_LE(it.tp, data.tumor.intersect_count(it.genes));
  }
}

}  // namespace
}  // namespace multihit
