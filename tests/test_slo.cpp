// Per-tenant serve SLO suite (src/obs/slo + the monitor's serve detectors).
//
// The load-bearing properties, in order of importance:
//   1. Replay identity: the multihit.slo.v1 report computed in-process from a
//      live ServeResult is byte-identical to one recomputed offline from the
//      run's multihit.serve.v1 document — the contract `obstool slo` rests on.
//   2. Detector ground truth: every planted --scenario pathology fires its
//      detector class (100% recall on the pinned seeds), and clean traces
//      across ten seeds fire nothing (zero false positives).
//   3. Grammar and evaluator semantics on hand-built inputs.

#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/monitor.hpp"
#include "obs/recorder.hpp"
#include "obs/schema.hpp"
#include "serve/service.hpp"

namespace multihit {
namespace {

using obs::HealthReport;
using obs::Incident;
using obs::JsonValue;
using obs::MonitorOptions;
using obs::SeriesLabels;
using obs::SloError;
using obs::SloInput;
using obs::SloJob;
using obs::SloKind;
using obs::SloObjective;
using obs::SloReport;
using serve::JobService;
using serve::RequestTrace;
using serve::Scenario;
using serve::ServeResult;
using serve::ServiceOptions;
using serve::TraceSpec;

/// The spec examples/serve.slo ships (and ci.sh pins): the clean seed-7
/// trace meets it, the planted scenarios violate it.
constexpr std::string_view kServeSlo =
    "slo * latency p99 below 40\n"
    "slo * admission above 0.95\n"
    "slo * budget 0.1 window 120 fast 10\n";

// ------------------------------------------------------------------- grammar

TEST(SloGrammar, ParsesEveryKindWithDefaultsAndComments) {
  const std::vector<SloObjective> spec = obs::parse_slo(
      "# fleet objectives\n"
      "slo gold latency p99 below 30  # tail bound\n"
      "\n"
      "slo * admission above 0.95\n"
      "slo gold budget 0.05 window 120 fast 10\n"
      "slo * budget 0.1 window 60\n");
  ASSERT_EQ(spec.size(), 4u);
  EXPECT_EQ(spec[0].tenant, "gold");
  EXPECT_EQ(spec[0].kind, SloKind::kLatency);
  EXPECT_DOUBLE_EQ(spec[0].percentile, 99.0);
  EXPECT_DOUBLE_EQ(spec[0].target, 30.0);
  EXPECT_EQ(spec[1].tenant, "*");
  EXPECT_EQ(spec[1].kind, SloKind::kAdmission);
  EXPECT_DOUBLE_EQ(spec[1].target, 0.95);
  EXPECT_EQ(spec[2].kind, SloKind::kBudget);
  EXPECT_DOUBLE_EQ(spec[2].window, 120.0);
  EXPECT_DOUBLE_EQ(spec[2].fast_window, 10.0);
  // Omitted fast window defaults to window/12 — the SRE 1h/5m ratio.
  EXPECT_DOUBLE_EQ(spec[3].fast_window, 5.0);
}

TEST(SloGrammar, RejectsMalformedLinesNamingTheLine) {
  try {
    obs::parse_slo("slo gold latency p99 below 30\nslo gold capacity above 1\n");
    FAIL() << "expected SloError";
  } catch (const SloError& e) {
    EXPECT_NE(std::string(e.what()).find("slo line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos) << e.what();
  }
  EXPECT_THROW(obs::parse_slo("nonsense\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold latency 99 below 30\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold latency p0 below 30\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold latency p99 above 30\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold admission above 1.5\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold budget 1.0 window 60\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold budget 0.1 window 60 fast 60\n"), SloError);
  EXPECT_THROW(obs::parse_slo("slo gold budget 0.1 window sixty\n"), SloError);
}

// ------------------------------------------------- label-suffixed series names

TEST(SloLabels, CanonicalNamesSortKeysAndRoundTrip) {
  // Keys are sorted on the way in, so any insertion order canonicalizes.
  const std::string name = obs::series_with_labels(
      "serve.wait_age", {{"tenant", "gold"}, {"cancer", "BRCA"}});
  EXPECT_EQ(name, "serve.wait_age{cancer=BRCA,tenant=gold}");
  const auto [base, labels] = obs::split_series_labels(name);
  EXPECT_EQ(base, "serve.wait_age");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], (std::pair<std::string, std::string>{"cancer", "BRCA"}));
  EXPECT_EQ(labels[1], (std::pair<std::string, std::string>{"tenant", "gold"}));
  EXPECT_EQ(obs::series_tenant(name), "gold");
  EXPECT_EQ(obs::series_tenant("serve.queue_depth"), "");

  // Unlabeled names pass through whole.
  EXPECT_EQ(obs::series_with_labels("serve.queue_depth", {}), "serve.queue_depth");
  EXPECT_EQ(obs::split_series_labels("serve.queue_depth").first, "serve.queue_depth");
}

TEST(SloLabels, RejectsMalformedSelectors) {
  EXPECT_THROW(obs::split_series_labels(""), SloError);
  EXPECT_THROW(obs::split_series_labels("s{tenant=gold"), SloError);
  EXPECT_THROW(obs::split_series_labels("{tenant=gold}"), SloError);
  EXPECT_THROW(obs::split_series_labels("s{}"), SloError);
  EXPECT_THROW(obs::split_series_labels("s{tenant}"), SloError);
  EXPECT_THROW(obs::split_series_labels("s{tenant=}"), SloError);
  EXPECT_THROW(obs::split_series_labels("s{t=a=b}"), SloError);
  EXPECT_THROW(obs::split_series_labels("a=b"), SloError);
  EXPECT_THROW(obs::series_with_labels("", {}), SloError);
  EXPECT_THROW(obs::series_with_labels("s{x}", {}), SloError);
  EXPECT_THROW(obs::series_with_labels("s", {{"", "v"}}), SloError);
  EXPECT_THROW(obs::series_with_labels("s", {{"k", "a,b"}}), SloError);
}

// ---------------------------------------------------------------- evaluation

SloJob completed(std::string tenant, double arrival, double finish, bool cache_hit = false) {
  SloJob job;
  job.tenant = std::move(tenant);
  job.arrival = arrival;
  job.finish = finish;
  job.latency = finish - arrival;
  job.cache_hit = cache_hit;
  return job;
}

SloJob shed(std::string tenant, double arrival) {
  SloJob job;
  job.tenant = std::move(tenant);
  job.arrival = arrival;
  job.finish = -1.0;
  job.rejected = true;
  return job;
}

TEST(SloEvaluate, LatencyAdmissionAndBudgetVerdicts) {
  // Tenant "t": a rejection at t=0, then four completions of latency 4 each.
  SloInput input;
  input.jobs = {shed("t", 0.0), completed("t", 10.0, 14.0), completed("t", 20.0, 24.0),
                completed("t", 30.0, 34.0, /*cache_hit=*/true), completed("t", 40.0, 44.0)};

  const SloReport report = obs::evaluate_slo(
      input, obs::parse_slo("slo t latency p99 below 5\n"
                            "slo t latency p99 below 3\n"
                            "slo t admission above 0.9\n"
                            "slo t budget 0.1 window 1000 fast 2\n"));
  ASSERT_EQ(report.tenants.size(), 1u);
  const obs::SloTenantReport& tenant = report.tenants[0];
  EXPECT_EQ(tenant.completed, 4u);
  EXPECT_EQ(tenant.rejected, 1u);
  EXPECT_EQ(tenant.cache_hits, 1u);
  // Bad = the rejection; latency 4 meets the tightest (3? no — the minimum
  // target is 3, and 4 > 3) — so the four completions are bad too.
  EXPECT_EQ(tenant.bad, 5u);
  ASSERT_EQ(tenant.objectives.size(), 4u);

  // p99 of four samples all equal to 4 is exactly 4.
  EXPECT_DOUBLE_EQ(tenant.objectives[0].observed, 4.0);
  EXPECT_FALSE(tenant.objectives[0].violated);
  EXPECT_DOUBLE_EQ(tenant.objectives[0].attainment, 1.0);
  EXPECT_TRUE(tenant.objectives[1].violated);
  EXPECT_DOUBLE_EQ(tenant.objectives[1].attainment, 0.0);

  // 4 of 5 admitted-and-completed.
  EXPECT_DOUBLE_EQ(tenant.objectives[2].observed, 0.8);
  EXPECT_TRUE(tenant.objectives[2].violated);

  // Every event is bad under the min latency target 3: budget consumed
  // (5/5)/0.1 = 10x; the trailing windows see bad fraction 1 -> burn 10.
  EXPECT_DOUBLE_EQ(tenant.objectives[3].observed, 10.0);
  EXPECT_TRUE(tenant.objectives[3].violated);
  EXPECT_DOUBLE_EQ(tenant.objectives[3].max_slow_burn, 10.0);
  EXPECT_DOUBLE_EQ(tenant.objectives[3].max_fast_burn, 10.0);
  EXPECT_DOUBLE_EQ(report.worst_burn, 10.0);
  EXPECT_EQ(report.objectives, 4u);
  EXPECT_EQ(report.violated, 3u);
  EXPECT_DOUBLE_EQ(report.worst_p99_attainment, 0.0);
}

TEST(SloEvaluate, WildcardExpandsAndNamedTenantsMaterialize) {
  SloInput input;
  input.jobs = {completed("a", 0.0, 1.0), completed("b", 0.0, 2.0)};
  const SloReport report = obs::evaluate_slo(
      input, obs::parse_slo("slo * admission above 0.5\nslo ghost admission above 0.5\n"));
  // '*' expands over tenants seen; the named-but-unseen tenant still gets a
  // row (vacuously attaining) so a typo'd tenant name is visible, not silent.
  ASSERT_EQ(report.tenants.size(), 3u);
  EXPECT_EQ(report.tenants[0].tenant, "a");
  EXPECT_EQ(report.tenants[1].tenant, "b");
  EXPECT_EQ(report.tenants[2].tenant, "ghost");
  EXPECT_EQ(report.objectives, 4u);  // * on a, * on b, both rules on ghost
  EXPECT_EQ(report.violated, 0u);
  EXPECT_DOUBLE_EQ(report.tenants[2].objectives[0].observed, 1.0);
}

TEST(SloEvaluate, BurnRateIsWindowedNotCumulative) {
  // 10 good events spread over 1000s, then a burst of 4 bad in 2s: the
  // cumulative bad fraction is mild but the fast window catches the burst.
  SloInput input;
  for (int i = 0; i < 10; ++i) {
    input.jobs.push_back(completed("t", 100.0 * i, 100.0 * i + 1.0));
  }
  for (int i = 0; i < 4; ++i) input.jobs.push_back(shed("t", 1000.0 + 0.5 * i));
  const SloReport report =
      obs::evaluate_slo(input, obs::parse_slo("slo t budget 0.25 window 500 fast 10\n"));
  const obs::SloObjectiveResult& res = report.tenants[0].objectives[0];
  // Fast window (10s) holds only the 4 rejections: burn = 1.0/0.25 = 4.
  EXPECT_DOUBLE_EQ(res.max_fast_burn, 4.0);
  EXPECT_GT(res.max_fast_burn, res.max_slow_burn);
  EXPECT_DOUBLE_EQ(report.worst_burn, 4.0);
}

// ------------------------------------------------------------ report document

TEST(SloReport, SchemaAndDeterministicDump) {
  SloInput input;
  input.jobs = {completed("a", 0.0, 1.0), shed("b", 2.0)};
  const std::vector<SloObjective> spec = obs::parse_slo(std::string(kServeSlo));
  const JsonValue doc = obs::slo_report_json(obs::evaluate_slo(input, spec));
  EXPECT_EQ(doc.find("schema")->as_string(), obs::kSloSchema);
  ASSERT_NE(doc.find("tenants"), nullptr);
  ASSERT_NE(doc.find("summary"), nullptr);
  EXPECT_EQ(doc.find("summary")->find("violated")->as_number(), 2.0);  // b: admission+budget

  // Same input + spec => byte-identical documents.
  const std::string again = obs::slo_report_json(obs::evaluate_slo(input, spec)).dump();
  EXPECT_EQ(doc.dump(), again);
}

TEST(SloInputJson, RejectsWrongSchemaAndIllShapedJobs) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string("multihit.health.v1"));
  EXPECT_THROW(obs::slo_input_from_serve_json(doc), SloError);

  doc.set("schema", std::string(obs::kServeSchema));
  EXPECT_THROW(obs::slo_input_from_serve_json(doc), SloError) << "missing jobs array";

  JsonValue bad_job = JsonValue::object();
  bad_job.set("tenant", std::string("t"));
  JsonValue jobs = JsonValue::array();
  jobs.push_back(std::move(bad_job));
  doc.set("jobs", std::move(jobs));
  EXPECT_THROW(obs::slo_input_from_serve_json(doc), SloError);
}

// ---------------------------------------------------------- replay identity

TEST(SloReplay, OfflineServeJsonReproducesInProcessBytes) {
  TraceSpec spec;
  spec.mix = serve::ArrivalMix::kBursty;
  spec.jobs = 16;
  spec.seed = 7;
  spec.invalidate_rate = 0.2;
  const RequestTrace trace = serve::generate_trace(spec);
  ServiceOptions options;
  options.slo = obs::parse_slo(std::string(kServeSlo));
  JobService service(options);
  const ServeResult result = service.replay(trace);

  // In-process: straight off the live ServeResult.
  const SloReport live = obs::evaluate_slo(serve::slo_input(result), options.slo);

  // Offline: dump the serve report to text, parse it back, rebuild the input
  // — exactly what `obstool slo` does to a saved multihit.serve.v1 file.
  const std::string serve_doc =
      serve::serve_report(result, trace, service.options()).dump();
  const SloInput parsed = obs::slo_input_from_serve_json(JsonValue::parse(serve_doc));
  const SloReport offline = obs::evaluate_slo(parsed, options.slo);

  EXPECT_EQ(obs::slo_report_json(live).dump(), obs::slo_report_json(offline).dump());
  EXPECT_GT(live.objectives, 0u);
}

// ------------------------------------------------- planted-pathology ground truth

/// Runs one (scenario, seed) through the service with a recorder attached and
/// monitors the chrome-round-tripped trace — the exact offline `obstool
/// monitor` view — at the serve cadence ci.sh uses.
HealthReport monitored_scenario(Scenario scenario, std::uint64_t seed) {
  TraceSpec spec;
  spec.jobs = 24;
  spec.seed = seed;
  ServiceOptions options;
  serve::apply_scenario(spec, options, scenario);
  obs::Recorder rec;
  options.recorder = &rec;
  options.slo = obs::parse_slo(std::string(kServeSlo));
  JobService service(options);
  service.replay(serve::generate_trace(spec));

  MonitorOptions mon;
  mon.sample_every = 0.5;
  mon.window_samples = 256;
  mon.slo = options.slo;
  const obs::Tracer replayed =
      obs::tracer_from_chrome(JsonValue::parse(rec.trace.to_chrome_json()));
  return obs::monitor_trace(replayed, mon);
}

bool fired(const HealthReport& report, std::string_view rule) {
  return std::any_of(report.incidents.begin(), report.incidents.end(),
                     [&](const Incident& inc) { return inc.rule == rule; });
}

TEST(SloDetectors, PlantedPathologiesFireTheirClassAtFullRecall) {
  for (const std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{13}}) {
    const HealthReport overload = monitored_scenario(Scenario::kOverload, seed);
    EXPECT_TRUE(fired(overload, "queue_saturation")) << "overload seed " << seed;
    EXPECT_TRUE(fired(overload, "slo_slow_burn")) << "overload seed " << seed;

    const HealthReport starvation = monitored_scenario(Scenario::kStarvation, seed);
    EXPECT_TRUE(fired(starvation, "tenant_starvation")) << "starvation seed " << seed;
    for (const Incident& inc : starvation.incidents) {
      if (inc.rule == "tenant_starvation") {
        EXPECT_EQ(inc.tenant, "bronze") << "the low-priority class starves";
        EXPECT_GT(inc.lane, obs::kEngineLane) << "incident lands on a serve lane";
      }
    }

    const HealthReport burn = monitored_scenario(Scenario::kBurn, seed);
    EXPECT_TRUE(fired(burn, "slo_slow_burn")) << "burn seed " << seed;

    const HealthReport thrash = monitored_scenario(Scenario::kThrash, seed);
    EXPECT_TRUE(fired(thrash, "cache_thrash")) << "thrash seed " << seed;
  }
}

TEST(SloDetectors, CleanTracesAcrossTenSeedsStaySilent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TraceSpec spec;
    spec.mix = serve::ArrivalMix::kBursty;
    spec.jobs = 24;
    spec.seed = seed;
    spec.invalidate_rate = 0.2;
    ServiceOptions options;
    obs::Recorder rec;
    options.recorder = &rec;
    options.slo = obs::parse_slo(std::string(kServeSlo));
    JobService service(options);
    service.replay(serve::generate_trace(spec));

    MonitorOptions mon;
    mon.sample_every = 0.5;
    mon.window_samples = 256;
    mon.slo = options.slo;
    const obs::Tracer replayed =
        obs::tracer_from_chrome(JsonValue::parse(rec.trace.to_chrome_json()));
    const HealthReport report = obs::monitor_trace(replayed, mon);
    EXPECT_TRUE(report.incidents.empty())
        << "seed " << seed << " fired " << report.incidents.size() << " incident(s), first: "
        << (report.incidents.empty() ? "" : report.incidents[0].rule);
  }
}

TEST(SloDetectors, ScenarioVerdictsMatchTheReportContract) {
  // The end-state SLO report flags overload / starvation / burn; thrash burns
  // fleet efficiency without moving user-visible latency or admission — the
  // cache_thrash detector exists precisely because the report cannot see it.
  const std::vector<SloObjective> spec = obs::parse_slo(std::string(kServeSlo));
  const auto violated = [&](Scenario scenario) {
    TraceSpec trace_spec;
    trace_spec.jobs = 24;
    trace_spec.seed = 7;
    ServiceOptions options;
    serve::apply_scenario(trace_spec, options, scenario);
    options.slo = spec;
    JobService service(options);
    const ServeResult result = service.replay(serve::generate_trace(trace_spec));
    return obs::evaluate_slo(serve::slo_input(result), spec).violated;
  };
  EXPECT_GT(violated(Scenario::kOverload), 0u);
  EXPECT_GT(violated(Scenario::kStarvation), 0u);
  EXPECT_GT(violated(Scenario::kBurn), 0u);
  EXPECT_EQ(violated(Scenario::kThrash), 0u);
}

}  // namespace
}  // namespace multihit
