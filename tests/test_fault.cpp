// Differential and property tests for the fault-injection/recovery layer.
//
// The load-bearing invariant: any valid fault plan yields greedy selections
// bit-identical to the fault-free serial reference — faults may only stretch
// the simulated clocks. Every differential test below compares a faulted
// distributed run against `run_greedy` + the serial evaluator.

#include "fault/injector.hpp"
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "cluster/distributed.hpp"
#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"
#include "mpisim/comm.hpp"

namespace multihit {
namespace {

Dataset small_dataset(std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

/// Comm model tuned so fault penalties dominate compute jitter: deterministic
/// severity-monotonicity assertions stay far from floating-point ties.
CommCostModel loud_faults() {
  CommCostModel comm;
  comm.detection_window = 0.2;
  comm.retransmit_timeout = 0.05;
  return comm;
}

SummitConfig tiny_cluster(std::uint32_t nodes, CommCostModel comm = {}) {
  SummitConfig config;
  config.nodes = nodes;
  config.comm = comm;
  return config;
}

GreedyResult serial_reference(const Dataset& data, std::uint32_t hits) {
  EngineConfig engine;
  engine.hits = hits;
  return run_greedy(data.tumor, data.normal, engine, make_serial_evaluator(hits));
}

void expect_same_selections(const GreedyResult& got, const GreedyResult& want,
                            const std::string& context) {
  ASSERT_EQ(got.iterations.size(), want.iterations.size()) << context;
  for (std::size_t i = 0; i < want.iterations.size(); ++i) {
    EXPECT_EQ(got.iterations[i].genes, want.iterations[i].genes)
        << context << ", iteration " << i;
    EXPECT_DOUBLE_EQ(got.iterations[i].f, want.iterations[i].f)
        << context << ", iteration " << i;
  }
  EXPECT_EQ(got.uncovered_tumor, want.uncovered_tumor) << context;
}

FaultEvent crash(std::uint32_t rank, std::uint32_t iteration, double fraction = 0.5) {
  return {FaultKind::kRankCrash, rank, iteration, fraction, 1};
}

FaultEvent straggle(std::uint32_t rank, std::uint32_t iteration, double factor,
                    std::uint32_t window = 1) {
  return {FaultKind::kStraggler, rank, iteration, factor, window};
}

FaultEvent drop(std::uint32_t rank, std::uint32_t iteration, std::uint32_t count) {
  return {FaultKind::kMessageDrop, rank, iteration, 0.0, count};
}

// --- plan validation ---------------------------------------------------------

TEST(FaultPlan, ValidationRejectsMalformedPlans) {
  FaultPlan plan;
  plan.events.push_back(crash(7, 0));
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // rank out of range
  EXPECT_NO_THROW(plan.validate(8));

  plan.events = {crash(1, 0, 0.0)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // fraction must be > 0
  plan.events = {crash(1, 0, 1.5)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);

  plan.events = {crash(1, 0), crash(1, 3)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // a rank dies once

  plan.events = {crash(0, 0), crash(1, 1)};
  EXPECT_THROW(plan.validate(2), std::invalid_argument);  // no survivor left
  EXPECT_NO_THROW(plan.validate(3));

  plan.events = {straggle(0, 0, 0.5)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // speedup is not a fault
  plan.events = {straggle(0, 0, 2.0, 0)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // empty window
  plan.events = {drop(0, 0, 0)};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);  // empty drop burst
}

TEST(FaultPlan, RandomPlansAreDeterministicAndValid) {
  RandomFaultSpec spec;
  spec.seed = 42;
  spec.ranks = 8;
  spec.iterations = 6;
  spec.crashes = 2.0;
  spec.stragglers = 1.5;
  spec.drops = 1.0;
  const FaultPlan a = random_fault_plan(spec);
  const FaultPlan b = random_fault_plan(spec);
  EXPECT_EQ(describe(a), describe(b));  // identical spec -> identical plan
  EXPECT_NO_THROW(a.validate(spec.ranks));

  spec.seed = 43;
  const FaultPlan c = random_fault_plan(spec);
  EXPECT_NO_THROW(c.validate(spec.ranks));
}

TEST(FaultInjector, AnswersPlanQueries) {
  FaultPlan plan;
  plan.events = {crash(1, 2, 0.25), straggle(2, 1, 3.0, 2), drop(3, 0, 4)};
  const FaultInjector injector(plan, 4);
  EXPECT_TRUE(injector.enabled());
  EXPECT_DOUBLE_EQ(injector.crash_fraction(1, 2), 0.25);
  EXPECT_LT(injector.crash_fraction(1, 1), 0.0);
  EXPECT_LT(injector.crash_fraction(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(injector.straggle_factor(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(injector.straggle_factor(2, 2), 3.0);  // window of 2
  EXPECT_DOUBLE_EQ(injector.straggle_factor(2, 3), 1.0);
  EXPECT_EQ(injector.drops(3, 0), 4u);
  EXPECT_EQ(injector.drops(3, 1), 0u);
  EXPECT_FALSE(injector.job_abort(0));
}

// --- SimComm fault primitives ------------------------------------------------

TEST(SimCommFaults, DeathChargesSurvivorsOneDetectionWindow) {
  CommCostModel cost = loud_faults();
  SimComm comm(4, cost);
  for (std::uint32_t r = 0; r < 4; ++r) comm.compute(r, 1.0);
  comm.fail(2, 1.5);
  EXPECT_FALSE(comm.alive(2));
  EXPECT_EQ(comm.alive_count(), 3u);
  EXPECT_EQ(comm.alive_ranks(), (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(comm.clock(2), 1.5);  // frozen at the death time

  comm.barrier();
  // Every survivor waited out death + detection window (plus barrier rounds).
  for (const std::uint32_t r : comm.alive_ranks()) {
    EXPECT_GE(comm.clock(r), 1.5 + cost.detection_window);
  }
  // The window is charged once: a second barrier only costs tree latency.
  const double after_first = comm.finish_time();
  comm.barrier();
  EXPECT_LT(comm.finish_time() - after_first, cost.detection_window / 10.0);
}

TEST(SimCommFaults, DeadRanksAreFrozenAndGuarded) {
  SimComm comm(3);
  comm.fail(1, 4.0);
  comm.compute(1, 10.0);  // no-op on a corpse
  EXPECT_DOUBLE_EQ(comm.clock(1), 4.0);
  EXPECT_THROW(comm.fail(1, 5.0), std::invalid_argument);  // already dead

  std::vector<int> values{7, 9, 11};
  EXPECT_THROW(comm.reduce(std::span<const int>(values), 1, 4,
                           [](int a, int b) { return a + b; }),
               std::invalid_argument);  // dead root
  EXPECT_THROW(comm.broadcast(1, 4), std::invalid_argument);
  // Dead ranks' contributions are excluded from the reduction.
  const int sum = comm.reduce(std::span<const int>(values), 0, 4,
                              [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 7 + 11);

  comm.fail(2, 1.0);
  EXPECT_THROW(comm.fail(0, 2.0), std::runtime_error);  // last survivor
}

TEST(SimCommFaults, DroppedMessagesCostRetransmitTimeouts) {
  const CommCostModel cost = loud_faults();
  SimComm clean(2, cost);
  SimComm faulty(2, cost);
  faulty.set_message_faults([](std::uint32_t, std::uint32_t, std::uint64_t) {
    return MessageFault{.drops = 3, .duplicates = 0};
  });
  clean.send(0, 1, 100);
  faulty.send(0, 1, 100);
  EXPECT_NEAR(faulty.clock(1) - clean.clock(1), 3 * cost.retransmit_timeout, 1e-12);
  EXPECT_GT(faulty.clock(0), clean.clock(0));  // sender re-injects each copy

  // Clearing the hook restores fault-free transfer cost for later messages.
  faulty.set_message_faults({});
  const double before = faulty.clock(1);
  faulty.send(0, 1, 100);
  EXPECT_NEAR(faulty.clock(1) - before, cost.cost(100), 1e-12);
}

// --- differential suite: faulted cluster vs fault-free serial ----------------

struct DifferentialCase {
  std::uint32_t nodes;
  Scheme4 scheme;
};

class FaultDifferential : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(FaultDifferential, CrashRecoveryIsBitIdenticalToSerial) {
  const auto [nodes, scheme] = GetParam();
  const Dataset data = small_dataset(4, 501);
  const GreedyResult serial = serial_reference(data, 4);

  DistributedOptions options;
  options.scheme4 = scheme;
  const ClusterRunner runner(tiny_cluster(nodes));
  const ClusterRunResult clean = runner.run(data, options);

  DistributedOptions faulted = options;
  faulted.faults.events = {crash(1, 0, 0.5)};
  if (nodes >= 16) faulted.faults.events.push_back(crash(3, 1, 0.9));
  const ClusterRunResult result = runner.run(data, faulted);

  std::ostringstream context;
  context << nodes << " nodes, scheme " << scheme_name(scheme);
  expect_same_selections(result.greedy, serial, context.str());
  expect_same_selections(clean.greedy, serial, context.str() + " (fault-free)");

  EXPECT_EQ(result.ranks_lost, nodes >= 16 ? 2u : 1u);
  EXPECT_GT(result.recovery_time, 0.0);
  EXPECT_GT(result.total_time, clean.total_time) << context.str();
  EXPECT_GT(result.schedule_time, clean.schedule_time);  // re-partition happened
  bool saw_crash = false;
  for (const FaultRecord& rec : result.fault_events) {
    saw_crash = saw_crash || rec.kind == FaultKind::kRankCrash;
  }
  EXPECT_TRUE(saw_crash);
}

INSTANTIATE_TEST_SUITE_P(
    NodesAndSchemes, FaultDifferential,
    ::testing::Values(DifferentialCase{4, Scheme4::k3x1}, DifferentialCase{16, Scheme4::k3x1},
                      DifferentialCase{64, Scheme4::k3x1}, DifferentialCase{4, Scheme4::k2x2},
                      DifferentialCase{16, Scheme4::k2x2}, DifferentialCase{64, Scheme4::k2x2}),
    [](const auto& info) {
      return std::string(scheme_name(info.param.scheme)) + "x" +
             std::to_string(info.param.nodes);
    });

TEST(FaultDifferentialMore, StragglersAndDropsAreBitIdenticalToSerial) {
  const Dataset data = small_dataset(4, 502);
  const GreedyResult serial = serial_reference(data, 4);
  const ClusterRunner runner(tiny_cluster(8, loud_faults()));

  DistributedOptions stragglers;
  stragglers.faults.events = {straggle(2, 0, 4.0, 3), straggle(5, 1, 2.0)};
  expect_same_selections(runner.run(data, stragglers).greedy, serial, "stragglers");

  DistributedOptions drops;
  drops.faults.events = {drop(1, 0, 2), drop(6, 1, 5)};
  expect_same_selections(runner.run(data, drops).greedy, serial, "drops");

  DistributedOptions mixed;
  mixed.faults.events = {crash(3, 0, 0.3), straggle(1, 0, 2.5, 2), drop(2, 1, 3)};
  const ClusterRunResult result = runner.run(data, mixed);
  expect_same_selections(result.greedy, serial, "mixed plan");
  EXPECT_EQ(result.ranks_lost, 1u);
}

TEST(FaultDifferentialMore, ThreeHitCrashRecoveryMatchesSerial) {
  const Dataset data = small_dataset(3, 503);
  const GreedyResult serial = serial_reference(data, 3);
  DistributedOptions options;
  options.hits = 3;
  options.faults.events = {crash(0, 0, 0.7)};  // rank 0 dies; root moves to rank 1
  const ClusterRunner runner(tiny_cluster(4));
  const ClusterRunResult result = runner.run(data, options);
  expect_same_selections(result.greedy, serial, "3-hit, root crash");
  EXPECT_EQ(result.ranks_lost, 1u);
}

TEST(FaultDifferentialMore, RandomPlansStayBitIdenticalToSerial) {
  const Dataset data = small_dataset(4, 504);
  const GreedyResult serial = serial_reference(data, 4);
  const ClusterRunner runner(tiny_cluster(8, loud_faults()));
  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    RandomFaultSpec spec;
    spec.seed = seed;
    spec.ranks = 8;
    spec.iterations = 4;
    spec.crashes = 1.5;
    spec.stragglers = 1.0;
    spec.drops = 1.0;
    DistributedOptions options;
    options.faults = random_fault_plan(spec);
    const ClusterRunResult result = runner.run(data, options);
    expect_same_selections(result.greedy, serial,
                           "seed " + std::to_string(seed) + ": " + describe(options.faults));
  }
}

// --- severity monotonicity ---------------------------------------------------

TEST(FaultSeverity, WallClockGrowsStrictlyWithCrashCount) {
  const Dataset data = small_dataset(4, 505);
  const ClusterRunner runner(tiny_cluster(8, loud_faults()));
  DistributedOptions none;
  DistributedOptions one;
  one.faults.events = {crash(1, 0)};
  DistributedOptions two;
  two.faults.events = {crash(1, 0), crash(4, 1)};
  const double t0 = runner.run(data, none).total_time;
  const double t1 = runner.run(data, one).total_time;
  const double t2 = runner.run(data, two).total_time;
  EXPECT_LT(t0, t1);
  EXPECT_LT(t1, t2);
}

TEST(FaultSeverity, WallClockGrowsStrictlyWithStraggleFactor) {
  const Dataset data = small_dataset(4, 506);
  const ClusterRunner runner(tiny_cluster(8, loud_faults()));
  double previous = runner.run(data, DistributedOptions{}).total_time;
  for (const double factor : {2.0, 8.0}) {
    DistributedOptions options;
    options.faults.events = {straggle(1, 0, factor, 2)};
    const double t = runner.run(data, options).total_time;
    EXPECT_LT(previous, t) << "factor " << factor;
    previous = t;
  }
}

TEST(FaultSeverity, WallClockGrowsStrictlyWithDropCount) {
  const Dataset data = small_dataset(4, 507);
  const ClusterRunner runner(tiny_cluster(8, loud_faults()));
  double previous = runner.run(data, DistributedOptions{}).total_time;
  for (const std::uint32_t count : {1u, 4u}) {
    DistributedOptions options;
    options.faults.events = {drop(1, 0, count)};
    const double t = runner.run(data, options).total_time;
    EXPECT_LT(previous, t) << "count " << count;
    previous = t;
  }
}

// --- checkpointing and allocation loss ---------------------------------------

TEST(FaultCheckpoint, PeriodicSnapshotsAreTakenAndResumable) {
  const Dataset data = small_dataset(4, 508);
  const GreedyResult serial = serial_reference(data, 4);
  DistributedOptions options;
  options.checkpoint_every = 1;
  const ClusterRunner runner(tiny_cluster(4));
  const ClusterRunResult result = runner.run(data, options);
  expect_same_selections(result.greedy, serial, "checkpointed run");
  EXPECT_EQ(result.checkpoints_taken, serial.iterations.size());
  EXPECT_GT(result.checkpoint_time, 0.0);
  ASSERT_TRUE(result.last_checkpoint.has_value());

  // The snapshot must survive serialization and resume to the identical end
  // state under the serial evaluator.
  std::stringstream stream;
  write_checkpoint(stream, *result.last_checkpoint);
  CheckpointState resumed = read_checkpoint(stream);
  resume_greedy(resumed, data.normal, make_serial_evaluator(4));
  expect_same_selections(resumed.progress, serial, "resumed from last snapshot");
}

TEST(FaultCheckpoint, MidRunSnapshotResumesToSerialTail) {
  const Dataset data = small_dataset(4, 509);
  const GreedyResult serial = serial_reference(data, 4);
  ASSERT_GE(serial.iterations.size(), 2u);
  DistributedOptions options;
  options.checkpoint_every = 1;
  options.max_iterations = 1;  // stop after the first snapshot
  const ClusterRunner runner(tiny_cluster(4));
  const ClusterRunResult result = runner.run(data, options);
  ASSERT_TRUE(result.last_checkpoint.has_value());
  CheckpointState state = *result.last_checkpoint;
  ASSERT_EQ(state.progress.iterations.size(), 1u);
  resume_greedy(state, data.normal, make_serial_evaluator(4));
  expect_same_selections(state.progress, serial, "1-iteration snapshot + serial tail");
}

TEST(FaultCheckpoint, JobAbortChargesLostTimeAndStaysIdentical) {
  const Dataset data = small_dataset(4, 510);
  const GreedyResult serial = serial_reference(data, 4);
  ASSERT_GE(serial.iterations.size(), 3u);
  const ClusterRunner runner(tiny_cluster(4));

  DistributedOptions clean;
  clean.checkpoint_every = 1;
  const ClusterRunResult baseline = runner.run(data, clean);

  DistributedOptions aborted = clean;
  aborted.faults.events.push_back({FaultKind::kJobAbort, 0, 2, 0.0, 1});
  const ClusterRunResult result = runner.run(data, aborted);
  expect_same_selections(result.greedy, serial, "abort at iteration 2");
  EXPECT_GT(result.total_time, baseline.total_time);
  EXPECT_GT(result.recovery_time, 0.0);
  ASSERT_EQ(result.fault_events.size(), 1u);
  EXPECT_EQ(result.fault_events.front().kind, FaultKind::kJobAbort);
  EXPECT_EQ(result.fault_events.front().iteration, 2u);
}

TEST(FaultCheckpoint, PlanValidationHappensBeforeTheRun) {
  const Dataset data = small_dataset(4, 511);
  DistributedOptions options;
  options.faults.events = {crash(9, 0)};  // only 4 ranks exist
  const ClusterRunner runner(tiny_cluster(4));
  EXPECT_THROW(runner.run(data, options), std::invalid_argument);
}

}  // namespace
}  // namespace multihit
