// Health-monitor tests: sampler/rule-engine/detector units on hand-built
// traces, a ground-truth sweep (4 injected fault classes x {EA, ED}
// schedulers) asserting full recall with zero false positives and bounded
// detection latency, fault-free runs that must stay silent, the
// bit-identical-off differential, and incident well-formedness properties
// over random fault plans.

#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/distributed.hpp"
#include "core/engine.hpp"
#include "data/generator.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/analyze.hpp"
#include "obs/recorder.hpp"

namespace multihit {
namespace {

using obs::AlertRule;
using obs::HealthReport;
using obs::HealthScore;
using obs::Incident;
using obs::JsonValue;
using obs::kEngineLane;
using obs::MonitorError;
using obs::MonitorOptions;
using obs::RuleCmp;
using obs::RuleKind;
using obs::Tracer;
using obs::TruthEvent;

Dataset small_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

/// Runs the functional cluster pipeline with a recorder attached and returns
/// the recorder by reference through `rec`.
ClusterRunResult recorded_run(const Dataset& data, std::uint32_t nodes,
                              SchedulerKind scheduler, FaultPlan faults,
                              obs::Recorder& rec, std::uint32_t checkpoint_every = 0) {
  SummitConfig config;
  config.nodes = nodes;
  const ClusterRunner runner(config);
  DistributedOptions options;
  options.scheduler = scheduler;
  options.faults = std::move(faults);
  options.recorder = &rec;
  options.checkpoint_every = checkpoint_every;
  return runner.run(data, options);
}

/// Serializes to Chrome format and parses back — the monitor sees exactly
/// the microsecond-rounded trace an offline `obstool monitor` replay would.
Tracer replay(const Tracer& trace) {
  return obs::tracer_from_chrome(JsonValue::parse(trace.to_chrome_json()));
}

// ---------------------------------------------------------------- rule parse

TEST(MonitorRules, ParsesEveryKindAndIgnoresComments) {
  const std::vector<AlertRule> rules = obs::parse_rules(
      "# alerting for the scale-out run\n"
      "rule deep threshold queue_depth above 10 hold 2\n"
      "\n"
      "rule surge rate comm_retransmits above 5 window 0.5  # bursts\n"
      "rule stale absence heartbeat window 0.25\n"
      "rule skew imbalance gpu_dram_throughput below 0.5\n");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "deep");
  EXPECT_EQ(rules[0].kind, RuleKind::kThreshold);
  EXPECT_EQ(rules[0].series, "queue_depth");
  EXPECT_EQ(rules[0].cmp, RuleCmp::kAbove);
  EXPECT_DOUBLE_EQ(rules[0].value, 10.0);
  EXPECT_EQ(rules[0].hold, 2u);
  EXPECT_EQ(rules[1].kind, RuleKind::kRate);
  EXPECT_DOUBLE_EQ(rules[1].window, 0.5);
  EXPECT_EQ(rules[2].kind, RuleKind::kAbsence);
  EXPECT_DOUBLE_EQ(rules[2].window, 0.25);
  EXPECT_EQ(rules[3].kind, RuleKind::kImbalance);
  EXPECT_EQ(rules[3].cmp, RuleCmp::kBelow);
}

TEST(MonitorRules, RejectsMalformedLinesNamingTheLine) {
  try {
    obs::parse_rules("rule ok threshold s above 1\nrule bad bogus s above 1\n");
    FAIL() << "expected MonitorError";
  } catch (const MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos) << e.what();
  }
  EXPECT_THROW(obs::parse_rules("rule x threshold s sideways 1\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("rule x threshold s above eleven\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("rule x rate s above 1\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("rule x absence s window -1\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("rule x threshold s above 1 hold 0\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("nonsense\n"), MonitorError);
}

TEST(MonitorRules, SeriesSelectorsParseAndMalformedOnesNameTheLine) {
  const std::vector<AlertRule> rules = obs::parse_rules(
      "rule hot threshold serve.wait_age{tenant=bronze} above 30 hold 2\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].series, "serve.wait_age");
  ASSERT_EQ(rules[0].labels.size(), 1u);
  EXPECT_EQ(rules[0].labels[0],
            (std::pair<std::string, std::string>{"tenant", "bronze"}));

  try {
    obs::parse_rules(
        "rule ok threshold serve.queue_depth above 10\n"
        "rule bad threshold serve.wait_age{tenant= above 30\n");
    FAIL() << "expected MonitorError";
  } catch (const MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("serve.wait_age{tenant="), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(obs::parse_rules("rule x threshold s{} above 1\n"), MonitorError);
  EXPECT_THROW(obs::parse_rules("rule x threshold s{a=b,} above 1\n"), MonitorError);
}

TEST(MonitorRules, SelectorRulesMatchLabeledSerieAndCarryTheTenant) {
  // Two tenants on the scheduler lane: bronze's wait age climbs, gold's
  // stays flat. A selector rule must fire on bronze only; an unselected rule
  // over the base name matches both series but only bronze breaches.
  Tracer trace;
  const std::uint32_t lane = obs::kSchedulerLane;
  for (int i = 0; i <= 20; ++i) {
    const double t = 0.1 * static_cast<double>(i);
    trace.counter(lane, "serve.wait_age{tenant=bronze}", t, i >= 10 ? 50.0 : 1.0);
    trace.counter(lane, "serve.wait_age{tenant=gold}", t, 1.0);
  }
  MonitorOptions options;
  options.sample_every = 0.1;
  options.builtin_detectors = false;
  options.rules = obs::parse_rules(
      "rule bronze_age threshold serve.wait_age{tenant=bronze} above 30 hold 2\n"
      "rule any_age threshold serve.wait_age above 30 hold 2\n"
      "rule gold_age threshold serve.wait_age{tenant=gold} above 30 hold 2\n");
  const HealthReport report = obs::monitor_trace(trace, options);
  int bronze_named = 0;
  int any_named = 0;
  for (const Incident& inc : report.incidents) {
    EXPECT_EQ(inc.tenant, "bronze") << inc.rule;
    if (inc.rule == "bronze_age") ++bronze_named;
    if (inc.rule == "any_age") ++any_named;
    EXPECT_NE(inc.rule, "gold_age") << "gold never breaches";
  }
  EXPECT_EQ(bronze_named, 1);
  EXPECT_EQ(any_named, 1);
}

TEST(MonitorRules, ThresholdRuleBitesOnServeQueueDepth) {
  Tracer trace;
  for (int i = 0; i <= 10; ++i) {
    trace.counter(obs::kSchedulerLane, "serve.queue_depth", 0.1 * static_cast<double>(i),
                  i < 5 ? 2.0 : 12.0);
  }
  MonitorOptions options;
  options.sample_every = 0.1;
  options.builtin_detectors = false;
  options.rules = obs::parse_rules("rule deep threshold serve.queue_depth above 10 hold 2\n");
  const HealthReport report = obs::monitor_trace(trace, options);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].rule, "deep");
  EXPECT_EQ(report.incidents[0].tenant, "");
  EXPECT_DOUBLE_EQ(report.incidents[0].value, 12.0);
}

TEST(MonitorOptionsValidation, RejectsIllFormedConfigurations) {
  const Tracer empty;
  const auto with = [&](auto mutate) {
    MonitorOptions o;
    mutate(o);
    return o;
  };
  EXPECT_THROW(obs::monitor_trace(empty, with([](MonitorOptions& o) { o.sample_every = 0.0; })),
               MonitorError);
  EXPECT_THROW(obs::monitor_trace(empty, with([](MonitorOptions& o) { o.window_samples = 1; })),
               MonitorError);
  EXPECT_THROW(
      obs::monitor_trace(empty, with([](MonitorOptions& o) { o.straggler_ratio = 1.0; })),
      MonitorError);
  EXPECT_THROW(
      obs::monitor_trace(empty, with([](MonitorOptions& o) { o.collapse_fraction = 1.5; })),
      MonitorError);
  EXPECT_THROW(obs::monitor_trace(empty, with([](MonitorOptions& o) {
                 o.rules.push_back({"r", RuleKind::kRate, "s", {}, RuleCmp::kAbove, 1.0, 0.0, 1});
               })),
               MonitorError);
}

// ------------------------------------------------------------------- sampler

TEST(MonitorSampler, SnapshotsExactValuesAtBoundaries) {
  Tracer trace;
  trace.counter(0, "queue_depth", 0.25, 4.0);
  trace.counter(0, "queue_depth", 0.75, 9.0);
  trace.counter(0, "queue_depth", 1.25, 2.0);
  MonitorOptions options;
  options.sample_every = 0.5;
  options.builtin_detectors = false;
  const HealthReport report = obs::monitor_trace(trace, options);
  ASSERT_EQ(report.series.size(), 1u);
  const obs::SeriesStat& s = report.series[0];
  EXPECT_EQ(s.series, "queue_depth");
  EXPECT_EQ(s.lane, 0u);
  EXPECT_EQ(s.samples, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.last, 2.0);
  EXPECT_DOUBLE_EQ(s.last_at, 1.25);
  // Boundaries at 0.5, 1.0, 1.5: the ring holds the value as of each.
  ASSERT_EQ(s.window.size(), 3u);
  EXPECT_DOUBLE_EQ(s.window[0].first, 0.5);
  EXPECT_DOUBLE_EQ(s.window[0].second, 4.0);
  EXPECT_DOUBLE_EQ(s.window[1].second, 9.0);
  EXPECT_DOUBLE_EQ(s.window[2].second, 2.0);
}

TEST(MonitorSampler, RingWindowDropsOldestBeyondDepth) {
  Tracer trace;
  for (int i = 1; i <= 8; ++i) {
    trace.counter(0, "ticks", 0.25 * i, static_cast<double>(i));
  }
  MonitorOptions options;
  options.sample_every = 0.25;
  options.window_samples = 3;
  options.builtin_detectors = false;
  const HealthReport report = obs::monitor_trace(trace, options);
  ASSERT_EQ(report.series.size(), 1u);
  const obs::SeriesStat& s = report.series[0];
  ASSERT_EQ(s.window.size(), 3u);
  EXPECT_DOUBLE_EQ(s.window[0].first, 1.5);
  EXPECT_DOUBLE_EQ(s.window[2].first, 2.0);
  EXPECT_DOUBLE_EQ(s.window[2].second, 8.0);
}

// ---------------------------------------------------------------- user rules

MonitorOptions rules_only(std::string_view text, double sample_every = 0.25) {
  MonitorOptions options;
  options.sample_every = sample_every;
  options.builtin_detectors = false;
  options.rules = obs::parse_rules(text);
  return options;
}

TEST(MonitorUserRules, ThresholdHoldsBeforeFiringAndClears) {
  Tracer trace;
  trace.complete(0, "phase_a", "compute", 0.0, 2.0);
  trace.counter(0, "queue_depth", 0.125, 20.0);  // above from the start
  trace.counter(0, "queue_depth", 1.125, 5.0);   // back below
  trace.counter(0, "queue_depth", 1.875, 5.0);
  const HealthReport report =
      obs::monitor_trace(trace, rules_only("rule deep threshold queue_depth above 10 hold 2\n"));
  ASSERT_EQ(report.incidents.size(), 1u);
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.rule, "deep");
  EXPECT_EQ(inc.kind, "threshold");
  EXPECT_EQ(inc.lane, 0u);
  // Breached at boundaries 0.25 and 0.5 -> hold 2 satisfied at 0.5; value
  // drops below by the 1.25 boundary.
  EXPECT_DOUBLE_EQ(inc.fired, 0.5);
  EXPECT_DOUBLE_EQ(inc.cleared, 1.25);
  EXPECT_FALSE(inc.open);
  EXPECT_DOUBLE_EQ(inc.value, 20.0);
  EXPECT_EQ(inc.span, "phase_a");
}

TEST(MonitorUserRules, RateDetectsGrowthInsideTrailingWindow) {
  Tracer trace;
  trace.counter(0, "retries", 0.125, 1.0);
  trace.counter(0, "retries", 1.125, 9.0);  // +8 in one sampling interval
  trace.counter(0, "retries", 2.5, 9.0);
  const HealthReport report =
      obs::monitor_trace(trace, rules_only("rule surge rate retries above 5 window 0.5\n"));
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind, "rate");
  EXPECT_DOUBLE_EQ(report.incidents[0].fired, 1.25);
  EXPECT_DOUBLE_EQ(report.incidents[0].value, 8.0);
  EXPECT_FALSE(report.incidents[0].open);
}

TEST(MonitorUserRules, AbsenceIsFleetRelative) {
  Tracer trace;
  for (int i = 1; i <= 8; ++i) {
    trace.counter(0, "beat", 0.25 * i, static_cast<double>(i));
    if (i <= 4) trace.counter(1, "beat", 0.25 * i, static_cast<double>(i));
  }
  const HealthReport report =
      obs::monitor_trace(trace, rules_only("rule stale absence beat window 0.5\n"));
  ASSERT_EQ(report.incidents.size(), 1u);
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.lane, 1u);
  // Lane 1's newest sample is 1.0; the fleet reaches 1.75 at the 1.75
  // boundary, putting lane 1's gap (0.75) past the 0.5 window.
  EXPECT_DOUBLE_EQ(inc.fired, 1.75);
  EXPECT_TRUE(inc.open);
}

TEST(MonitorUserRules, ImbalanceComparesAgainstOtherLanes) {
  Tracer trace;
  trace.counter(0, "load", 0.125, 10.0);
  trace.counter(1, "load", 0.125, 2.0);
  trace.counter(2, "load", 0.125, 2.0);
  const HealthReport report =
      obs::monitor_trace(trace, rules_only("rule skew imbalance load above 2\n"));
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].lane, 0u);
  EXPECT_DOUBLE_EQ(report.incidents[0].value, 5.0);  // 10 / mean(2, 2)
}

// ----------------------------------------------------------------- detectors

TEST(MonitorDetectors, DeadRankFiresOnTheSilentLaneOnly) {
  Tracer trace;
  for (int i = 1; i <= 8; ++i) {
    trace.counter(0, "heartbeat", 0.25 * i, static_cast<double>(i));
    if (i <= 4) trace.counter(1, "heartbeat", 0.25 * i, static_cast<double>(i));
  }
  MonitorOptions options;
  options.sample_every = 0.25;
  options.heartbeat_timeout = 0.25;
  const HealthReport report = obs::monitor_trace(trace, options);
  ASSERT_EQ(report.incidents.size(), 1u);
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.rule, "dead_rank");
  EXPECT_EQ(inc.lane, 1u);
  EXPECT_DOUBLE_EQ(inc.fired, 1.5);  // fleet at 1.5, lane 1 at 1.0: gap 0.5
  EXPECT_TRUE(inc.open);
}

TEST(MonitorDetectors, PersistentImbalanceIsBaselineNotStraggle) {
  // Lanes with a steady 2:1 compute split (an equi-distance-style schedule)
  // must never fire; only a *change* — lane 1 jumping 4x in iteration 3 —
  // does.
  Tracer trace;
  for (int i = 0; i < 4; ++i) {
    const double t0 = 0.5 * i;
    const double lane1 = i == 3 ? 0.5 : 0.125;
    trace.complete(kEngineLane, "greedy_iteration", "engine", t0, t0 + 0.5 + (i == 3 ? 0.125 : 0.0),
                   {{"iteration", std::to_string(i)}});
    trace.complete(0, "compute", "compute", t0, t0 + 0.25,
                   {{"iteration", std::to_string(i)}});
    trace.complete(1, "compute", "compute", t0, t0 + lane1,
                   {{"iteration", std::to_string(i)}});
  }
  MonitorOptions options;
  options.sample_every = 0.25;
  const HealthReport report = obs::monitor_trace(trace, options);
  std::vector<Incident> stragglers;
  for (const Incident& inc : report.incidents) {
    if (inc.rule == "straggler") stragglers.push_back(inc);
  }
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0].lane, 1u);
  EXPECT_EQ(stragglers[0].iteration, 3);
  EXPECT_GE(stragglers[0].value, 2.0);  // 0.5 / 0.25
}

TEST(MonitorDetectors, FaultCategoryEventsAreInvisible) {
  Tracer trace;
  trace.instant(1, "fault.crash", "fault", 0.5, {{"iteration", "0"}});
  trace.instant(kEngineLane, "fault.abort", "fault", 0.75, {{"iteration", "1"}});
  const HealthReport report = obs::monitor_trace(trace, MonitorOptions{});
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_EQ(report.boundaries, 0u);  // ground truth does not even set the horizon
}

TEST(MonitorDetectors, JobRestartInstantYieldsOneAbortIncident) {
  Tracer trace;
  trace.counter(0, "heartbeat", 0.125, 1.0);
  trace.counter(0, "heartbeat", 1.0, 2.0);
  trace.instant(kEngineLane, "job_restart", "driver", 0.375, {{"iteration", "2"}});
  MonitorOptions options;
  options.sample_every = 0.25;
  const HealthReport report = obs::monitor_trace(trace, options);
  std::vector<Incident> aborts;
  for (const Incident& inc : report.incidents) {
    if (inc.rule == "job_abort") aborts.push_back(inc);
  }
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].lane, kEngineLane);
  EXPECT_DOUBLE_EQ(aborts[0].fired, 0.5);
  EXPECT_DOUBLE_EQ(aborts[0].cleared, 0.75);  // one boundary wide
  EXPECT_FALSE(aborts[0].open);
}

// ------------------------------------------------- ground-truth sweep (4x2)

struct SweepCase {
  const char* name;
  FaultKind kind;
  SchedulerKind scheduler;
};

class MonitorGroundTruth : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MonitorGroundTruth, DetectsInjectedFaultsPerfectly) {
  const SweepCase& param = GetParam();
  FaultPlan plan;
  std::uint32_t checkpoint_every = 0;
  switch (param.kind) {
    case FaultKind::kRankCrash:
      plan.events.push_back({FaultKind::kRankCrash, 1, 1, 0.5, 1});
      break;
    case FaultKind::kStraggler:
      // Iteration >= 1 (iteration 0 is the detector's baseline warm-up) and
      // factor >= 2.5 so the deviation clears the 1.6x fire ratio.
      plan.events.push_back({FaultKind::kStraggler, 2, 1, 3.0, 2});
      break;
    case FaultKind::kMessageDrop:
      plan.events.push_back({FaultKind::kMessageDrop, 2, 1, 0.0, 2});
      break;
    case FaultKind::kJobAbort:
      plan.events.push_back({FaultKind::kJobAbort, 0, 2, 0.0, 1});
      checkpoint_every = 1;
      break;
  }
  const Dataset data = small_dataset(601);
  obs::Recorder rec;
  const ClusterRunResult result =
      recorded_run(data, 4, param.scheduler, plan, rec, checkpoint_every);
  ASSERT_FALSE(result.fault_events.empty());

  const HealthReport report = obs::monitor_trace(replay(rec.trace));
  const std::vector<TruthEvent> truth = truth_events(result.fault_events);
  const HealthScore score = obs::score_incidents(report, truth, 0.25);

  EXPECT_TRUE(score.perfect()) << obs::score_text(score) << obs::health_text(report);
  EXPECT_EQ(score.false_positives, 0u);
  const obs::ClassScore& cls = score.by_class.at(fault_kind_name(param.kind));
  EXPECT_EQ(cls.detected, cls.injected);
  EXPECT_GT(cls.injected, 0u);
  // Latency: within the comm model's failure-detection window plus a few
  // sampling intervals — detection never drags a full scoring window behind
  // the injection.
  EXPECT_LE(cls.latency_max, 0.15) << obs::score_text(score);
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndSchedulers, MonitorGroundTruth,
    ::testing::Values(
        SweepCase{"crash_ea", FaultKind::kRankCrash, SchedulerKind::kEquiArea},
        SweepCase{"crash_ed", FaultKind::kRankCrash, SchedulerKind::kEquiDistance},
        SweepCase{"straggler_ea", FaultKind::kStraggler, SchedulerKind::kEquiArea},
        SweepCase{"straggler_ed", FaultKind::kStraggler, SchedulerKind::kEquiDistance},
        SweepCase{"drop_ea", FaultKind::kMessageDrop, SchedulerKind::kEquiArea},
        SweepCase{"drop_ed", FaultKind::kMessageDrop, SchedulerKind::kEquiDistance},
        SweepCase{"abort_ea", FaultKind::kJobAbort, SchedulerKind::kEquiArea},
        SweepCase{"abort_ed", FaultKind::kJobAbort, SchedulerKind::kEquiDistance}),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.name; });

// --------------------------------------------------------- fault-free runs

TEST(MonitorFaultFree, TwentySeededRunsStaySilent) {
  // Zero false positives on clean runs, across seeds, fleet sizes, and both
  // schedulers — the equi-distance schedule's deliberate imbalance included.
  std::uint32_t runs = 0;
  for (const std::uint64_t seed : {701u, 702u, 703u, 704u, 705u}) {
    for (const SchedulerKind scheduler :
         {SchedulerKind::kEquiArea, SchedulerKind::kEquiDistance}) {
      for (const std::uint32_t nodes : {3u, 4u}) {
        const Dataset data = small_dataset(seed);
        obs::Recorder rec;
        recorded_run(data, nodes, scheduler, {}, rec);
        const HealthReport report = obs::monitor_trace(replay(rec.trace));
        EXPECT_TRUE(report.incidents.empty())
            << "seed " << seed << " scheduler " << static_cast<int>(scheduler) << " nodes "
            << nodes << "\n"
            << obs::health_text(report);
        ++runs;
      }
    }
  }
  EXPECT_EQ(runs, 20u);
}

// ------------------------------------------------------ bit-identical-off

TEST(MonitorDifferential, MonitoringNeverPerturbsTheRun) {
  const Dataset data = small_dataset(801);
  FaultPlan plan;
  plan.events.push_back({FaultKind::kRankCrash, 1, 1, 0.5, 1});

  // Uninstrumented reference.
  SummitConfig config;
  config.nodes = 3;
  const ClusterRunner runner(config);
  DistributedOptions bare;
  bare.faults = plan;
  const ClusterRunResult off = runner.run(data, bare);

  // Instrumented + monitored run.
  obs::Recorder rec;
  const ClusterRunResult on = recorded_run(data, 3, SchedulerKind::kEquiArea, plan, rec);
  const std::string trace_before = rec.trace.to_chrome_json();
  const std::string metrics_before = rec.metrics.to_json();
  const HealthReport report = obs::monitor_trace(replay(rec.trace));
  const std::string health = obs::health_report(report).dump();

  // Selections are bit-identical with monitoring off.
  EXPECT_EQ(on.greedy.combinations(), off.greedy.combinations());
  EXPECT_DOUBLE_EQ(on.total_time, off.total_time);
  // Monitoring is a pure read: the primary artifacts are byte-identical
  // before and after, and a second replay renders a byte-identical document.
  EXPECT_EQ(rec.trace.to_chrome_json(), trace_before);
  EXPECT_EQ(rec.metrics.to_json(), metrics_before);
  EXPECT_EQ(obs::health_report(obs::monitor_trace(replay(rec.trace))).dump(), health);
}

// ------------------------------------------------------ incident properties

TEST(MonitorProperties, IncidentsAreWellFormedUnderRandomFaultPlans) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    RandomFaultSpec spec;
    spec.seed = seed;
    spec.ranks = 4;
    spec.iterations = 8;
    spec.crashes = 1.0;
    spec.stragglers = 1.0;
    spec.drops = 1.0;
    const FaultPlan plan = random_fault_plan(spec);
    const Dataset data = small_dataset(900 + seed);
    obs::Recorder rec;
    recorded_run(data, 4, SchedulerKind::kEquiArea, plan, rec);
    const HealthReport report = obs::monitor_trace(replay(rec.trace));

    const double dt = report.options.sample_every;
    std::map<std::pair<std::string, std::uint32_t>, double> last_cleared;
    for (const Incident& inc : report.incidents) {
      // Fire/clear lie on the sample-boundary grid and are well-ordered.
      EXPECT_LE(inc.fired, inc.cleared);
      EXPECT_GE(inc.fired, dt);
      const double fk = inc.fired / dt;
      const double ck = inc.cleared / dt;
      EXPECT_NEAR(fk, std::round(fk), 1e-6) << inc.rule;
      EXPECT_NEAR(ck, std::round(ck), 1e-6) << inc.rule;
      // Per (rule, lane), incidents are disjoint and monotone on the sim
      // clock: a new one can only open after the previous cleared.
      const auto key = std::make_pair(inc.rule, inc.lane);
      const auto it = last_cleared.find(key);
      if (it != last_cleared.end()) EXPECT_GT(inc.fired, it->second) << inc.rule;
      last_cleared[key] = inc.cleared;
      if (inc.open) EXPECT_DOUBLE_EQ(inc.cleared, dt * static_cast<double>(report.boundaries));
    }
  }
}

// ------------------------------------------------------------ schema + docs

TEST(MonitorSchema, HealthDocumentIsStableAndTagged) {
  const Dataset data = small_dataset(811);
  obs::Recorder rec;
  recorded_run(data, 3, SchedulerKind::kEquiArea, {}, rec);
  const HealthReport report = obs::monitor_trace(replay(rec.trace));
  const JsonValue doc = obs::health_report(report);
  EXPECT_EQ(doc.find("schema")->as_string(), obs::kHealthSchema);
  // dump -> parse -> dump is a fixed point, and re-rendering is idempotent.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
  EXPECT_EQ(obs::health_report(report).dump(), doc.dump());
}

TEST(MonitorSchema, TruthRoundTripsAndNamesBothSchemasOnMismatch) {
  const std::vector<TruthEvent> events{{"crash", 1, 2, 0.125}, {"abort", 0, 3, 0.5}};
  const JsonValue doc = obs::truth_json(events);
  const std::vector<TruthEvent> back = obs::truth_from_json(JsonValue::parse(doc.dump()));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].kind, "crash");
  EXPECT_EQ(back[0].rank, 1u);
  EXPECT_EQ(back[1].iteration, 3u);
  EXPECT_DOUBLE_EQ(back[1].sim_time, 0.5);

  JsonValue wrong = JsonValue::object();
  wrong.set("schema", JsonValue("multihit.metrics.v1"));
  try {
    obs::truth_from_json(wrong);
    FAIL() << "expected MonitorError";
  } catch (const MonitorError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("multihit.truth.v1"), std::string::npos) << what;
    EXPECT_NE(what.find("multihit.metrics.v1"), std::string::npos) << what;
  }
  try {
    obs::truth_from_json(JsonValue::object());
    FAIL() << "expected MonitorError";
  } catch (const MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("(missing)"), std::string::npos) << e.what();
  }
}

TEST(MonitorCrosscheck, AgreesWithConsistentMetricsAndFlagsTampering) {
  const Dataset data = small_dataset(821);
  FaultPlan plan;
  plan.events.push_back({FaultKind::kRankCrash, 1, 1, 0.5, 1});
  obs::Recorder rec;
  recorded_run(data, 3, SchedulerKind::kEquiArea, plan, rec);
  const HealthReport report = obs::monitor_trace(replay(rec.trace));
  EXPECT_TRUE(obs::health_crosscheck(report, rec.metrics.snapshot()).empty());

  // A metrics snapshot claiming two lost ranks no longer matches the single
  // dead_rank lane.
  const JsonValue tampered = JsonValue::parse(
      "{\"schema\":\"multihit.metrics.v1\",\"counters\":["
      "{\"name\":\"cluster.ranks_lost\",\"value\":2}]}");
  const std::vector<std::string> mismatches = obs::health_crosscheck(report, tampered);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_NE(mismatches[0].find("dead_rank"), std::string::npos) << mismatches[0];
}

TEST(MonitorAnnotate, AddsOneHealthInstantPerIncident) {
  const Dataset data = small_dataset(831);
  FaultPlan plan;
  plan.events.push_back({FaultKind::kRankCrash, 1, 1, 0.5, 1});
  obs::Recorder rec;
  recorded_run(data, 3, SchedulerKind::kEquiArea, plan, rec);
  Tracer trace = replay(rec.trace);
  const HealthReport report = obs::monitor_trace(trace);
  ASSERT_FALSE(report.incidents.empty());
  const std::size_t before = trace.events().size();
  obs::annotate_trace(trace, report);
  EXPECT_EQ(trace.events().size(), before + report.incidents.size());
  std::size_t health_instants = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    if (ev.category == "health") {
      EXPECT_TRUE(ev.instant);
      EXPECT_EQ(ev.name.rfind("health.", 0), 0u) << ev.name;
      ++health_instants;
    }
  }
  EXPECT_EQ(health_instants, report.incidents.size());
}

}  // namespace
}  // namespace multihit
