#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "cluster/distributed.hpp"
#include "cluster/model.hpp"
#include "data/generator.hpp"
#include "data/registry.hpp"
#include "gpusim/perfmodel.hpp"
#include "obs/analyze.hpp"
#include "obs/recorder.hpp"
#include "util/stats.hpp"

namespace multihit {
namespace {

using obs::JsonValue;
using obs::KernelProfile;
using obs::Profiler;

// ----------------------------------------------------------- profiler basics

KernelProfile sample_kernel(double global_bytes) {
  KernelProfile k;
  k.lambda_begin = 0;
  k.lambda_end = 1000;
  k.combinations = 1000;
  k.blocks = 2;
  k.reduce_stages = 1;
  k.word_ops = 24000;
  k.candidate_bytes = 40;
  k.global_bytes = global_bytes;
  k.dram_bytes = global_bytes / 3.0;
  k.occupancy = 0.5;
  k.resident_warps = 2560.0;
  k.mem_efficiency = 0.7;
  k.compute_seconds = 2e-8;
  k.memory_seconds = 3e-8;
  k.modeled_seconds = 5e-8;
  k.memory_bound = true;
  k.dram_throughput = 1e9;
  k.arithmetic_intensity = 24000.0 / k.dram_bytes;
  k.stall_memory_dependency = 0.6;
  k.stall_memory_throttle = 0.2;
  k.stall_execution_dependency = 0.1;
  k.stall_other = 0.1;
  return k;
}

TEST(Profile, DisabledProfilerRecordsNothing) {
  Profiler profiler;  // off by default, even when attached to a Recorder
  EXPECT_FALSE(profiler.enabled());
  profiler.record(sample_kernel(800.0));
  profiler.annotate_last(1.0, 2.0);
  profiler.mark_node_lost(0, 0);
  EXPECT_TRUE(profiler.empty());
}

TEST(Profile, RecordStampsContextAndAnnotateSetsPlacement) {
  Profiler profiler;
  profiler.enable();
  profiler.set_context({3, 19, 2, /*recovery=*/true});
  profiler.record(sample_kernel(800.0));
  ASSERT_EQ(profiler.size(), 1u);
  const KernelProfile& k = profiler.records().front();
  EXPECT_EQ(k.rank, 3u);
  EXPECT_EQ(k.gpu, 19u);
  EXPECT_EQ(k.iteration, 2u);
  EXPECT_TRUE(k.recovery);
  // Placement defaults to the un-jittered model until the driver annotates.
  EXPECT_DOUBLE_EQ(k.sim_seconds, k.modeled_seconds);

  profiler.annotate_last(7.5, 6e-8);
  EXPECT_DOUBLE_EQ(profiler.records().front().sim_begin, 7.5);
  EXPECT_DOUBLE_EQ(profiler.records().front().sim_seconds, 6e-8);
}

TEST(Profile, MarkNodeLostFlagsOnlyNonRecoveryRecordsOfThatIteration) {
  Profiler profiler;
  profiler.enable();
  profiler.set_context({1, 6, 0, false});
  profiler.record(sample_kernel(800.0));
  profiler.set_context({1, 6, 1, false});
  profiler.record(sample_kernel(800.0));
  profiler.set_context({2, 12, 1, false});
  profiler.record(sample_kernel(800.0));
  profiler.set_context({3, 18, 1, /*recovery=*/true});
  profiler.record(sample_kernel(800.0));

  profiler.mark_node_lost(1, 1);
  EXPECT_FALSE(profiler.records()[0].lost);  // other iteration
  EXPECT_TRUE(profiler.records()[1].lost);
  EXPECT_FALSE(profiler.records()[2].lost);  // other rank
  EXPECT_FALSE(profiler.records()[3].lost);  // recovery re-run survives
}

// ------------------------------------------------- artifact round trip & I/O

Dataset profile_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = 4;
  spec.num_combinations = 3;
  spec.background_rate = 0.015;
  spec.seed = seed;
  return generate_dataset(spec);
}

/// A faulty instrumented cluster run with the kernel profiler on: crash plus
/// checkpointed recovery so recovery/lost records appear in the profile.
ClusterRunResult faulty_profiled_run(obs::Recorder& rec, std::uint64_t seed) {
  const Dataset data = profile_dataset(seed);
  SummitConfig config;
  config.nodes = 5;
  DistributedOptions options;
  options.recorder = &rec;
  rec.profile.enable();
  options.faults.events.push_back({FaultKind::kRankCrash, 2, 1, 0.5, 1});
  options.checkpoint_every = 2;
  const ClusterRunner runner(config);
  return runner.run(data, options);
}

TEST(Profile, ReportRoundTripsByteIdentically) {
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  ASSERT_FALSE(rec.profile.empty());

  const std::string dumped = obs::profile_report(rec.profile).dump();
  const Profiler reloaded = obs::profiler_from_json(JsonValue::parse(dumped));
  EXPECT_TRUE(reloaded.enabled());
  ASSERT_EQ(reloaded.size(), rec.profile.size());
  // Every derived section is recomputed from the kernel table, so the
  // re-rendered document and CSV views are byte-identical to the originals.
  EXPECT_EQ(obs::profile_report(reloaded).dump(), dumped);
  EXPECT_EQ(obs::roofline_csv(reloaded), obs::roofline_csv(rec.profile));
  EXPECT_EQ(obs::heatmap_csv(reloaded), obs::heatmap_csv(rec.profile));
  EXPECT_EQ(obs::profile_text(reloaded), obs::profile_text(rec.profile));
  EXPECT_EQ(obs::profile_text(reloaded, true), obs::profile_text(rec.profile, true));
}

TEST(Profile, RepeatedProfiledRunsAreByteIdentical) {
  obs::Recorder rec_a, rec_b;
  faulty_profiled_run(rec_a, 903);
  faulty_profiled_run(rec_b, 903);
  EXPECT_EQ(obs::profile_report(rec_a.profile).dump(),
            obs::profile_report(rec_b.profile).dump());
}

TEST(Profile, LoaderRejectsCorruptDocuments) {
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  const std::string dumped = obs::profile_report(rec.profile).dump();

  const auto reject = [](const std::string& text) {
    EXPECT_THROW(obs::profiler_from_json(JsonValue::parse(text)), obs::ProfileError)
        << text.substr(0, 120);
  };
  reject("{}");
  reject("{\"schema\":\"multihit.metrics.v1\"}");
  // Right schema, missing device/kernels sections.
  reject("{\"schema\":\"multihit.profile.v1\"}");
  reject("{\"schema\":\"multihit.profile.v1\",\"device\":{},\"kernels\":5}");
  // A kernel row with a non-numeric counter.
  std::string tampered = dumped;
  const std::string needle = "\"occupancy\":";
  const std::size_t at = tampered.find(needle, tampered.find("\"kernels\""));
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, needle.size() + 1, needle + "\"x");
  tampered.insert(tampered.find(',', at), "\"");
  reject(tampered);
}

// --------------------------------------------------- acceptance: reconciliation

TEST(Profile, CrosscheckReconcilesFaultyRunInProcess) {
  // The PR's acceptance gate: per-rank DRAM-byte and kernel-count totals in
  // the profile reconcile exactly with the trace's gpu_kernel spans and the
  // metrics counters — through crash, recovery, and checkpoint paths.
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  const JsonValue metrics = JsonValue::parse(rec.metrics.to_json());
  const std::vector<std::string> mismatches =
      obs::profile_crosscheck(rec.profile, &rec.trace, &metrics);
  EXPECT_TRUE(mismatches.empty()) << (mismatches.empty() ? "" : mismatches.front());
}

TEST(Profile, CrosscheckReconcilesThroughOfflineArtifacts) {
  // Same gate via the obstool path: every artifact serialized to its file
  // format and reconstructed before reconciling.
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  const Profiler profiler =
      obs::profiler_from_json(JsonValue::parse(obs::profile_report(rec.profile).dump()));
  const obs::Tracer tracer =
      obs::tracer_from_chrome(JsonValue::parse(rec.trace.to_chrome_json()));
  const JsonValue metrics = JsonValue::parse(rec.metrics.to_json());
  const std::vector<std::string> mismatches =
      obs::profile_crosscheck(profiler, &tracer, &metrics);
  EXPECT_TRUE(mismatches.empty()) << (mismatches.empty() ? "" : mismatches.front());
}

TEST(Profile, CrosscheckDetectsTamperedTraffic) {
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  const JsonValue metrics = JsonValue::parse(rec.metrics.to_json());

  // Rebuild the profile with one launch's traffic perturbed by a single
  // word: both the metrics counters and the trace spans must flag it.
  Profiler tampered;
  tampered.enable();
  tampered.set_device(rec.profile.device());
  for (std::size_t i = 0; i < rec.profile.records().size(); ++i) {
    KernelProfile k = rec.profile.records()[i];
    if (i == 0) k.global_bytes += 8.0;
    tampered.set_context({k.rank, k.gpu, k.iteration, k.recovery});
    tampered.record(k);
  }
  const std::vector<std::string> mismatches =
      obs::profile_crosscheck(tampered, &rec.trace, &metrics);
  EXPECT_FALSE(mismatches.empty());
}

TEST(Profile, CrosscheckDetectsMissingRecord) {
  obs::Recorder rec;
  faulty_profiled_run(rec, 901);
  Profiler truncated;
  truncated.enable();
  truncated.set_device(rec.profile.device());
  for (std::size_t i = 0; i + 1 < rec.profile.records().size(); ++i) {
    KernelProfile k = rec.profile.records()[i];
    truncated.set_context({k.rank, k.gpu, k.iteration, k.recovery});
    truncated.record(k);
  }
  const JsonValue metrics = JsonValue::parse(rec.metrics.to_json());
  EXPECT_FALSE(obs::profile_crosscheck(truncated, &rec.trace, &metrics).empty());
}

// ------------------------------------------------- differential: profiling off

TEST(ProfileDifferential, ProfilingIsBitIdenticalOff) {
  // Enabling the profiler must not change selections, modeled clocks, or the
  // other artifacts — the same invariant PR 2 established for the recorder
  // itself, extended to the profile seam.
  const Dataset data = profile_dataset(901);
  SummitConfig config;
  config.nodes = 5;
  const ClusterRunner runner(config);

  const auto run_with = [&](bool profiled, obs::Recorder& rec) {
    DistributedOptions options;
    options.recorder = &rec;
    rec.profile.enable(profiled);
    options.faults.events.push_back({FaultKind::kRankCrash, 2, 1, 0.5, 1});
    options.checkpoint_every = 2;
    return runner.run(data, options);
  };

  obs::Recorder plain, profiled;
  const ClusterRunResult a = run_with(false, plain);
  const ClusterRunResult b = run_with(true, profiled);

  EXPECT_TRUE(plain.profile.empty());
  EXPECT_FALSE(profiled.profile.empty());
  ASSERT_EQ(a.greedy.iterations.size(), b.greedy.iterations.size());
  for (std::size_t i = 0; i < a.greedy.iterations.size(); ++i) {
    EXPECT_EQ(a.greedy.iterations[i].genes, b.greedy.iterations[i].genes) << i;
  }
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.recovery_time, b.recovery_time);
  // Byte-level: the trace and metrics exports are unchanged by profiling.
  EXPECT_EQ(plain.trace.to_chrome_json(), profiled.trace.to_chrome_json());
  EXPECT_EQ(plain.metrics.to_json(), profiled.metrics.to_json());
}

// ------------------------------------- figure crosschecks from saved artifacts

/// Runs the analytic cluster model with the profiler attached and returns the
/// reloaded profiler (forcing everything through the multihit.profile.v1
/// serialization, as `obstool profile` would see it).
Profiler modeled_profile(const SummitConfig& config, ModelInputs inputs,
                         ModeledRun* run_out = nullptr) {
  obs::Recorder rec;
  rec.profile.enable();
  inputs.recorder = &rec;
  ModeledRun run = model_cluster_run(config, inputs);
  if (run_out != nullptr) *run_out = std::move(run);
  return obs::profiler_from_json(JsonValue::parse(obs::profile_report(rec.profile).dump()));
}

TEST(ProfileFigures, Fig6ReproducesFromSavedProfile) {
  // Fig. 6 (2x2 on ACC, 100 nodes): occupancy, roofline boundness, and the
  // per-GPU stall taxonomy must be recoverable from the saved profile alone,
  // matching the bench's direct GpuTiming computation exactly (json_number
  // round-trips doubles losslessly).
  const auto acc = find_cancer_type("ACC");
  ASSERT_TRUE(acc.has_value());
  SummitConfig config;
  config.nodes = 100;
  ModelInputs inputs;
  inputs.genes = acc->paper_genes;
  inputs.tumor_samples = acc->paper_tumor_samples;
  inputs.normal_samples = acc->paper_normal_samples;
  inputs.scheme4 = Scheme4::k2x2;
  inputs.first_iteration_only = true;

  ModeledRun run;
  const Profiler profiler = modeled_profile(config, inputs, &run);
  const auto& gpus = run.iterations.front().gpus;
  ASSERT_EQ(profiler.size(), gpus.size());  // 600 launches, one per GPU

  for (std::size_t g = 0; g < gpus.size(); g += 50) {
    const KernelProfile& k = profiler.records()[g];
    EXPECT_EQ(k.gpu, static_cast<std::uint32_t>(g));
    EXPECT_DOUBLE_EQ(k.occupancy, gpus[g].occupancy) << g;
    EXPECT_EQ(k.memory_bound, gpus[g].memory_bound) << g;
    EXPECT_DOUBLE_EQ(k.dram_throughput, gpus[g].dram_throughput) << g;
    EXPECT_DOUBLE_EQ(k.sim_seconds, gpus[g].time) << g;  // jittered placement
    const StallBreakdown s = stall_breakdown(gpus[g]);
    EXPECT_DOUBLE_EQ(k.stall_memory_dependency, s.memory_dependency) << g;
    EXPECT_DOUBLE_EQ(k.stall_memory_throttle, s.memory_throttle) << g;
    EXPECT_DOUBLE_EQ(k.stall_execution_dependency, s.execution_dependency) << g;
  }

  // The figure's headline shape from the artifact: GPU 0 is the starved,
  // memory-dependency-dominated straggler; throughput rises with GPU index.
  const KernelProfile& first = profiler.records().front();
  const KernelProfile& last = profiler.records().back();
  EXPECT_LT(first.occupancy, 0.3);
  EXPECT_GT(first.stall_memory_dependency, 0.6);
  EXPECT_GT(last.dram_throughput, 2.0 * first.dram_throughput);
}

TEST(ProfileFigures, Fig7ReproducesFromSavedProfile) {
  // Fig. 7 (3x1 on BRCA, 100 nodes): the utilization statistics the bench
  // prints are re-derivable from per-kernel sim_seconds in the artifact.
  SummitConfig config;
  config.nodes = 100;
  ModelInputs inputs;  // BRCA defaults, 3x1
  inputs.first_iteration_only = true;

  ModeledRun run;
  const Profiler profiler = modeled_profile(config, inputs, &run);
  const auto& gpus = run.iterations.front().gpus;
  ASSERT_EQ(profiler.size(), gpus.size());

  const auto util_stats = [](const std::vector<double>& times) {
    double max_time = 0.0;
    for (const double t : times) max_time = std::max(max_time, t);
    std::vector<double> util;
    util.reserve(times.size());
    for (const double t : times) util.push_back(100.0 * t / max_time);
    return std::array{stats::mean(util), stats::min(util), stats::stddev(util)};
  };
  std::vector<double> bench_times, profile_times;
  for (const auto& g : gpus) bench_times.push_back(g.time);
  for (const KernelProfile& k : profiler.records()) profile_times.push_back(k.sim_seconds);
  const auto bench = util_stats(bench_times);
  const auto from_profile = util_stats(profile_times);
  for (std::size_t i = 0; i < bench.size(); ++i) {
    EXPECT_NEAR(from_profile[i], bench[i], 1e-9) << i;
  }
  // The paper's balanced-3x1 claim, read off the artifact.
  EXPECT_GT(from_profile[1], 95.0);  // min utilization
  EXPECT_LT(from_profile[2], 1.5);   // stddev
}

TEST(ProfileFigures, Fig5SpeedupsTrackProfiledTrafficReduction) {
  // Fig. 5: the memory-bound stages' modeled speedups must agree with the
  // DRAM-traffic reductions counted in each stage's profile — the profiler
  // and the perf model describe the same roofline.
  struct Stage {
    MemOpts opts;
    bool splice;
  };
  const std::vector<Stage> stages{
      {MemOpts{}, false},
      {MemOpts{.prefetch_i = true}, false},
      {MemOpts{.prefetch_i = true, .prefetch_j = true}, false},
      {MemOpts{.prefetch_i = true, .prefetch_j = true}, true},
  };
  SummitConfig single;
  single.nodes = 1;
  single.gpus_per_node = 1;
  single.job_fixed_overhead = 0.0;
  single.job_log_overhead = 0.0;
  single.gpu_jitter = 0.0;

  std::vector<double> times, dram, local;
  for (const Stage& stage : stages) {
    ModelInputs inputs;
    inputs.hits = 3;
    inputs.mem_opts = stage.opts;
    inputs.bit_splicing = stage.splice;
    obs::Recorder rec;
    rec.profile.enable();
    inputs.recorder = &rec;
    times.push_back(model_single_gpu_time(DeviceSpec::v100(), inputs));
    const Profiler reloaded = obs::profiler_from_json(
        JsonValue::parse(obs::profile_report(rec.profile).dump()));
    double dram_total = 0.0, local_total = 0.0;
    for (const KernelProfile& k : reloaded.records()) {
      dram_total += k.dram_bytes;
      local_total += k.local_bytes;
    }
    dram.push_back(dram_total);
    local.push_back(local_total);
  }

  EXPECT_DOUBLE_EQ(local[0], 0.0);        // baseline: no prefetch traffic
  EXPECT_GT(local[1], 0.0);               // MemOpt1 serves bytes locally
  EXPECT_GT(local[2], local[1] * 0.99);   // MemOpt2 serves at least as many
  for (std::size_t s = 1; s < stages.size(); ++s) {
    const double speedup = times[0] / times[s];
    const double traffic_reduction = dram[0] / dram[s];
    EXPECT_GT(speedup, 1.0) << s;
    // Memory-bound stages: time ratio tracks DRAM-byte ratio to within 1%
    // (launch overheads and reduce costs are the only divergence).
    EXPECT_NEAR(speedup / traffic_reduction, 1.0, 0.01) << s;
  }
  // The paper's combined ~3x from the two prefetch optimizations.
  EXPECT_NEAR(times[0] / times[2], 3.0, 0.1);
}

// ----------------------------------------------------- heatmap: EA vs ED view

TEST(ProfileHeatmap, EquiAreaBalancesCombinationsWhereEquiDistanceDoesNot) {
  // The per-GPU heatmap makes the §IV-C scheduling story visible at counter
  // level: equi-distance slabs concentrate combinations on low GPU slots,
  // equi-area spreads them evenly.
  SummitConfig config;
  config.nodes = 4;  // 24 GPUs
  ModelInputs inputs;
  inputs.genes = 400;
  inputs.tumor_samples = 70;
  inputs.normal_samples = 50;
  inputs.first_iteration_only = true;

  const auto combination_spread = [&](SchedulerKind kind) {
    ModelInputs staged = inputs;
    staged.scheduler = kind;
    const Profiler profiler = modeled_profile(config, staged);
    std::vector<double> per_gpu(config.units(), 0.0);
    for (const KernelProfile& k : profiler.records()) {
      per_gpu[k.gpu] += static_cast<double>(k.combinations);
    }
    const auto [lo, hi] = std::minmax_element(per_gpu.begin(), per_gpu.end());
    return *hi / std::max(*lo, 1.0);
  };

  const double ed_spread = combination_spread(SchedulerKind::kEquiDistance);
  const double ea_spread = combination_spread(SchedulerKind::kEquiArea);
  EXPECT_LT(ea_spread, 1.2);           // near-uniform combinations per GPU
  EXPECT_GT(ed_spread, 5.0 * ea_spread);  // ED wildly imbalanced
}

}  // namespace
}  // namespace multihit
