#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generator.hpp"

namespace multihit {
namespace {

Dataset checkpoint_dataset() {
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 3;
  spec.num_combinations = 4;
  spec.background_rate = 0.015;
  spec.seed = 717;
  return generate_dataset(spec);
}

TEST(Checkpoint, PausedPlusResumedEqualsStraightRun) {
  // The allocation-limit workflow: run 2 iterations, "lose the allocation",
  // resume — the combined selections must equal an uninterrupted run.
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);

  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 2);
  EXPECT_EQ(state.progress.iterations.size(), 2u);
  EXPECT_GT(state.progress.uncovered_tumor, 0u);
  resume_greedy(state, data.normal, evaluator);

  ASSERT_EQ(state.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(state.progress.iterations[i].genes, straight.iterations[i].genes) << i;
    EXPECT_EQ(state.progress.iterations[i].tp, straight.iterations[i].tp) << i;
  }
  EXPECT_EQ(state.progress.uncovered_tumor, straight.uncovered_tumor);
}

TEST(Checkpoint, MultipleAllocationsOfOneIteration) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);
  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 1);
  for (std::size_t round = 0; round < 50 && state.progress.uncovered_tumor > 0; ++round) {
    const std::size_t before = state.progress.iterations.size();
    resume_greedy(state, data.normal, evaluator, 1);
    if (state.progress.iterations.size() == before) break;  // no further coverage
  }
  ASSERT_EQ(state.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(state.progress.iterations[i].genes, straight.iterations[i].genes);
  }
}

TEST(Checkpoint, SerializationRoundTrip) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const CheckpointState original =
      run_greedy_checkpointed(data.tumor, data.normal, config, make_kernel_evaluator(3), 2);

  std::stringstream buffer;
  write_checkpoint(buffer, original);
  const CheckpointState loaded = read_checkpoint(buffer);

  EXPECT_EQ(loaded.hits, original.hits);
  EXPECT_EQ(loaded.bit_splicing, original.bit_splicing);
  EXPECT_EQ(loaded.tumor, original.tumor);
  ASSERT_EQ(loaded.progress.iterations.size(), original.progress.iterations.size());
  for (std::size_t i = 0; i < original.progress.iterations.size(); ++i) {
    EXPECT_EQ(loaded.progress.iterations[i].genes, original.progress.iterations[i].genes);
    EXPECT_DOUBLE_EQ(loaded.progress.iterations[i].f, original.progress.iterations[i].f);
    EXPECT_EQ(loaded.progress.iterations[i].tp, original.progress.iterations[i].tp);
  }
  EXPECT_EQ(loaded.progress.uncovered_tumor, original.progress.uncovered_tumor);
}

TEST(Checkpoint, ResumeAfterSerializationMatchesStraightRun) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);
  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  const CheckpointState saved =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 3);
  std::stringstream buffer;
  write_checkpoint(buffer, saved);
  CheckpointState restored = read_checkpoint(buffer);
  resume_greedy(restored, data.normal, evaluator);

  ASSERT_EQ(restored.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(restored.progress.iterations[i].genes, straight.iterations[i].genes);
  }
}

TEST(Checkpoint, RejectsMalformedInput) {
  {
    std::stringstream buffer("wrong\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer("multihit-checkpoint v1\nhits 3\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
  {
    // Iteration with wrong gene count for hits=3.
    std::stringstream buffer(
        "multihit-checkpoint v1\nhits 3\nbit-splicing 1\nuncovered 0\n"
        "iterations 1\niter 0.5 3 10 5 2 1 2\ntumor 4 4\nend\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, make_kernel_evaluator(3), 1);
  const std::string path = testing::TempDir() + "/multihit_checkpoint_test.txt";
  save_checkpoint(path, state);
  const CheckpointState loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.tumor, state.tumor);
  EXPECT_THROW(load_checkpoint("/nonexistent/chk.txt"), std::ios_base::failure);
}

}  // namespace
}  // namespace multihit
