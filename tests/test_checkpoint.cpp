#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/generator.hpp"
#include "util/rng.hpp"

namespace multihit {
namespace {

Dataset checkpoint_dataset() {
  SyntheticSpec spec;
  spec.genes = 40;
  spec.tumor_samples = 80;
  spec.normal_samples = 60;
  spec.hits = 3;
  spec.num_combinations = 4;
  spec.background_rate = 0.015;
  spec.seed = 717;
  return generate_dataset(spec);
}

TEST(Checkpoint, PausedPlusResumedEqualsStraightRun) {
  // The allocation-limit workflow: run 2 iterations, "lose the allocation",
  // resume — the combined selections must equal an uninterrupted run.
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);

  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 2);
  EXPECT_EQ(state.progress.iterations.size(), 2u);
  EXPECT_GT(state.progress.uncovered_tumor, 0u);
  resume_greedy(state, data.normal, evaluator);

  ASSERT_EQ(state.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(state.progress.iterations[i].genes, straight.iterations[i].genes) << i;
    EXPECT_EQ(state.progress.iterations[i].tp, straight.iterations[i].tp) << i;
  }
  EXPECT_EQ(state.progress.uncovered_tumor, straight.uncovered_tumor);
}

TEST(Checkpoint, MultipleAllocationsOfOneIteration) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);
  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 1);
  for (std::size_t round = 0; round < 50 && state.progress.uncovered_tumor > 0; ++round) {
    const std::size_t before = state.progress.iterations.size();
    resume_greedy(state, data.normal, evaluator, 1);
    if (state.progress.iterations.size() == before) break;  // no further coverage
  }
  ASSERT_EQ(state.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(state.progress.iterations[i].genes, straight.iterations[i].genes);
  }
}

TEST(Checkpoint, SerializationRoundTrip) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const CheckpointState original =
      run_greedy_checkpointed(data.tumor, data.normal, config, make_kernel_evaluator(3), 2);

  std::stringstream buffer;
  write_checkpoint(buffer, original);
  const CheckpointState loaded = read_checkpoint(buffer);

  EXPECT_EQ(loaded.hits, original.hits);
  EXPECT_EQ(loaded.bit_splicing, original.bit_splicing);
  EXPECT_EQ(loaded.tumor, original.tumor);
  ASSERT_EQ(loaded.progress.iterations.size(), original.progress.iterations.size());
  for (std::size_t i = 0; i < original.progress.iterations.size(); ++i) {
    EXPECT_EQ(loaded.progress.iterations[i].genes, original.progress.iterations[i].genes);
    EXPECT_DOUBLE_EQ(loaded.progress.iterations[i].f, original.progress.iterations[i].f);
    EXPECT_EQ(loaded.progress.iterations[i].tp, original.progress.iterations[i].tp);
  }
  EXPECT_EQ(loaded.progress.uncovered_tumor, original.progress.uncovered_tumor);
}

TEST(Checkpoint, ResumeAfterSerializationMatchesStraightRun) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const Evaluator evaluator = make_kernel_evaluator(3);
  const GreedyResult straight = run_greedy(data.tumor, data.normal, config, evaluator);

  const CheckpointState saved =
      run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, 3);
  std::stringstream buffer;
  write_checkpoint(buffer, saved);
  CheckpointState restored = read_checkpoint(buffer);
  resume_greedy(restored, data.normal, evaluator);

  ASSERT_EQ(restored.progress.iterations.size(), straight.iterations.size());
  for (std::size_t i = 0; i < straight.iterations.size(); ++i) {
    EXPECT_EQ(restored.progress.iterations[i].genes, straight.iterations[i].genes);
  }
}

TEST(Checkpoint, RejectsMalformedInput) {
  {
    std::stringstream buffer("wrong\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer("multihit-checkpoint v1\nhits 3\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
  {
    // Iteration with wrong gene count for hits=3.
    std::stringstream buffer(
        "multihit-checkpoint v1\nhits 3\nbit-splicing 1\nuncovered 0\n"
        "iterations 1\niter 0.5 3 10 5 2 1 2\ntumor 4 4\nend\n");
    EXPECT_THROW(read_checkpoint(buffer), std::runtime_error);
  }
}

// --- serialization properties ------------------------------------------------

/// Arbitrary-but-valid state: random dimensions, random sparse bits, random
/// full-precision F values. Exercises corners a greedy run never produces
/// (zero iterations, empty matrices, extreme doubles).
CheckpointState random_state(std::uint64_t seed) {
  Rng rng(seed);
  CheckpointState state;
  state.hits = 2 + static_cast<std::uint32_t>(rng.uniform(4));  // 2..5
  state.bit_splicing = rng.bernoulli(0.5);
  const std::uint32_t genes = 2 + static_cast<std::uint32_t>(rng.uniform(20));
  const std::uint32_t samples = static_cast<std::uint32_t>(rng.uniform(70));  // 0 allowed
  state.tumor = BitMatrix(genes, samples);
  for (std::uint32_t g = 0; g < genes; ++g) {
    for (std::uint32_t s = 0; s < samples; ++s) {
      if (rng.bernoulli(0.2)) state.tumor.set(g, s);
    }
  }
  const std::uint64_t iterations = rng.uniform(5);  // 0 allowed
  for (std::uint64_t i = 0; i < iterations; ++i) {
    IterationRecord record;
    for (const std::uint64_t g :
         rng.sample_without_replacement(genes, std::min<std::uint64_t>(state.hits, genes))) {
      record.genes.push_back(static_cast<std::uint32_t>(g));
    }
    while (record.genes.size() < state.hits) record.genes.push_back(genes - 1);
    // Full-mantissa doubles, including denormal-ish and huge magnitudes —
    // the round trip must be bit-exact, not approximately equal.
    record.f = (rng.uniform_double() - 0.5) * std::pow(10.0, rng.uniform_range(-12, 12));
    record.tp = rng.uniform(1000);
    record.tn = rng.uniform(1000);
    record.tumor_remaining_before = static_cast<std::uint32_t>(rng.uniform(samples + 1));
    record.tumor_remaining_after = static_cast<std::uint32_t>(rng.uniform(samples + 1));
    state.progress.iterations.push_back(std::move(record));
  }
  state.progress.uncovered_tumor = static_cast<std::uint32_t>(rng.uniform(samples + 1));
  return state;
}

TEST(CheckpointProperty, RandomStatesSurviveRoundTripBitExactly) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const CheckpointState original = random_state(seed);
    std::stringstream buffer;
    write_checkpoint(buffer, original);
    const CheckpointState loaded = read_checkpoint(buffer);
    EXPECT_EQ(loaded.hits, original.hits) << "seed " << seed;
    EXPECT_EQ(loaded.bit_splicing, original.bit_splicing) << "seed " << seed;
    EXPECT_EQ(loaded.tumor, original.tumor) << "seed " << seed;
    EXPECT_EQ(loaded.progress.uncovered_tumor, original.progress.uncovered_tumor);
    ASSERT_EQ(loaded.progress.iterations.size(), original.progress.iterations.size());
    for (std::size_t i = 0; i < original.progress.iterations.size(); ++i) {
      const auto& got = loaded.progress.iterations[i];
      const auto& want = original.progress.iterations[i];
      EXPECT_EQ(got.genes, want.genes) << "seed " << seed;
      EXPECT_EQ(got.f, want.f) << "seed " << seed;  // bit-exact, not NEAR
      EXPECT_EQ(got.tp, want.tp);
      EXPECT_EQ(got.tn, want.tn);
      EXPECT_EQ(got.tumor_remaining_before, want.tumor_remaining_before);
      EXPECT_EQ(got.tumor_remaining_after, want.tumor_remaining_after);
    }
  }
}

TEST(CheckpointProperty, EveryTruncationIsRejected) {
  std::stringstream buffer;
  write_checkpoint(buffer, random_state(99));
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 10u);
  for (std::size_t length = 0; length < full.size(); ++length) {
    std::stringstream cut(full.substr(0, length));
    EXPECT_THROW(read_checkpoint(cut), std::runtime_error) << "prefix length " << length;
  }
}

TEST(CheckpointProperty, SingleCharacterCorruptionIsRejected) {
  std::stringstream buffer;
  write_checkpoint(buffer, random_state(100));
  const std::string full = buffer.str();
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = full;
    const std::size_t at = static_cast<std::size_t>(rng.uniform(full.size()));
    char replacement = static_cast<char>('0' + rng.uniform(75));  // printable
    if (replacement == corrupted[at]) replacement = replacement == 'x' ? 'y' : 'x';
    corrupted[at] = replacement;
    std::stringstream stream(corrupted);
    EXPECT_THROW(read_checkpoint(stream), std::runtime_error)
        << "flip at offset " << at << " to '" << replacement << "'";
  }
}

TEST(CheckpointProperty, ForeignVersionsAreRejectedNotMisparsed) {
  std::stringstream buffer;
  write_checkpoint(buffer, random_state(101));
  const std::string full = buffer.str();
  for (const std::string version : {"v1", "v3", "v22"}) {
    std::string other = full;
    other.replace(other.find("v2"), 2, version);
    std::stringstream stream(other);
    try {
      read_checkpoint(stream);
      FAIL() << "accepted version " << version;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
          << "unhelpful error for " << version << ": " << e.what();
    }
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const Dataset data = checkpoint_dataset();
  EngineConfig config;
  config.hits = 3;
  const CheckpointState state =
      run_greedy_checkpointed(data.tumor, data.normal, config, make_kernel_evaluator(3), 1);
  const std::string path = testing::TempDir() + "/multihit_checkpoint_test.txt";
  save_checkpoint(path, state);
  const CheckpointState loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.tumor, state.tumor);
  EXPECT_THROW(load_checkpoint("/nonexistent/chk.txt"), std::ios_base::failure);
}

}  // namespace
}  // namespace multihit
