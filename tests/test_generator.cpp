#include "data/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "data/dataset.hpp"

namespace multihit {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.genes = 60;
  spec.tumor_samples = 40;
  spec.normal_samples = 30;
  spec.hits = 3;
  spec.num_combinations = 4;
  spec.background_rate = 0.02;
  spec.seed = 7;
  return spec;
}

TEST(Generator, DimensionsMatchSpec) {
  const Dataset data = generate_dataset(small_spec());
  EXPECT_EQ(data.genes(), 60u);
  EXPECT_EQ(data.tumor_samples(), 40u);
  EXPECT_EQ(data.normal_samples(), 30u);
  EXPECT_EQ(data.planted.size(), 4u);
}

TEST(Generator, DeterministicForSameSeed) {
  const Dataset a = generate_dataset(small_spec());
  const Dataset b = generate_dataset(small_spec());
  EXPECT_EQ(a.tumor, b.tumor);
  EXPECT_EQ(a.normal, b.normal);
  EXPECT_EQ(a.planted, b.planted);
}

TEST(Generator, SeedChangesData) {
  auto spec = small_spec();
  const Dataset a = generate_dataset(spec);
  spec.seed = 8;
  const Dataset b = generate_dataset(spec);
  EXPECT_NE(a.tumor, b.tumor);
}

TEST(Generator, PlantedCombinationsAreDisjointAndSorted) {
  const Dataset data = generate_dataset(small_spec());
  std::set<std::uint32_t> seen;
  for (const auto& combo : data.planted) {
    ASSERT_EQ(combo.size(), 3u);
    EXPECT_TRUE(std::is_sorted(combo.begin(), combo.end()));
    for (std::uint32_t g : combo) {
      EXPECT_LT(g, 60u);
      EXPECT_TRUE(seen.insert(g).second) << "gene " << g << " reused across combinations";
    }
  }
}

TEST(Generator, EveryTumorSampleCoveredAtFullDetectRate) {
  auto spec = small_spec();
  spec.driver_detect_rate = 1.0;
  const Dataset data = generate_dataset(spec);
  for (std::uint32_t s = 0; s < data.tumor_samples(); ++s) {
    bool covered = false;
    for (const auto& combo : data.planted) {
      bool all = true;
      for (std::uint32_t g : combo) all = all && data.tumor.get(g, s);
      covered = covered || all;
    }
    EXPECT_TRUE(covered) << "tumor sample " << s << " carries no planted combination";
  }
}

TEST(Generator, NormalSamplesRarelyCarryPlantedCombos) {
  auto spec = small_spec();
  spec.background_rate = 0.01;
  const Dataset data = generate_dataset(spec);
  std::uint32_t carriers = 0;
  for (std::uint32_t s = 0; s < data.normal_samples(); ++s) {
    for (const auto& combo : data.planted) {
      bool all = true;
      for (std::uint32_t g : combo) all = all && data.normal.get(g, s);
      if (all) {
        ++carriers;
        break;
      }
    }
  }
  // P(all 3 background-mutated) = 1e-6 per combo; zero expected.
  EXPECT_EQ(carriers, 0u);
}

TEST(Generator, BackgroundRateIsRespected) {
  auto spec = small_spec();
  spec.genes = 200;
  spec.normal_samples = 200;
  spec.num_combinations = 1;
  spec.background_rate = 0.05;
  const Dataset data = generate_dataset(spec);
  const double density = static_cast<double>(data.normal.total_set_bits()) /
                         (static_cast<double>(spec.genes) * spec.normal_samples);
  EXPECT_NEAR(density, 0.05, 0.01);
}

TEST(Generator, RejectsImpossibleSpecs) {
  auto spec = small_spec();
  spec.genes = 10;  // 4 combos x 3 hits = 12 > 10 genes
  EXPECT_THROW(generate_dataset(spec), std::invalid_argument);
  spec = small_spec();
  spec.hits = 0;
  EXPECT_THROW(generate_dataset(spec), std::invalid_argument);
}

TEST(SplitDataset, PartitionSizes) {
  const Dataset data = generate_dataset(small_spec());
  const auto split = split_dataset(data, 0.75, 99);
  EXPECT_EQ(split.train.tumor_samples(), 30u);
  EXPECT_EQ(split.test.tumor_samples(), 10u);
  EXPECT_EQ(split.train.normal_samples(), 22u);
  EXPECT_EQ(split.test.normal_samples(), 8u);
  EXPECT_EQ(split.train.genes(), data.genes());
  EXPECT_EQ(split.train.planted, data.planted);
}

TEST(SplitDataset, MutationMassConserved) {
  const Dataset data = generate_dataset(small_spec());
  const auto split = split_dataset(data, 0.75, 99);
  EXPECT_EQ(split.train.tumor.total_set_bits() + split.test.tumor.total_set_bits(),
            data.tumor.total_set_bits());
  EXPECT_EQ(split.train.normal.total_set_bits() + split.test.normal.total_set_bits(),
            data.normal.total_set_bits());
}

TEST(SplitDataset, DeterministicGivenSeed) {
  const Dataset data = generate_dataset(small_spec());
  const auto a = split_dataset(data, 0.75, 5);
  const auto b = split_dataset(data, 0.75, 5);
  EXPECT_EQ(a.train.tumor, b.train.tumor);
  const auto c = split_dataset(data, 0.75, 6);
  EXPECT_NE(a.train.tumor, c.train.tumor);
}

}  // namespace
}  // namespace multihit
