#include "combinat/unrank.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "combinat/linearize.hpp"

namespace multihit {
namespace {

TEST(Unrank, FirstCombination) {
  EXPECT_EQ(first_combination(1), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(first_combination(4), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Unrank, RankOfFirstIsZero) {
  for (std::uint32_t h = 1; h <= 6; ++h) {
    EXPECT_EQ(rank_combination(first_combination(h)), 0u);
  }
}

class UnrankRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UnrankRoundTrip, BijectionOverFullSpace) {
  const std::uint32_t h = GetParam();
  const std::uint32_t universe = 14;
  const u64 total = binomial(universe, h);
  for (u64 lambda = 0; lambda < total; ++lambda) {
    const auto combo = unrank_combination(lambda, h);
    ASSERT_EQ(combo.size(), h);
    ASSERT_TRUE(std::is_sorted(combo.begin(), combo.end()));
    ASSERT_TRUE(std::adjacent_find(combo.begin(), combo.end()) == combo.end());
    ASSERT_LT(combo.back(), universe);
    ASSERT_EQ(rank_combination(combo), lambda) << "h=" << h << " lambda=" << lambda;
  }
}

INSTANTIATE_TEST_SUITE_P(AllHitCounts, UnrankRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Unrank, MatchesSpecializedPairRanking) {
  for (u64 lambda = 0; lambda < triangular(40); ++lambda) {
    const Pair p = unrank_pair(lambda);
    const std::uint32_t combo[2] = {p.i, p.j};
    EXPECT_EQ(rank_combination(combo), lambda);
    EXPECT_EQ(unrank_combination(lambda, 2), (std::vector<std::uint32_t>{p.i, p.j}));
  }
}

TEST(Unrank, MatchesSpecializedTripleRanking) {
  for (u64 lambda = 0; lambda < tetrahedral(25); ++lambda) {
    const Triple t = unrank_triple(lambda);
    const std::uint32_t combo[3] = {t.i, t.j, t.k};
    EXPECT_EQ(rank_combination(combo), lambda);
    EXPECT_EQ(unrank_combination(lambda, 3), (std::vector<std::uint32_t>{t.i, t.j, t.k}));
  }
}

TEST(Unrank, QuadrupleAtPaperScale) {
  // C(19411,4)-1 is the largest 4-hit rank for BRCA.
  const u64 lambda = quartic(19411) - 1;
  const auto combo = unrank_combination(lambda, 4);
  EXPECT_EQ(combo, (std::vector<std::uint32_t>{19407, 19408, 19409, 19410}));
  EXPECT_EQ(rank_combination(combo), lambda);
}

TEST(Unrank, ColexSuccessorVisitsAllInRankOrder) {
  const std::uint32_t universe = 11;
  for (std::uint32_t h = 1; h <= 5; ++h) {
    auto combo = first_combination(h);
    u64 lambda = 0;
    do {
      ASSERT_EQ(rank_combination(combo), lambda);
      ++lambda;
    } while (next_combination_colex(combo, universe));
    EXPECT_EQ(lambda, binomial(universe, h));
  }
}

TEST(Unrank, ColexSuccessorTerminates) {
  std::vector<std::uint32_t> last{7, 8, 9};
  EXPECT_FALSE(next_combination_colex(last, 10));
}

}  // namespace
}  // namespace multihit
