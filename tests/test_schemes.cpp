#include "core/schemes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "combinat/binomial.hpp"
#include "combinat/unrank.hpp"
#include "core/serial.hpp"
#include "data/generator.hpp"

namespace multihit {
namespace {

struct Fixture {
  Dataset data;
  FContext ctx;
};

Fixture make_fixture(std::uint32_t genes, std::uint32_t hits, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.genes = genes;
  spec.tumor_samples = 70;
  spec.normal_samples = 50;
  spec.hits = hits;
  spec.num_combinations = 3;
  spec.background_rate = 0.05;
  spec.seed = seed;
  Fixture f{generate_dataset(spec), {}};
  f.ctx = FContext{FParams{}, spec.tumor_samples, spec.normal_samples};
  return f;
}

// --- thread-space sizes -----------------------------------------------------

TEST(SchemeThreads, CountsMatchCombinatorics) {
  EXPECT_EQ(scheme4_threads(Scheme4::k1x3, 100), 100u);
  EXPECT_EQ(scheme4_threads(Scheme4::k2x2, 100), binomial(100, 2));
  EXPECT_EQ(scheme4_threads(Scheme4::k3x1, 100), binomial(100, 3));
  EXPECT_EQ(scheme4_threads(Scheme4::k4x1, 100), binomial(100, 4));
  EXPECT_EQ(scheme3_threads(Scheme3::k1x2, 100), 100u);
  EXPECT_EQ(scheme3_threads(Scheme3::k2x1, 100), binomial(100, 2));
  EXPECT_EQ(scheme3_threads(Scheme3::k3x1, 100), binomial(100, 3));
}

TEST(SchemeThreads, WorkSumsToWholeSpace4Hit) {
  // Σ over threads of per-thread work must equal C(G,4) for every scheme.
  const std::uint32_t G = 40;
  for (const Scheme4 scheme :
       {Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1, Scheme4::k4x1}) {
    u64 total = 0;
    for (u64 lambda = 0; lambda < scheme4_threads(scheme, G); ++lambda) {
      total += scheme4_thread_work(scheme, G, lambda);
    }
    EXPECT_EQ(total, binomial(G, 4)) << scheme_name(scheme);
  }
}

TEST(SchemeThreads, WorkSumsToWholeSpace3Hit) {
  const std::uint32_t G = 40;
  for (const Scheme3 scheme : {Scheme3::k1x2, Scheme3::k2x1, Scheme3::k3x1}) {
    u64 total = 0;
    for (u64 lambda = 0; lambda < scheme3_threads(scheme, G); ++lambda) {
      total += scheme3_thread_work(scheme, G, lambda);
    }
    EXPECT_EQ(total, binomial(G, 3)) << scheme_name(scheme);
  }
}

TEST(SchemeThreads, WorkloadSpreadMatchesPaper) {
  // Paper §III-B: max-min per-thread work is ~C(G,2) for 2x2 but only ~G for
  // 3x1 — the whole reason the 3x1 scheme scales.
  const std::uint32_t G = 100;
  EXPECT_EQ(scheme4_thread_work(Scheme4::k2x2, G, 0), triangular(G - 2));
  EXPECT_EQ(scheme4_thread_work(Scheme4::k2x2, G, triangular(G) - 1), 0u);
  EXPECT_EQ(scheme4_thread_work(Scheme4::k3x1, G, 0), static_cast<u64>(G) - 3);
  EXPECT_EQ(scheme4_thread_work(Scheme4::k3x1, G, tetrahedral(G) - 1), 0u);
}

// --- full-range equivalence to the serial reference -------------------------

class Scheme4Equivalence : public ::testing::TestWithParam<Scheme4> {};

TEST_P(Scheme4Equivalence, FullRangeMatchesSerial) {
  const auto f = make_fixture(26, 4, 1234);
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 4);
  const EvalResult parallel =
      evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                          scheme4_threads(GetParam(), 26));
  ASSERT_TRUE(parallel.valid);
  EXPECT_EQ(parallel.combo_rank, serial.combo_rank);
  EXPECT_DOUBLE_EQ(parallel.f, serial.f);
  EXPECT_EQ(parallel.tp, serial.tp);
  EXPECT_EQ(parallel.tn, serial.tn);
}

TEST_P(Scheme4Equivalence, PrefetchVariantsAreResultIdentical) {
  const auto f = make_fixture(22, 4, 555);
  const u64 end = scheme4_threads(GetParam(), 22);
  const EvalResult plain =
      evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end, {});
  const EvalResult opt1 = evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                                              end, {.prefetch_i = true});
  const EvalResult opt12 = evaluate_range_4hit(
      f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end,
      {.prefetch_i = true, .prefetch_j = true});
  EXPECT_EQ(plain.combo_rank, opt1.combo_rank);
  EXPECT_EQ(plain.combo_rank, opt12.combo_rank);
  EXPECT_DOUBLE_EQ(plain.f, opt1.f);
  EXPECT_DOUBLE_EQ(plain.f, opt12.f);
}

TEST_P(Scheme4Equivalence, PartialRangesMergeToFull) {
  const auto f = make_fixture(20, 4, 77);
  const u64 end = scheme4_threads(GetParam(), 20);
  const EvalResult full =
      evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end);
  EvalResult merged;
  const u64 pieces = 7;
  for (u64 p = 0; p < pieces; ++p) {
    const u64 begin = end * p / pieces;
    const u64 stop = end * (p + 1) / pieces;
    const EvalResult part =
        evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), begin, stop);
    merged = merge_results(merged, part);
  }
  ASSERT_TRUE(merged.valid);
  EXPECT_EQ(merged.combo_rank, full.combo_rank);
  EXPECT_DOUBLE_EQ(merged.f, full.f);
}

TEST_P(Scheme4Equivalence, StatsCountExactCombinationTotal) {
  const auto f = make_fixture(18, 4, 31);
  KernelStats stats;
  evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                      scheme4_threads(GetParam(), 18), {}, &stats);
  EXPECT_EQ(stats.combinations, binomial(18, 4));
  EXPECT_GT(stats.word_ops, 0u);
  EXPECT_GT(stats.global_words, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Scheme4Equivalence,
                         ::testing::Values(Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1,
                                           Scheme4::k4x1),
                         [](const auto& info) { return scheme_name(info.param); });

class Scheme3Equivalence : public ::testing::TestWithParam<Scheme3> {};

TEST_P(Scheme3Equivalence, FullRangeMatchesSerial) {
  const auto f = make_fixture(40, 3, 999);
  const EvalResult serial = serial_find_best(f.data.tumor, f.data.normal, f.ctx, 3);
  const EvalResult parallel =
      evaluate_range_3hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                          scheme3_threads(GetParam(), 40));
  ASSERT_TRUE(parallel.valid);
  EXPECT_EQ(parallel.combo_rank, serial.combo_rank);
  EXPECT_DOUBLE_EQ(parallel.f, serial.f);
}

TEST_P(Scheme3Equivalence, PrefetchVariantsAreResultIdentical) {
  const auto f = make_fixture(30, 3, 1001);
  const u64 end = scheme3_threads(GetParam(), 30);
  const EvalResult plain =
      evaluate_range_3hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0, end, {});
  const EvalResult opt = evaluate_range_3hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                                             end, {.prefetch_i = true, .prefetch_j = true});
  EXPECT_EQ(plain.combo_rank, opt.combo_rank);
}

TEST_P(Scheme3Equivalence, StatsCountExactCombinationTotal) {
  const auto f = make_fixture(24, 3, 13);
  KernelStats stats;
  evaluate_range_3hit(f.data.tumor, f.data.normal, f.ctx, GetParam(), 0,
                      scheme3_threads(GetParam(), 24), {}, &stats);
  EXPECT_EQ(stats.combinations, binomial(24, 3));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Scheme3Equivalence,
                         ::testing::Values(Scheme3::k1x2, Scheme3::k2x1, Scheme3::k3x1),
                         [](const auto& info) { return scheme_name(info.param); });

// --- targeted behaviour -----------------------------------------------------

TEST(Schemes, EmptyRangeIsInvalid) {
  const auto f = make_fixture(15, 4, 3);
  const EvalResult r =
      evaluate_range_4hit(f.data.tumor, f.data.normal, f.ctx, Scheme4::k3x1, 5, 5);
  EXPECT_FALSE(r.valid);
}

TEST(Schemes, WinnerIsPlantedCombination) {
  // With clean planted data the best 3-hit combination must be one of the
  // planted driver sets.
  SyntheticSpec spec;
  spec.genes = 30;
  spec.tumor_samples = 60;
  spec.normal_samples = 60;
  spec.hits = 3;
  spec.num_combinations = 2;
  spec.background_rate = 0.01;
  spec.seed = 4242;
  const Dataset data = generate_dataset(spec);
  const FContext ctx{FParams{}, spec.tumor_samples, spec.normal_samples};
  const EvalResult best = evaluate_range_3hit(data.tumor, data.normal, ctx, Scheme3::k2x1, 0,
                                              scheme3_threads(Scheme3::k2x1, 30));
  ASSERT_TRUE(best.valid);
  const auto genes = unrank_combination(best.combo_rank, 3);
  const bool is_planted = genes == data.planted[0] || genes == data.planted[1];
  EXPECT_TRUE(is_planted) << "winner {" << genes[0] << "," << genes[1] << "," << genes[2] << "}";
}

TEST(Schemes, TieBreakPicksLowestRank) {
  // Two identical gene rows => combinations differing only in which copy
  // they use have exactly equal F; the lower colex rank must win on every
  // scheme.
  BitMatrix tumor(6, 10);
  BitMatrix normal(6, 10);
  for (std::uint32_t g = 0; g < 6; ++g) {
    for (std::uint32_t s = 0; s < 10; ++s) tumor.set(g, s);
  }
  const FContext ctx{FParams{}, 10, 10};
  for (const Scheme4 scheme :
       {Scheme4::k1x3, Scheme4::k2x2, Scheme4::k3x1, Scheme4::k4x1}) {
    const EvalResult r = evaluate_range_4hit(tumor, normal, ctx, scheme, 0,
                                             scheme4_threads(scheme, 6));
    EXPECT_EQ(r.combo_rank, 0u) << scheme_name(scheme);  // {0,1,2,3}
  }
}

TEST(Schemes, NamesAreStable) {
  EXPECT_STREQ(scheme_name(Scheme4::k2x2), "2x2");
  EXPECT_STREQ(scheme_name(Scheme4::k3x1), "3x1");
  EXPECT_STREQ(scheme_name(Scheme3::k2x1), "2x1");
}

}  // namespace
}  // namespace multihit
