#include "bitmat/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace multihit {
namespace {

std::vector<std::uint64_t> random_row(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> row(words);
  for (auto& w : row) w = rng();
  return row;
}

// Naive per-bit reference.
std::uint64_t naive_and_popcount(const std::vector<std::vector<std::uint64_t>>& rows) {
  if (rows.empty()) return 0;
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < rows[0].size(); ++w) {
    for (int b = 0; b < 64; ++b) {
      bool all = true;
      for (const auto& row : rows) {
        if (!((row[w] >> b) & 1)) {
          all = false;
          break;
        }
      }
      count += all ? 1 : 0;
    }
  }
  return count;
}

TEST(BitOps, PopcountRow) {
  EXPECT_EQ(popcount_row(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(popcount_row(std::vector<std::uint64_t>{0}), 0u);
  EXPECT_EQ(popcount_row(std::vector<std::uint64_t>{~0ULL}), 64u);
  EXPECT_EQ(popcount_row(std::vector<std::uint64_t>{0x5ULL, 0x3ULL}), 4u);
}

TEST(BitOps, AndPopcountMatchesNaive) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t words = 1 + rng.uniform(8);
    const auto a = random_row(rng, words);
    const auto b = random_row(rng, words);
    const auto c = random_row(rng, words);
    const auto d = random_row(rng, words);
    EXPECT_EQ(and_popcount(a, b), naive_and_popcount({a, b}));
    EXPECT_EQ(and_popcount(a, b, c), naive_and_popcount({a, b, c}));
    EXPECT_EQ(and_popcount(a, b, c, d), naive_and_popcount({a, b, c, d}));
  }
}

TEST(BitOps, AndPopcountIsCommutative) {
  Rng rng(101);
  const auto a = random_row(rng, 4);
  const auto b = random_row(rng, 4);
  const auto c = random_row(rng, 4);
  EXPECT_EQ(and_popcount(a, b), and_popcount(b, a));
  EXPECT_EQ(and_popcount(a, b, c), and_popcount(c, b, a));
}

TEST(BitOps, AndRowsStagingMatchesDirect) {
  // The MemOpt identity: popcount((a&b) & c) == popcount(a & b & c).
  Rng rng(103);
  const auto a = random_row(rng, 6);
  const auto b = random_row(rng, 6);
  const auto c = random_row(rng, 6);
  std::vector<std::uint64_t> staged(6);
  and_rows(staged, a, b);
  EXPECT_EQ(and_popcount(staged, c), and_popcount(a, b, c));
}

TEST(BitOps, AndRowsInplace) {
  std::vector<std::uint64_t> dst{0xFF00FF00FF00FF00ULL, ~0ULL};
  const std::vector<std::uint64_t> mask{0x0F0F0F0F0F0F0F0FULL, 0x1ULL};
  and_rows_inplace(dst, mask);
  EXPECT_EQ(dst[0], 0x0F000F000F000F00ULL & 0xFF00FF00FF00FF00ULL);
  EXPECT_EQ(dst[1], 0x1ULL);
}

TEST(BitOps, EmptyRowsAreHandled) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(and_popcount(empty, empty), 0u);
  EXPECT_EQ(and_popcount(empty, empty, empty, empty), 0u);
}

}  // namespace
}  // namespace multihit
