#pragma once
// Host-side multithreaded sweep: the real combinatorial workload on real
// silicon.
//
// The simulated cluster partitions the λ space with the equi-area scheduler
// and *models* time; this sweep runs the same enumeration kernels over the
// same λ space with actual std::threads, pulling fixed-size chunks off a
// lock-free ChunkQueue (core/workqueue.hpp) so stragglers self-balance —
// the planar_mt.cpp shape: atomic work counter, per-worker accumulation,
// merge at the end.
//
// Determinism: every chunk produces at most one candidate tagged with its
// chunk-begin λ; workers append to private lists, and the final fold sorts
// candidates by that linear index before merging. Together with the strict
// (F desc, rank asc) total order of EvalResult, selections are bit-identical
// across thread counts, chunk sizes, and backends — pinned by
// tests/test_hostsweep.cpp against both the serial reference and the
// simulated-cluster path.

#include <cstdint>

#include "bitmat/bitmatrix.hpp"
#include "core/engine.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"
#include "core/schemes.hpp"

namespace multihit::obs {
class HostProfiler;
}

namespace multihit {

struct HostSweepOptions {
  std::uint32_t hits = 4;       ///< 2, 3, 4, or 5
  std::uint32_t threads = 0;    ///< worker count; 0 = hardware_concurrency
  std::uint64_t chunk = 1024;   ///< λ indices per queue grab
  Scheme4 scheme4 = Scheme4::k3x1;  ///< used when hits == 4
  Scheme3 scheme3 = Scheme3::k2x1;  ///< used when hits == 3
  Scheme2 scheme2 = Scheme2::k1x1;  ///< used when hits == 2
  Scheme5 scheme5 = Scheme5::k4x1;  ///< used when hits == 5
  MemOpts mem_opts{.prefetch_i = true, .prefetch_j = true};
  /// Optional wall-clock profiler (obs/hostprof.hpp). Null keeps the worker
  /// loop on its original untimed path; non-null adds two steady_clock reads
  /// per chunk and never changes which combination is selected — profiled
  /// and unprofiled sweeps are bit-identical (pinned by tests and the ci.sh
  /// hostprof smoke).
  obs::HostProfiler* profiler = nullptr;
};

/// Wall-clock-free accounting for one sweep (all deterministic).
struct HostSweepTelemetry {
  std::uint32_t threads = 0;            ///< workers actually launched (post-clamp)
  std::uint32_t threads_requested = 0;  ///< workers asked for, before the chunk-count clamp
  std::uint64_t chunk_size = 0;         ///< λ indices per queue grab actually used
  std::uint64_t chunks = 0;             ///< chunks distributed
  std::uint64_t candidates = 0;         ///< valid per-chunk candidates merged
  std::uint64_t arena_blocks = 0;       ///< heap blocks across all worker arenas
  KernelStats stats;                    ///< summed over workers in index order

  /// Accumulates another sweep's accounting (one greedy run = one sweep per
  /// iteration). Counters sum; the configuration fields (threads, chunk
  /// size) take the latest sweep's values.
  HostSweepTelemetry& operator+=(const HostSweepTelemetry& other) noexcept {
    threads = other.threads;
    threads_requested = other.threads_requested;
    chunk_size = other.chunk_size;
    chunks += other.chunks;
    candidates += other.candidates;
    arena_blocks += other.arena_blocks;
    stats += other.stats;
    return *this;
  }
};

/// One maxF evaluation over the full λ space of the scheme selected by
/// options.hits, distributed over host threads. Requires
/// tumor.genes() == normal.genes() and options.hits in [2, 5].
EvalResult host_sweep_find_best(const BitMatrix& tumor, const BitMatrix& normal,
                                const FContext& ctx, const HostSweepOptions& options,
                                HostSweepTelemetry* telemetry = nullptr);

/// Evaluator running the threaded sweep each greedy iteration — drop-in for
/// make_serial_evaluator/make_kernel_evaluator in run_greedy. When
/// `telemetry_sink` is non-null, every evaluation accumulates its sweep
/// accounting into it (operator+=), so engine runs through this evaluator
/// report the same kernel stats the serial and cluster paths do; the sink
/// must outlive the evaluator and is not thread-safe across concurrent
/// evaluations (the greedy loop is sequential).
Evaluator make_host_sweep_evaluator(HostSweepOptions options,
                                    HostSweepTelemetry* telemetry_sink = nullptr);

}  // namespace multihit
