#pragma once
// The weighted-set-cover objective (paper Eq. 1):
//
//   F = (α·TP + TN) / (N_t + N_n)
//
// TP = tumor samples carrying mutations in *all* genes of the combination,
// TN = normal samples *not* carrying mutations in all genes, α = 0.1 is the
// penalty offsetting the algorithm's bias toward true positives.

#include <cstdint>

namespace multihit {

struct FParams {
  double alpha = 0.1;
};

/// Denominator context for one greedy iteration: the tumor count is the
/// number of samples still uncovered; the normal count never changes.
struct FContext {
  FParams params;
  std::uint64_t tumor_total = 0;   ///< N_t (remaining tumor samples)
  std::uint64_t normal_total = 0;  ///< N_n
};

/// Eq. 1. `normal_hits` is the intersection cardinality on the normal
/// matrix, so TN = normal_total - normal_hits.
inline double f_score(const FContext& ctx, std::uint64_t tp, std::uint64_t normal_hits) noexcept {
  const double tn = static_cast<double>(ctx.normal_total - normal_hits);
  return (ctx.params.alpha * static_cast<double>(tp) + tn) /
         static_cast<double>(ctx.tumor_total + ctx.normal_total);
}

}  // namespace multihit
