#include "core/arena.hpp"

#include <algorithm>

namespace multihit {

namespace {
constexpr std::size_t kMinBlockWords = 1024;  // 8 KiB
}

Arena::Arena(std::size_t initial_words) {
  if (initial_words > 0) grow(initial_words);
}

Arena::Block& Arena::grow(std::size_t min_words) {
  // Geometric growth over total capacity keeps the block count logarithmic;
  // after a reset the whole demand lands in the blocks already present.
  const std::size_t target = std::max({min_words, kMinBlockWords, capacity_words()});
  Block block;
  block.words = std::make_unique<std::uint64_t[]>(target);
  block.size = target;
  blocks_.push_back(std::move(block));
  ++block_allocations_;
  return blocks_.back();
}

std::span<std::uint64_t> Arena::alloc_words(std::size_t n) {
  if (n == 0) return {};
  while (cursor_ < blocks_.size()) {
    Block& block = blocks_[cursor_];
    if (block.size - block.offset >= n) {
      std::uint64_t* out = block.words.get() + block.offset;
      block.offset += n;
      used_ += n;
      if (used_ > peak_) peak_ = used_;
      return {out, n};
    }
    ++cursor_;
  }
  Block& block = grow(n);
  cursor_ = blocks_.size() - 1;
  block.offset = n;
  used_ += n;
  if (used_ > peak_) peak_ = used_;
  return {block.words.get(), n};
}

void Arena::reset() noexcept {
  for (Block& block : blocks_) block.offset = 0;
  cursor_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity_words() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

}  // namespace multihit
