// 2-hit and 5-hit enumeration kernels — the hit counts bracketing the
// paper's 3/4-hit implementations (2-hit: the original single-CPU problem;
// 5-hit: the §V extension, each extra hit costing ~4e5x more compute).

#include <algorithm>
#include <bit>
#include <cassert>
#include <span>

#include "combinat/linearize.hpp"
#include "core/kernel_detail.hpp"
#include "core/schemes.hpp"

namespace multihit {

namespace {

using detail::BestTracker;
using detail::Scratch;
using detail::advance_pair;
using detail::advance_quad;
using detail::advance_triple;

// ---------------------------------------------------------------------------
// 2-hit kernels
// ---------------------------------------------------------------------------

// Thread = i; inner loop over j.
EvalResult eval2_1x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);
  const bool prefetch = opts.prefetch_i || opts.prefetch_j;

  for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
    const auto i = static_cast<std::uint32_t>(lambda);
    const std::uint64_t inner = genes - 1 - i;
    if (inner == 0) continue;

    std::span<const std::uint64_t> row_ti = tumor.row(i);
    std::span<const std::uint64_t> row_ni = normal.row(i);
    if (prefetch) {
      std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
      std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
      row_ti = scratch.t1;
      row_ni = scratch.n1;
    }
    for (std::uint32_t j = i + 1; j < genes; ++j) {
      const std::uint64_t tp = and_popcount(row_ti, tumor.row(j));
      const std::uint64_t nh = and_popcount(row_ni, normal.row(j));
      best.consider(tp, nh, [&] { return static_cast<std::uint64_t>(i) + triangular(j); });
    }
    if (stats) {
      stats->combinations += inner;
      stats->word_ops += inner * (wt + wn);
      stats->global_words += (prefetch ? (wt + wn) : 0) +
                             inner * (prefetch ? 1 : 2) * (wt + wn);
      stats->local_words += prefetch ? inner * (wt + wn) : 0;
      stats->distinct_rows += 2 * (genes - i);
    }
  }
  return best.result();
}

// Thread = one pair.
EvalResult eval2_2x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, KernelStats* stats) {
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);

  Pair p = begin < end ? unrank_pair(begin) : Pair{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_pair(p)) {
    const std::uint64_t tp = and_popcount(tumor.row(p.i), tumor.row(p.j));
    const std::uint64_t nh = and_popcount(normal.row(p.i), normal.row(p.j));
    best.consider(tp, nh, [&] { return lambda; });
  }
  if (stats && end > begin) {
    const std::uint64_t n = end - begin;
    stats->combinations += n;
    stats->word_ops += n * (wt + wn);
    stats->global_words += n * 2 * (wt + wn);
    stats->distinct_rows += n * 4;
  }
  return best.result();
}

// ---------------------------------------------------------------------------
// 5-hit kernels
// ---------------------------------------------------------------------------

// Thread = (i, j, k, l); inner loop over m — the 3x1 scheme's natural
// successor, with the O(G) workload spread that made 3x1 scale.
EvalResult eval5_4x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  Quad q = begin < end ? unrank_quad(begin) : Quad{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_quad(q)) {
    const std::uint64_t inner = genes - 1 - q.l;
    if (inner == 0) continue;
    const std::uint64_t base_rank = rank_quad(q);  // + C(m,5) per combination

    if (opts.prefetch_j) {
      const std::uint32_t fixed[4] = {q.i, q.j, q.k, q.l};
      tumor.combine_rows(fixed, scratch.t1);
      normal.combine_rows(fixed, scratch.n1);
      for (std::uint32_t m = q.l + 1; m < genes; ++m) {
        const std::uint64_t tp = and_popcount(scratch.t1, tumor.row(m));
        const std::uint64_t nh = and_popcount(scratch.n1, normal.row(m));
        best.consider(tp, nh, [&] { return base_rank + quintic(m); });
      }
      if (stats) {
        stats->word_ops += 3 * (wt + wn) + inner * (wt + wn);
        stats->global_words += 4 * (wt + wn) + inner * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(q.i);
      std::span<const std::uint64_t> row_ni = normal.row(q.i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t m = q.l + 1; m < genes; ++m) {
        std::uint64_t tp = 0, nh = 0;
        for (std::uint32_t w = 0; w < wt; ++w) {
          tp += static_cast<std::uint64_t>(std::popcount(
              row_ti[w] & tumor.row(q.j)[w] & tumor.row(q.k)[w] & tumor.row(q.l)[w] &
              tumor.row(m)[w]));
        }
        for (std::uint32_t w = 0; w < wn; ++w) {
          nh += static_cast<std::uint64_t>(std::popcount(
              row_ni[w] & normal.row(q.j)[w] & normal.row(q.k)[w] & normal.row(q.l)[w] &
              normal.row(m)[w]));
        }
        best.consider(tp, nh, [&] { return base_rank + quintic(m); });
      }
      if (stats) {
        stats->word_ops += inner * 4 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 4 : 5;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (4 + inner);
    }
  }
  return best.result();
}

// Thread = (i, j, k); inner loops over l, m.
EvalResult eval5_3x2(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  Triple t = begin < end ? unrank_triple(begin) : Triple{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_triple(t)) {
    if (t.k + 2 >= genes) {  // no room for l < m above k
      if (stats) stats->distinct_rows += 2 * 3;
      continue;
    }
    const std::uint64_t base_rank = t.i + triangular(t.j) + tetrahedral(t.k);
    std::uint64_t inner = 0;

    if (opts.prefetch_j) {
      const std::uint32_t fixed[3] = {t.i, t.j, t.k};
      tumor.combine_rows(fixed, scratch.t1);
      normal.combine_rows(fixed, scratch.n1);
      for (std::uint32_t l = t.k + 1; l + 1 < genes; ++l) {
        and_rows(scratch.t2, scratch.t1, tumor.row(l));
        and_rows(scratch.n2, scratch.n1, normal.row(l));
        const std::uint64_t rank_ijkl = base_rank + quartic(l);
        for (std::uint32_t m = l + 1; m < genes; ++m) {
          const std::uint64_t tp = and_popcount(scratch.t2, tumor.row(m));
          const std::uint64_t nh = and_popcount(scratch.n2, normal.row(m));
          best.consider(tp, nh, [&] { return rank_ijkl + quintic(m); });
          ++inner;
        }
      }
      if (stats) {
        const std::uint64_t nl = genes - 2 - t.k;
        stats->word_ops += (2 + nl) * (wt + wn) + inner * (wt + wn);
        stats->global_words += 3 * (wt + wn) + nl * (wt + wn) + inner * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(t.i);
      std::span<const std::uint64_t> row_ni = normal.row(t.i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t l = t.k + 1; l + 1 < genes; ++l) {
        const std::uint64_t rank_ijkl = base_rank + quartic(l);
        for (std::uint32_t m = l + 1; m < genes; ++m) {
          std::uint64_t tp = 0, nh = 0;
          for (std::uint32_t w = 0; w < wt; ++w) {
            tp += static_cast<std::uint64_t>(std::popcount(
                row_ti[w] & tumor.row(t.j)[w] & tumor.row(t.k)[w] & tumor.row(l)[w] &
                tumor.row(m)[w]));
          }
          for (std::uint32_t w = 0; w < wn; ++w) {
            nh += static_cast<std::uint64_t>(std::popcount(
                row_ni[w] & normal.row(t.j)[w] & normal.row(t.k)[w] & normal.row(l)[w] &
                normal.row(m)[w]));
          }
          best.consider(tp, nh, [&] { return rank_ijkl + quintic(m); });
          ++inner;
        }
      }
      if (stats) {
        stats->word_ops += inner * 4 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 4 : 5;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (3 + (genes - 1 - t.k));
    }
  }
  return best.result();
}

}  // namespace

const char* scheme_name(Scheme2 scheme) noexcept {
  switch (scheme) {
    case Scheme2::k1x1:
      return "1x1";
    case Scheme2::k2x1:
      return "2x1";
  }
  return "?";
}

const char* scheme_name(Scheme5 scheme) noexcept {
  switch (scheme) {
    case Scheme5::k3x2:
      return "3x2";
    case Scheme5::k4x1:
      return "4x1";
  }
  return "?";
}

std::uint64_t scheme2_threads(Scheme2 scheme, std::uint32_t genes) noexcept {
  switch (scheme) {
    case Scheme2::k1x1:
      return genes;
    case Scheme2::k2x1:
      return triangular(genes);
  }
  return 0;
}

std::uint64_t scheme5_threads(Scheme5 scheme, std::uint32_t genes) noexcept {
  switch (scheme) {
    case Scheme5::k3x2:
      return tetrahedral(genes);
    case Scheme5::k4x1:
      return quartic(genes);
  }
  return 0;
}

std::uint64_t scheme2_thread_work(Scheme2 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept {
  switch (scheme) {
    case Scheme2::k1x1:
      return genes - 1 - static_cast<std::uint32_t>(lambda);
    case Scheme2::k2x1:
      return 1;
  }
  return 0;
}

std::uint64_t scheme5_thread_work(Scheme5 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept {
  switch (scheme) {
    case Scheme5::k3x2: {
      const std::uint32_t k = tetrahedral_level(lambda);
      return triangular(genes - 1 - k);
    }
    case Scheme5::k4x1: {
      const std::uint32_t l = quartic_level(lambda);
      return genes - 1 - l;
    }
  }
  return 0;
}

EvalResult evaluate_range_2hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme2 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts, KernelStats* stats,
                               Arena* arena) {
  assert(tumor.genes() == normal.genes());
  assert(end <= scheme2_threads(scheme, tumor.genes()));
  switch (scheme) {
    case Scheme2::k1x1:
      return eval2_1x1(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme2::k2x1:
      return eval2_2x1(tumor, normal, ctx, begin, end, stats);
  }
  return {};
}

EvalResult evaluate_range_5hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme5 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts, KernelStats* stats,
                               Arena* arena) {
  assert(tumor.genes() == normal.genes());
  assert(end <= scheme5_threads(scheme, tumor.genes()));
  switch (scheme) {
    case Scheme5::k3x2:
      return eval5_3x2(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme5::k4x1:
      return eval5_4x1(tumor, normal, ctx, begin, end, opts, stats, arena);
  }
  return {};
}

}  // namespace multihit
