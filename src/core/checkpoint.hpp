#pragma once
// Checkpoint/restart for the greedy engine.
//
// Summit allocations are time-boxed — the paper's whole baseline choice
// (100 nodes, §IV-A) exists because smaller runs exceed the 2-hour limit.
// A production deployment therefore needs to stop after N iterations,
// persist the greedy state (selections so far + the spliced tumor matrix),
// and resume in a later allocation. State is a plain-text stream compatible
// with the repository's other formats.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.hpp"

namespace multihit {

struct CheckpointState {
  std::uint32_t hits = 4;
  bool bit_splicing = true;
  GreedyResult progress;  ///< iterations completed so far
  BitMatrix tumor;        ///< tumor matrix after those iterations
};

/// Periodic auto-checkpointing: when `every` > 0 and `sink` is set, a full
/// CheckpointState snapshot is handed to `sink` after every `every`-th
/// committed greedy iteration. This is the recovery substrate for rank
/// crashes and allocation loss: a run resumed from any snapshot replays the
/// remaining iterations bit-identically (the greedy is memoryless given the
/// spliced tumor matrix), so a crash costs only the time since the last
/// snapshot.
struct CheckpointPolicy {
  std::uint32_t every = 0;
  std::function<void(const CheckpointState&)> sink;
};

/// Runs up to `iterations_this_allocation` greedy iterations (0 = to
/// completion) and returns the resumable state. `policy` optionally streams
/// intermediate snapshots (see CheckpointPolicy).
CheckpointState run_greedy_checkpointed(BitMatrix tumor, const BitMatrix& normal,
                                        const EngineConfig& config, const Evaluator& evaluator,
                                        std::uint32_t iterations_this_allocation,
                                        const CheckpointPolicy& policy = {});

/// Continues a checkpointed run for up to `iterations_this_allocation` more
/// iterations (0 = to completion), updating `state` in place. The normal
/// matrix is identical across allocations (it never shrinks).
void resume_greedy(CheckpointState& state, const BitMatrix& normal, const Evaluator& evaluator,
                   std::uint32_t iterations_this_allocation = 0);

/// Serialization ("multihit-checkpoint v2"): plain-text header + sparse bit
/// list, closed by an FNV-1a checksum line over the payload, so truncated or
/// corrupted (bit-flipped) streams are rejected instead of silently
/// misparsing. Throws std::runtime_error on malformed input and
/// std::ios_base::failure on I/O errors.
void write_checkpoint(std::ostream& out, const CheckpointState& state);
CheckpointState read_checkpoint(std::istream& in);
void save_checkpoint(const std::string& path, const CheckpointState& state);
CheckpointState load_checkpoint(const std::string& path);

}  // namespace multihit
