#pragma once
// Checkpoint/restart for the greedy engine.
//
// Summit allocations are time-boxed — the paper's whole baseline choice
// (100 nodes, §IV-A) exists because smaller runs exceed the 2-hour limit.
// A production deployment therefore needs to stop after N iterations,
// persist the greedy state (selections so far + the spliced tumor matrix),
// and resume in a later allocation. State is a plain-text stream compatible
// with the repository's other formats.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.hpp"

namespace multihit {

struct CheckpointState {
  std::uint32_t hits = 4;
  bool bit_splicing = true;
  GreedyResult progress;  ///< iterations completed so far
  BitMatrix tumor;        ///< tumor matrix after those iterations
};

/// Runs up to `iterations_this_allocation` greedy iterations (0 = to
/// completion) and returns the resumable state.
CheckpointState run_greedy_checkpointed(BitMatrix tumor, const BitMatrix& normal,
                                        const EngineConfig& config, const Evaluator& evaluator,
                                        std::uint32_t iterations_this_allocation);

/// Continues a checkpointed run for up to `iterations_this_allocation` more
/// iterations (0 = to completion), updating `state` in place. The normal
/// matrix is identical across allocations (it never shrinks).
void resume_greedy(CheckpointState& state, const BitMatrix& normal, const Evaluator& evaluator,
                   std::uint32_t iterations_this_allocation = 0);

/// Serialization ("multihit-checkpoint v1"). Throws on I/O errors or
/// malformed input.
void write_checkpoint(std::ostream& out, const CheckpointState& state);
CheckpointState read_checkpoint(std::istream& in);
void save_checkpoint(const std::string& path, const CheckpointState& state);
CheckpointState load_checkpoint(const std::string& path);

}  // namespace multihit
