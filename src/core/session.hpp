#pragma once
// The run pipeline behind one analysis, library-ified as a session.
//
// run_greedy() is a batch call: matrices in, selections out, all iterations
// in one blocking loop. A serving layer needs the same pipeline as a
// *resumable object*: admit a job, advance it one greedy iteration at a
// time on whatever slice of the fleet the scheduler grants this round,
// preempt it at an iteration boundary, snapshot it, resume it in a later
// allocation. Engine is that object — it owns the spliced tumor matrix, the
// committed selections, and the uncovered count, and exposes the greedy loop
// as step()/run() increments.
//
// Equivalence contract (pinned by tests/test_engine_session.cpp): any
// interleaving of step() calls — including checkpoint()/resume round trips
// between them — commits exactly the same iteration sequence as one
// run_greedy() call with the same inputs. run_greedy() itself is now a thin
// wrapper over a one-shot session, so there is a single greedy
// implementation for the serial, kernel, host-sweep, and simulated-cluster
// evaluators alike.

#include <cstdint>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"

namespace multihit {

class Engine {
 public:
  /// Opens a session on a private tumor copy. Validates like run_greedy:
  /// throws std::invalid_argument on mismatched gene counts or a hit count
  /// outside [1, genes].
  Engine(BitMatrix tumor, BitMatrix normal, EngineConfig config, Evaluator evaluator);

  /// Reopens a session from a checkpoint snapshot (the session-level resume:
  /// selections so far, the spliced tumor state, and the uncovered count are
  /// all restored; hits/bit_splicing come from the snapshot). `config`
  /// supplies everything the snapshot does not carry (recorder, observer,
  /// f_params, max_iterations).
  Engine(CheckpointState state, BitMatrix normal, EngineConfig config, Evaluator evaluator);

  /// Advances up to `limit` greedy iterations (0 = no per-call cap) and
  /// returns how many were committed. Stops early when the cover completes,
  /// when the best remaining combination covers no tumor sample, or at
  /// config.max_iterations total committed iterations.
  std::uint32_t step(std::uint32_t limit = 1);

  /// Runs to the session's stop condition (step(0)) and returns the result.
  const GreedyResult& run();

  /// True once the session can make no further progress: full coverage or a
  /// best combination covering nothing. Reaching config.max_iterations does
  /// NOT mark the session done — a later caller may still step it.
  bool done() const noexcept { return done_; }

  /// Tumor samples still uncovered.
  std::uint32_t uncovered() const noexcept { return remaining_; }

  std::uint32_t iterations_committed() const noexcept {
    return static_cast<std::uint32_t>(progress_.iterations.size());
  }

  const GreedyResult& result() const noexcept { return progress_; }
  const BitMatrix& tumor() const noexcept { return tumor_; }
  const BitMatrix& normal() const noexcept { return normal_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Resumable snapshot of the session as it stands right now.
  CheckpointState checkpoint() const;

  /// Destructive accessors for the run_greedy wrapper.
  GreedyResult take_result() && { return std::move(progress_); }
  BitMatrix take_tumor() && { return std::move(tumor_); }

 private:
  void validate() const;
  /// Commits one greedy iteration; returns false (and marks done) when the
  /// best remaining combination covers no tumor sample.
  bool commit_one();

  EngineConfig config_;
  Evaluator evaluator_;
  BitMatrix tumor_;
  BitMatrix normal_;
  GreedyResult progress_;
  std::vector<std::uint64_t> covered_;
  std::uint32_t remaining_ = 0;
  bool done_ = false;
};

}  // namespace multihit
