#pragma once
// The paper's four parallelization schemes (§III-A) as range kernels.
//
// A sequential 4-hit scan is four nested loops over i < j < k < l. Flattening
// the outer 1, 2, 3, or 4 loops into a single linear thread id λ yields:
//
//   1x3:  G       threads, thread = i,         inner work C(G-1-i, 3)
//   2x2:  C(G,2)  threads, thread = (i,j),     inner work C(G-1-j, 2)
//   3x1:  C(G,3)  threads, thread = (i,j,k),   inner work G-1-k
//   4x1:  C(G,4)  threads, thread = (i,j,k,l), inner work 1
//
// The paper implements 2x2 and then 3x1 (the winner: enough threads to
// saturate 6000 GPUs, with per-thread workload spread reduced from O(G²) to
// O(G)). All four are implemented here so the scheduler and the ablation
// benches can compare them.
//
// `evaluate_range_*` is the maxF kernel body: it scans threads
// λ ∈ [begin, end) of a scheme, computing F for every combination each
// thread owns on *both* matrices (TP from tumor, TN from normal), and
// returns the best EvalResult. Memory optimizations (§III-D) are selectable
// so their effect can be measured and modeled.

#include <cstdint>

#include "bitmat/bitmatrix.hpp"
#include "core/arena.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"

namespace multihit {

enum class Scheme4 { k1x3, k2x2, k3x1, k4x1 };
enum class Scheme3 { k1x2, k2x1, k3x1 };

/// 2-hit (the original Dash et al. 2019 problem) and 5-hit (the paper's §V
/// next step: each extra hit costs another ~4e5x of compute) schemes,
/// following the same flattening taxonomy.
enum class Scheme2 { k1x1, k2x1 };  ///< thread per i / thread per pair
enum class Scheme5 { k3x2, k4x1 };  ///< thread per triple / per quadruple

/// Human-readable scheme names ("2x2", ...).
const char* scheme_name(Scheme4 scheme) noexcept;
const char* scheme_name(Scheme3 scheme) noexcept;
const char* scheme_name(Scheme2 scheme) noexcept;
const char* scheme_name(Scheme5 scheme) noexcept;

/// §III-D memory optimizations. BitSplicing is engine-level (it mutates the
/// matrix between greedy iterations) and therefore lives in EngineConfig.
struct MemOpts {
  bool prefetch_i = false;  ///< MemOpt1: stage gene-i rows in local memory
  bool prefetch_j = false;  ///< MemOpt2: stage gene-j rows (and fold the
                            ///< fixed-row ANDs) in local memory
};

/// Total thread count of a scheme for G genes. The 5-hit space C(G,5)
/// overflows u64 at G > 18580; scheme5_threads aborts beyond that (use
/// binomial128 to size paper-scale 5-hit spaces).
std::uint64_t scheme4_threads(Scheme4 scheme, std::uint32_t genes) noexcept;
std::uint64_t scheme3_threads(Scheme3 scheme, std::uint32_t genes) noexcept;
std::uint64_t scheme2_threads(Scheme2 scheme, std::uint32_t genes) noexcept;
std::uint64_t scheme5_threads(Scheme5 scheme, std::uint32_t genes) noexcept;

/// Combinations processed by thread λ (the per-thread workload the
/// schedulers balance). λ must be < scheme*_threads().
std::uint64_t scheme4_thread_work(Scheme4 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept;
std::uint64_t scheme3_thread_work(Scheme3 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept;
std::uint64_t scheme2_thread_work(Scheme2 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept;
std::uint64_t scheme5_thread_work(Scheme5 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept;

/// 4-hit maxF kernel over threads [begin, end) of `scheme`. Both matrices
/// must have identical gene counts. `stats`, when non-null, accumulates the
/// operation/traffic counts used by the GPU performance model. `arena`,
/// when non-null, supplies the prefetch scratch (bump-allocated; the caller
/// owns the reset cadence) instead of a per-call heap allocation.
EvalResult evaluate_range_4hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme4 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts = {},
                               KernelStats* stats = nullptr, Arena* arena = nullptr);

/// 3-hit maxF kernel over threads [begin, end) of `scheme`.
EvalResult evaluate_range_3hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme3 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts = {},
                               KernelStats* stats = nullptr, Arena* arena = nullptr);

/// 2-hit maxF kernel. MemOpt2 has no second fixed row to fold at this hit
/// count; prefetch_j is accepted and behaves like prefetch_i.
EvalResult evaluate_range_2hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme2 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts = {},
                               KernelStats* stats = nullptr, Arena* arena = nullptr);

/// 5-hit maxF kernel. Requires C(genes,5) to fit u64 (genes <= 18580).
EvalResult evaluate_range_5hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme5 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts = {},
                               KernelStats* stats = nullptr, Arena* arena = nullptr);

}  // namespace multihit
