#include "core/serial.hpp"

#include <cassert>

#include "combinat/unrank.hpp"

namespace multihit {

EvalResult serial_find_best(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                            std::uint32_t hits) {
  assert(tumor.genes() == normal.genes());
  assert(hits >= 1);
  const std::uint32_t genes = tumor.genes();
  if (genes < hits) return {};

  EvalResult best;
  auto combo = first_combination(hits);
  std::uint64_t lambda = 0;
  do {
    const std::uint64_t tp = tumor.intersect_count(combo);
    const std::uint64_t nh = normal.intersect_count(combo);
    EvalResult candidate;
    candidate.valid = true;
    candidate.f = f_score(ctx, tp, nh);
    candidate.combo_rank = lambda;
    candidate.tp = tp;
    candidate.tn = ctx.normal_total - nh;
    best = merge_results(best, candidate);
    ++lambda;
  } while (next_combination_colex(combo, genes));
  return best;
}

}  // namespace multihit
