#pragma once
// Monotonic word arena for kernel scratch.
//
// Every evaluate_range_* call needs a handful of row-width staging buffers
// (detail::Scratch). Allocating them per call is invisible in a one-shot
// evaluation but becomes the dominant non-kernel cost in the host-threaded
// sweep, where a worker evaluates thousands of small λ chunks per greedy
// iteration. The arena turns that into a bump-pointer: a worker owns one
// Arena, resets it before each chunk (reset is a cursor rewind, not a free),
// and after the first chunk every allocation is served from memory that is
// already hot in that worker's cache.
//
// Not thread-safe by design — one arena per worker is the sharing model.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace multihit {

class Arena {
 public:
  Arena() = default;
  /// Pre-sizes the first block (words). 0 defers until the first allocation.
  explicit Arena(std::size_t initial_words);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Returns `n` words of uninitialized storage, valid until reset() or
  /// destruction. n == 0 returns an empty span.
  std::span<std::uint64_t> alloc_words(std::size_t n);

  /// Rewinds the cursor; existing blocks are kept for reuse, so a
  /// steady-state reset/alloc cycle performs no heap allocation.
  void reset() noexcept;

  /// Total words across all blocks.
  std::size_t capacity_words() const noexcept;

  /// Words handed out since the last reset().
  std::size_t used_words() const noexcept { return used_; }

  /// High-water mark: the largest used_words() ever reached, across resets.
  /// The host profiler reports this as the arena footprint a sweep actually
  /// needed (capacity_words() only says what was provisioned).
  std::size_t peak_words() const noexcept { return peak_; }

  /// Heap blocks ever allocated (a steady-state sweep should see this stop
  /// growing after the first chunk; tests pin that).
  std::uint64_t block_allocations() const noexcept { return block_allocations_; }

 private:
  struct Block {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  Block& grow(std::size_t min_words);

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  ///< index of the block currently being bumped
  std::size_t used_ = 0;
  std::size_t peak_ = 0;  ///< max used_ ever reached (reset() does not clear)
  std::uint64_t block_allocations_ = 0;
};

}  // namespace multihit
