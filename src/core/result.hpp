#pragma once
// Result and accounting types shared by every evaluation path (serial
// reference, scheme kernels, GPU simulator, distributed cluster run).

#include <cstdint>

namespace multihit {

/// The best combination found in some λ range. `combo_rank` is the global
/// colexicographic rank of the h-gene combination (see combinat/unrank.hpp),
/// which doubles as the deterministic tie-breaker: on equal F, the lower
/// rank wins, so every execution order returns an identical winner.
struct EvalResult {
  double f = -1.0;
  std::uint64_t combo_rank = 0;
  std::uint64_t tp = 0;
  std::uint64_t tn = 0;
  bool valid = false;

  /// Strict "is strictly better than" under (F desc, rank asc).
  bool better_than(const EvalResult& other) const noexcept {
    if (!valid) return false;
    if (!other.valid) return true;
    if (f != other.f) return f > other.f;
    return combo_rank < other.combo_rank;
  }
};

/// Merges two partial results (the reduction operator). Associative and
/// commutative, with invalid results as the identity.
inline EvalResult merge_results(const EvalResult& a, const EvalResult& b) noexcept {
  return b.better_than(a) ? b : a;
}

/// Analytic operation/traffic counts for a kernel execution, consumed by the
/// GPU performance model. Counted in units of 64-bit words.
struct KernelStats {
  std::uint64_t combinations = 0;  ///< combinations evaluated
  std::uint64_t word_ops = 0;      ///< bitwise AND+popcount word operations
  std::uint64_t global_words = 0;  ///< words read from (simulated) global memory
  std::uint64_t local_words = 0;   ///< words served from prefetched local memory
  std::uint64_t distinct_rows = 0; ///< distinct matrix rows touched (locality proxy)

  KernelStats& operator+=(const KernelStats& other) noexcept {
    combinations += other.combinations;
    word_ops += other.word_ops;
    global_words += other.global_words;
    local_words += other.local_words;
    distinct_rows += other.distinct_rows;
    return *this;
  }
};

}  // namespace multihit
