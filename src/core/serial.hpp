#pragma once
// Serial reference evaluator: the straightforward O(C(G,h)) scan the paper's
// original CPU implementation performed. Supports any hit count h >= 1 and
// is the correctness oracle every parallel path is pinned to in tests.

#include <cstdint>

#include "bitmat/bitmatrix.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"

namespace multihit {

/// Scans every h-gene combination and returns the best (F desc, rank asc).
/// Requires tumor and normal to have the same gene count and
/// genes >= h >= 1. Returns an invalid result when the combination space is
/// empty.
EvalResult serial_find_best(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                            std::uint32_t hits);

}  // namespace multihit
