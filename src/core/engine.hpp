#pragma once
// The greedy weighted-set-cover driver (paper §II-B):
//
//   repeat until every tumor sample is covered:
//     1. enumerate all h-hit combinations and compute F
//     2. take the combination with maximum F
//     3. exclude the tumor samples it covers
//
// Step 1-2 is delegated to an Evaluator so the same engine drives the serial
// reference, a single simulated GPU, or a full simulated cluster. Step 3 is
// BitSplicing (§III-D) by default: covered sample columns are physically
// compacted out of the tumor matrix so later iterations do linearly less
// word work. The ablation mode instead zeroes covered columns in place,
// which is result-identical but keeps the matrix width — exactly the cost
// the paper's optimization removes.

#include <cstdint>
#include <functional>
#include <vector>

#include "bitmat/bitmatrix.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"

namespace multihit::obs {
struct Recorder;
}  // namespace multihit::obs

namespace multihit {

/// Finds the best combination in the *current* tumor matrix (samples shrink
/// or zero out as the greedy progresses; the normal matrix is fixed).
using Evaluator =
    std::function<EvalResult(const BitMatrix& tumor, const BitMatrix& normal, const FContext&)>;

struct IterationRecord;

/// Observes each committed greedy iteration: the chosen record, the tumor
/// matrix *after* the exclusion step, and the uncovered sample count. This
/// is the hook periodic checkpointing and the cluster's fault-recovery
/// accounting attach to.
using IterationObserver =
    std::function<void(const IterationRecord&, const BitMatrix& tumor, std::uint32_t remaining)>;

struct EngineConfig {
  std::uint32_t hits = 4;
  FParams f_params;
  /// true: compact covered columns (the paper's BitSplicing);
  /// false: zero covered columns in place (ablation baseline).
  bool bit_splicing = true;
  /// 0 = run until all tumor samples are covered (or no combination covers
  /// any remaining sample); otherwise stop after this many combinations.
  std::uint32_t max_iterations = 0;
  /// Optional per-iteration observer (see IterationObserver). Called after
  /// the iteration is committed; must not mutate engine state.
  IterationObserver on_iteration;
  /// Optional observability recorder: each committed iteration lands a span
  /// on the engine lane plus engine.* counters. Null keeps the run untouched.
  obs::Recorder* recorder = nullptr;
  /// Simulated-clock source for iteration span timestamps. The cluster driver
  /// wires this to the communicator's finish_time(); when unset with a
  /// recorder attached, the iteration index serves as a pseudo-clock so spans
  /// stay monotone in serial runs.
  std::function<double()> sim_clock;
};

struct IterationRecord {
  std::vector<std::uint32_t> genes;  ///< the chosen combination, sorted
  double f = 0.0;
  std::uint64_t tp = 0;  ///< tumor samples newly covered
  std::uint64_t tn = 0;
  std::uint32_t tumor_remaining_before = 0;
  std::uint32_t tumor_remaining_after = 0;
};

struct GreedyResult {
  std::vector<IterationRecord> iterations;
  std::uint32_t uncovered_tumor = 0;  ///< samples still uncovered at stop

  /// Just the gene sets, in selection order.
  std::vector<std::vector<std::uint32_t>> combinations() const;
};

/// Runs the greedy cover. Matrices are taken by value: the engine consumes a
/// private tumor copy it can splice. Stops when coverage is complete, when
/// the best remaining combination covers zero tumor samples, or at the
/// iteration cap. When `final_tumor` is non-null it receives the tumor
/// matrix state at stop (the input for a checkpointed resume).
GreedyResult run_greedy(BitMatrix tumor, const BitMatrix& normal, const EngineConfig& config,
                        const Evaluator& evaluator, BitMatrix* final_tumor = nullptr);

/// Evaluator backed by the serial reference scan (any h >= 1).
Evaluator make_serial_evaluator(std::uint32_t hits);

/// Evaluator backed by the best full-range enumeration kernel for the hit
/// count (2 -> 1x1, 3 -> 2x1, 4 -> 3x1, 5 -> 4x1 — the paper's "flatten all
/// but the innermost loop" winners), with both prefetch optimizations on.
/// Falls back to the serial scan for other hit counts.
Evaluator make_kernel_evaluator(std::uint32_t hits);

}  // namespace multihit
