#pragma once
// Shared internals of the enumeration kernels (core/schemes*.cpp only).

#include <cstdint>
#include <span>
#include <vector>

#include "combinat/linearize.hpp"
#include "core/arena.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"

namespace multihit::detail {

// Best-so-far tracker. F values are computed by the identical expression on
// every path, so exact == comparison on doubles is sound here, and the
// (F desc, rank asc) order makes every execution return the same winner.
class BestTracker {
 public:
  explicit BestTracker(const FContext& ctx) : ctx_(ctx) {}

  template <typename RankFn>
  void consider(std::uint64_t tp, std::uint64_t normal_hits, RankFn&& rank) noexcept {
    const double f = f_score(ctx_, tp, normal_hits);
    if (best_.valid) {
      if (f < best_.f) return;
      if (f == best_.f) {
        const std::uint64_t r = rank();
        if (r >= best_.combo_rank) return;
        best_.combo_rank = r;
        best_.tp = tp;
        best_.tn = ctx_.normal_total - normal_hits;
        return;
      }
    }
    best_.valid = true;
    best_.f = f;
    best_.combo_rank = rank();
    best_.tp = tp;
    best_.tn = ctx_.normal_total - normal_hits;
  }

  EvalResult result() const noexcept { return best_; }

 private:
  FContext ctx_;
  EvalResult best_;
};

// Scratch buffers for prefetch staging, one pair per nesting depth. With an
// arena, buffers are bump-allocated (the caller owns the reset cadence — the
// host sweep resets per chunk, the device model per launch); without one the
// scratch self-owns a single heap block, preserving the old behavior.
struct Scratch {
  Scratch(std::uint32_t tumor_words, std::uint32_t normal_words, Arena* arena = nullptr) {
    const std::size_t total =
        3 * (static_cast<std::size_t>(tumor_words) + static_cast<std::size_t>(normal_words));
    std::span<std::uint64_t> block;
    if (arena != nullptr) {
      block = arena->alloc_words(total);
    } else {
      own_.resize(total);
      block = own_;
    }
    t1 = block.subspan(0, tumor_words);
    t2 = block.subspan(tumor_words, tumor_words);
    t3 = block.subspan(2 * static_cast<std::size_t>(tumor_words), tumor_words);
    const std::size_t n0 = 3 * static_cast<std::size_t>(tumor_words);
    n1 = block.subspan(n0, normal_words);
    n2 = block.subspan(n0 + normal_words, normal_words);
    n3 = block.subspan(n0 + 2 * static_cast<std::size_t>(normal_words), normal_words);
  }

  std::span<std::uint64_t> t1, t2, t3;
  std::span<std::uint64_t> n1, n2, n3;

 private:
  std::vector<std::uint64_t> own_;
};

// Colex successor of a pair (i < j).
inline void advance_pair(Pair& p) noexcept {
  if (p.i + 1 < p.j) {
    ++p.i;
  } else {
    ++p.j;
    p.i = 0;
  }
}

// Colex successor of a triple (i < j < k).
inline void advance_triple(Triple& t) noexcept {
  if (t.i + 1 < t.j) {
    ++t.i;
  } else if (t.j + 1 < t.k) {
    ++t.j;
    t.i = 0;
  } else {
    ++t.k;
    t.j = 1;
    t.i = 0;
  }
}

// Colex successor of a quadruple (i < j < k < l).
inline void advance_quad(Quad& q) noexcept {
  if (q.i + 1 < q.j) {
    ++q.i;
  } else if (q.j + 1 < q.k) {
    ++q.j;
    q.i = 0;
  } else if (q.k + 1 < q.l) {
    ++q.k;
    q.j = 1;
    q.i = 0;
  } else {
    ++q.l;
    q.k = 2;
    q.j = 1;
    q.i = 0;
  }
}

}  // namespace multihit::detail
