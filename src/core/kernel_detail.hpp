#pragma once
// Shared internals of the enumeration kernels (core/schemes*.cpp only).

#include <cstdint>
#include <vector>

#include "combinat/linearize.hpp"
#include "core/fscore.hpp"
#include "core/result.hpp"

namespace multihit::detail {

// Best-so-far tracker. F values are computed by the identical expression on
// every path, so exact == comparison on doubles is sound here, and the
// (F desc, rank asc) order makes every execution return the same winner.
class BestTracker {
 public:
  explicit BestTracker(const FContext& ctx) : ctx_(ctx) {}

  template <typename RankFn>
  void consider(std::uint64_t tp, std::uint64_t normal_hits, RankFn&& rank) noexcept {
    const double f = f_score(ctx_, tp, normal_hits);
    if (best_.valid) {
      if (f < best_.f) return;
      if (f == best_.f) {
        const std::uint64_t r = rank();
        if (r >= best_.combo_rank) return;
        best_.combo_rank = r;
        best_.tp = tp;
        best_.tn = ctx_.normal_total - normal_hits;
        return;
      }
    }
    best_.valid = true;
    best_.f = f;
    best_.combo_rank = rank();
    best_.tp = tp;
    best_.tn = ctx_.normal_total - normal_hits;
  }

  EvalResult result() const noexcept { return best_; }

 private:
  FContext ctx_;
  EvalResult best_;
};

// Scratch buffers for prefetch staging, one pair per nesting depth.
struct Scratch {
  Scratch(std::uint32_t tumor_words, std::uint32_t normal_words)
      : t1(tumor_words), t2(tumor_words), t3(tumor_words),
        n1(normal_words), n2(normal_words), n3(normal_words) {}
  std::vector<std::uint64_t> t1, t2, t3;
  std::vector<std::uint64_t> n1, n2, n3;
};

// Colex successor of a pair (i < j).
inline void advance_pair(Pair& p) noexcept {
  if (p.i + 1 < p.j) {
    ++p.i;
  } else {
    ++p.j;
    p.i = 0;
  }
}

// Colex successor of a triple (i < j < k).
inline void advance_triple(Triple& t) noexcept {
  if (t.i + 1 < t.j) {
    ++t.i;
  } else if (t.j + 1 < t.k) {
    ++t.j;
    t.i = 0;
  } else {
    ++t.k;
    t.j = 1;
    t.i = 0;
  }
}

// Colex successor of a quadruple (i < j < k < l).
inline void advance_quad(Quad& q) noexcept {
  if (q.i + 1 < q.j) {
    ++q.i;
  } else if (q.j + 1 < q.k) {
    ++q.j;
    q.i = 0;
  } else if (q.k + 1 < q.l) {
    ++q.k;
    q.j = 1;
    q.i = 0;
  } else {
    ++q.l;
    q.k = 2;
    q.j = 1;
    q.i = 0;
  }
}

}  // namespace multihit::detail
