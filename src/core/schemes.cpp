#include "core/schemes.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <vector>

#include "combinat/linearize.hpp"
#include "combinat/unrank.hpp"
#include "core/kernel_detail.hpp"

namespace multihit {

namespace {

using detail::BestTracker;
using detail::Scratch;
using detail::advance_pair;
using detail::advance_triple;

// ---------------------------------------------------------------------------
// 4-hit kernels
// ---------------------------------------------------------------------------

// Thread = (i, j, k); inner loop over l (the paper's Algorithm 3).
EvalResult eval4_3x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  Triple t = begin < end ? unrank_triple(begin) : Triple{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_triple(t)) {
    const std::uint64_t inner = genes - 1 - t.k;  // combinations this thread owns
    if (inner == 0) continue;
    const std::uint64_t base_rank =
        t.i + triangular(t.j) + tetrahedral(t.k);  // + C(l,4) per combination

    if (opts.prefetch_j) {
      // Stage the fixed rows fully combined: pre = row(i) & row(j) & row(k).
      const std::uint32_t fixed[3] = {t.i, t.j, t.k};
      tumor.combine_rows(fixed, scratch.t1);
      normal.combine_rows(fixed, scratch.n1);
      for (std::uint32_t l = t.k + 1; l < genes; ++l) {
        const std::uint64_t tp = and_popcount(scratch.t1, tumor.row(l));
        const std::uint64_t nh = and_popcount(scratch.n1, normal.row(l));
        best.consider(tp, nh, [&] { return base_rank + quartic(l); });
      }
      if (stats) {
        stats->word_ops += 2 * (wt + wn) + inner * (wt + wn);
        stats->global_words += 3 * (wt + wn) + inner * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      // Optionally stage only row(i) locally (MemOpt1); the AND count is
      // unchanged but the global traffic per combination drops by one row.
      std::span<const std::uint64_t> row_ti = tumor.row(t.i);
      std::span<const std::uint64_t> row_ni = normal.row(t.i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t l = t.k + 1; l < genes; ++l) {
        const std::uint64_t tp = and_popcount(row_ti, tumor.row(t.j), tumor.row(t.k),
                                              tumor.row(l));
        const std::uint64_t nh = and_popcount(row_ni, normal.row(t.j), normal.row(t.k),
                                              normal.row(l));
        best.consider(tp, nh, [&] { return base_rank + quartic(l); });
      }
      if (stats) {
        stats->word_ops += inner * 3 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 3 : 4;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (3 + inner);
    }
  }
  return best.result();
}

// Thread = (i, j); inner loops over k, l (the paper's Algorithm 2).
EvalResult eval4_2x2(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  Pair p = begin < end ? unrank_pair(begin) : Pair{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_pair(p)) {
    if (p.j + 2 >= genes) {  // no room for k < l above j
      if (stats) stats->distinct_rows += 2 * 2;
      continue;
    }
    const std::uint64_t base_rank = p.i + triangular(p.j);
    std::uint64_t inner = 0;

    if (opts.prefetch_j) {
      // Stage pre_ij once, then pre_ijk per k; the innermost loop is a
      // single AND against row(l).
      and_rows(scratch.t1, tumor.row(p.i), tumor.row(p.j));
      and_rows(scratch.n1, normal.row(p.i), normal.row(p.j));
      for (std::uint32_t k = p.j + 1; k + 1 < genes; ++k) {
        and_rows(scratch.t2, scratch.t1, tumor.row(k));
        and_rows(scratch.n2, scratch.n1, normal.row(k));
        const std::uint64_t rank_ijk = base_rank + tetrahedral(k);
        for (std::uint32_t l = k + 1; l < genes; ++l) {
          const std::uint64_t tp = and_popcount(scratch.t2, tumor.row(l));
          const std::uint64_t nh = and_popcount(scratch.n2, normal.row(l));
          best.consider(tp, nh, [&] { return rank_ijk + quartic(l); });
          ++inner;
        }
      }
      if (stats) {
        const std::uint64_t nk = genes - 2 - p.j;
        stats->word_ops += (1 + nk) * (wt + wn) + inner * (wt + wn);
        stats->global_words += 2 * (wt + wn) + nk * (wt + wn) + inner * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(p.i);
      std::span<const std::uint64_t> row_ni = normal.row(p.i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t k = p.j + 1; k + 1 < genes; ++k) {
        const std::uint64_t rank_ijk = base_rank + tetrahedral(k);
        for (std::uint32_t l = k + 1; l < genes; ++l) {
          const std::uint64_t tp =
              and_popcount(row_ti, tumor.row(p.j), tumor.row(k), tumor.row(l));
          const std::uint64_t nh =
              and_popcount(row_ni, normal.row(p.j), normal.row(k), normal.row(l));
          best.consider(tp, nh, [&] { return rank_ijk + quartic(l); });
          ++inner;
        }
      }
      if (stats) {
        stats->word_ops += inner * 3 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 3 : 4;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (2 + (genes - 1 - p.j));
    }
  }
  return best.result();
}

// Thread = i; inner loops over j, k, l.
EvalResult eval4_1x3(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
    const auto i = static_cast<std::uint32_t>(lambda);
    std::uint64_t inner = 0;
    if (opts.prefetch_j) {
      // Stage progressively: pre_ij per j, pre_ijk per k, 1 AND per l.
      std::uint64_t nj = 0, nk = 0;
      for (std::uint32_t j = i + 1; j + 2 < genes; ++j) {
        and_rows(scratch.t1, tumor.row(i), tumor.row(j));
        and_rows(scratch.n1, normal.row(i), normal.row(j));
        ++nj;
        for (std::uint32_t k = j + 1; k + 1 < genes; ++k) {
          and_rows(scratch.t2, scratch.t1, tumor.row(k));
          and_rows(scratch.n2, scratch.n1, normal.row(k));
          ++nk;
          const std::uint64_t rank_ijk = i + triangular(j) + tetrahedral(k);
          for (std::uint32_t l = k + 1; l < genes; ++l) {
            const std::uint64_t tp = and_popcount(scratch.t2, tumor.row(l));
            const std::uint64_t nh = and_popcount(scratch.n2, normal.row(l));
            best.consider(tp, nh, [&] { return rank_ijk + quartic(l); });
            ++inner;
          }
        }
      }
      if (stats) {
        stats->word_ops += (nj + nk + inner) * (wt + wn);
        stats->global_words += (1 + nj + nk + inner) * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(i);
      std::span<const std::uint64_t> row_ni = normal.row(i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t j = i + 1; j + 2 < genes; ++j) {
        for (std::uint32_t k = j + 1; k + 1 < genes; ++k) {
          const std::uint64_t rank_ijk = i + triangular(j) + tetrahedral(k);
          for (std::uint32_t l = k + 1; l < genes; ++l) {
            const std::uint64_t tp =
                and_popcount(row_ti, tumor.row(j), tumor.row(k), tumor.row(l));
            const std::uint64_t nh =
                and_popcount(row_ni, normal.row(j), normal.row(k), normal.row(l));
            best.consider(tp, nh, [&] { return rank_ijk + quartic(l); });
            ++inner;
          }
        }
      }
      if (stats) {
        stats->word_ops += inner * 3 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 3 : 4;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (genes - i);
    }
  }
  return best.result();
}

// Thread = one combination (i, j, k, l).
EvalResult eval4_4x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, KernelStats* stats) {
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);

  std::array<std::uint32_t, 4> combo{};
  if (begin < end) {
    const auto first = unrank_combination(begin, 4);
    std::copy(first.begin(), first.end(), combo.begin());
  }
  for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
    const std::uint64_t tp = and_popcount(tumor.row(combo[0]), tumor.row(combo[1]),
                                          tumor.row(combo[2]), tumor.row(combo[3]));
    const std::uint64_t nh = and_popcount(normal.row(combo[0]), normal.row(combo[1]),
                                          normal.row(combo[2]), normal.row(combo[3]));
    best.consider(tp, nh, [&] { return lambda; });
    next_combination_colex(combo, tumor.genes());
  }
  if (stats && end > begin) {
    const std::uint64_t n = end - begin;
    stats->combinations += n;
    stats->word_ops += n * 3 * (wt + wn);
    stats->global_words += n * 4 * (wt + wn);
    stats->distinct_rows += n * 8;
  }
  return best.result();
}

// ---------------------------------------------------------------------------
// 3-hit kernels
// ---------------------------------------------------------------------------

// Thread = (i, j); inner loop over k (the paper's Algorithm 1).
EvalResult eval3_2x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  Pair p = begin < end ? unrank_pair(begin) : Pair{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_pair(p)) {
    const std::uint64_t inner = genes - 1 - p.j;
    if (inner == 0) {
      if (stats) stats->distinct_rows += 2 * 2;
      continue;
    }
    const std::uint64_t base_rank = p.i + triangular(p.j);

    if (opts.prefetch_j) {
      and_rows(scratch.t1, tumor.row(p.i), tumor.row(p.j));
      and_rows(scratch.n1, normal.row(p.i), normal.row(p.j));
      for (std::uint32_t k = p.j + 1; k < genes; ++k) {
        const std::uint64_t tp = and_popcount(scratch.t1, tumor.row(k));
        const std::uint64_t nh = and_popcount(scratch.n1, normal.row(k));
        best.consider(tp, nh, [&] { return base_rank + tetrahedral(k); });
      }
      if (stats) {
        stats->word_ops += (1 + inner) * (wt + wn);
        stats->global_words += 2 * (wt + wn) + inner * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(p.i);
      std::span<const std::uint64_t> row_ni = normal.row(p.i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t k = p.j + 1; k < genes; ++k) {
        const std::uint64_t tp = and_popcount(row_ti, tumor.row(p.j), tumor.row(k));
        const std::uint64_t nh = and_popcount(row_ni, normal.row(p.j), normal.row(k));
        best.consider(tp, nh, [&] { return base_rank + tetrahedral(k); });
      }
      if (stats) {
        stats->word_ops += inner * 2 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 2 : 3;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (2 + inner);
    }
  }
  return best.result();
}

// Thread = i; inner loops over j, k.
EvalResult eval3_1x2(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, const MemOpts& opts,
                     KernelStats* stats, Arena* arena) {
  const std::uint32_t genes = tumor.genes();
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);
  Scratch scratch(tumor.words_per_row(), normal.words_per_row(), arena);

  for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
    const auto i = static_cast<std::uint32_t>(lambda);
    std::uint64_t inner = 0, nj = 0;
    if (opts.prefetch_j) {
      for (std::uint32_t j = i + 1; j + 1 < genes; ++j) {
        and_rows(scratch.t1, tumor.row(i), tumor.row(j));
        and_rows(scratch.n1, normal.row(i), normal.row(j));
        ++nj;
        const std::uint64_t base_rank = i + triangular(j);
        for (std::uint32_t k = j + 1; k < genes; ++k) {
          const std::uint64_t tp = and_popcount(scratch.t1, tumor.row(k));
          const std::uint64_t nh = and_popcount(scratch.n1, normal.row(k));
          best.consider(tp, nh, [&] { return base_rank + tetrahedral(k); });
          ++inner;
        }
      }
      if (stats) {
        stats->word_ops += (nj + inner) * (wt + wn);
        stats->global_words += (1 + nj + inner) * (wt + wn);
        stats->local_words += inner * (wt + wn);
      }
    } else {
      std::span<const std::uint64_t> row_ti = tumor.row(i);
      std::span<const std::uint64_t> row_ni = normal.row(i);
      if (opts.prefetch_i) {
        std::copy(row_ti.begin(), row_ti.end(), scratch.t1.begin());
        std::copy(row_ni.begin(), row_ni.end(), scratch.n1.begin());
        row_ti = scratch.t1;
        row_ni = scratch.n1;
      }
      for (std::uint32_t j = i + 1; j + 1 < genes; ++j) {
        const std::uint64_t base_rank = i + triangular(j);
        for (std::uint32_t k = j + 1; k < genes; ++k) {
          const std::uint64_t tp = and_popcount(row_ti, tumor.row(j), tumor.row(k));
          const std::uint64_t nh = and_popcount(row_ni, normal.row(j), normal.row(k));
          best.consider(tp, nh, [&] { return base_rank + tetrahedral(k); });
          ++inner;
        }
      }
      if (stats) {
        stats->word_ops += inner * 2 * (wt + wn);
        const std::uint64_t global_rows_per_combo = opts.prefetch_i ? 2 : 3;
        stats->global_words += (opts.prefetch_i ? (wt + wn) : 0) +
                               inner * global_rows_per_combo * (wt + wn);
        stats->local_words += opts.prefetch_i ? inner * (wt + wn) : 0;
      }
    }
    if (stats) {
      stats->combinations += inner;
      stats->distinct_rows += 2 * (genes - i);
    }
  }
  return best.result();
}

// Thread = one triple.
EvalResult eval3_3x1(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                     std::uint64_t begin, std::uint64_t end, KernelStats* stats) {
  const std::uint64_t wt = tumor.words_per_row();
  const std::uint64_t wn = normal.words_per_row();
  BestTracker best(ctx);

  Triple t = begin < end ? unrank_triple(begin) : Triple{};
  for (std::uint64_t lambda = begin; lambda < end; ++lambda, advance_triple(t)) {
    const std::uint64_t tp = and_popcount(tumor.row(t.i), tumor.row(t.j), tumor.row(t.k));
    const std::uint64_t nh = and_popcount(normal.row(t.i), normal.row(t.j), normal.row(t.k));
    best.consider(tp, nh, [&] { return lambda; });
  }
  if (stats && end > begin) {
    const std::uint64_t n = end - begin;
    stats->combinations += n;
    stats->word_ops += n * 2 * (wt + wn);
    stats->global_words += n * 3 * (wt + wn);
    stats->distinct_rows += n * 6;
  }
  return best.result();
}

}  // namespace

const char* scheme_name(Scheme4 scheme) noexcept {
  switch (scheme) {
    case Scheme4::k1x3:
      return "1x3";
    case Scheme4::k2x2:
      return "2x2";
    case Scheme4::k3x1:
      return "3x1";
    case Scheme4::k4x1:
      return "4x1";
  }
  return "?";
}

const char* scheme_name(Scheme3 scheme) noexcept {
  switch (scheme) {
    case Scheme3::k1x2:
      return "1x2";
    case Scheme3::k2x1:
      return "2x1";
    case Scheme3::k3x1:
      return "3x1";
  }
  return "?";
}

std::uint64_t scheme4_threads(Scheme4 scheme, std::uint32_t genes) noexcept {
  switch (scheme) {
    case Scheme4::k1x3:
      return genes;
    case Scheme4::k2x2:
      return triangular(genes);
    case Scheme4::k3x1:
      return tetrahedral(genes);
    case Scheme4::k4x1:
      return quartic(genes);
  }
  return 0;
}

std::uint64_t scheme3_threads(Scheme3 scheme, std::uint32_t genes) noexcept {
  switch (scheme) {
    case Scheme3::k1x2:
      return genes;
    case Scheme3::k2x1:
      return triangular(genes);
    case Scheme3::k3x1:
      return tetrahedral(genes);
  }
  return 0;
}

std::uint64_t scheme4_thread_work(Scheme4 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept {
  switch (scheme) {
    case Scheme4::k1x3: {
      const auto i = static_cast<std::uint32_t>(lambda);
      return tetrahedral(genes - 1 - i);  // 0 whenever fewer than 3 genes remain above i
    }
    case Scheme4::k2x2: {
      const Pair p = unrank_pair(lambda);
      return p.j + 1 < genes ? triangular(genes - 1 - p.j) : 0;
    }
    case Scheme4::k3x1: {
      const std::uint32_t k = tetrahedral_level(lambda);
      return genes - 1 - k;
    }
    case Scheme4::k4x1:
      return 1;
  }
  return 0;
}

std::uint64_t scheme3_thread_work(Scheme3 scheme, std::uint32_t genes,
                                  std::uint64_t lambda) noexcept {
  switch (scheme) {
    case Scheme3::k1x2: {
      const auto i = static_cast<std::uint32_t>(lambda);
      return triangular(genes - 1 - i);
    }
    case Scheme3::k2x1: {
      const Pair p = unrank_pair(lambda);
      return genes - 1 - p.j;
    }
    case Scheme3::k3x1:
      return 1;
  }
  return 0;
}

EvalResult evaluate_range_4hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme4 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts, KernelStats* stats,
                               Arena* arena) {
  assert(tumor.genes() == normal.genes());
  assert(end <= scheme4_threads(scheme, tumor.genes()));
  switch (scheme) {
    case Scheme4::k1x3:
      return eval4_1x3(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme4::k2x2:
      return eval4_2x2(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme4::k3x1:
      return eval4_3x1(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme4::k4x1:
      return eval4_4x1(tumor, normal, ctx, begin, end, stats);
  }
  return {};
}

EvalResult evaluate_range_3hit(const BitMatrix& tumor, const BitMatrix& normal,
                               const FContext& ctx, Scheme3 scheme, std::uint64_t begin,
                               std::uint64_t end, const MemOpts& opts, KernelStats* stats,
                               Arena* arena) {
  assert(tumor.genes() == normal.genes());
  assert(end <= scheme3_threads(scheme, tumor.genes()));
  switch (scheme) {
    case Scheme3::k1x2:
      return eval3_1x2(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme3::k2x1:
      return eval3_2x1(tumor, normal, ctx, begin, end, opts, stats, arena);
    case Scheme3::k3x1:
      return eval3_3x1(tumor, normal, ctx, begin, end, stats);
  }
  return {};
}

}  // namespace multihit
