#include "core/hostsweep.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "core/workqueue.hpp"

namespace multihit {

namespace {

/// One per-chunk winner, tagged with the chunk's begin λ for the
/// deterministic index-ordered fold.
struct Candidate {
  std::uint64_t chunk_begin = 0;
  EvalResult result;
};

/// Everything one worker produces; padded out by vector element granularity,
/// written only by its owner until join.
struct WorkerOutput {
  std::vector<Candidate> candidates;
  KernelStats stats;
  std::uint64_t chunks = 0;
  std::uint64_t arena_blocks = 0;
};

std::uint64_t total_threads(const HostSweepOptions& options, std::uint32_t genes) {
  switch (options.hits) {
    case 2:
      return scheme2_threads(options.scheme2, genes);
    case 3:
      return scheme3_threads(options.scheme3, genes);
    case 4:
      return scheme4_threads(options.scheme4, genes);
    case 5:
      return scheme5_threads(options.scheme5, genes);
    default:
      throw std::invalid_argument("host sweep: hits must be in [2, 5]");
  }
}

EvalResult evaluate_chunk(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                          const HostSweepOptions& options, std::uint64_t begin,
                          std::uint64_t end, KernelStats* stats, Arena* arena) {
  switch (options.hits) {
    case 2:
      return evaluate_range_2hit(tumor, normal, ctx, options.scheme2, begin, end,
                                 options.mem_opts, stats, arena);
    case 3:
      return evaluate_range_3hit(tumor, normal, ctx, options.scheme3, begin, end,
                                 options.mem_opts, stats, arena);
    case 4:
      return evaluate_range_4hit(tumor, normal, ctx, options.scheme4, begin, end,
                                 options.mem_opts, stats, arena);
    case 5:
      return evaluate_range_5hit(tumor, normal, ctx, options.scheme5, begin, end,
                                 options.mem_opts, stats, arena);
    default:
      // total_threads() already rejected every hit count outside [2, 5]; a
      // bare default routing here to the 5-hit kernel once silently scored
      // the wrong combination space. Keep the guard loud.
      throw std::logic_error("host sweep: evaluate_chunk reached with hits outside [2, 5]");
  }
}

}  // namespace

EvalResult host_sweep_find_best(const BitMatrix& tumor, const BitMatrix& normal,
                                const FContext& ctx, const HostSweepOptions& options,
                                HostSweepTelemetry* telemetry) {
  if (tumor.genes() != normal.genes()) {
    throw std::invalid_argument("host sweep: tumor/normal gene counts differ");
  }
  const std::uint64_t lambda_end = total_threads(options, tumor.genes());

  std::uint32_t workers = options.threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t requested = workers;
  // No point spinning up more workers than there are chunks. An empty λ
  // space (0 chunks, e.g. genes < hits at some scheme) still runs one
  // worker, which drains nothing and leaves the result invalid.
  ChunkQueue queue(0, lambda_end, options.chunk);
  workers = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(workers, std::max<std::uint64_t>(1, queue.chunk_count())));

  std::vector<WorkerOutput> outputs(workers);
  const auto worker_body = [&](std::uint32_t id) {
    WorkerOutput& out = outputs[id];
    Arena arena;
    std::uint64_t begin = 0, end = 0;
    while (queue.next(&begin, &end)) {
      // The arena reset makes every chunk's Scratch land on the same warm
      // block — per-chunk allocation drops to zero after the first grab.
      arena.reset();
      const EvalResult best =
          evaluate_chunk(tumor, normal, ctx, options, begin, end, &out.stats, &arena);
      ++out.chunks;
      if (best.valid) out.candidates.push_back({begin, best});
    }
    out.arena_blocks = arena.block_allocations();
  };

  if (workers <= 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t id = 0; id < workers; ++id) pool.emplace_back(worker_body, id);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic merge: concatenate per-worker candidate lists, order by
  // chunk-begin λ (chunks are disjoint, so the key is unique), fold with
  // merge_results. The sort makes the fold order independent of which worker
  // happened to grab which chunk; merge_results' total order already makes
  // the *result* order-independent — both layers are pinned by tests.
  std::vector<Candidate> merged;
  for (const WorkerOutput& out : outputs) {
    merged.insert(merged.end(), out.candidates.begin(), out.candidates.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) { return a.chunk_begin < b.chunk_begin; });
  EvalResult best;
  for (const Candidate& candidate : merged) best = merge_results(best, candidate.result);

  if (telemetry != nullptr) {
    telemetry->threads = workers;
    telemetry->threads_requested = requested;
    telemetry->chunk_size = options.chunk;
    telemetry->candidates = static_cast<std::uint64_t>(merged.size());
    telemetry->chunks = 0;
    telemetry->arena_blocks = 0;
    telemetry->stats = {};
    for (const WorkerOutput& out : outputs) {
      telemetry->chunks += out.chunks;
      telemetry->arena_blocks += out.arena_blocks;
      telemetry->stats += out.stats;
    }
  }
  return best;
}

Evaluator make_host_sweep_evaluator(HostSweepOptions options,
                                    HostSweepTelemetry* telemetry_sink) {
  return [options, telemetry_sink](const BitMatrix& tumor, const BitMatrix& normal,
                                   const FContext& ctx) {
    HostSweepTelemetry sweep;
    const EvalResult best = host_sweep_find_best(tumor, normal, ctx, options,
                                                 telemetry_sink ? &sweep : nullptr);
    if (telemetry_sink) *telemetry_sink += sweep;
    return best;
  };
}

}  // namespace multihit
