#include "core/hostsweep.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bitmat/bitops.hpp"
#include "core/arena.hpp"
#include "core/workqueue.hpp"
#include "obs/hostprof.hpp"

namespace multihit {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

const char* sweep_scheme_name(const HostSweepOptions& options) {
  switch (options.hits) {
    case 2:
      return scheme_name(options.scheme2);
    case 3:
      return scheme_name(options.scheme3);
    case 5:
      return scheme_name(options.scheme5);
    default:
      return scheme_name(options.scheme4);
  }
}

/// One per-chunk winner, tagged with the chunk's begin λ for the
/// deterministic index-ordered fold.
struct Candidate {
  std::uint64_t chunk_begin = 0;
  EvalResult result;
};

/// Everything one worker produces; padded out by vector element granularity,
/// written only by its owner until join.
struct WorkerOutput {
  std::vector<Candidate> candidates;
  KernelStats stats;
  std::uint64_t chunks = 0;
  std::uint64_t arena_blocks = 0;
};

std::uint64_t total_threads(const HostSweepOptions& options, std::uint32_t genes) {
  switch (options.hits) {
    case 2:
      return scheme2_threads(options.scheme2, genes);
    case 3:
      return scheme3_threads(options.scheme3, genes);
    case 4:
      return scheme4_threads(options.scheme4, genes);
    case 5:
      return scheme5_threads(options.scheme5, genes);
    default:
      throw std::invalid_argument("host sweep: hits must be in [2, 5]");
  }
}

EvalResult evaluate_chunk(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                          const HostSweepOptions& options, std::uint64_t begin,
                          std::uint64_t end, KernelStats* stats, Arena* arena) {
  switch (options.hits) {
    case 2:
      return evaluate_range_2hit(tumor, normal, ctx, options.scheme2, begin, end,
                                 options.mem_opts, stats, arena);
    case 3:
      return evaluate_range_3hit(tumor, normal, ctx, options.scheme3, begin, end,
                                 options.mem_opts, stats, arena);
    case 4:
      return evaluate_range_4hit(tumor, normal, ctx, options.scheme4, begin, end,
                                 options.mem_opts, stats, arena);
    case 5:
      return evaluate_range_5hit(tumor, normal, ctx, options.scheme5, begin, end,
                                 options.mem_opts, stats, arena);
    default:
      // total_threads() already rejected every hit count outside [2, 5]; a
      // bare default routing here to the 5-hit kernel once silently scored
      // the wrong combination space. Keep the guard loud.
      throw std::logic_error("host sweep: evaluate_chunk reached with hits outside [2, 5]");
  }
}

}  // namespace

EvalResult host_sweep_find_best(const BitMatrix& tumor, const BitMatrix& normal,
                                const FContext& ctx, const HostSweepOptions& options,
                                HostSweepTelemetry* telemetry) {
  if (tumor.genes() != normal.genes()) {
    throw std::invalid_argument("host sweep: tumor/normal gene counts differ");
  }
  const std::uint64_t lambda_end = total_threads(options, tumor.genes());

  std::uint32_t workers = options.threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t requested = workers;
  // No point spinning up more workers than there are chunks. An empty λ
  // space (0 chunks, e.g. genes < hits at some scheme) still runs one
  // worker, which drains nothing and leaves the result invalid.
  ChunkQueue queue(0, lambda_end, options.chunk);
  workers = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(workers, std::max<std::uint64_t>(1, queue.chunk_count())));

  obs::HostProfiler* profiler = options.profiler;
  const bool count_bitops = profiler != nullptr && profiler->count_bitops;
  // Swapping in the counting dispatch tables is one pointer store; the
  // per-call cost only exists while a profiled sweep runs, and the previous
  // state is restored on the way out so unprofiled callers never pay.
  const bool counting_before = count_bitops ? set_call_counting(true) : false;

  std::vector<WorkerOutput> outputs(workers);
  std::vector<obs::HostWorkerSample> samples(profiler != nullptr ? workers : 0);
  std::vector<Clock::time_point> finish_at(profiler != nullptr ? workers : 0);

  const auto worker_body = [&](std::uint32_t id) {
    WorkerOutput& out = outputs[id];
    Arena arena;
    std::uint64_t begin = 0, end = 0;
    if (profiler == nullptr) {
      while (queue.next(&begin, &end)) {
        // The arena reset makes every chunk's Scratch land on the same warm
        // block — per-chunk allocation drops to zero after the first grab.
        arena.reset();
        const EvalResult best =
            evaluate_chunk(tumor, normal, ctx, options, begin, end, &out.stats, &arena);
        ++out.chunks;
        if (best.valid) out.candidates.push_back({begin, best});
      }
      out.arena_blocks = arena.block_allocations();
      return;
    }

    // Profiled variant of the same loop: two steady_clock reads per chunk
    // (claim edge, evaluate edge) feed the claim-latency histogram and the
    // busy/idle split; everything that decides the selection is untouched.
    obs::HostWorkerSample& sample = samples[id];
    const BitopsCallCounts calls_before = thread_bitops_calls();
    Clock::time_point mark = Clock::now();
    for (;;) {
      const bool claimed = queue.next(&begin, &end);
      const Clock::time_point claimed_at = Clock::now();
      const double claim_latency = seconds_between(mark, claimed_at);
      sample.claim_seconds += claim_latency;
      ++sample.claim_histogram[obs::claim_bucket(claim_latency)];
      if (!claimed) {
        // The one failed poll every worker's drain ends on.
        ++sample.empty_polls;
        finish_at[id] = claimed_at;
        break;
      }
      arena.reset();
      const EvalResult best =
          evaluate_chunk(tumor, normal, ctx, options, begin, end, &out.stats, &arena);
      mark = Clock::now();
      sample.eval_seconds += seconds_between(claimed_at, mark);
      ++out.chunks;
      if (best.valid) out.candidates.push_back({begin, best});
    }
    out.arena_blocks = arena.block_allocations();

    const BitopsCallCounts calls_now = thread_bitops_calls();
    const BitopsCallCounts delta = calls_now - calls_before;
    sample.calls.popcount_row = delta.popcount_row;
    sample.calls.and2 = delta.and2;
    sample.calls.and3 = delta.and3;
    sample.calls.and4 = delta.and4;
    sample.calls.and_rows = delta.and_rows;
    sample.calls.and_rows_inplace = delta.and_rows_inplace;
    sample.calls.andnot2 = delta.andnot2;
    sample.calls.andnot_rows = delta.andnot_rows;
    sample.chunks = out.chunks;
    sample.candidates = static_cast<std::uint64_t>(out.candidates.size());
    sample.combinations = out.stats.combinations;
    sample.arena_peak_words = arena.peak_words();
    sample.arena_capacity_words = arena.capacity_words();
    sample.arena_blocks = arena.block_allocations();
  };

  const Clock::time_point sweep_start = Clock::now();
  if (profiler != nullptr) {
    obs::HostSweepSetup setup;
    setup.workers = workers;
    setup.chunk_size = options.chunk;
    setup.chunk_count = queue.chunk_count();
    setup.lambda_end = lambda_end;
    setup.hits = options.hits;
    setup.scheme = sweep_scheme_name(options);
    setup.backend = backend_name(active_backend());
    setup.bitops_counted = count_bitops;
    profiler->begin_sweep(setup);
  }

  if (workers <= 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t id = 0; id < workers; ++id) pool.emplace_back(worker_body, id);
    for (std::thread& t : pool) t.join();
  }
  const Clock::time_point joined_at = Clock::now();

  // Deterministic merge: concatenate per-worker candidate lists, order by
  // chunk-begin λ (chunks are disjoint, so the key is unique), fold with
  // merge_results. The sort makes the fold order independent of which worker
  // happened to grab which chunk; merge_results' total order already makes
  // the *result* order-independent — both layers are pinned by tests.
  std::vector<Candidate> merged;
  for (const WorkerOutput& out : outputs) {
    merged.insert(merged.end(), out.candidates.begin(), out.candidates.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) { return a.chunk_begin < b.chunk_begin; });
  EvalResult best;
  for (const Candidate& candidate : merged) best = merge_results(best, candidate.result);

  if (profiler != nullptr) {
    const Clock::time_point merged_at = Clock::now();
    if (count_bitops) set_call_counting(counting_before);
    for (std::uint32_t id = 0; id < workers; ++id) {
      // Tail idle: the gap between this worker draining the queue and the
      // last worker joining — the end-of-sweep load-imbalance cost.
      samples[id].tail_idle_seconds = seconds_between(finish_at[id], joined_at);
      profiler->record_worker(id, samples[id]);
    }
    obs::HostSweepClose close;
    close.wall_seconds = seconds_between(sweep_start, merged_at);
    close.merge_seconds = seconds_between(joined_at, merged_at);
    close.polls = queue.polls();
    profiler->end_sweep(close);
  }

  if (telemetry != nullptr) {
    telemetry->threads = workers;
    telemetry->threads_requested = requested;
    telemetry->chunk_size = options.chunk;
    telemetry->candidates = static_cast<std::uint64_t>(merged.size());
    telemetry->chunks = 0;
    telemetry->arena_blocks = 0;
    telemetry->stats = {};
    for (const WorkerOutput& out : outputs) {
      telemetry->chunks += out.chunks;
      telemetry->arena_blocks += out.arena_blocks;
      telemetry->stats += out.stats;
    }
  }
  return best;
}

Evaluator make_host_sweep_evaluator(HostSweepOptions options,
                                    HostSweepTelemetry* telemetry_sink) {
  return [options, telemetry_sink](const BitMatrix& tumor, const BitMatrix& normal,
                                   const FContext& ctx) {
    HostSweepTelemetry sweep;
    const EvalResult best = host_sweep_find_best(tumor, normal, ctx, options,
                                                 telemetry_sink ? &sweep : nullptr);
    if (telemetry_sink) *telemetry_sink += sweep;
    return best;
  };
}

}  // namespace multihit
