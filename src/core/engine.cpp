#include "core/engine.hpp"

#include "core/schemes.hpp"
#include "core/serial.hpp"

namespace multihit {

// run_greedy lives in session.cpp: it is a one-shot Engine session, so the
// greedy loop has exactly one implementation (see core/session.hpp).

std::vector<std::vector<std::uint32_t>> GreedyResult::combinations() const {
  std::vector<std::vector<std::uint32_t>> combos;
  combos.reserve(iterations.size());
  for (const auto& it : iterations) combos.push_back(it.genes);
  return combos;
}

Evaluator make_serial_evaluator(std::uint32_t hits) {
  return [hits](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
    return serial_find_best(tumor, normal, ctx, hits);
  };
}

namespace {
constexpr MemOpts kOpts{.prefetch_i = true, .prefetch_j = true};
}  // namespace

Evaluator make_kernel_evaluator(std::uint32_t hits) {
  switch (hits) {
    case 2:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_2hit(tumor, normal, ctx, Scheme2::k1x1, 0,
                                   scheme2_threads(Scheme2::k1x1, tumor.genes()), kOpts);
      };
    case 3:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_3hit(tumor, normal, ctx, Scheme3::k2x1, 0,
                                   scheme3_threads(Scheme3::k2x1, tumor.genes()), kOpts);
      };
    case 4:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_4hit(tumor, normal, ctx, Scheme4::k3x1, 0,
                                   scheme4_threads(Scheme4::k3x1, tumor.genes()), kOpts);
      };
    case 5:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_5hit(tumor, normal, ctx, Scheme5::k4x1, 0,
                                   scheme5_threads(Scheme5::k4x1, tumor.genes()), kOpts);
      };
    default:
      return make_serial_evaluator(hits);
  }
}

}  // namespace multihit
