#include "core/engine.hpp"

#include <cassert>
#include <stdexcept>

#include "combinat/unrank.hpp"
#include "core/schemes.hpp"
#include "core/serial.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace multihit {

std::vector<std::vector<std::uint32_t>> GreedyResult::combinations() const {
  std::vector<std::vector<std::uint32_t>> combos;
  combos.reserve(iterations.size());
  for (const auto& it : iterations) combos.push_back(it.genes);
  return combos;
}

GreedyResult run_greedy(BitMatrix tumor, const BitMatrix& normal, const EngineConfig& config,
                        const Evaluator& evaluator, BitMatrix* final_tumor) {
  if (tumor.genes() != normal.genes()) {
    throw std::invalid_argument("tumor/normal gene counts differ");
  }
  if (config.hits == 0 || config.hits > tumor.genes()) {
    throw std::invalid_argument("hits out of range");
  }

  GreedyResult result;
  std::uint32_t remaining = tumor.samples();
  std::vector<std::uint64_t> covered(tumor.words_per_row());

  // Iteration spans read the simulated clock around the evaluator call;
  // without a wired clock the iteration index keeps spans monotone.
  const auto now = [&](double fallback) {
    return config.sim_clock ? config.sim_clock() : fallback;
  };

  while (remaining > 0) {
    if (config.max_iterations != 0 && result.iterations.size() >= config.max_iterations) break;

    const double iter_begin = now(static_cast<double>(result.iterations.size()));
    FContext ctx{config.f_params, remaining, normal.samples()};
    const EvalResult best = evaluator(tumor, normal, ctx);
    if (!best.valid || best.tp == 0) {
      // No combination covers any remaining tumor sample; further iterations
      // would loop forever picking pure-TN combinations.
      MH_LOG_DEBUG << "greedy stop: best combination covers no remaining tumor sample ("
                   << remaining << " uncovered)";
      break;
    }

    IterationRecord record;
    record.genes = unrank_combination(best.combo_rank, config.hits);
    record.f = best.f;
    record.tp = best.tp;
    record.tn = best.tn;
    record.tumor_remaining_before = remaining;

    covered.assign(tumor.words_per_row(), 0);
    const std::uint64_t tp_check = tumor.combine_rows(record.genes, covered);
    assert(tp_check == best.tp);
    (void)tp_check;

    if (config.bit_splicing) {
      remaining = tumor.splice_covered(covered);
      covered.resize(tumor.words_per_row());
    } else {
      // Zero out covered columns in place; width (and word work) unchanged.
      for (std::uint32_t g = 0; g < tumor.genes(); ++g) {
        auto row = tumor.row(g);
        for (std::uint32_t w = 0; w < tumor.words_per_row(); ++w) row[w] &= ~covered[w];
      }
      remaining -= static_cast<std::uint32_t>(best.tp);
    }

    record.tumor_remaining_after = remaining;
    result.iterations.push_back(std::move(record));
    if (config.recorder) {
      const IterationRecord& committed = result.iterations.back();
      const double iter_end = now(static_cast<double>(result.iterations.size()));
      config.recorder->metrics.counter("engine.iterations").add(1.0);
      config.recorder->metrics.counter("engine.covered_samples")
          .add(static_cast<double>(committed.tp));
      config.recorder->metrics.histogram("engine.iteration_f").observe(committed.f);
      config.recorder->trace.complete(
          obs::kEngineLane, "greedy_iteration", "engine", iter_begin, iter_end,
          {{"iteration", std::to_string(result.iterations.size() - 1)},
           {"f", std::to_string(committed.f)},
           {"tp", std::to_string(committed.tp)},
           {"remaining", std::to_string(remaining)}});
    }
    if (config.on_iteration) config.on_iteration(result.iterations.back(), tumor, remaining);
  }

  result.uncovered_tumor = remaining;
  if (final_tumor) *final_tumor = std::move(tumor);
  return result;
}

Evaluator make_serial_evaluator(std::uint32_t hits) {
  return [hits](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
    return serial_find_best(tumor, normal, ctx, hits);
  };
}

namespace {
constexpr MemOpts kOpts{.prefetch_i = true, .prefetch_j = true};
}  // namespace

Evaluator make_kernel_evaluator(std::uint32_t hits) {
  switch (hits) {
    case 2:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_2hit(tumor, normal, ctx, Scheme2::k1x1, 0,
                                   scheme2_threads(Scheme2::k1x1, tumor.genes()), kOpts);
      };
    case 3:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_3hit(tumor, normal, ctx, Scheme3::k2x1, 0,
                                   scheme3_threads(Scheme3::k2x1, tumor.genes()), kOpts);
      };
    case 4:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_4hit(tumor, normal, ctx, Scheme4::k3x1, 0,
                                   scheme4_threads(Scheme4::k3x1, tumor.genes()), kOpts);
      };
    case 5:
      return [](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_5hit(tumor, normal, ctx, Scheme5::k4x1, 0,
                                   scheme5_threads(Scheme5::k4x1, tumor.genes()), kOpts);
      };
    default:
      return make_serial_evaluator(hits);
  }
}

}  // namespace multihit
