#include "core/session.hpp"

#include <cassert>
#include <stdexcept>

#include "combinat/unrank.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace multihit {

Engine::Engine(BitMatrix tumor, BitMatrix normal, EngineConfig config, Evaluator evaluator)
    : config_(std::move(config)),
      evaluator_(std::move(evaluator)),
      tumor_(std::move(tumor)),
      normal_(std::move(normal)),
      remaining_(tumor_.samples()) {
  validate();
  progress_.uncovered_tumor = remaining_;
  if (remaining_ == 0) done_ = true;
}

Engine::Engine(CheckpointState state, BitMatrix normal, EngineConfig config, Evaluator evaluator)
    : config_(std::move(config)),
      evaluator_(std::move(evaluator)),
      tumor_(std::move(state.tumor)),
      normal_(std::move(normal)),
      progress_(std::move(state.progress)) {
  config_.hits = state.hits;
  config_.bit_splicing = state.bit_splicing;
  validate();
  // With BitSplicing the matrix width IS the uncovered count; in the
  // zero-out ablation the width never shrinks, so the committed progress
  // carries the true count.
  remaining_ = progress_.iterations.empty() ? tumor_.samples() : progress_.uncovered_tumor;
  progress_.uncovered_tumor = remaining_;
  if (remaining_ == 0) done_ = true;
}

void Engine::validate() const {
  if (tumor_.genes() != normal_.genes()) {
    throw std::invalid_argument("tumor/normal gene counts differ");
  }
  if (config_.hits == 0 || config_.hits > tumor_.genes()) {
    throw std::invalid_argument("hits out of range");
  }
}

bool Engine::commit_one() {
  // Iteration spans read the simulated clock around the evaluator call;
  // without a wired clock the committed-iteration index keeps spans monotone.
  const auto now = [&](double fallback) {
    return config_.sim_clock ? config_.sim_clock() : fallback;
  };
  const double iter_begin = now(static_cast<double>(progress_.iterations.size()));
  FContext ctx{config_.f_params, remaining_, normal_.samples()};
  const EvalResult best = evaluator_(tumor_, normal_, ctx);
  if (!best.valid || best.tp == 0) {
    // No combination covers any remaining tumor sample; further iterations
    // would loop forever picking pure-TN combinations.
    MH_LOG_DEBUG << "greedy stop: best combination covers no remaining tumor sample ("
                 << remaining_ << " uncovered)";
    done_ = true;
    return false;
  }

  IterationRecord record;
  record.genes = unrank_combination(best.combo_rank, config_.hits);
  for (const std::uint32_t g : record.genes) {
    // An evaluator enumerating a different hit count than config.hits hands
    // back a rank from the wrong combination space; unranking it fabricates
    // gene indices past the matrix. Fail loudly instead of reading wild.
    if (g >= tumor_.genes()) {
      throw std::logic_error("engine: evaluator combo_rank unranks outside the gene range "
                             "(evaluator hit count != config.hits?)");
    }
  }
  record.f = best.f;
  record.tp = best.tp;
  record.tn = best.tn;
  record.tumor_remaining_before = remaining_;

  covered_.assign(tumor_.words_per_row(), 0);
  const std::uint64_t tp_check = tumor_.combine_rows(record.genes, covered_);
  assert(tp_check == best.tp);
  (void)tp_check;

  if (config_.bit_splicing) {
    remaining_ = tumor_.splice_covered(covered_);
    covered_.resize(tumor_.words_per_row());
  } else {
    // Zero out covered columns in place; width (and word work) unchanged.
    for (std::uint32_t g = 0; g < tumor_.genes(); ++g) {
      auto row = tumor_.row(g);
      for (std::uint32_t w = 0; w < tumor_.words_per_row(); ++w) row[w] &= ~covered_[w];
    }
    remaining_ -= static_cast<std::uint32_t>(best.tp);
  }

  record.tumor_remaining_after = remaining_;
  progress_.iterations.push_back(std::move(record));
  progress_.uncovered_tumor = remaining_;
  if (config_.recorder) {
    const IterationRecord& committed = progress_.iterations.back();
    const double iter_end = now(static_cast<double>(progress_.iterations.size()));
    config_.recorder->metrics.counter("engine.iterations").add(1.0);
    config_.recorder->metrics.counter("engine.covered_samples")
        .add(static_cast<double>(committed.tp));
    config_.recorder->metrics.histogram("engine.iteration_f").observe(committed.f);
    config_.recorder->trace.complete(
        obs::kEngineLane, "greedy_iteration", "engine", iter_begin, iter_end,
        {{"iteration", std::to_string(progress_.iterations.size() - 1)},
         {"f", std::to_string(committed.f)},
         {"tp", std::to_string(committed.tp)},
         {"remaining", std::to_string(remaining_)}});
  }
  if (config_.on_iteration) config_.on_iteration(progress_.iterations.back(), tumor_, remaining_);
  if (remaining_ == 0) done_ = true;
  return true;
}

std::uint32_t Engine::step(std::uint32_t limit) {
  std::uint32_t committed = 0;
  while (!done_ && (limit == 0 || committed < limit)) {
    if (config_.max_iterations != 0 && progress_.iterations.size() >= config_.max_iterations) {
      break;
    }
    if (!commit_one()) break;
    ++committed;
  }
  return committed;
}

const GreedyResult& Engine::run() {
  (void)step(0);
  return progress_;
}

CheckpointState Engine::checkpoint() const {
  return CheckpointState{config_.hits, config_.bit_splicing, progress_, tumor_};
}

// The legacy batch entry point: one-shot session, single implementation.
GreedyResult run_greedy(BitMatrix tumor, const BitMatrix& normal, const EngineConfig& config,
                        const Evaluator& evaluator, BitMatrix* final_tumor) {
  Engine session(std::move(tumor), normal, config, evaluator);
  session.run();
  if (final_tumor) *final_tumor = std::move(session).take_tumor();
  return std::move(session).take_result();
}

}  // namespace multihit
