#include "core/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace multihit {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("malformed checkpoint: " + why);
}

void append(GreedyResult& base, GreedyResult&& extra) {
  for (auto& it : extra.iterations) base.iterations.push_back(std::move(it));
  base.uncovered_tumor = extra.uncovered_tumor;
}

}  // namespace

CheckpointState run_greedy_checkpointed(BitMatrix tumor, const BitMatrix& normal,
                                        const EngineConfig& config, const Evaluator& evaluator,
                                        std::uint32_t iterations_this_allocation) {
  CheckpointState state;
  state.hits = config.hits;
  state.bit_splicing = config.bit_splicing;
  EngineConfig bounded = config;
  bounded.max_iterations = iterations_this_allocation;
  state.progress = run_greedy(std::move(tumor), normal, bounded, evaluator, &state.tumor);
  return state;
}

void resume_greedy(CheckpointState& state, const BitMatrix& normal, const Evaluator& evaluator,
                   std::uint32_t iterations_this_allocation) {
  EngineConfig config;
  config.hits = state.hits;
  config.bit_splicing = state.bit_splicing;
  config.max_iterations = iterations_this_allocation;
  GreedyResult extra =
      run_greedy(std::move(state.tumor), normal, config, evaluator, &state.tumor);
  append(state.progress, std::move(extra));
}

void write_checkpoint(std::ostream& out, const CheckpointState& state) {
  // F values must survive the round trip bit-exactly (resume comparisons and
  // the deterministic tie-break depend on them).
  out << std::setprecision(17);
  out << "multihit-checkpoint v1\n";
  out << "hits " << state.hits << '\n';
  out << "bit-splicing " << (state.bit_splicing ? 1 : 0) << '\n';
  out << "uncovered " << state.progress.uncovered_tumor << '\n';
  out << "iterations " << state.progress.iterations.size() << '\n';
  for (const IterationRecord& it : state.progress.iterations) {
    out << "iter " << it.f << ' ' << it.tp << ' ' << it.tn << ' '
        << it.tumor_remaining_before << ' ' << it.tumor_remaining_after;
    for (const std::uint32_t g : it.genes) out << ' ' << g;
    out << '\n';
  }
  out << "tumor " << state.tumor.genes() << ' ' << state.tumor.samples() << '\n';
  for (std::uint32_t g = 0; g < state.tumor.genes(); ++g) {
    for (std::uint32_t s = 0; s < state.tumor.samples(); ++s) {
      if (state.tumor.get(g, s)) out << "b " << g << ' ' << s << '\n';
    }
  }
  out << "end\n";
  if (!out) throw std::ios_base::failure("error writing checkpoint");
}

CheckpointState read_checkpoint(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "multihit-checkpoint v1") fail("bad magic line");

  CheckpointState state;
  auto expect = [&](const std::string& key) -> std::istringstream {
    if (!std::getline(in, line)) fail("truncated header");
    if (line.rfind(key + " ", 0) != 0) fail("expected '" + key + "'");
    return std::istringstream(line.substr(key.size() + 1));
  };

  expect("hits") >> state.hits;
  int splice = 1;
  expect("bit-splicing") >> splice;
  state.bit_splicing = splice != 0;
  expect("uncovered") >> state.progress.uncovered_tumor;
  std::size_t iteration_count = 0;
  expect("iterations") >> iteration_count;

  for (std::size_t i = 0; i < iteration_count; ++i) {
    if (!std::getline(in, line)) fail("truncated iteration list");
    std::istringstream tokens(line);
    std::string tag;
    IterationRecord record;
    if (!(tokens >> tag >> record.f >> record.tp >> record.tn >>
          record.tumor_remaining_before >> record.tumor_remaining_after) ||
        tag != "iter") {
      fail("bad iteration line: " + line);
    }
    std::uint32_t gene = 0;
    while (tokens >> gene) record.genes.push_back(gene);
    if (record.genes.size() != state.hits) fail("iteration gene count mismatch");
    state.progress.iterations.push_back(std::move(record));
  }

  std::uint32_t genes = 0, samples = 0;
  expect("tumor") >> genes >> samples;
  state.tumor = BitMatrix(genes, samples);
  while (std::getline(in, line)) {
    if (line == "end") return state;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    char tag = 0;
    std::uint32_t g = 0, s = 0;
    if (!(tokens >> tag >> g >> s) || tag != 'b') fail("bad bit line: " + line);
    if (g >= genes || s >= samples) fail("bit out of range");
    state.tumor.set(g, s);
  }
  fail("missing 'end' marker");
}

void save_checkpoint(const std::string& path, const CheckpointState& state) {
  std::ofstream out(path);
  if (!out) throw std::ios_base::failure("cannot open for write: " + path);
  write_checkpoint(out, state);
}

CheckpointState load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::ios_base::failure("cannot open for read: " + path);
  return read_checkpoint(in);
}

}  // namespace multihit
