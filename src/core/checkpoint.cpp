#include "core/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace multihit {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("malformed checkpoint: " + why);
}

void append(GreedyResult& base, GreedyResult&& extra) {
  for (auto& it : extra.iterations) base.iterations.push_back(std::move(it));
  base.uncovered_tumor = extra.uncovered_tumor;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// Caps so a corrupted header cannot demand a multi-terabyte allocation
// before the checksum check would catch it.
constexpr std::uint32_t kMaxGenes = 10'000'000;
constexpr std::uint32_t kMaxSamples = 100'000'000;
constexpr std::uint32_t kMaxHits = 64;

}  // namespace

CheckpointState run_greedy_checkpointed(BitMatrix tumor, const BitMatrix& normal,
                                        const EngineConfig& config, const Evaluator& evaluator,
                                        std::uint32_t iterations_this_allocation,
                                        const CheckpointPolicy& policy) {
  CheckpointState state;
  state.hits = config.hits;
  state.bit_splicing = config.bit_splicing;
  EngineConfig bounded = config;
  bounded.max_iterations = iterations_this_allocation;
  if (policy.every > 0 && policy.sink) {
    // Chain behind any observer the caller already installed. The snapshot
    // accumulates the committed records so each sink call sees the full
    // resumable state, not just the latest iteration.
    auto seen = std::make_shared<GreedyResult>();
    const IterationObserver prev = config.on_iteration;
    bounded.on_iteration = [&config, &policy, prev, seen](const IterationRecord& record,
                                                          const BitMatrix& tumor_now,
                                                          std::uint32_t remaining) {
      if (prev) prev(record, tumor_now, remaining);
      seen->iterations.push_back(record);
      seen->uncovered_tumor = remaining;
      if (seen->iterations.size() % policy.every == 0) {
        policy.sink(CheckpointState{config.hits, config.bit_splicing, *seen, tumor_now});
      }
    };
  }
  state.progress = run_greedy(std::move(tumor), normal, bounded, evaluator, &state.tumor);
  return state;
}

void resume_greedy(CheckpointState& state, const BitMatrix& normal, const Evaluator& evaluator,
                   std::uint32_t iterations_this_allocation) {
  EngineConfig config;
  config.hits = state.hits;
  config.bit_splicing = state.bit_splicing;
  config.max_iterations = iterations_this_allocation;
  GreedyResult extra =
      run_greedy(std::move(state.tumor), normal, config, evaluator, &state.tumor);
  append(state.progress, std::move(extra));
}

void write_checkpoint(std::ostream& out, const CheckpointState& state) {
  // F values must survive the round trip bit-exactly (resume comparisons and
  // the deterministic tie-break depend on them).
  std::ostringstream payload;
  payload << std::setprecision(17);
  payload << "hits " << state.hits << '\n';
  payload << "bit-splicing " << (state.bit_splicing ? 1 : 0) << '\n';
  payload << "uncovered " << state.progress.uncovered_tumor << '\n';
  payload << "iterations " << state.progress.iterations.size() << '\n';
  for (const IterationRecord& it : state.progress.iterations) {
    payload << "iter " << it.f << ' ' << it.tp << ' ' << it.tn << ' '
            << it.tumor_remaining_before << ' ' << it.tumor_remaining_after;
    for (const std::uint32_t g : it.genes) payload << ' ' << g;
    payload << '\n';
  }
  payload << "tumor " << state.tumor.genes() << ' ' << state.tumor.samples() << '\n';
  for (std::uint32_t g = 0; g < state.tumor.genes(); ++g) {
    for (std::uint32_t s = 0; s < state.tumor.samples(); ++s) {
      if (state.tumor.get(g, s)) payload << "b " << g << ' ' << s << '\n';
    }
  }
  const std::string body = payload.str();
  out << "multihit-checkpoint v2\n" << body;
  out << "checksum " << std::hex << fnv1a(kFnvOffset, body) << std::dec << '\n';
  out << "end\n";
  if (!out) throw std::ios_base::failure("error writing checkpoint");
}

CheckpointState read_checkpoint(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");
  if (line != "multihit-checkpoint v2") {
    if (line.rfind("multihit-checkpoint", 0) == 0) {
      fail("unsupported checkpoint version: '" + line + "'");
    }
    fail("bad magic line");
  }

  // Every payload line feeds the running checksum; the `checksum` trailer
  // closes the payload, so truncation and any byte corruption are caught.
  std::uint64_t hash = kFnvOffset;
  bool saw_checksum = false;
  auto next_payload_line = [&](const char* context) {
    if (!std::getline(in, line)) fail(std::string("truncated ") + context);
    if (line.rfind("checksum ", 0) == 0) {
      saw_checksum = true;
      return false;
    }
    hash = fnv1a(hash, line);
    hash = fnv1a(hash, "\n");
    return true;
  };
  auto expect = [&](const std::string& key) -> std::istringstream {
    if (!next_payload_line("header")) fail("header cut short at '" + key + "'");
    if (line.rfind(key + " ", 0) != 0) fail("expected '" + key + "', got '" + line + "'");
    return std::istringstream(line.substr(key.size() + 1));
  };
  auto expect_value = [&](const std::string& key, auto& value) {
    std::istringstream tokens = expect(key);
    if (!(tokens >> value)) fail("unreadable value for '" + key + "'");
    std::string junk;
    if (tokens >> junk) fail("trailing junk after '" + key + "'");
  };

  CheckpointState state;
  expect_value("hits", state.hits);
  if (state.hits == 0 || state.hits > kMaxHits) fail("hits out of range");
  int splice = 1;
  expect_value("bit-splicing", splice);
  if (splice != 0 && splice != 1) fail("bit-splicing must be 0 or 1");
  state.bit_splicing = splice != 0;
  expect_value("uncovered", state.progress.uncovered_tumor);
  std::uint64_t iteration_count = 0;
  expect_value("iterations", iteration_count);
  if (iteration_count > kMaxSamples) fail("iteration count out of range");

  for (std::uint64_t i = 0; i < iteration_count; ++i) {
    if (!next_payload_line("iteration list")) fail("iteration list cut short");
    std::istringstream tokens(line);
    std::string tag;
    IterationRecord record;
    if (!(tokens >> tag >> record.f >> record.tp >> record.tn >>
          record.tumor_remaining_before >> record.tumor_remaining_after) ||
        tag != "iter") {
      fail("bad iteration line: " + line);
    }
    std::uint32_t gene = 0;
    while (tokens >> gene) record.genes.push_back(gene);
    if (!tokens.eof()) fail("non-numeric gene id in: " + line);
    if (record.genes.size() != state.hits) fail("iteration gene count mismatch");
    state.progress.iterations.push_back(std::move(record));
  }

  std::uint32_t genes = 0, samples = 0;
  {
    std::istringstream tokens = expect("tumor");
    if (!(tokens >> genes >> samples)) fail("unreadable tumor dimensions");
    std::string junk;
    if (tokens >> junk) fail("trailing junk after 'tumor'");
  }
  if (genes > kMaxGenes || samples > kMaxSamples) fail("tumor dimensions out of range");
  state.tumor = BitMatrix(genes, samples);
  while (next_payload_line("bit list")) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    char tag = 0;
    std::uint32_t g = 0, s = 0;
    if (!(tokens >> tag >> g >> s) || tag != 'b') fail("bad bit line: " + line);
    std::string junk;
    if (tokens >> junk) fail("trailing junk in bit line: " + line);
    if (g >= genes || s >= samples) fail("bit out of range");
    state.tumor.set(g, s);
  }

  if (!saw_checksum) fail("missing checksum");
  std::uint64_t recorded = 0;
  {
    std::istringstream tokens(line.substr(std::string("checksum ").size()));
    if (!(tokens >> std::hex >> recorded)) fail("unreadable checksum");
  }
  if (recorded != hash) fail("checksum mismatch (corrupted or truncated stream)");
  if (!std::getline(in, line) || line != "end") fail("missing 'end' marker");
  // getline sets eofbit when the stream ran out before the delimiter: an
  // "end" with no trailing newline is a truncated final line, not a clean
  // close.
  if (in.eof()) fail("missing newline after 'end' marker");
  return state;
}

void save_checkpoint(const std::string& path, const CheckpointState& state) {
  std::ofstream out(path);
  if (!out) throw std::ios_base::failure("cannot open for write: " + path);
  write_checkpoint(out, state);
}

CheckpointState load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::ios_base::failure("cannot open for read: " + path);
  return read_checkpoint(in);
}

}  // namespace multihit
