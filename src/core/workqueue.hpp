#pragma once
// Lock-free chunked work distribution over a linear λ index range.
//
// The shape is the bit-parallel exhaustive-search idiom (cf. Dimitrov's
// planar_mt.cpp): one atomic counter hands out fixed-size chunks of a
// linearized combination space, workers pull until the counter passes the
// end, and each worker accumulates its own best candidate — no shared state
// besides the counter, no locks, no false sharing on results. Determinism
// does not depend on arrival order: chunks are identified by their begin
// index, and the final merge folds candidates in index order.

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace multihit {

class ChunkQueue {
 public:
  /// Distributes [begin, end) in chunks of `chunk` indices (the final chunk
  /// may be short). chunk must be >= 1.
  ChunkQueue(std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) noexcept
      : begin_(begin), end_(end), chunk_(chunk < 1 ? 1 : chunk) {}

  /// Claims the next chunk. Returns false when the range is exhausted.
  /// Wait-free: one fetch_add per claim.
  bool next(std::uint64_t* chunk_begin, std::uint64_t* chunk_end) noexcept {
    const std::uint64_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (index >= chunk_count()) return false;
    *chunk_begin = begin_ + index * chunk_;
    *chunk_end = std::min(end_, *chunk_begin + chunk_);
    return true;
  }

  std::uint64_t chunk_size() const noexcept { return chunk_; }

  std::uint64_t chunk_count() const noexcept {
    const std::uint64_t span = end_ > begin_ ? end_ - begin_ : 0;
    return (span + chunk_ - 1) / chunk_;
  }

  // Starvation accounting for the host profiler, read for free off the
  // existing cursor: every next() is one poll, polls past the chunk count
  // came back empty. Each worker's drain loop fails exactly once, so at
  // quiescence empty_polls() == worker count — a deterministic invariant the
  // hostprof crosscheck pins.

  /// next() calls so far (racy while workers run; exact after they join).
  std::uint64_t polls() const noexcept { return cursor_.load(std::memory_order_relaxed); }

  /// Successful claims among polls().
  std::uint64_t claimed() const noexcept { return std::min(polls(), chunk_count()); }

  /// Failed claims among polls().
  std::uint64_t empty_polls() const noexcept { return polls() - claimed(); }

 private:
  const std::uint64_t begin_;
  const std::uint64_t end_;
  const std::uint64_t chunk_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace multihit
