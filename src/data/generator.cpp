#include "data/generator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace multihit {

Dataset generate_dataset(const SyntheticSpec& spec) {
  if (spec.hits == 0 || spec.num_combinations == 0) {
    throw std::invalid_argument("SyntheticSpec requires hits >= 1 and num_combinations >= 1");
  }
  if (static_cast<std::uint64_t>(spec.hits) * spec.num_combinations > spec.genes) {
    throw std::invalid_argument("not enough genes for disjoint planted combinations");
  }

  Rng rng(spec.seed);
  Dataset data;
  data.name = "synthetic";
  data.tumor = BitMatrix(spec.genes, spec.tumor_samples);
  data.normal = BitMatrix(spec.genes, spec.normal_samples);

  // Choose hits * num_combinations distinct driver genes and slice them into
  // disjoint combinations.
  const auto driver_genes = rng.sample_without_replacement(
      spec.genes, static_cast<std::uint64_t>(spec.hits) * spec.num_combinations);
  data.planted.resize(spec.num_combinations);
  for (std::uint32_t c = 0; c < spec.num_combinations; ++c) {
    auto& combo = data.planted[c];
    combo.reserve(spec.hits);
    for (std::uint32_t t = 0; t < spec.hits; ++t) {
      combo.push_back(static_cast<std::uint32_t>(driver_genes[c * spec.hits + t]));
    }
    std::sort(combo.begin(), combo.end());
  }

  // Each tumor sample carries one planted combination. Assign round-robin so
  // every combination covers a comparable share of samples, then shuffle the
  // assignment for realism.
  std::vector<std::uint32_t> assignment(spec.tumor_samples);
  for (std::uint32_t s = 0; s < spec.tumor_samples; ++s) {
    assignment[s] = s % spec.num_combinations;
  }
  rng.shuffle(assignment);

  for (std::uint32_t s = 0; s < spec.tumor_samples; ++s) {
    for (std::uint32_t gene : data.planted[assignment[s]]) {
      if (rng.bernoulli(spec.driver_detect_rate)) data.tumor.set(gene, s);
    }
  }

  // A small fraction of normal samples carry a planted combination
  // (germline carriers / mislabeled samples).
  for (std::uint32_t s = 0; s < spec.normal_samples; ++s) {
    if (!rng.bernoulli(spec.normal_contamination)) continue;
    const auto combo_idx = static_cast<std::uint32_t>(rng.uniform(spec.num_combinations));
    for (std::uint32_t gene : data.planted[combo_idx]) {
      if (rng.bernoulli(spec.driver_detect_rate)) data.normal.set(gene, s);
    }
  }

  // Background mutations: everywhere, both classes; tumors optionally carry
  // an extra load.
  const double tumor_rate = spec.background_rate + spec.tumor_excess_rate;
  for (std::uint32_t g = 0; g < spec.genes; ++g) {
    for (std::uint32_t s = 0; s < spec.tumor_samples; ++s) {
      if (rng.bernoulli(tumor_rate)) data.tumor.set(g, s);
    }
    for (std::uint32_t s = 0; s < spec.normal_samples; ++s) {
      if (rng.bernoulli(spec.background_rate)) data.normal.set(g, s);
    }
  }

  return data;
}

}  // namespace multihit
