#include "data/maf_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace multihit {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("malformed MAF: " + why);
}

}  // namespace

void write_maf(std::ostream& out, const MafStudy& study) {
  out << "#multihit-maf v1\n";
  // Study names are single whitespace-free tokens in the format; sanitize so
  // the round trip can never silently desynchronize the header.
  std::string name = study.name.empty() ? "unnamed" : study.name;
  for (char& ch : name) {
    if (ch == ' ' || ch == '\t' || ch == '\n') ch = '_';
  }
  out << "#study " << name << ' ' << study.tumor_samples << ' ' << study.normal_samples
      << '\n';
  for (std::size_t g = 0; g < study.genes.size(); ++g) {
    const GeneInfo& info = study.genes[g];
    out << "#gene " << g << ' ' << info.symbol << ' ' << info.protein_length << ' '
        << (info.driver ? 1 : 0) << ' ' << info.hotspot_position << ' '
        << info.hotspot_fraction << '\n';
  }
  for (const auto& combo : study.planted) {
    out << "#planted";
    for (const std::uint32_t gene : combo) out << ' ' << gene;
    out << '\n';
  }
  out << "Hugo_Symbol\tGene_Id\tSample_Id\tProtein_Position\tSample_Class\n";
  for (const MafRecord& rec : study.records) {
    out << study.genes.at(rec.gene).symbol << '\t' << rec.gene << '\t' << rec.sample << '\t'
        << rec.position << '\t' << (rec.tumor ? "Tumor" : "Normal") << '\n';
  }
  if (!out) throw std::ios_base::failure("error writing MAF");
}

MafStudy read_maf(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "#multihit-maf v1") fail("bad magic line");

  MafStudy study;
  bool saw_study = false;
  bool saw_header = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream tokens(line);
      std::string tag;
      tokens >> tag;
      if (tag == "#study") {
        if (!(tokens >> study.name >> study.tumor_samples >> study.normal_samples)) {
          fail("bad #study line");
        }
        saw_study = true;
      } else if (tag == "#gene") {
        std::size_t id = 0;
        GeneInfo info;
        int driver = 0;
        if (!(tokens >> id >> info.symbol >> info.protein_length >> driver >>
              info.hotspot_position >> info.hotspot_fraction)) {
          fail("bad #gene line: " + line);
        }
        info.driver = driver != 0;
        if (id != study.genes.size()) fail("out-of-order gene id");
        study.genes.push_back(std::move(info));
      } else if (tag == "#planted") {
        std::vector<std::uint32_t> combo;
        std::uint32_t gene = 0;
        while (tokens >> gene) combo.push_back(gene);
        if (combo.empty()) fail("empty #planted line");
        study.planted.push_back(std::move(combo));
      } else {
        fail("unknown directive: " + tag);
      }
      continue;
    }
    if (!saw_header) {
      // The TSV column header.
      if (line.rfind("Hugo_Symbol\t", 0) != 0) fail("missing column header");
      saw_header = true;
      continue;
    }
    std::istringstream tokens(line);
    std::string symbol, cls;
    MafRecord rec;
    std::uint32_t gene = 0, sample = 0, position = 0;
    if (!(tokens >> symbol >> gene >> sample >> position >> cls)) {
      fail("bad record line: " + line);
    }
    if (gene >= study.genes.size()) fail("record gene out of range");
    rec.gene = gene;
    rec.sample = sample;
    rec.position = position;
    if (cls == "Tumor") {
      rec.tumor = true;
      if (sample >= study.tumor_samples) fail("tumor sample out of range");
    } else if (cls == "Normal") {
      rec.tumor = false;
      if (sample >= study.normal_samples) fail("normal sample out of range");
    } else {
      fail("unknown sample class: " + cls);
    }
    if (position < 1 || position > study.genes[gene].protein_length) {
      fail("position out of protein range");
    }
    study.records.push_back(rec);
  }
  if (!saw_study) fail("missing #study line");
  if (!saw_header) fail("missing column header");
  return study;
}

void save_maf(const std::string& path, const MafStudy& study) {
  std::ofstream out(path);
  if (!out) throw std::ios_base::failure("cannot open for write: " + path);
  write_maf(out, study);
}

MafStudy load_maf(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::ios_base::failure("cannot open for read: " + path);
  return read_maf(in);
}

}  // namespace multihit
