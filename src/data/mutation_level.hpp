#pragma once
// Mutation-level combinations — the paper's §V proposal.
//
// The gene-level algorithm marks a gene mutated regardless of *where* the
// mutation falls, which is why identified combinations mix true drivers
// (IDH1-like hotspots) with passengers (MUC6-like uniform noise). The paper
// proposes searching combinations of specific *mutation sites* instead:
// rows become (gene, amino-acid position) pairs — ~4e5 of them versus ~2e4
// genes, a ~10^5-fold compute increase for 4-hit.
//
// This module builds the mutation-site matrices from MAF records and maps
// planted driver combinations to their hotspot sites so recovery can be
// verified exactly.

#include <cstdint>
#include <optional>
#include <vector>

#include "data/maf.hpp"

namespace multihit {

/// One matrix row: a recurrent mutation site.
struct MutationSite {
  std::uint32_t gene = 0;
  std::uint32_t position = 0;  ///< 1-based amino-acid position
  friend bool operator==(const MutationSite&, const MutationSite&) = default;
};

struct MutationLevelData {
  /// Row id -> site, sorted by (gene, position).
  std::vector<MutationSite> sites;
  /// Site-sample matrices (and planted site combinations where resolvable).
  Dataset data;
};

/// Builds site-level matrices from `study`. A site becomes a row if it is
/// mutated in at least `min_tumor_recurrence` tumor samples (the paper's
/// strategy 3 — "limit combinations to the most probable oncogenic
/// mutations" — is exactly raising this threshold). `data.planted` holds,
/// for each planted gene combination whose driver hotspot sites all
/// survived the threshold, the corresponding sorted site-row combination.
MutationLevelData build_mutation_level(const MafStudy& study,
                                       std::uint32_t min_tumor_recurrence = 1);

/// Row index of a site, if present.
std::optional<std::uint32_t> find_site(const MutationLevelData& data, MutationSite site);

}  // namespace multihit
