#include "data/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace multihit {

void write_dataset(std::ostream& out, const Dataset& data) {
  out << "multihit-dataset v1\n";
  out << "name " << data.name << '\n';
  out << "genes " << data.genes() << '\n';
  out << "tumor-samples " << data.tumor_samples() << '\n';
  out << "normal-samples " << data.normal_samples() << '\n';
  out << "planted " << data.planted.size() << '\n';
  for (const auto& combo : data.planted) {
    out << "combo";
    for (std::uint32_t g : combo) out << ' ' << g;
    out << '\n';
  }
  for (std::uint32_t g = 0; g < data.genes(); ++g) {
    for (std::uint32_t s = 0; s < data.tumor_samples(); ++s) {
      if (data.tumor.get(g, s)) out << "t " << g << ' ' << s << '\n';
    }
  }
  for (std::uint32_t g = 0; g < data.genes(); ++g) {
    for (std::uint32_t s = 0; s < data.normal_samples(); ++s) {
      if (data.normal.get(g, s)) out << "n " << g << ' ' << s << '\n';
    }
  }
  out << "end\n";
  if (!out) throw std::ios_base::failure("error writing dataset");
}

Dataset read_dataset(std::istream& in) {
  auto fail = [](const std::string& why) -> Dataset {
    throw std::runtime_error("malformed dataset: " + why);
  };

  std::string line;
  if (!std::getline(in, line) || line != "multihit-dataset v1") {
    return fail("bad magic line");
  }

  Dataset data;
  std::uint32_t genes = 0, tumor_samples = 0, normal_samples = 0;
  std::size_t planted_count = 0;

  auto expect_kv = [&](const std::string& key) -> std::string {
    if (!std::getline(in, line)) fail("truncated header");
    if (line.rfind(key + " ", 0) != 0) fail("expected '" + key + "', got '" + line + "'");
    return line.substr(key.size() + 1);
  };

  data.name = expect_kv("name");
  genes = static_cast<std::uint32_t>(std::stoul(expect_kv("genes")));
  tumor_samples = static_cast<std::uint32_t>(std::stoul(expect_kv("tumor-samples")));
  normal_samples = static_cast<std::uint32_t>(std::stoul(expect_kv("normal-samples")));
  planted_count = std::stoul(expect_kv("planted"));

  data.tumor = BitMatrix(genes, tumor_samples);
  data.normal = BitMatrix(genes, normal_samples);

  for (std::size_t c = 0; c < planted_count; ++c) {
    if (!std::getline(in, line)) fail("truncated planted section");
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    if (tag != "combo") fail("expected combo line");
    std::vector<std::uint32_t> combo;
    std::uint32_t gene;
    while (tokens >> gene) {
      if (gene >= genes) fail("planted gene out of range");
      combo.push_back(gene);
    }
    data.planted.push_back(std::move(combo));
  }

  while (std::getline(in, line)) {
    if (line == "end") return data;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    char tag = 0;
    std::uint32_t gene = 0, sample = 0;
    if (!(tokens >> tag >> gene >> sample)) fail("bad sparse line: " + line);
    if (gene >= genes) fail("gene out of range in sparse line");
    if (tag == 't') {
      if (sample >= tumor_samples) fail("tumor sample out of range");
      data.tumor.set(gene, sample);
    } else if (tag == 'n') {
      if (sample >= normal_samples) fail("normal sample out of range");
      data.normal.set(gene, sample);
    } else {
      fail("unknown sparse tag");
    }
  }
  return fail("missing 'end' marker");
}

void save_dataset(const std::string& path, const Dataset& data) {
  std::ofstream out(path);
  if (!out) throw std::ios_base::failure("cannot open for write: " + path);
  write_dataset(out, data);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::ios_base::failure("cannot open for read: " + path);
  return read_dataset(in);
}

}  // namespace multihit
