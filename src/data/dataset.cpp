#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace multihit {

namespace {

// Extracts the sub-matrix with the given sample columns via splice_columns.
BitMatrix select_samples(const BitMatrix& matrix, const std::vector<std::uint64_t>& keep_mask) {
  BitMatrix copy = matrix;
  copy.splice_columns(keep_mask);
  return copy;
}

std::vector<std::uint64_t> make_mask(std::uint32_t samples,
                                     const std::vector<std::uint64_t>& chosen) {
  std::vector<std::uint64_t> mask((samples + 63) / 64, 0);
  for (std::uint64_t s : chosen) mask[s / 64] |= (std::uint64_t{1} << (s % 64));
  return mask;
}

std::vector<std::uint64_t> complement_mask(std::uint32_t samples,
                                           const std::vector<std::uint64_t>& mask) {
  std::vector<std::uint64_t> inverted(mask.size());
  for (std::size_t w = 0; w < mask.size(); ++w) inverted[w] = ~mask[w];
  // splice_columns ignores bits beyond the sample count, so no trimming
  // of the final word is needed here.
  (void)samples;
  return inverted;
}

}  // namespace

TrainTestSplit split_dataset(const Dataset& data, double train_fraction, std::uint64_t seed) {
  assert(train_fraction > 0.0 && train_fraction < 1.0);
  Rng rng(seed);

  auto pick = [&](std::uint32_t total) {
    auto count = static_cast<std::uint64_t>(train_fraction * total);
    if (total > 1) {
      count = std::clamp<std::uint64_t>(count, 1, total - 1);
    } else {
      count = total;  // degenerate single-sample class: all go to train
    }
    return rng.sample_without_replacement(total, count);
  };

  const auto tumor_train = pick(data.tumor_samples());
  const auto normal_train = pick(data.normal_samples());

  const auto tumor_mask = make_mask(data.tumor_samples(), tumor_train);
  const auto normal_mask = make_mask(data.normal_samples(), normal_train);

  TrainTestSplit split;
  split.train.name = data.name + "/train";
  split.train.tumor = select_samples(data.tumor, tumor_mask);
  split.train.normal = select_samples(data.normal, normal_mask);
  split.train.planted = data.planted;

  split.test.name = data.name + "/test";
  split.test.tumor = select_samples(data.tumor, complement_mask(data.tumor_samples(), tumor_mask));
  split.test.normal =
      select_samples(data.normal, complement_mask(data.normal_samples(), normal_mask));
  split.test.planted = data.planted;
  return split;
}

}  // namespace multihit
