#pragma once
// Plain-text dataset serialization.
//
// Format ("multihit-dataset v1"): a header with dimensions, planted
// combinations, then one sparse line per set bit ("t <gene> <sample>" for
// tumor, "n <gene> <sample>" for normal). Human-diffable and stable across
// platforms; mutation matrices are sparse enough that this beats a binary
// dump for inspectability at negligible cost.

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace multihit {

/// Serializes `data` to `out`. Throws std::ios_base::failure on I/O error.
void write_dataset(std::ostream& out, const Dataset& data);

/// Parses a dataset; throws std::runtime_error on malformed input.
Dataset read_dataset(std::istream& in);

/// File-path conveniences.
void save_dataset(const std::string& path, const Dataset& data);
Dataset load_dataset(const std::string& path);

}  // namespace multihit
