#include "data/registry.hpp"

namespace multihit {

namespace {

CancerType make_type(std::string code, std::string description, std::uint32_t hits,
                     std::uint32_t paper_genes, std::uint32_t paper_tumor,
                     std::uint32_t paper_normal, std::uint32_t functional_genes,
                     std::uint32_t functional_tumor, std::uint32_t functional_normal,
                     std::uint64_t seed) {
  CancerType t;
  t.code = std::move(code);
  t.description = std::move(description);
  t.hits = hits;
  t.paper_genes = paper_genes;
  t.paper_tumor_samples = paper_tumor;
  t.paper_normal_samples = paper_normal;
  t.functional.genes = functional_genes;
  t.functional.tumor_samples = functional_tumor;
  t.functional.normal_samples = functional_normal;
  t.functional.hits = hits;
  t.functional.num_combinations = 4 + static_cast<std::uint32_t>(seed % 3);
  t.functional.driver_detect_rate = 0.97;
  t.functional.background_rate = 0.012;
  t.functional.tumor_excess_rate = 0.004;
  t.functional.normal_contamination = 0.03;
  t.functional.seed = seed;
  return t;
}

}  // namespace

const std::vector<CancerType>& cancer_registry() {
  // Synthetic stand-ins; paper-scale sample counts follow TCGA-typical
  // cohort sizes. BRCA's dimensions (G = 19411, 911 tumor samples) are the
  // ones the paper states explicitly.
  static const std::vector<CancerType> registry = {
      make_type("BRCA", "breast invasive carcinoma", 2, 19411, 911, 520, 140, 120, 80, 101),
      make_type("ACC", "adenoid cystic carcinoma", 4, 17960, 60, 55, 90, 48, 40, 102),
      make_type("ESCA", "esophageal carcinoma", 4, 18364, 184, 150, 110, 64, 52, 103),
      make_type("LUAD", "lung adenocarcinoma", 4, 19020, 566, 430, 130, 96, 72, 104),
      make_type("LUSC", "lung squamous cell carcinoma", 4, 18877, 487, 380, 125, 88, 68, 105),
      make_type("COAD", "colon adenocarcinoma", 4, 18940, 433, 340, 120, 84, 64, 106),
      make_type("STAD", "stomach adenocarcinoma", 4, 19106, 437, 350, 120, 84, 64, 107),
      make_type("BLCA", "bladder urothelial carcinoma", 4, 18650, 411, 320, 118, 80, 60, 108),
      make_type("HNSC", "head and neck squamous cell carcinoma", 4, 18820, 508, 400, 128, 92, 70,
                109),
      make_type("LIHC", "liver hepatocellular carcinoma", 4, 18222, 364, 280, 115, 76, 58, 110),
      make_type("SKCM", "skin cutaneous melanoma", 4, 19242, 467, 360, 122, 86, 66, 111),
      make_type("GBM", "glioblastoma multiforme", 4, 18495, 390, 300, 116, 78, 60, 112),
  };
  return registry;
}

std::vector<CancerType> four_plus_hit_types() {
  std::vector<CancerType> result;
  for (const CancerType& t : cancer_registry()) {
    if (t.hits >= 4) result.push_back(t);
  }
  return result;
}

std::optional<CancerType> find_cancer_type(std::string_view code) {
  for (const CancerType& t : cancer_registry()) {
    if (t.code == code) return t;
  }
  return std::nullopt;
}

Dataset generate_functional_dataset(const CancerType& type) {
  Dataset data = generate_dataset(type.functional);
  data.name = type.code;
  return data;
}

}  // namespace multihit
