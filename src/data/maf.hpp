#pragma once
// Mutation-level (MAF-like) synthetic data.
//
// The paper's pipeline starts from TCGA mutation annotation format (MAF)
// files and summarizes them to binary gene-sample matrices (§III-G). The
// discussion section (Fig. 10) contrasts a driver gene (IDH1, one dominant
// hotspot at amino acid 132) with a passenger gene (MUC6, positions spread
// uniformly). This module generates per-mutation records with exactly that
// structure and provides the MAF -> matrix summarizer, so the repository
// covers the full input pipeline rather than starting from matrices.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/generator.hpp"

namespace multihit {

/// One somatic mutation call.
struct MafRecord {
  std::uint32_t gene = 0;      ///< gene index
  std::uint32_t sample = 0;    ///< sample index within its class
  std::uint32_t position = 0;  ///< 1-based amino-acid position
  bool tumor = false;          ///< tumor (true) or normal (false) sample
};

/// Per-gene annotation used when generating positions.
struct GeneInfo {
  std::string symbol;
  std::uint32_t protein_length = 500;
  bool driver = false;
  /// For driver genes: the recurrent hotspot position (e.g. 132 for IDH1)
  /// and the fraction of tumor mutations that land on it.
  std::uint32_t hotspot_position = 0;
  double hotspot_fraction = 0.0;
};

/// A full mutation-level study for one cancer type.
struct MafStudy {
  std::string name;
  std::uint32_t tumor_samples = 0;
  std::uint32_t normal_samples = 0;
  std::vector<GeneInfo> genes;
  std::vector<MafRecord> records;
  std::vector<std::vector<std::uint32_t>> planted;
};

/// Generates mutation-level records following `spec`: the planted driver
/// genes receive hotspot-concentrated positions in tumor samples, all other
/// mutations get uniform positions. Gene symbols are synthesized (driver
/// genes get recognizable names like DRV1).
MafStudy generate_maf_study(const SyntheticSpec& spec);

/// Collapses mutation records to the binary gene-sample matrices the WSC
/// engine consumes: bit (g, s) = 1 iff >= 1 record exists.
Dataset summarize_maf(const MafStudy& study);

/// Position histogram for one gene: counts[p-1] = number of records at
/// amino-acid position p, restricted to tumor or normal records.
std::vector<std::uint32_t> position_histogram(const MafStudy& study, std::uint32_t gene,
                                              bool tumor);

}  // namespace multihit
