#pragma once
// Synthetic gene-sample data with planted multi-hit combinations.
//
// The paper's input is TCGA somatic mutation data (Mutect2 calls, 31 cancer
// types). That data is access-controlled, so this generator produces the
// closest synthetic equivalent: sparse background mutations everywhere, and
// for each tumor sample one planted "driver" combination of h genes that is
// fully mutated. The weighted-set-cover engine should then recover the
// planted combinations — a ground truth the real data cannot provide.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace multihit {

struct SyntheticSpec {
  std::uint32_t genes = 200;           ///< G
  std::uint32_t tumor_samples = 120;   ///< N_t
  std::uint32_t normal_samples = 80;   ///< N_n
  std::uint32_t hits = 3;              ///< h, genes per planted combination
  std::uint32_t num_combinations = 4;  ///< planted driver combinations
  /// Probability that each driver gene of the sample's assigned combination
  /// is actually observed mutated (models imperfect mutation calling).
  double driver_detect_rate = 1.0;
  /// Per gene-sample background ("passenger") mutation probability, applied
  /// to tumor and normal samples alike.
  double background_rate = 0.01;
  /// Extra per-gene mutation probability in tumor samples only (models the
  /// elevated somatic mutation load of tumors).
  double tumor_excess_rate = 0.0;
  /// Fraction of normal samples carrying one planted combination anyway
  /// (germline carriers / sample mislabeling) — what keeps real-data
  /// specificity below 1.0 (the paper reports 90%).
  double normal_contamination = 0.0;
  std::uint64_t seed = 42;
};

/// Generates a Dataset per `spec`. Planted combinations use disjoint gene
/// sets (requires hits * num_combinations <= genes); every tumor sample is
/// assigned one planted combination round-robin-randomly.
Dataset generate_dataset(const SyntheticSpec& spec);

}  // namespace multihit
