#pragma once
// Cancer-type registry.
//
// The paper evaluates 11 TCGA cancer types previously estimated to require
// four or more hits, plus BRCA (the largest dataset, 911 tumor samples and
// G = 19411 genes) for scaling studies, and names ACC as the smallest. TCGA
// data is access-controlled, so these entries are synthetic stand-ins with
// sample counts in the published/TCGA-typical range. `paper_scale` carries
// the full G used by the analytic performance model; `functional` carries a
// laptop-enumerable downscale (documented per experiment in EXPERIMENTS.md)
// used wherever combinations are actually evaluated.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/generator.hpp"

namespace multihit {

struct CancerType {
  std::string code;        ///< TCGA-style study abbreviation
  std::string description;
  std::uint32_t hits;      ///< estimated hits required for oncogenesis
  // Paper-scale dimensions (used only by the analytic model).
  std::uint32_t paper_genes;
  std::uint32_t paper_tumor_samples;
  std::uint32_t paper_normal_samples;
  // Functional downscale used for actual enumeration runs.
  SyntheticSpec functional;
};

/// All registered cancer types: the 11 four-plus-hit types plus BRCA.
const std::vector<CancerType>& cancer_registry();

/// The 11 types with hits >= 4 (the paper's study set).
std::vector<CancerType> four_plus_hit_types();

/// Lookup by code (e.g. "BRCA", "ACC"); nullopt when unknown.
std::optional<CancerType> find_cancer_type(std::string_view code);

/// Generates the functional-scale dataset for a registry entry.
Dataset generate_functional_dataset(const CancerType& type);

}  // namespace multihit
