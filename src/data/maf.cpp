#include "data/maf.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace multihit {

namespace {

std::uint32_t draw_position(Rng& rng, const GeneInfo& gene, bool tumor) {
  // Driver hotspots are a tumor-only phenomenon: positive selection in the
  // tumor concentrates mutations on the activating residue, while germline /
  // sequencing-noise mutations in normals stay uniform (paper Fig. 10a vs b).
  if (tumor && gene.driver && rng.bernoulli(gene.hotspot_fraction)) {
    return gene.hotspot_position;
  }
  return static_cast<std::uint32_t>(rng.uniform(gene.protein_length)) + 1;
}

}  // namespace

MafStudy generate_maf_study(const SyntheticSpec& spec) {
  // The matrix-level generator defines which (gene, sample) cells are
  // mutated; this layer re-derives the same cells from the same seed and
  // attaches positions, so summarize_maf(generate_maf_study(s)) matches
  // generate_dataset(s) exactly.
  const Dataset matrix = generate_dataset(spec);

  MafStudy study;
  study.name = matrix.name + "/maf";
  study.tumor_samples = spec.tumor_samples;
  study.normal_samples = spec.normal_samples;
  study.planted = matrix.planted;

  std::vector<bool> is_driver(spec.genes, false);
  for (const auto& combo : matrix.planted) {
    for (std::uint32_t g : combo) is_driver[g] = true;
  }

  Rng rng(spec.seed ^ 0x6d61665f6d616621ULL);  // independent stream for positions
  study.genes.resize(spec.genes);
  std::uint32_t driver_counter = 0;
  for (std::uint32_t g = 0; g < spec.genes; ++g) {
    GeneInfo& info = study.genes[g];
    info.driver = is_driver[g];
    info.protein_length = 200 + static_cast<std::uint32_t>(rng.uniform(1800));
    if (info.driver) {
      info.symbol = "DRV" + std::to_string(++driver_counter);
      info.hotspot_position = 1 + static_cast<std::uint32_t>(rng.uniform(info.protein_length));
      info.hotspot_fraction = 0.70 + 0.25 * rng.uniform_double();
    } else {
      info.symbol = "PSG" + std::to_string(g);
    }
  }

  auto emit = [&](const BitMatrix& m, bool tumor) {
    for (std::uint32_t g = 0; g < m.genes(); ++g) {
      for (std::uint32_t s = 0; s < m.samples(); ++s) {
        if (!m.get(g, s)) continue;
        // A mutated cell corresponds to >= 1 mutation call; occasionally a
        // sample carries more than one mutation in the same gene.
        const std::uint32_t calls = 1 + static_cast<std::uint32_t>(rng.poisson(0.15));
        for (std::uint32_t c = 0; c < calls; ++c) {
          study.records.push_back(MafRecord{g, s, draw_position(rng, study.genes[g], tumor),
                                            tumor});
        }
      }
    }
  };
  emit(matrix.tumor, true);
  emit(matrix.normal, false);
  return study;
}

Dataset summarize_maf(const MafStudy& study) {
  Dataset data;
  data.name = study.name + "/summarized";
  const auto genes = static_cast<std::uint32_t>(study.genes.size());
  data.tumor = BitMatrix(genes, study.tumor_samples);
  data.normal = BitMatrix(genes, study.normal_samples);
  data.planted = study.planted;
  for (const MafRecord& rec : study.records) {
    if (rec.gene >= genes) throw std::out_of_range("MafRecord gene out of range");
    if (rec.tumor) {
      data.tumor.set(rec.gene, rec.sample);
    } else {
      data.normal.set(rec.gene, rec.sample);
    }
  }
  return data;
}

std::vector<std::uint32_t> position_histogram(const MafStudy& study, std::uint32_t gene,
                                              bool tumor) {
  if (gene >= study.genes.size()) throw std::out_of_range("gene out of range");
  std::vector<std::uint32_t> counts(study.genes[gene].protein_length, 0);
  for (const MafRecord& rec : study.records) {
    if (rec.gene != gene || rec.tumor != tumor) continue;
    if (rec.position >= 1 && rec.position <= counts.size()) ++counts[rec.position - 1];
  }
  return counts;
}

}  // namespace multihit
