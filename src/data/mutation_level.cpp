#include "data/mutation_level.hpp"

#include <algorithm>
#include <map>

namespace multihit {

MutationLevelData build_mutation_level(const MafStudy& study,
                                       std::uint32_t min_tumor_recurrence) {
  // Count tumor recurrence per site; (gene, position) ordering of std::map
  // fixes the row order deterministically.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> tumor_recurrence;
  for (const MafRecord& rec : study.records) {
    if (rec.tumor) ++tumor_recurrence[{rec.gene, rec.position}];
  }

  MutationLevelData result;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> row_of;
  for (const auto& [site, count] : tumor_recurrence) {
    if (count < min_tumor_recurrence) continue;
    row_of[site] = static_cast<std::uint32_t>(result.sites.size());
    result.sites.push_back(MutationSite{site.first, site.second});
  }

  const auto rows = static_cast<std::uint32_t>(result.sites.size());
  result.data.name = study.name + "/mutation-level";
  result.data.tumor = BitMatrix(rows, study.tumor_samples);
  result.data.normal = BitMatrix(rows, study.normal_samples);
  for (const MafRecord& rec : study.records) {
    const auto it = row_of.find({rec.gene, rec.position});
    if (it == row_of.end()) continue;  // below threshold (or tumor-absent site)
    if (rec.tumor) {
      result.data.tumor.set(it->second, rec.sample);
    } else {
      result.data.normal.set(it->second, rec.sample);
    }
  }

  // Planted gene combinations translate to their drivers' hotspot sites.
  for (const auto& gene_combo : study.planted) {
    std::vector<std::uint32_t> site_combo;
    bool complete = true;
    for (const std::uint32_t gene : gene_combo) {
      const GeneInfo& info = study.genes[gene];
      const auto it = row_of.find({gene, info.hotspot_position});
      if (!info.driver || it == row_of.end()) {
        complete = false;
        break;
      }
      site_combo.push_back(it->second);
    }
    if (complete) {
      std::sort(site_combo.begin(), site_combo.end());
      result.data.planted.push_back(std::move(site_combo));
    }
  }
  return result;
}

std::optional<std::uint32_t> find_site(const MutationLevelData& data, MutationSite site) {
  const auto it = std::lower_bound(
      data.sites.begin(), data.sites.end(), site, [](const MutationSite& a, const MutationSite& b) {
        return a.gene != b.gene ? a.gene < b.gene : a.position < b.position;
      });
  if (it == data.sites.end() || !(*it == site)) return std::nullopt;
  return static_cast<std::uint32_t>(std::distance(data.sites.begin(), it));
}

}  // namespace multihit
