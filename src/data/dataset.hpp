#pragma once
// The algorithm's input: a pair of binary gene-sample matrices (tumor and
// normal) for one cancer type, plus the planted ground-truth combinations
// when the data is synthetic.

#include <cstdint>
#include <string>
#include <vector>

#include "bitmat/bitmatrix.hpp"

namespace multihit {

struct Dataset {
  std::string name;
  BitMatrix tumor;   ///< genes x tumor-sample matrix
  BitMatrix normal;  ///< genes x normal-sample matrix

  /// Ground-truth combinations planted by the synthetic generator (sorted
  /// gene ids). Empty for real or unlabeled data.
  std::vector<std::vector<std::uint32_t>> planted;

  std::uint32_t genes() const noexcept { return tumor.genes(); }
  std::uint32_t tumor_samples() const noexcept { return tumor.samples(); }
  std::uint32_t normal_samples() const noexcept { return normal.samples(); }
};

/// A 75/25-style train/test partition (the paper's protocol, §III-G).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly partitions tumor and normal samples into train and test sets.
/// `train_fraction` of each class goes to train (rounded down, at least one
/// sample per side when the class is non-empty). Deterministic given `seed`.
TrainTestSplit split_dataset(const Dataset& data, double train_fraction, std::uint64_t seed);

}  // namespace multihit
