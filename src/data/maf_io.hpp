#pragma once
// MAF-like text serialization.
//
// The paper's pipeline starts from TCGA mutation annotation format (MAF)
// files (Mutect2 calls) that are summarized for the algorithm (§III-G).
// This module reads/writes a minimal tab-separated MAF dialect carrying
// exactly the columns the pipeline consumes:
//
//   Hugo_Symbol  Gene_Id  Sample_Id  Protein_Position  Sample_Class
//
// preceded by a "#multihit-maf v1" header line and per-gene annotation
// lines ("#gene <id> <symbol> <protein_length> <driver 0/1> <hotspot_pos>
// <hotspot_frac>"). Round-trips a MafStudy losslessly (planted combinations
// are recorded as "#planted g0 g1 ..." lines).

#include <iosfwd>
#include <string>

#include "data/maf.hpp"

namespace multihit {

/// Writes a study; throws std::ios_base::failure on I/O error.
void write_maf(std::ostream& out, const MafStudy& study);

/// Parses a study; throws std::runtime_error on malformed input.
MafStudy read_maf(std::istream& in);

/// File-path conveniences.
void save_maf(const std::string& path, const MafStudy& study);
MafStudy load_maf(const std::string& path);

}  // namespace multihit
