#pragma once
// Thread-range scheduling across GPUs (paper §III-A / §III-C).
//
// Equi-distance (ED): each of the P units gets an equal *count* of threads.
// Because per-thread work decays from O(G²) (2x2) or O(G) (3x1) down to
// zero, ED loads the first units far more heavily.
//
// Equi-area (EA): each unit gets a contiguous λ range carrying an
// approximately equal *amount of work* (equal area under the workload
// curve). The paper's O(G) formulation walks the discrete workload levels;
// the naive per-thread accumulation (hours at G = 20000) exists here only to
// pin the fast one in tests.

#include <cstdint>
#include <vector>

#include "sched/workload.hpp"

namespace multihit {

/// A contiguous half-open thread range [begin, end) assigned to one unit.
struct Partition {
  u64 begin = 0;
  u64 end = 0;
  u64 size() const noexcept { return end - begin; }
  friend bool operator==(const Partition&, const Partition&) = default;
};

/// Equal thread counts per unit (the naive baseline).
std::vector<Partition> equidistance_schedule(const WorkloadModel& model, std::uint32_t units);

/// Equal work per unit via the level structure. O(levels + units·log levels).
std::vector<Partition> equiarea_schedule(const WorkloadModel& model, std::uint32_t units);

/// Reference EA by per-thread accumulation. O(total_threads); only viable
/// for small G. Produces identical boundaries to equiarea_schedule.
std::vector<Partition> equiarea_schedule_naive(const WorkloadModel& model, std::uint32_t units);

/// Exact work carried by a partition.
u128 partition_work(const WorkloadModel& model, const Partition& partition);

/// Per-unit work for a whole schedule, as doubles for reporting.
std::vector<double> schedule_work(const WorkloadModel& model,
                                  const std::vector<Partition>& schedule);

/// Load-imbalance summary of a schedule.
struct ImbalanceStats {
  double max_work = 0.0;
  double mean_work = 0.0;
  double min_work = 0.0;
  /// max/mean; 1.0 is perfect balance. The strong-scaling ceiling is
  /// mean/max = 1/imbalance.
  double imbalance = 1.0;
};

ImbalanceStats schedule_imbalance(const WorkloadModel& model,
                                  const std::vector<Partition>& schedule);

}  // namespace multihit
