#pragma once
// Analytic per-thread workload models.
//
// Every scheme's thread space decomposes into contiguous *levels* of equal
// per-thread work (paper §III-C): e.g. for the 3x1 scheme all C(k,2) threads
// whose largest gene is k run an inner loop of exactly G-1-k iterations.
// The O(G) equi-area scheduler exploits exactly this structure, as does the
// exact prefix-work arithmetic used to audit any partition.

#include <cstdint>
#include <span>
#include <vector>

#include "combinat/binomial.hpp"
#include "core/schemes.hpp"

namespace multihit {

/// A maximal run of threads with identical workload.
struct WorkLevel {
  u64 first_lambda = 0;      ///< first thread id of the level
  u64 thread_count = 0;      ///< number of threads in the level
  u64 work_per_thread = 0;   ///< combinations each of them evaluates
};

/// Level-structured description of one scheme's thread space.
class WorkloadModel {
 public:
  static WorkloadModel for_scheme4(Scheme4 scheme, std::uint32_t genes);
  static WorkloadModel for_scheme3(Scheme3 scheme, std::uint32_t genes);
  static WorkloadModel for_scheme2(Scheme2 scheme, std::uint32_t genes);
  /// Requires C(genes,5) to fit u64 (genes <= 18580).
  static WorkloadModel for_scheme5(Scheme5 scheme, std::uint32_t genes);

  std::uint32_t genes() const noexcept { return genes_; }
  u64 total_threads() const noexcept { return total_threads_; }
  u128 total_work() const noexcept { return total_work_; }
  std::span<const WorkLevel> levels() const noexcept { return levels_; }

  /// Work of thread λ. O(log levels).
  u64 work_at(u64 lambda) const noexcept;

  /// Total work of threads [0, λ). Exact in 128 bits. O(log levels).
  u128 prefix_work(u64 lambda) const noexcept;

  /// Smallest λ with prefix_work(λ) >= target (λ may equal total_threads()).
  u64 lambda_for_prefix(u128 target) const noexcept;

  /// A model over the same thread space whose per-thread "work" is a memory
  /// cost: per_combination · work + per_thread. This is the paper's §V
  /// future-work item 4 ("incorporate memory latency into the scheduling
  /// algorithm"): equi-area over the reweighted model balances modeled
  /// traffic instead of raw combination counts. The partition λ boundaries
  /// remain valid for the original space (levels are unchanged).
  WorkloadModel reweighted(u64 per_combination, u64 per_thread) const;

 private:
  void finalize();

  std::uint32_t genes_ = 0;
  u64 total_threads_ = 0;
  u128 total_work_ = 0;
  std::vector<WorkLevel> levels_;
  std::vector<u128> cumulative_work_;  ///< work before each level
};

}  // namespace multihit
