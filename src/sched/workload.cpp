#include "sched/workload.hpp"

#include <algorithm>
#include <cassert>

namespace multihit {

void WorkloadModel::finalize() {
  cumulative_work_.resize(levels_.size() + 1);
  cumulative_work_[0] = 0;
  total_threads_ = 0;
  for (std::size_t idx = 0; idx < levels_.size(); ++idx) {
    const WorkLevel& level = levels_[idx];
    assert(level.first_lambda == total_threads_);
    cumulative_work_[idx + 1] =
        cumulative_work_[idx] +
        static_cast<u128>(level.thread_count) * static_cast<u128>(level.work_per_thread);
    total_threads_ += level.thread_count;
  }
  total_work_ = cumulative_work_.back();
}

WorkloadModel WorkloadModel::for_scheme4(Scheme4 scheme, std::uint32_t genes) {
  WorkloadModel model;
  model.genes_ = genes;
  switch (scheme) {
    case Scheme4::k1x3:
      // One level per thread: work C(G-1-i, 3) is distinct for each i.
      for (std::uint32_t i = 0; i < genes; ++i) {
        model.levels_.push_back({i, 1, tetrahedral(genes - 1 - i)});
      }
      break;
    case Scheme4::k2x2:
      // All j threads whose larger gene is j share work C(G-1-j, 2).
      for (std::uint32_t j = 1; j < genes; ++j) {
        model.levels_.push_back({triangular(j), j, triangular(genes - 1 - j)});
      }
      break;
    case Scheme4::k3x1:
      // All C(k,2) threads whose largest gene is k share work G-1-k.
      for (std::uint32_t k = 2; k < genes; ++k) {
        model.levels_.push_back({tetrahedral(k), triangular(k), genes - 1 - k});
      }
      break;
    case Scheme4::k4x1:
      model.levels_.push_back({0, quartic(genes), 1});
      break;
  }
  model.finalize();
  return model;
}

WorkloadModel WorkloadModel::for_scheme3(Scheme3 scheme, std::uint32_t genes) {
  WorkloadModel model;
  model.genes_ = genes;
  switch (scheme) {
    case Scheme3::k1x2:
      for (std::uint32_t i = 0; i < genes; ++i) {
        model.levels_.push_back({i, 1, triangular(genes - 1 - i)});
      }
      break;
    case Scheme3::k2x1:
      for (std::uint32_t j = 1; j < genes; ++j) {
        model.levels_.push_back({triangular(j), j, genes - 1 - j});
      }
      break;
    case Scheme3::k3x1:
      model.levels_.push_back({0, tetrahedral(genes), 1});
      break;
  }
  model.finalize();
  return model;
}

WorkloadModel WorkloadModel::for_scheme2(Scheme2 scheme, std::uint32_t genes) {
  WorkloadModel model;
  model.genes_ = genes;
  switch (scheme) {
    case Scheme2::k1x1:
      for (std::uint32_t i = 0; i < genes; ++i) {
        model.levels_.push_back({i, 1, genes - 1 - i});
      }
      break;
    case Scheme2::k2x1:
      model.levels_.push_back({0, triangular(genes), 1});
      break;
  }
  model.finalize();
  return model;
}

WorkloadModel WorkloadModel::for_scheme5(Scheme5 scheme, std::uint32_t genes) {
  WorkloadModel model;
  model.genes_ = genes;
  switch (scheme) {
    case Scheme5::k3x2:
      // All C(k,2) threads whose largest gene is k share work C(G-1-k, 2).
      for (std::uint32_t k = 2; k < genes; ++k) {
        model.levels_.push_back({tetrahedral(k), triangular(k), triangular(genes - 1 - k)});
      }
      break;
    case Scheme5::k4x1:
      // All C(l,3) threads whose largest gene is l share work G-1-l.
      for (std::uint32_t l = 3; l < genes; ++l) {
        model.levels_.push_back({quartic(l), tetrahedral(l), genes - 1 - l});
      }
      break;
  }
  model.finalize();
  return model;
}

WorkloadModel WorkloadModel::reweighted(u64 per_combination, u64 per_thread) const {
  WorkloadModel model;
  model.genes_ = genes_;
  model.levels_ = levels_;
  for (WorkLevel& level : model.levels_) {
    // Zero-work threads skip their setup entirely in the kernels, so they
    // carry no memory cost either.
    if (level.work_per_thread > 0) {
      level.work_per_thread = per_combination * level.work_per_thread + per_thread;
    }
  }
  model.finalize();
  return model;
}

u64 WorkloadModel::work_at(u64 lambda) const noexcept {
  assert(lambda < total_threads_);
  // Last level whose first_lambda <= lambda.
  const auto it = std::upper_bound(
      levels_.begin(), levels_.end(), lambda,
      [](u64 value, const WorkLevel& level) { return value < level.first_lambda; });
  assert(it != levels_.begin());
  return std::prev(it)->work_per_thread;
}

u128 WorkloadModel::prefix_work(u64 lambda) const noexcept {
  if (lambda >= total_threads_) return total_work_;
  const auto it = std::upper_bound(
      levels_.begin(), levels_.end(), lambda,
      [](u64 value, const WorkLevel& level) { return value < level.first_lambda; });
  const auto idx = static_cast<std::size_t>(std::distance(levels_.begin(), it)) - 1;
  const WorkLevel& level = levels_[idx];
  return cumulative_work_[idx] + static_cast<u128>(lambda - level.first_lambda) *
                                     static_cast<u128>(level.work_per_thread);
}

u64 WorkloadModel::lambda_for_prefix(u128 target) const noexcept {
  if (target == 0) return 0;
  if (target >= total_work_) {
    // All positive-work threads are needed; zero-work tail threads are not.
    // Find the end of the last level with positive work.
    for (std::size_t idx = levels_.size(); idx > 0; --idx) {
      if (levels_[idx - 1].work_per_thread > 0) {
        return levels_[idx - 1].first_lambda + levels_[idx - 1].thread_count;
      }
    }
    return 0;
  }
  // First level whose *end* cumulative work reaches the target.
  const auto it =
      std::lower_bound(cumulative_work_.begin() + 1, cumulative_work_.end(), target);
  const auto idx = static_cast<std::size_t>(std::distance(cumulative_work_.begin() + 1, it));
  const WorkLevel& level = levels_[idx];
  const u128 before = cumulative_work_[idx];
  assert(level.work_per_thread > 0);
  const u128 needed = target - before;
  const u128 threads =
      (needed + level.work_per_thread - 1) / static_cast<u128>(level.work_per_thread);
  return level.first_lambda + static_cast<u64>(threads);
}

}  // namespace multihit
