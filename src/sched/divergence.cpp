#include "sched/divergence.hpp"

#include <algorithm>

namespace multihit {

DivergenceStats warp_divergence(const WorkloadModel& model, const Partition& range,
                                std::uint32_t warp_size) {
  DivergenceStats stats;
  if (range.size() == 0) return stats;
  stats.useful_work = model.prefix_work(range.end) - model.prefix_work(range.begin);

  // Walk warp by warp, but jump closed-form through warps fully inside one
  // level (max == the level's uniform work).
  u64 warp_begin = range.begin;
  const auto levels = model.levels();
  while (warp_begin < range.end) {
    const u64 warp_end = std::min<u64>(warp_begin + warp_size, range.end);
    // Find the level containing warp_begin.
    const auto it = std::upper_bound(
        levels.begin(), levels.end(), warp_begin,
        [](u64 value, const WorkLevel& level) { return value < level.first_lambda; });
    const auto idx = static_cast<std::size_t>(std::distance(levels.begin(), it)) - 1;
    const WorkLevel& level = levels[idx];
    const u64 level_end = level.first_lambda + level.thread_count;

    if (warp_end <= level_end) {
      // Contained warp: no divergence. Count all contained warps of this
      // level at once.
      const u64 contained_span = std::min<u64>(level_end, range.end) - warp_begin;
      const u64 full_warps = contained_span / warp_size;
      if (full_warps > 0) {
        stats.issued_work += static_cast<u128>(full_warps) * warp_size * level.work_per_thread;
        warp_begin += full_warps * warp_size;
        continue;
      }
      // A final partial warp (range end or level end inside the warp).
      const u64 span = warp_end - warp_begin;
      stats.issued_work += static_cast<u128>(span) * level.work_per_thread;
      warp_begin = warp_end;
      continue;
    }

    // Straddling warp: max work over the covered levels. Work decreases
    // with λ in every scheme here, so the first thread's level holds the max;
    // still scan defensively in case of non-monotone models.
    u64 max_work = 0;
    u64 cursor = warp_begin;
    std::size_t level_idx = idx;
    while (cursor < warp_end && level_idx < levels.size()) {
      const WorkLevel& l = levels[level_idx];
      max_work = std::max(max_work, l.work_per_thread);
      cursor = l.first_lambda + l.thread_count;
      ++level_idx;
    }
    stats.issued_work += static_cast<u128>(warp_end - warp_begin) * max_work;
    warp_begin = warp_end;
  }

  stats.efficiency = stats.issued_work == 0
                         ? 1.0
                         : static_cast<double>(stats.useful_work) /
                               static_cast<double>(stats.issued_work);

  // Thread-slot accounting: threads with zero work across the range.
  stats.launched_threads = range.size();
  for (const WorkLevel& level : levels) {
    if (level.work_per_thread == 0) continue;
    const u64 lo = std::max(level.first_lambda, range.begin);
    const u64 hi = std::min(level.first_lambda + level.thread_count, range.end);
    if (hi > lo) stats.working_threads += hi - lo;
  }
  stats.thread_utilization =
      stats.launched_threads == 0
          ? 1.0
          : static_cast<double>(stats.working_threads) /
                static_cast<double>(stats.launched_threads);
  return stats;
}

DivergenceStats naive_triangular_divergence(std::uint32_t genes, std::uint32_t warp_size) {
  // Row-major G x G grid; thread id t = i * G + j works iff i < j, doing
  // G-1-j combinations. Within row i, work decreases from G-1-(i+1) down to
  // 0, and threads j <= i are idle.
  DivergenceStats stats;
  const u64 G = genes;
  for (u64 i = 0; i < G; ++i) {
    for (u64 j_warp = 0; j_warp < G; j_warp += warp_size) {
      const u64 j_end = std::min<u64>(j_warp + warp_size, G);
      u64 max_work = 0;
      for (u64 j = j_warp; j < j_end; ++j) {
        const u64 work = j > i ? G - 1 - j : 0;
        stats.useful_work += work;
        max_work = std::max(max_work, work);
      }
      stats.issued_work += static_cast<u128>(j_end - j_warp) * max_work;
    }
  }
  stats.launched_threads = G * G;
  // Working threads: pairs i < j with at least one inner iteration.
  for (u64 i = 0; i < G; ++i) {
    for (u64 j = i + 1; j < G; ++j) {
      if (G - 1 - j > 0) ++stats.working_threads;
    }
  }
  stats.thread_utilization =
      stats.launched_threads == 0
          ? 1.0
          : static_cast<double>(stats.working_threads) /
                static_cast<double>(stats.launched_threads);
  stats.efficiency = stats.issued_work == 0
                         ? 1.0
                         : static_cast<double>(stats.useful_work) /
                               static_cast<double>(stats.issued_work);
  return stats;
}

}  // namespace multihit
