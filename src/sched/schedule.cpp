#include "sched/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/stats.hpp"

namespace multihit {

std::vector<Partition> equidistance_schedule(const WorkloadModel& model, std::uint32_t units) {
  if (units == 0) throw std::invalid_argument("units must be >= 1");
  const u64 total = model.total_threads();
  std::vector<Partition> schedule(units);
  u64 cursor = 0;
  for (std::uint32_t p = 0; p < units; ++p) {
    // Spread the remainder over the leading units so sizes differ by <= 1.
    const u64 size = total / units + (p < total % units ? 1 : 0);
    schedule[p] = {cursor, cursor + size};
    cursor += size;
  }
  assert(cursor == total);
  return schedule;
}

std::vector<Partition> equiarea_schedule(const WorkloadModel& model, std::uint32_t units) {
  if (units == 0) throw std::invalid_argument("units must be >= 1");
  const u128 total = model.total_work();
  std::vector<Partition> schedule(units);
  u64 cursor = 0;
  for (std::uint32_t p = 0; p < units; ++p) {
    // Cumulative target for units 0..p; exact integer arithmetic so the
    // boundaries are deterministic at any scale.
    const u128 target = total * (static_cast<u128>(p) + 1) / units;
    u64 boundary = model.lambda_for_prefix(target);
    // The final unit also absorbs any zero-work tail threads.
    if (p + 1 == units) boundary = model.total_threads();
    boundary = std::max(boundary, cursor);
    schedule[p] = {cursor, boundary};
    cursor = boundary;
  }
  return schedule;
}

std::vector<Partition> equiarea_schedule_naive(const WorkloadModel& model, std::uint32_t units) {
  if (units == 0) throw std::invalid_argument("units must be >= 1");
  const u128 total = model.total_work();
  std::vector<Partition> schedule(units);
  u64 cursor = 0;
  u128 accumulated = 0;
  for (std::uint32_t p = 0; p < units; ++p) {
    const u128 target = total * (static_cast<u128>(p) + 1) / units;
    u64 boundary = cursor;
    // Walk threads one by one until the cumulative work reaches the target —
    // the "tens of hours at full G" approach the paper replaced.
    while (boundary < model.total_threads() && accumulated < target) {
      accumulated += model.work_at(boundary);
      ++boundary;
    }
    if (p + 1 == units) boundary = model.total_threads();
    schedule[p] = {cursor, boundary};
    cursor = boundary;
  }
  return schedule;
}

u128 partition_work(const WorkloadModel& model, const Partition& partition) {
  return model.prefix_work(partition.end) - model.prefix_work(partition.begin);
}

std::vector<double> schedule_work(const WorkloadModel& model,
                                  const std::vector<Partition>& schedule) {
  std::vector<double> work;
  work.reserve(schedule.size());
  for (const Partition& p : schedule) {
    work.push_back(static_cast<double>(partition_work(model, p)));
  }
  return work;
}

ImbalanceStats schedule_imbalance(const WorkloadModel& model,
                                  const std::vector<Partition>& schedule) {
  const auto work = schedule_work(model, schedule);
  ImbalanceStats result;
  result.max_work = stats::max(work);
  result.mean_work = stats::mean(work);
  result.min_work = stats::min(work);
  result.imbalance = result.mean_work > 0.0 ? result.max_work / result.mean_work : 1.0;
  return result;
}

}  // namespace multihit
