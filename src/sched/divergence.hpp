#pragma once
// Warp-divergence accounting (paper §I contribution 2 / §II-C).
//
// GPUs issue threads in lockstep groups (warps): a warp retires only when
// its longest thread finishes, so issued work = warp_size · max(work in
// warp). Two sources of waste are quantified here:
//
//  1. Idle threads in the *naive* 2-D mapping: launching a G x G grid for an
//     upper-triangular problem leaves the j <= i half idle — the ~2x waste
//     the paper's linear-index mapping (Algorithm 1) eliminates.
//  2. Residual divergence in the *linearized* mapping: consecutive λ have
//     equal work within a level, so only warps straddling a level boundary
//     diverge — O(levels) warps out of O(threads/warp_size).

#include <cstdint>

#include "combinat/binomial.hpp"
#include "sched/schedule.hpp"
#include "sched/workload.hpp"

namespace multihit {

struct DivergenceStats {
  u128 useful_work = 0;   ///< Σ per-thread work
  u128 issued_work = 0;   ///< Σ over warps of warp_size · max(work in warp)
  double efficiency = 1.0;  ///< useful / issued (1.0 when issued == 0)

  /// Thread-slot accounting — the paper's "half of the threads are idle"
  /// claim is about launched threads with zero work, separate from the
  /// work-time divergence above (an all-idle warp retires instantly but
  /// still wastes launch/occupancy slots).
  u64 launched_threads = 0;
  u64 working_threads = 0;
  double thread_utilization = 1.0;  ///< working / launched
};

/// Divergence of a λ range of a linearized thread space, warp granularity
/// `warp_size`. Warps are aligned to the partition start. O(levels + warps
/// straddling level boundaries) — closed form within levels.
DivergenceStats warp_divergence(const WorkloadModel& model, const Partition& range,
                                std::uint32_t warp_size = 32);

/// Divergence of the naive (un-linearized) row-major G x G launch for the
/// triangular 3-hit problem of the paper's Algorithm 1: thread (i, j) does
/// G-1-j work when i < j and is idle otherwise. This is the baseline the
/// paper's contribution 2 improves on.
DivergenceStats naive_triangular_divergence(std::uint32_t genes, std::uint32_t warp_size = 32);

}  // namespace multihit
