#include "sched/memaware.hpp"

namespace multihit {

MemoryCostWeights memory_cost_weights(std::uint32_t hits, const MemOpts& opts) noexcept {
  // Deployed kernels: thread = (h-1)-prefix, inner loop over the last gene.
  // Global rows touched per combination / per thread (setup), from the
  // counted formulas in gpusim/analytic.cpp:
  //   prefetch_j: 1 row per combination, h-1 rows of setup per thread
  //   prefetch_i: h-1 rows per combination, 1 row of setup per thread
  //   none:       h   rows per combination, no setup
  if (hits < 2) return {1, 0};
  const u64 h = hits;
  if (opts.prefetch_j && hits > 2) return {1, h - 1};
  if (opts.prefetch_i || opts.prefetch_j) return {h - 1, 1};
  return {h, 0};
}

std::vector<Partition> memaware_schedule(const WorkloadModel& model, std::uint32_t units,
                                         const MemoryCostWeights& weights) {
  const WorkloadModel costed = model.reweighted(weights.per_combination, weights.per_thread);
  return equiarea_schedule(costed, units);
}

}  // namespace multihit
