#pragma once
// Memory-aware equi-area scheduling — the paper's §V future-work item 4.
//
// The published equi-area scheduler balances *combination counts*, but the
// per-combination memory traffic differs across the thread space: every
// thread additionally streams its fixed rows once (the MemOpt prefetch
// setup), so partitions dense in short threads carry more bytes per
// combination than partitions of long threads. At high GPU counts the tail
// partition concentrates ever-shorter threads and becomes the straggler.
//
// The fix is a one-line generalization: run the same O(G) equi-area walk
// over a reweighted workload model whose per-thread weight is the modeled
// traffic, cost = per_combination · work + per_thread. Weights follow the
// kernels' counted global-word formulas (gpusim/analytic.cpp).

#include <cstdint>
#include <vector>

#include "core/schemes.hpp"
#include "sched/schedule.hpp"
#include "sched/workload.hpp"

namespace multihit {

/// Global memory traffic per combination / per thread, in units of one
/// packed row pair (tumor + normal), matching the analytic stats formulas.
struct MemoryCostWeights {
  u64 per_combination = 1;
  u64 per_thread = 0;
};

/// Weights for the deployed "flatten all but the innermost loop" schemes
/// (2-hit 1x1, 3-hit 2x1, 4-hit 3x1, 5-hit 4x1) under the given MemOpts.
MemoryCostWeights memory_cost_weights(std::uint32_t hits, const MemOpts& opts) noexcept;

/// Equi-area over the traffic-reweighted model. Partition boundaries are λ
/// indices of the *original* thread space.
std::vector<Partition> memaware_schedule(const WorkloadModel& model, std::uint32_t units,
                                         const MemoryCostWeights& weights);

}  // namespace multihit
