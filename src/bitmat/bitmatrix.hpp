#pragma once
// Compressed binary gene-sample matrix.
//
// Rows are genes, columns are samples; bit (g, s) is 1 iff sample s carries
// at least one mutation in gene g. Columns are packed 64 per word exactly as
// the paper's GPU representation. The matrix supports BitSplicing (§III-D):
// physically compacting away covered sample columns so later greedy
// iterations touch fewer words.

#include <cstdint>
#include <span>
#include <vector>

#include "bitmat/bitops.hpp"

namespace multihit {

class BitMatrix {
 public:
  BitMatrix() = default;

  /// genes x samples matrix, all zero.
  BitMatrix(std::uint32_t genes, std::uint32_t samples);

  std::uint32_t genes() const noexcept { return genes_; }
  std::uint32_t samples() const noexcept { return samples_; }
  std::uint32_t words_per_row() const noexcept { return words_per_row_; }

  /// Sets bit (gene, sample) to 1.
  void set(std::uint32_t gene, std::uint32_t sample) noexcept;

  /// Clears bit (gene, sample).
  void clear(std::uint32_t gene, std::uint32_t sample) noexcept;

  bool get(std::uint32_t gene, std::uint32_t sample) const noexcept;

  /// Packed row for one gene.
  std::span<const std::uint64_t> row(std::uint32_t gene) const noexcept;
  std::span<std::uint64_t> row(std::uint32_t gene) noexcept;

  /// Number of samples mutated in every gene of `combo` (the intersection
  /// cardinality that TP/TN are computed from).
  std::uint64_t intersect_count(std::span<const std::uint32_t> combo) const noexcept;

  /// AND of the rows of `combo` into a caller-provided buffer of
  /// words_per_row() words. Returns the intersection popcount.
  std::uint64_t combine_rows(std::span<const std::uint32_t> combo,
                             std::span<std::uint64_t> dst) const noexcept;

  /// Total number of set bits (mutation density diagnostics).
  std::uint64_t total_set_bits() const noexcept;

  /// BitSplicing: keep only the samples whose bit in `keep` (packed like a
  /// row) is 1, compacting all rows. `keep` must span words_per_row() words;
  /// bits at positions >= samples() are ignored. Returns the new sample
  /// count. O(genes x words).
  std::uint32_t splice_columns(std::span<const std::uint64_t> keep);

  /// Convenience: splice away the samples marked in `covered` (the samples
  /// containing this iteration's best combination).
  std::uint32_t splice_covered(std::span<const std::uint64_t> covered);

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  std::uint32_t genes_ = 0;
  std::uint32_t samples_ = 0;
  std::uint32_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace multihit
