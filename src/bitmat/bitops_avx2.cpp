// AVX2 backend: bit-sliced AND + popcount over packed sample rows.
//
// Structure of every kernel (the vectorized-popcount pattern):
//
//   1. 64-word Harley-Seal blocks: sixteen 256-bit vectors are folded through
//      a carry-save-adder tree (ones/twos/fours/eights/sixteens), so the
//      nibble-LUT popcount runs once per SIXTEEN vectors instead of once per
//      vector — the classic Muła/Kurz/Lemire formulation.
//   2. 4-word vector tail: plain per-vector LUT popcount.
//   3. <4-word masked tail: _mm256_maskload_epi64 reads exactly the words
//      that remain (masked-off lanes are never touched, so reading a partial
//      trailing vector is safe) and zero-fills the rest — popcounts stay
//      bit-identical to the scalar reference because the fill is zero.
//
// Rows shorter than one Harley-Seal block (the common case at BRCA scale:
// 911 tumor samples = 15 words) bypass the CSA state entirely — a plain
// popcount-accumulate over vectors plus one horizontal sum, so the fixed
// hs_finish cost is never paid on short rows.
//
// The row AND (2-, 3-, 4-arity) is fused into the load stage, so higher
// arities cost extra loads + vpand only. All loads are unaligned
// (_mm256_loadu_si256): rows are only 8-byte aligned, and BitSplicing and
// the differential tests deliberately shift span offsets.
//
// Everything is compiled with per-function target attributes
// ("avx2,bmi2"), keeping the translation unit buildable at baseline x86-64;
// callers must gate on backend_supported(BitopsBackend::kAvx2). On non-x86
// architectures the entry points forward to the scalar reference.

#include "bitmat/bitops.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>

#define MULTIHIT_TARGET_AVX2 __attribute__((target("avx2,bmi2,popcnt")))

namespace multihit::bitops_avx2 {

namespace {

MULTIHIT_TARGET_AVX2 inline __m256i loadu(const std::uint64_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

MULTIHIT_TARGET_AVX2 inline void storeu(std::uint64_t* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Per-vector popcount: nibble-LUT vpshufb counts per byte, vpsadbw folds
/// bytes into four 64-bit lane sums.
MULTIHIT_TARGET_AVX2 inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i counts =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = a + b + c per bit position.
MULTIHIT_TARGET_AVX2 inline __m256i csa(__m256i* h, __m256i a, __m256i b, __m256i c) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  return _mm256_xor_si256(u, c);
}

/// Harley-Seal accumulation state across 64-word blocks.
struct HsState {
  __m256i total, ones, twos, fours, eights;
};

MULTIHIT_TARGET_AVX2 inline void hs_init(HsState* s) noexcept {
  s->total = s->ones = s->twos = s->fours = s->eights = _mm256_setzero_si256();
}

/// Folds one staged block of sixteen vectors into the CSA tree; the LUT
/// popcount fires once, on the sixteens carry.
MULTIHIT_TARGET_AVX2 inline void hs_block(HsState* s, const __m256i v[16]) noexcept {
  __m256i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
  s->ones = csa(&twosA, s->ones, v[0], v[1]);
  s->ones = csa(&twosB, s->ones, v[2], v[3]);
  s->twos = csa(&foursA, s->twos, twosA, twosB);
  s->ones = csa(&twosA, s->ones, v[4], v[5]);
  s->ones = csa(&twosB, s->ones, v[6], v[7]);
  s->twos = csa(&foursB, s->twos, twosA, twosB);
  s->fours = csa(&eightsA, s->fours, foursA, foursB);
  s->ones = csa(&twosA, s->ones, v[8], v[9]);
  s->ones = csa(&twosB, s->ones, v[10], v[11]);
  s->twos = csa(&foursA, s->twos, twosA, twosB);
  s->ones = csa(&twosA, s->ones, v[12], v[13]);
  s->ones = csa(&twosB, s->ones, v[14], v[15]);
  s->twos = csa(&foursB, s->twos, twosA, twosB);
  s->fours = csa(&eightsB, s->fours, foursA, foursB);
  s->eights = csa(&sixteens, s->eights, eightsA, eightsB);
  s->total = _mm256_add_epi64(s->total, popcount256(sixteens));
}

/// Weighted fold of the residual CSA state into per-lane totals.
MULTIHIT_TARGET_AVX2 inline __m256i hs_fold(const HsState* s) noexcept {
  __m256i total = _mm256_slli_epi64(s->total, 4);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(s->eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(s->fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(s->twos), 1));
  return _mm256_add_epi64(total, popcount256(s->ones));
}

MULTIHIT_TARGET_AVX2 inline std::uint64_t hsum(__m256i v) noexcept {
  return static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3));
}

/// Load mask for the final rem (1..3) words: qword lanes < rem are read,
/// the rest are skipped by the hardware and come back zero.
MULTIHIT_TARGET_AVX2 inline __m256i tail_mask(std::size_t rem) noexcept {
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(rem)),
                            _mm256_setr_epi64x(0, 1, 2, 3));
}

MULTIHIT_TARGET_AVX2 inline __m256i maskload(const std::uint64_t* p, __m256i mask) noexcept {
  return _mm256_maskload_epi64(reinterpret_cast<const long long*>(p), mask);
}

constexpr std::size_t kWordsPerVector = 4;
constexpr std::size_t kWordsPerBlock = 64;  // 16 vectors per Harley-Seal block

}  // namespace

MULTIHIT_TARGET_AVX2 std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept {
  const std::uint64_t* pa = a.data();
  const std::size_t n = a.size();
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  if (n >= kWordsPerBlock) {
    HsState s;
    hs_init(&s);
    __m256i v[16];
    for (; w + kWordsPerBlock <= n; w += kWordsPerBlock) {
      for (std::size_t x = 0; x < 16; ++x) v[x] = loadu(pa + w + kWordsPerVector * x);
      hs_block(&s, v);
    }
    acc = hs_fold(&s);
  }
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    acc = _mm256_add_epi64(acc, popcount256(loadu(pa + w)));
  }
  if (w < n) acc = _mm256_add_epi64(acc, popcount256(maskload(pa + w, tail_mask(n - w))));
  return hsum(acc);
}

MULTIHIT_TARGET_AVX2 std::uint64_t and_popcount2(std::span<const std::uint64_t> a,
                                                 std::span<const std::uint64_t> b) noexcept {
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::size_t n = a.size();
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  if (n >= kWordsPerBlock) {
    HsState s;
    hs_init(&s);
    __m256i v[16];
    for (; w + kWordsPerBlock <= n; w += kWordsPerBlock) {
      for (std::size_t x = 0; x < 16; ++x) {
        const std::size_t o = w + kWordsPerVector * x;
        v[x] = _mm256_and_si256(loadu(pa + o), loadu(pb + o));
      }
      hs_block(&s, v);
    }
    acc = hs_fold(&s);
  }
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(loadu(pa + w), loadu(pb + w))));
  }
  if (w < n) {
    const __m256i m = tail_mask(n - w);
    acc = _mm256_add_epi64(acc,
                           popcount256(_mm256_and_si256(maskload(pa + w, m), maskload(pb + w, m))));
  }
  return hsum(acc);
}

MULTIHIT_TARGET_AVX2 std::uint64_t and_popcount3(std::span<const std::uint64_t> a,
                                                 std::span<const std::uint64_t> b,
                                                 std::span<const std::uint64_t> c) noexcept {
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::uint64_t* pc = c.data();
  const std::size_t n = a.size();
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  if (n >= kWordsPerBlock) {
    HsState s;
    hs_init(&s);
    __m256i v[16];
    for (; w + kWordsPerBlock <= n; w += kWordsPerBlock) {
      for (std::size_t x = 0; x < 16; ++x) {
        const std::size_t o = w + kWordsPerVector * x;
        v[x] = _mm256_and_si256(_mm256_and_si256(loadu(pa + o), loadu(pb + o)), loadu(pc + o));
      }
      hs_block(&s, v);
    }
    acc = hs_fold(&s);
  }
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_and_si256(_mm256_and_si256(loadu(pa + w), loadu(pb + w)),
                                          loadu(pc + w))));
  }
  if (w < n) {
    const __m256i m = tail_mask(n - w);
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_and_si256(_mm256_and_si256(maskload(pa + w, m), maskload(pb + w, m)),
                                          maskload(pc + w, m))));
  }
  return hsum(acc);
}

MULTIHIT_TARGET_AVX2 std::uint64_t and_popcount4(std::span<const std::uint64_t> a,
                                                 std::span<const std::uint64_t> b,
                                                 std::span<const std::uint64_t> c,
                                                 std::span<const std::uint64_t> d) noexcept {
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::uint64_t* pc = c.data();
  const std::uint64_t* pd = d.data();
  const std::size_t n = a.size();
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  if (n >= kWordsPerBlock) {
    HsState s;
    hs_init(&s);
    __m256i v[16];
    for (; w + kWordsPerBlock <= n; w += kWordsPerBlock) {
      for (std::size_t x = 0; x < 16; ++x) {
        const std::size_t o = w + kWordsPerVector * x;
        v[x] = _mm256_and_si256(_mm256_and_si256(loadu(pa + o), loadu(pb + o)),
                                _mm256_and_si256(loadu(pc + o), loadu(pd + o)));
      }
      hs_block(&s, v);
    }
    acc = hs_fold(&s);
  }
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_and_si256(_mm256_and_si256(loadu(pa + w), loadu(pb + w)),
                                          _mm256_and_si256(loadu(pc + w), loadu(pd + w)))));
  }
  if (w < n) {
    const __m256i m = tail_mask(n - w);
    acc = _mm256_add_epi64(
        acc,
        popcount256(_mm256_and_si256(_mm256_and_si256(maskload(pa + w, m), maskload(pb + w, m)),
                                     _mm256_and_si256(maskload(pc + w, m), maskload(pd + w, m)))));
  }
  return hsum(acc);
}

MULTIHIT_TARGET_AVX2 std::uint64_t andnot_popcount2(std::span<const std::uint64_t> a,
                                                    std::span<const std::uint64_t> b) noexcept {
  // _mm256_andnot_si256(x, y) computes ~x & y, so b rides in the first
  // operand. The masked tail stays bit-identical to scalar: lanes beyond the
  // row load a as zero, and 0 & ~b is 0 whatever ~b holds there.
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::size_t n = a.size();
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  if (n >= kWordsPerBlock) {
    HsState s;
    hs_init(&s);
    __m256i v[16];
    for (; w + kWordsPerBlock <= n; w += kWordsPerBlock) {
      for (std::size_t x = 0; x < 16; ++x) {
        const std::size_t o = w + kWordsPerVector * x;
        v[x] = _mm256_andnot_si256(loadu(pb + o), loadu(pa + o));
      }
      hs_block(&s, v);
    }
    acc = hs_fold(&s);
  }
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    acc = _mm256_add_epi64(acc, popcount256(_mm256_andnot_si256(loadu(pb + w), loadu(pa + w))));
  }
  if (w < n) {
    const __m256i m = tail_mask(n - w);
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_andnot_si256(maskload(pb + w, m), maskload(pa + w, m))));
  }
  return hsum(acc);
}

MULTIHIT_TARGET_AVX2 void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                                   std::span<const std::uint64_t> b) noexcept {
  std::uint64_t* pd = dst.data();
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::size_t n = dst.size();
  std::size_t w = 0;
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    storeu(pd + w, _mm256_and_si256(loadu(pa + w), loadu(pb + w)));
  }
  for (; w < n; ++w) pd[w] = pa[w] & pb[w];
}

MULTIHIT_TARGET_AVX2 void and_rows_inplace(std::span<std::uint64_t> dst,
                                           std::span<const std::uint64_t> a) noexcept {
  std::uint64_t* pd = dst.data();
  const std::uint64_t* pa = a.data();
  const std::size_t n = dst.size();
  std::size_t w = 0;
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    storeu(pd + w, _mm256_and_si256(loadu(pd + w), loadu(pa + w)));
  }
  for (; w < n; ++w) pd[w] &= pa[w];
}

MULTIHIT_TARGET_AVX2 void andnot_rows(std::span<std::uint64_t> dst,
                                      std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b) noexcept {
  std::uint64_t* pd = dst.data();
  const std::uint64_t* pa = a.data();
  const std::uint64_t* pb = b.data();
  const std::size_t n = dst.size();
  std::size_t w = 0;
  for (; w + kWordsPerVector <= n; w += kWordsPerVector) {
    storeu(pd + w, _mm256_andnot_si256(loadu(pb + w), loadu(pa + w)));
  }
  for (; w < n; ++w) pd[w] = pa[w] & ~pb[w];
}

}  // namespace multihit::bitops_avx2

#else  // non-x86: keep the entry points linkable; dispatch never selects them.

namespace multihit::bitops_avx2 {

std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept {
  return bitops_scalar::popcount_row(a);
}
std::uint64_t and_popcount2(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept {
  return bitops_scalar::and_popcount2(a, b);
}
std::uint64_t and_popcount3(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept {
  return bitops_scalar::and_popcount3(a, b, c);
}
std::uint64_t and_popcount4(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c,
                            std::span<const std::uint64_t> d) noexcept {
  return bitops_scalar::and_popcount4(a, b, c, d);
}
std::uint64_t andnot_popcount2(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) noexcept {
  return bitops_scalar::andnot_popcount2(a, b);
}
void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept {
  bitops_scalar::and_rows(dst, a, b);
}
void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept {
  bitops_scalar::and_rows_inplace(dst, a);
}
void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept {
  bitops_scalar::andnot_rows(dst, a, b);
}

}  // namespace multihit::bitops_avx2

#endif
