#include "bitmat/bitmatrix.hpp"

#include <bit>
#include <cassert>

namespace multihit {

namespace {
constexpr std::uint32_t kWordBits = 64;
}

BitMatrix::BitMatrix(std::uint32_t genes, std::uint32_t samples)
    : genes_(genes),
      samples_(samples),
      words_per_row_((samples + kWordBits - 1) / kWordBits),
      words_(static_cast<std::size_t>(genes) * words_per_row_, 0) {}

void BitMatrix::set(std::uint32_t gene, std::uint32_t sample) noexcept {
  assert(gene < genes_ && sample < samples_);
  row(gene)[sample / kWordBits] |= (std::uint64_t{1} << (sample % kWordBits));
}

void BitMatrix::clear(std::uint32_t gene, std::uint32_t sample) noexcept {
  assert(gene < genes_ && sample < samples_);
  row(gene)[sample / kWordBits] &= ~(std::uint64_t{1} << (sample % kWordBits));
}

bool BitMatrix::get(std::uint32_t gene, std::uint32_t sample) const noexcept {
  assert(gene < genes_ && sample < samples_);
  return (row(gene)[sample / kWordBits] >> (sample % kWordBits)) & 1;
}

std::span<const std::uint64_t> BitMatrix::row(std::uint32_t gene) const noexcept {
  assert(gene < genes_);
  return {words_.data() + static_cast<std::size_t>(gene) * words_per_row_, words_per_row_};
}

std::span<std::uint64_t> BitMatrix::row(std::uint32_t gene) noexcept {
  assert(gene < genes_);
  return {words_.data() + static_cast<std::size_t>(gene) * words_per_row_, words_per_row_};
}

std::uint64_t BitMatrix::intersect_count(std::span<const std::uint32_t> combo) const noexcept {
  switch (combo.size()) {
    case 0:
      return 0;
    case 1:
      return popcount_row(row(combo[0]));
    case 2:
      return and_popcount(row(combo[0]), row(combo[1]));
    case 3:
      return and_popcount(row(combo[0]), row(combo[1]), row(combo[2]));
    case 4:
      return and_popcount(row(combo[0]), row(combo[1]), row(combo[2]), row(combo[3]));
    default: {
      std::uint64_t count = 0;
      for (std::uint32_t w = 0; w < words_per_row_; ++w) {
        std::uint64_t acc = row(combo[0])[w];
        for (std::size_t t = 1; t < combo.size(); ++t) acc &= row(combo[t])[w];
        count += static_cast<std::uint64_t>(std::popcount(acc));
      }
      return count;
    }
  }
}

std::uint64_t BitMatrix::combine_rows(std::span<const std::uint32_t> combo,
                                      std::span<std::uint64_t> dst) const noexcept {
  assert(dst.size() == words_per_row_);
  assert(!combo.empty());
  std::uint64_t count = 0;
  for (std::uint32_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t acc = row(combo[0])[w];
    for (std::size_t t = 1; t < combo.size(); ++t) acc &= row(combo[t])[w];
    dst[w] = acc;
    count += static_cast<std::uint64_t>(std::popcount(acc));
  }
  return count;
}

std::uint64_t BitMatrix::total_set_bits() const noexcept {
  return popcount_row(words_);
}

std::uint32_t BitMatrix::splice_columns(std::span<const std::uint64_t> keep) {
  assert(keep.size() == words_per_row_);

  // Precompute, per source word, the packed destination layout: for each
  // surviving source bit its destination (word, bit) advances densely.
  std::uint32_t kept = 0;
  for (std::uint32_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t mask = keep[w];
    // Bits beyond the logical sample count must not survive.
    if (w == words_per_row_ - 1 && samples_ % kWordBits != 0) {
      mask &= (std::uint64_t{1} << (samples_ % kWordBits)) - 1;
    }
    kept += static_cast<std::uint32_t>(std::popcount(mask));
  }

  const std::uint32_t new_words = (kept + kWordBits - 1) / kWordBits;
  std::vector<std::uint64_t> compacted(static_cast<std::size_t>(genes_) * new_words, 0);

  for (std::uint32_t g = 0; g < genes_; ++g) {
    const auto src = row(g);
    std::uint64_t* dst = compacted.data() + static_cast<std::size_t>(g) * new_words;
    std::uint32_t out_pos = 0;
    for (std::uint32_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t mask = keep[w];
      if (w == words_per_row_ - 1 && samples_ % kWordBits != 0) {
        mask &= (std::uint64_t{1} << (samples_ % kWordBits)) - 1;
      }
      std::uint64_t bits = mask;
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        if ((src[w] >> b) & 1) {
          dst[out_pos / kWordBits] |= (std::uint64_t{1} << (out_pos % kWordBits));
        }
        ++out_pos;
      }
    }
  }

  samples_ = kept;
  words_per_row_ = new_words;
  words_ = std::move(compacted);
  return kept;
}

std::uint32_t BitMatrix::splice_covered(std::span<const std::uint64_t> covered) {
  assert(covered.size() == words_per_row_);
  std::vector<std::uint64_t> keep(words_per_row_);
  for (std::uint32_t w = 0; w < words_per_row_; ++w) keep[w] = ~covered[w];
  return splice_columns(keep);
}

}  // namespace multihit
