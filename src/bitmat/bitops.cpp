#include "bitmat/bitops.hpp"

#include <bit>
#include <cassert>

namespace multihit {

std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept {
  std::uint64_t count = 0;
  for (std::uint64_t word : a) count += static_cast<std::uint64_t>(std::popcount(word));
  return count;
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c) noexcept {
  assert(a.size() == b.size() && b.size() == c.size());
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  }
  return count;
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c,
                           std::span<const std::uint64_t> d) noexcept {
  assert(a.size() == b.size() && b.size() == c.size() && c.size() == d.size());
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w] & d[w]));
  }
  return count;
}

void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept {
  assert(dst.size() == a.size() && a.size() == b.size());
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] = a[w] & b[w];
}

void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept {
  assert(dst.size() == a.size());
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] &= a[w];
}

}  // namespace multihit
