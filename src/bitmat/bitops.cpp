#include "bitmat/bitops.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

// Length contracts are active in assert builds and whenever MULTIHIT_CHECKS
// is defined (the ASan preset turns it on so the optimized sanitizer run
// still exercises them). Violations abort: a mismatched span means some
// caller is about to read past a row, and silently truncating to the shorter
// span would return a plausible-but-wrong popcount.
#if !defined(NDEBUG) || defined(MULTIHIT_CHECKS)
#define MULTIHIT_BITOPS_CHECKED 1
#else
#define MULTIHIT_BITOPS_CHECKED 0
#endif

namespace multihit {

namespace {

#if MULTIHIT_BITOPS_CHECKED
void check_lengths(const char* op, std::size_t a, std::size_t b, std::size_t c = ~std::size_t{0},
                   std::size_t d = ~std::size_t{0}) noexcept {
  const bool ok = a == b && (c == ~std::size_t{0} || b == c) &&
                  (d == ~std::size_t{0} || c == d);
  if (ok) return;
  std::fprintf(stderr, "multihit bitops: %s span length mismatch (%zu", op, a);
  std::fprintf(stderr, ", %zu", b);
  if (c != ~std::size_t{0}) std::fprintf(stderr, ", %zu", c);
  if (d != ~std::size_t{0}) std::fprintf(stderr, ", %zu", d);
  std::fprintf(stderr, ")\n");
  std::abort();
}
#define MULTIHIT_BITOPS_CHECK(...) check_lengths(__VA_ARGS__)
#else
#define MULTIHIT_BITOPS_CHECK(...) ((void)0)
#endif

}  // namespace

// ---------------------------------------------------------------------------
// Scalar reference backend
// ---------------------------------------------------------------------------

namespace bitops_scalar {

std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept {
  std::uint64_t count = 0;
  for (std::uint64_t word : a) count += static_cast<std::uint64_t>(std::popcount(word));
  return count;
}

std::uint64_t and_popcount2(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

std::uint64_t and_popcount3(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  }
  return count;
}

std::uint64_t and_popcount4(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c,
                            std::span<const std::uint64_t> d) noexcept {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w] & d[w]));
  }
  return count;
}

std::uint64_t andnot_popcount2(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) noexcept {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] & ~b[w]));
  }
  return count;
}

void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] = a[w] & b[w];
}

void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] &= a[w];
}

void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] = a[w] & ~b[w];
}

}  // namespace bitops_scalar

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

struct Kernels {
  BitopsBackend backend;
  std::uint64_t (*popcount_row)(std::span<const std::uint64_t>) noexcept;
  std::uint64_t (*and2)(std::span<const std::uint64_t>, std::span<const std::uint64_t>) noexcept;
  std::uint64_t (*and3)(std::span<const std::uint64_t>, std::span<const std::uint64_t>,
                        std::span<const std::uint64_t>) noexcept;
  std::uint64_t (*and4)(std::span<const std::uint64_t>, std::span<const std::uint64_t>,
                        std::span<const std::uint64_t>, std::span<const std::uint64_t>) noexcept;
  std::uint64_t (*andnot2)(std::span<const std::uint64_t>,
                           std::span<const std::uint64_t>) noexcept;
  void (*and_rows)(std::span<std::uint64_t>, std::span<const std::uint64_t>,
                   std::span<const std::uint64_t>) noexcept;
  void (*and_rows_inplace)(std::span<std::uint64_t>, std::span<const std::uint64_t>) noexcept;
  void (*andnot_rows)(std::span<std::uint64_t>, std::span<const std::uint64_t>,
                      std::span<const std::uint64_t>) noexcept;
};

constexpr Kernels kScalarKernels{
    BitopsBackend::kScalar,
    bitops_scalar::popcount_row,
    bitops_scalar::and_popcount2,
    bitops_scalar::and_popcount3,
    bitops_scalar::and_popcount4,
    bitops_scalar::andnot_popcount2,
    bitops_scalar::and_rows,
    bitops_scalar::and_rows_inplace,
    bitops_scalar::andnot_rows,
};

constexpr Kernels kAvx2Kernels{
    BitopsBackend::kAvx2,
    bitops_avx2::popcount_row,
    bitops_avx2::and_popcount2,
    bitops_avx2::and_popcount3,
    bitops_avx2::and_popcount4,
    bitops_avx2::andnot_popcount2,
    bitops_avx2::and_rows,
    bitops_avx2::and_rows_inplace,
    bitops_avx2::andnot_rows,
};

// -------------------------------------------------------------- call counting
//
// The host profiler wants exact per-op dispatched-call counts without taxing
// unprofiled runs. Rather than an always-on thread_local check in every
// kernel, counting is a second pair of dispatch tables whose entries bump the
// calling thread's counters and forward to the plain backend; enabling it is
// one table-pointer swap, so the cost when off is exactly zero.

thread_local BitopsCallCounts tl_calls;

std::atomic<bool> g_counting{false};

template <const Kernels& kBase>
std::uint64_t counted_popcount(std::span<const std::uint64_t> a) noexcept {
  ++tl_calls.popcount_row;
  return kBase.popcount_row(a);
}
template <const Kernels& kBase>
std::uint64_t counted_and2(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  ++tl_calls.and2;
  return kBase.and2(a, b);
}
template <const Kernels& kBase>
std::uint64_t counted_and3(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c) noexcept {
  ++tl_calls.and3;
  return kBase.and3(a, b, c);
}
template <const Kernels& kBase>
std::uint64_t counted_and4(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c,
                           std::span<const std::uint64_t> d) noexcept {
  ++tl_calls.and4;
  return kBase.and4(a, b, c, d);
}
template <const Kernels& kBase>
std::uint64_t counted_andnot2(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) noexcept {
  ++tl_calls.andnot2;
  return kBase.andnot2(a, b);
}
template <const Kernels& kBase>
void counted_and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b) noexcept {
  ++tl_calls.and_rows;
  kBase.and_rows(dst, a, b);
}
template <const Kernels& kBase>
void counted_and_rows_inplace(std::span<std::uint64_t> dst,
                              std::span<const std::uint64_t> a) noexcept {
  ++tl_calls.and_rows_inplace;
  kBase.and_rows_inplace(dst, a);
}
template <const Kernels& kBase>
void counted_andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b) noexcept {
  ++tl_calls.andnot_rows;
  kBase.andnot_rows(dst, a, b);
}

template <const Kernels& kBase>
constexpr Kernels counting_table() noexcept {
  return Kernels{kBase.backend,
                 counted_popcount<kBase>,
                 counted_and2<kBase>,
                 counted_and3<kBase>,
                 counted_and4<kBase>,
                 counted_andnot2<kBase>,
                 counted_and_rows<kBase>,
                 counted_and_rows_inplace<kBase>,
                 counted_andnot_rows<kBase>};
}

constexpr Kernels kScalarCounting = counting_table<kScalarKernels>();
constexpr Kernels kAvx2Counting = counting_table<kAvx2Kernels>();

const Kernels* table_for(BitopsBackend backend, bool counting) noexcept {
  if (counting) {
    return backend == BitopsBackend::kAvx2 ? &kAvx2Counting : &kScalarCounting;
  }
  return backend == BitopsBackend::kAvx2 ? &kAvx2Kernels : &kScalarKernels;
}

// Resolved dispatch target. nullptr = not yet resolved; resolution is
// idempotent (every racer computes the same answer from CPUID + env), so a
// benign first-use race is fine.
std::atomic<const Kernels*> g_kernels{nullptr};

const Kernels* resolve_initial() noexcept {
  const char* env = std::getenv("MULTIHIT_BITOPS");
  bool ok = true;
  BitopsBackend backend = parse_backend(env, &ok);
  if (!ok) {
    MH_LOG_WARN << "MULTIHIT_BITOPS='" << env
                << "' not recognized (expected scalar|avx2|auto); using auto";
  } else if (env != nullptr && !backend_supported(backend)) {
    MH_LOG_WARN << "MULTIHIT_BITOPS=" << backend_name(backend)
                << " not supported on this CPU; using scalar";
    backend = BitopsBackend::kScalar;
  }
  return table_for(backend, g_counting.load(std::memory_order_acquire));
}

const Kernels& kernels() noexcept {
  const Kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_initial();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

}  // namespace

const char* backend_name(BitopsBackend backend) noexcept {
  switch (backend) {
    case BitopsBackend::kScalar:
      return "scalar";
    case BitopsBackend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool backend_supported(BitopsBackend backend) noexcept {
  switch (backend) {
    case BitopsBackend::kScalar:
      return true;
    case BitopsBackend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // BMI2 ships on every AVX2-era core (Haswell+); requiring both keeps
      // the backend free to use shlx/pdep in future revisions.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
#else
      return false;
#endif
  }
  return false;
}

BitopsBackend parse_backend(const char* name, bool* ok) noexcept {
  if (ok) *ok = true;
  const auto best = []() noexcept {
    return backend_supported(BitopsBackend::kAvx2) ? BitopsBackend::kAvx2
                                                   : BitopsBackend::kScalar;
  };
  if (name == nullptr || std::strcmp(name, "auto") == 0) return best();
  if (std::strcmp(name, "scalar") == 0) return BitopsBackend::kScalar;
  if (std::strcmp(name, "avx2") == 0) return BitopsBackend::kAvx2;
  if (ok) *ok = false;
  return best();
}

BitopsBackend active_backend() noexcept { return kernels().backend; }

bool set_backend(BitopsBackend backend) noexcept {
  if (!backend_supported(backend)) return false;
  g_kernels.store(table_for(backend, g_counting.load(std::memory_order_acquire)),
                  std::memory_order_release);
  return true;
}

bool set_call_counting(bool enabled) noexcept {
  const bool previous = g_counting.exchange(enabled, std::memory_order_acq_rel);
  // kernels() resolves the backend first if this is the very first bitops
  // call, then the swap installs the matching plain/counting table.
  g_kernels.store(table_for(kernels().backend, enabled), std::memory_order_release);
  return previous;
}

bool call_counting() noexcept { return g_counting.load(std::memory_order_acquire); }

const BitopsCallCounts& thread_bitops_calls() noexcept { return tl_calls; }

std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept {
  return kernels().popcount_row(a);
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  MULTIHIT_BITOPS_CHECK("and_popcount/2", a.size(), b.size());
  return kernels().and2(a, b);
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c) noexcept {
  MULTIHIT_BITOPS_CHECK("and_popcount/3", a.size(), b.size(), c.size());
  return kernels().and3(a, b, c);
}

std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c,
                           std::span<const std::uint64_t> d) noexcept {
  MULTIHIT_BITOPS_CHECK("and_popcount/4", a.size(), b.size(), c.size(), d.size());
  return kernels().and4(a, b, c, d);
}

void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept {
  MULTIHIT_BITOPS_CHECK("and_rows", dst.size(), a.size(), b.size());
  kernels().and_rows(dst, a, b);
}

void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept {
  MULTIHIT_BITOPS_CHECK("and_rows_inplace", dst.size(), a.size());
  kernels().and_rows_inplace(dst, a);
}

std::uint64_t andnot_popcount(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) noexcept {
  MULTIHIT_BITOPS_CHECK("andnot_popcount", a.size(), b.size());
  return kernels().andnot2(a, b);
}

void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept {
  MULTIHIT_BITOPS_CHECK("andnot_rows", dst.size(), a.size(), b.size());
  kernels().andnot_rows(dst, a, b);
}

}  // namespace multihit
