#pragma once
// Word-level kernels over packed sample rows, behind a runtime-dispatched
// backend.
//
// The paper packs 64 samples per `unsigned long long` (a 32x memory
// reduction versus one int per sample) and replaces per-sample arithmetic
// with bitwise AND + popcount. These free functions are the arithmetic core
// of every enumeration kernel — every combination a kernel visits costs one
// and_popcount per matrix — so they are the unit of scale the whole system
// is built around.
//
// Two implementations live behind the public functions:
//
//   kScalar  portable word loop (std::popcount); the bit-exact reference
//            every other backend is pinned to in tests/test_bitops_simd.cpp.
//   kAvx2    AVX2 bit-sliced kernels: 4 words per vector, nibble-LUT
//            (vpshufb) popcount with Harley-Seal carry-save accumulation on
//            long rows, unaligned loads throughout (rows are only 8-byte
//            aligned after BitSplicing shifts). Compiled with per-function
//            target attributes, so the rest of the binary stays baseline
//            x86-64 and the backend is a pure *runtime* decision.
//
// Dispatch is resolved once from CPUID (and the MULTIHIT_BITOPS environment
// override: "scalar", "avx2", or "auto") on first use; set_backend() can
// retarget it at any time. All backends produce bit-identical counts, so the
// choice is invisible to everything above — only the wall clock moves.
//
// Length contract: all multi-row operations require equal-length spans. In
// checked builds (!NDEBUG or MULTIHIT_CHECKS, the ASan preset) a mismatch
// aborts with a diagnostic; release builds trust the caller (BitMatrix rows
// are same-width by construction).

#include <cstdint>
#include <span>

namespace multihit {

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

enum class BitopsBackend {
  kScalar,  ///< portable reference path
  kAvx2,    ///< AVX2(+BMI2) vectorized popcount
};

/// Human-readable backend name ("scalar", "avx2").
const char* backend_name(BitopsBackend backend) noexcept;

/// True when the running CPU can execute `backend` (CPUID probe; kScalar is
/// always supported).
bool backend_supported(BitopsBackend backend) noexcept;

/// The backend the free functions currently dispatch to. First call resolves
/// the MULTIHIT_BITOPS override ("scalar" | "avx2" | "auto"; unset == auto);
/// auto picks the fastest supported backend. An unsupported or unrecognized
/// override logs a warning and falls back to auto.
BitopsBackend active_backend() noexcept;

/// Retargets dispatch. Returns false (and leaves dispatch unchanged) when
/// the backend is not supported on this CPU. Thread-safe, but callers are
/// expected to settle the backend before spawning sweep workers.
bool set_backend(BitopsBackend backend) noexcept;

/// Parses a MULTIHIT_BITOPS-style name: "scalar" -> kScalar, "avx2" ->
/// kAvx2, "auto" / nullptr -> the best supported backend. Unknown names
/// return auto and set *ok to false when ok is non-null.
BitopsBackend parse_backend(const char* name, bool* ok = nullptr) noexcept;

// ---------------------------------------------------------------------------
// Dispatched kernels (the public hot path)
// ---------------------------------------------------------------------------

/// popcount over one row.
std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept;

/// popcount(a & b). Rows must be the same length.
std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept;

/// popcount(a & b & c).
std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c) noexcept;

/// popcount(a & b & c & d).
std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c,
                           std::span<const std::uint64_t> d) noexcept;

/// popcount(a & ~b): the complement side — samples present in `a` that are
/// NOT hit in `b` (e.g. tumor samples a candidate set leaves uncovered)
/// counted directly, without materializing the complement row.
std::uint64_t andnot_popcount(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) noexcept;

/// dst = a & b. The prefetch step of MemOpt1/MemOpt2: a thread with fixed
/// (i, j) ANDs those rows once into thread-local storage instead of
/// re-reading both from global memory on every inner iteration.
void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept;

/// dst &= a, in place.
void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept;

/// dst = a & ~b: stages the complement-masked row, the ANDNOT counterpart of
/// and_rows.
void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept;

// ---------------------------------------------------------------------------
// Dispatched-call counting (host profiler support)
// ---------------------------------------------------------------------------

/// Per-thread counts of dispatched kernel calls, one counter per public
/// entry point. Plain monotonic counters: they only advance while call
/// counting is enabled, and only for calls made by the reading thread.
struct BitopsCallCounts {
  std::uint64_t popcount_row = 0;
  std::uint64_t and2 = 0;
  std::uint64_t and3 = 0;
  std::uint64_t and4 = 0;
  std::uint64_t and_rows = 0;
  std::uint64_t and_rows_inplace = 0;
  std::uint64_t andnot2 = 0;
  std::uint64_t andnot_rows = 0;

  std::uint64_t total() const noexcept {
    return popcount_row + and2 + and3 + and4 + and_rows + and_rows_inplace + andnot2 +
           andnot_rows;
  }

  BitopsCallCounts operator-(const BitopsCallCounts& other) const noexcept {
    return {popcount_row - other.popcount_row,
            and2 - other.and2,
            and3 - other.and3,
            and4 - other.and4,
            and_rows - other.and_rows,
            and_rows_inplace - other.and_rows_inplace,
            andnot2 - other.andnot2,
            andnot_rows - other.andnot_rows};
  }
};

/// Swaps the dispatch table between the plain kernels and counting wrappers
/// that bump this thread's BitopsCallCounts before forwarding. When counting
/// is off (the default) the plain table is installed and the hot path pays
/// nothing — not even a branch. Returns the previous state. Thread-safe, but
/// like set_backend callers should settle it before spawning sweep workers.
bool set_call_counting(bool enabled) noexcept;

/// Whether the counting tables are currently installed.
bool call_counting() noexcept;

/// The calling thread's dispatched-call counters. Snapshot before and after
/// a counted region and subtract; counts never reset.
const BitopsCallCounts& thread_bitops_calls() noexcept;

// ---------------------------------------------------------------------------
// Direct backend entry points (tests and benches pin these against each
// other; production code goes through the dispatched functions above)
// ---------------------------------------------------------------------------

namespace bitops_scalar {
std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept;
std::uint64_t and_popcount2(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept;
std::uint64_t and_popcount3(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept;
std::uint64_t and_popcount4(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c,
                            std::span<const std::uint64_t> d) noexcept;
std::uint64_t andnot_popcount2(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) noexcept;
void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept;
void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept;
void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept;
}  // namespace bitops_scalar

/// AVX2 entry points exist on every x86-64 build (per-function target
/// attributes); calling them on a CPU without AVX2 is undefined — gate on
/// backend_supported(BitopsBackend::kAvx2). On non-x86 builds they forward
/// to the scalar reference so callers can link unconditionally.
namespace bitops_avx2 {
std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept;
std::uint64_t and_popcount2(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept;
std::uint64_t and_popcount3(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept;
std::uint64_t and_popcount4(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c,
                            std::span<const std::uint64_t> d) noexcept;
std::uint64_t andnot_popcount2(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) noexcept;
void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept;
void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept;
void andnot_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b) noexcept;
}  // namespace bitops_avx2

}  // namespace multihit
