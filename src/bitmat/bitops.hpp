#pragma once
// Word-level kernels over packed sample rows.
//
// The paper packs 64 samples per `unsigned long long` (a 32x memory
// reduction versus one int per sample) and replaces per-sample arithmetic
// with bitwise AND + popcount. These free functions are the arithmetic core
// of every enumeration kernel; they are deliberately branch-free loops the
// compiler can vectorize.

#include <cstdint>
#include <span>

namespace multihit {

/// popcount over one row.
std::uint64_t popcount_row(std::span<const std::uint64_t> a) noexcept;

/// popcount(a & b). Rows must be the same length.
std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept;

/// popcount(a & b & c).
std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c) noexcept;

/// popcount(a & b & c & d).
std::uint64_t and_popcount(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                           std::span<const std::uint64_t> c,
                           std::span<const std::uint64_t> d) noexcept;

/// dst = a & b. The prefetch step of MemOpt1/MemOpt2: a thread with fixed
/// (i, j) ANDs those rows once into thread-local storage instead of
/// re-reading both from global memory on every inner iteration.
void and_rows(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) noexcept;

/// dst &= a, in place.
void and_rows_inplace(std::span<std::uint64_t> dst, std::span<const std::uint64_t> a) noexcept;

}  // namespace multihit
