#include "serve/service.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "data/registry.hpp"
#include "obs/recorder.hpp"
#include "obs/schema.hpp"
#include "sched/schedule.hpp"
#include "sched/workload.hpp"

namespace multihit::serve {

namespace {

/// One lane per job record, above the scheduler lane; rounds advance the
/// simulated clock monotonically, so per-job iteration spans append in
/// non-decreasing start order on each lane.
constexpr std::uint32_t kJobLaneBase = obs::kSchedulerLane + 1;

std::uint32_t words_for(std::uint32_t samples) noexcept { return (samples + 63) / 64; }

std::uint32_t ceil_log2(std::uint32_t n) noexcept {
  std::uint32_t levels = 0;
  for (std::uint32_t span = 1; span < n; span <<= 1) ++levels;
  return levels;
}

/// Same hit-count -> scheme mapping as make_kernel_evaluator (the paper's
/// full-flattening winners), so the time model prices the kernels that
/// actually run.
WorkloadModel model_for_hits(std::uint32_t hits, std::uint32_t genes) {
  switch (hits) {
    case 2:
      return WorkloadModel::for_scheme2(Scheme2::k1x1, genes);
    case 3:
      return WorkloadModel::for_scheme3(Scheme3::k2x1, genes);
    case 5:
      return WorkloadModel::for_scheme5(Scheme5::k4x1, genes);
    default:
      return WorkloadModel::for_scheme4(Scheme4::k3x1, genes);
  }
}

/// One admitted, unfinished job: its Engine session plus the workload model
/// the scheduler prices it with.
struct ActiveJob {
  std::uint32_t record = 0;  ///< index into ServeResult::jobs
  std::unique_ptr<Engine> engine;
  WorkloadModel model;
  std::uint32_t normal_words = 0;
  std::string tenant;
  std::uint32_t priority = 0;
  double arrival = 0.0;
};

}  // namespace

std::vector<std::uint32_t> partition_gpus_across_jobs(const std::vector<double>& work,
                                                      std::uint32_t gpus) {
  const std::size_t n = work.size();
  if (n == 0) throw std::invalid_argument("serve: partition needs at least one job");
  if (n > gpus) throw std::invalid_argument("serve: more running jobs than GPUs");
  double total = 0.0;
  for (const double w : work) {
    if (!(w >= 0.0)) throw std::invalid_argument("serve: job work must be >= 0");
    total += w;
  }

  std::vector<std::uint32_t> grant(n, 1);  // liveness floor: every job runs
  const std::uint32_t spare = gpus - static_cast<std::uint32_t>(n);
  if (spare == 0) return grant;

  if (total <= 0.0) {
    // No work signal (all-zero): spread evenly, low indices take the rest.
    for (std::size_t i = 0; i < n; ++i) grant[i] += spare / static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < spare % n; ++i) ++grant[i];
    return grant;
  }

  // Largest-remainder proportional split of the spare GPUs.
  std::vector<double> frac(n);
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = static_cast<double>(spare) * work[i] / total;
    const auto base = static_cast<std::uint32_t>(ideal);
    grant[i] += base;
    assigned += base;
    frac[i] = ideal - static_cast<double>(base);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::uint32_t k = 0; k < spare - assigned; ++k) ++grant[order[k]];
  return grant;
}

JobService::JobService(ServiceOptions options) : options_(std::move(options)) {
  if (options_.gpus == 0) throw std::invalid_argument("serve: gpus must be > 0");
  if (options_.max_concurrent == 0) {
    throw std::invalid_argument("serve: max_concurrent must be > 0");
  }
  if (options_.queue_capacity == 0) {
    throw std::invalid_argument("serve: queue_capacity must be > 0");
  }
  if (options_.work_units_per_gpu_second <= 0.0) {
    throw std::invalid_argument("serve: work_units_per_gpu_second must be > 0");
  }
}

ServeResult JobService::replay(const RequestTrace& trace) {
  const ServiceOptions& opt = options_;
  obs::Recorder* rec = opt.recorder;
  if (rec) rec->trace.set_lane_name(obs::kSchedulerLane, "serve scheduler");

  ServeResult result;
  std::vector<ActiveJob> active;
  std::uint64_t rounds = 0;
  double now = 0.0;

  // Requests whose absolute arrival time is known, keyed (arrival, request
  // index) so simultaneous arrivals process in trace order. Open mixes start
  // fully released; a closed-loop client's next request materializes when
  // its previous one completes or is rejected.
  using Released = std::pair<double, std::uint32_t>;
  std::priority_queue<Released, std::vector<Released>, std::greater<Released>> released;
  const bool closed = trace.spec.mix == ArrivalMix::kClosed;
  std::vector<std::vector<std::uint32_t>> client_program;
  std::vector<std::size_t> client_next;
  if (closed) {
    client_program.resize(trace.spec.clients);
    for (std::uint32_t i = 0; i < trace.requests.size(); ++i) {
      client_program[trace.requests[i].client].push_back(i);
    }
    client_next.assign(trace.spec.clients, 0);
    for (std::uint32_t c = 0; c < trace.spec.clients; ++c) {
      if (client_program[c].empty()) continue;
      released.emplace(trace.requests[client_program[c][0]].arrival, client_program[c][0]);
      client_next[c] = 1;
    }
  } else {
    for (std::uint32_t i = 0; i < trace.requests.size(); ++i) {
      released.emplace(trace.requests[i].arrival, i);
    }
  }

  const auto release_next = [&](std::uint32_t client, double at) {
    if (!closed) return;
    const auto& program = client_program[client];
    if (client_next[client] >= program.size()) return;
    const std::uint32_t idx = program[client_next[client]++];
    // The generated request carries think time, not an absolute arrival.
    released.emplace(at + trace.requests[idx].arrival, idx);
  };

  const auto tenant_inflight = [&](const std::string& tenant) {
    return static_cast<std::uint32_t>(std::count_if(
        active.begin(), active.end(), [&](const ActiveJob& a) { return a.tenant == tenant; }));
  };

  // Whether a completion burns error budget: slower than the tenant's
  // tightest declared latency target (infinity when no SLO is configured, so
  // only rejections count).
  const auto is_bad_completion = [&](const JobRecord& job) {
    return job.latency() > obs::latency_target(opt.slo, job.tenant);
  };

  // Cumulative per-tenant SLO counters on the scheduler lane, emitted at
  // decision time — arrival for cache hits and rejections, round end for
  // computed completions — so each series is non-decreasing in emission time
  // and windowed deltas over it are well-defined.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> slo_counts;
  const auto slo_event = [&](const std::string& tenant, bool bad, double t) {
    if (!rec) return;
    auto& counts = slo_counts[tenant];
    ++counts.first;
    if (bad) ++counts.second;
    const obs::SeriesLabels labels{{"tenant", tenant}};
    rec->trace.counter(obs::kSchedulerLane, obs::series_with_labels("serve.slo_total", labels),
                       t, static_cast<double>(counts.first));
    rec->trace.counter(obs::kSchedulerLane, obs::series_with_labels("serve.slo_bad", labels),
                       t, static_cast<double>(counts.second));
  };

  // Boundary telemetry on the scheduler lane, sampled at every service round
  // boundary including rounds where nothing ran — absence and threshold
  // rules over these series need them defined through idle gaps. Wait age is
  // the oldest admitted-but-never-scheduled job per tenant (0 when none):
  // the starvation detector's fleet-relative input.
  std::vector<std::string> tenant_names;
  for (const TenantSpec& tenant : trace.spec.tenants) tenant_names.push_back(tenant.name);
  std::sort(tenant_names.begin(), tenant_names.end());
  const auto sample_lanes = [&](double t) {
    if (!rec) return;
    rec->trace.counter(obs::kSchedulerLane, "serve.queue_depth", t,
                       static_cast<double>(active.size()));
    for (const std::string& tenant : tenant_names) {
      double age = 0.0;
      for (const ActiveJob& a : active) {
        if (a.tenant != tenant || result.jobs[a.record].start >= 0.0) continue;
        age = std::max(age, t - a.arrival);
      }
      rec->trace.counter(obs::kSchedulerLane,
                         obs::series_with_labels("serve.wait_age", {{"tenant", tenant}}), t,
                         age);
    }
    rec->trace.counter(obs::kSchedulerLane, "serve.cache_rebuilds", t,
                       static_cast<double>(cache_.stats().dataset_rebuilds));
  };
  if (rec) {
    // Declared once at t=0; the queue_saturation detector reads depth
    // against it.
    rec->trace.counter(obs::kSchedulerLane, "serve.queue_capacity", 0.0,
                       static_cast<double>(opt.queue_capacity));
  }
  sample_lanes(0.0);

  const auto handle_arrival = [&](std::uint32_t index, double t) {
    const Request& req = trace.requests[index];
    if (req.kind == RequestKind::kInvalidate) {
      cache_.invalidate(req.cancer);
      if (rec) {
        rec->metrics.counter("serve.invalidations", {{"cancer", req.cancer}}).add();
        rec->trace.instant(obs::kSchedulerLane, "invalidate", "serve", t,
                           {{"cancer", req.cancer}});
      }
      return;
    }

    const auto type = find_cancer_type(req.cancer);
    if (!type) {
      throw std::invalid_argument("serve: unknown cancer type '" + req.cancer + "'");
    }
    JobRecord job;
    job.id = static_cast<std::uint32_t>(result.jobs.size());
    job.client = req.client;
    job.tenant = req.tenant;
    job.cancer = req.cancer;
    // Hit count defaults to the registry estimate, clamped to the range the
    // enumeration kernels cover.
    job.hits = std::clamp(req.hits != 0 ? req.hits : CancerCache::serve_spec(*type).hits,
                          2u, 5u);
    job.priority = req.priority;
    job.arrival = t;

    if (opt.result_cache) {
      if (const auto* cached = cache_.find_result(req.cancer, job.hits)) {
        // Served straight from the result cache: no GPU time, no queue slot.
        job.cache_hit = true;
        job.start = t;
        job.finish = t + opt.cache_hit_seconds;
        job.selections = *cached;
        if (rec) {
          rec->metrics.counter("serve.cache_served", {{"tenant", job.tenant}}).add();
          rec->metrics
              .histogram("serve.job_latency", {{"source", "cache"}, {"tenant", job.tenant}})
              .observe(job.latency());
        }
        slo_event(job.tenant, is_bad_completion(job), t);
        release_next(req.client, job.finish);
        result.jobs.push_back(std::move(job));
        return;
      }
    }

    const char* reject = nullptr;
    if (active.size() >= opt.queue_capacity) {
      job.outcome = JobOutcome::kRejectedQueueFull;
      reject = "queue_full";
    } else if (tenant_inflight(req.tenant) >= opt.tenant_quota) {
      job.outcome = JobOutcome::kRejectedQuota;
      reject = "quota";
    }
    if (reject) {
      if (rec) {
        rec->metrics
            .counter("serve.jobs_rejected", {{"tenant", job.tenant}, {"reason", reject}})
            .add();
        rec->trace.instant(obs::kSchedulerLane, "reject", "serve", t,
                           {{"tenant", job.tenant}, {"reason", reject}});
      }
      slo_event(job.tenant, true, t);
      release_next(req.client, t);
      result.jobs.push_back(std::move(job));
      return;
    }

    const Dataset& data = cache_.dataset(req.cancer);
    EngineConfig config;
    config.hits = job.hits;
    ActiveJob a;
    a.record = job.id;
    a.engine = std::make_unique<Engine>(data.tumor, data.normal, std::move(config),
                                        make_kernel_evaluator(job.hits));
    a.model = model_for_hits(job.hits, data.genes());
    a.normal_words = words_for(data.normal_samples());
    a.tenant = req.tenant;
    a.priority = req.priority;
    a.arrival = t;
    active.push_back(std::move(a));
    if (rec) {
      rec->metrics.counter("serve.jobs_admitted", {{"tenant", job.tenant}}).add();
      rec->metrics.gauge("serve.queue_depth").set(static_cast<double>(active.size()));
      rec->trace.counter(obs::kSchedulerLane, "serve.queue_depth", t,
                         static_cast<double>(active.size()));
      rec->trace.set_lane_name(kJobLaneBase + job.id, "job " + std::to_string(job.id) + " " +
                                                          job.tenant + "/" + job.cancer);
    }
    result.jobs.push_back(std::move(job));
  };

  // One BSP service round: pick the running set, split the fleet across it,
  // advance every running job exactly one greedy iteration, advance the
  // clock by the slowest job's modeled iteration.
  const auto run_round = [&]() {
    ++rounds;
    const double round_begin = now;

    std::vector<std::uint32_t> order(active.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t lhs, std::uint32_t rhs) {
      const ActiveJob& a = active[lhs];
      const ActiveJob& b = active[rhs];
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.arrival != b.arrival) return a.arrival < b.arrival;
      return a.record < b.record;
    });
    const auto slots = static_cast<std::uint32_t>(std::min<std::size_t>(
        {active.size(), static_cast<std::size_t>(opt.max_concurrent),
         static_cast<std::size_t>(opt.gpus)}));
    order.resize(slots);

    // Modeled next-iteration work per running job: combination count times
    // the word cost of one candidate (BitSplicing shrinks it as the job's
    // cover progresses — late jobs genuinely get cheaper).
    std::vector<double> work(slots);
    std::vector<double> word_cost(slots);
    for (std::uint32_t j = 0; j < slots; ++j) {
      const ActiveJob& a = active[order[j]];
      word_cost[j] =
          static_cast<double>(words_for(a.engine->tumor().samples()) + a.normal_words);
      work[j] = static_cast<double>(a.model.total_work()) * word_cost[j];
    }
    const std::vector<std::uint32_t> grants = partition_gpus_across_jobs(work, opt.gpus);

    // Each job's iteration time: its inner equi-area schedule's critical
    // partition, plus the tree reduce across its grant.
    std::vector<double> duration(slots);
    double longest = 0.0;
    for (std::uint32_t j = 0; j < slots; ++j) {
      const ActiveJob& a = active[order[j]];
      const auto schedule = equiarea_schedule(a.model, grants[j]);
      const double max_work = schedule_imbalance(a.model, schedule).max_work * word_cost[j];
      duration[j] = max_work / opt.work_units_per_gpu_second +
                    static_cast<double>(ceil_log2(grants[j])) * 2.0 * opt.reduce_latency;
      longest = std::max(longest, duration[j]);
    }
    const double round_time = longest + opt.round_overhead;

    for (std::uint32_t j = 0; j < slots; ++j) {
      ActiveJob& a = active[order[j]];
      JobRecord& job = result.jobs[a.record];
      if (job.start < 0.0) job.start = round_begin;
      const std::uint32_t committed = a.engine->step(1);
      if (committed == 0 && !a.engine->done()) {
        throw std::logic_error("serve: session made no progress without finishing");
      }
      job.iterations += committed;
      job.rounds += 1;
      job.gpu_rounds += grants[j];
      if (rec) {
        rec->trace.complete(kJobLaneBase + a.record, "iteration", "serve", round_begin,
                            round_begin + duration[j],
                            {{"gpus", std::to_string(grants[j])}});
      }
    }

    now = round_begin + round_time;
    if (rec) {
      rec->metrics.counter("serve.rounds").add();
      rec->trace.complete(obs::kSchedulerLane, "serve_round", "serve", round_begin, now,
                          {{"jobs", std::to_string(slots)},
                           {"gpus", std::to_string(opt.gpus)}});
    }

    std::vector<ActiveJob> still;
    still.reserve(active.size());
    for (ActiveJob& a : active) {
      if (!a.engine->done()) {
        still.push_back(std::move(a));
        continue;
      }
      JobRecord& job = result.jobs[a.record];
      job.finish = now;
      job.selections = a.engine->result().combinations();
      if (opt.result_cache) cache_.store_result(job.cancer, job.hits, job.selections);
      if (rec) {
        rec->metrics.counter("serve.jobs_completed", {{"tenant", job.tenant}}).add();
        rec->metrics
            .histogram("serve.job_latency",
                       {{"source", "computed"}, {"tenant", job.tenant}})
            .observe(job.latency());
      }
      slo_event(job.tenant, is_bad_completion(job), now);
      release_next(job.client, now);
    }
    active = std::move(still);
    if (rec) rec->metrics.gauge("serve.queue_depth").set(static_cast<double>(active.size()));
  };

  while (!released.empty() || !active.empty()) {
    if (active.empty() && !released.empty()) now = std::max(now, released.top().first);
    // Drain every arrival up to the current round boundary, in arrival
    // order (admission is evaluated at iteration boundaries — the same
    // boundaries every scheduling decision happens on).
    while (!released.empty() && released.top().first <= now) {
      const auto [t, index] = released.top();
      released.pop();
      handle_arrival(index, t);
    }
    if (!active.empty()) run_round();
    sample_lanes(now);
  }

  // Aggregate. Exact percentiles via the sample-exact obs histogram.
  result.rounds = rounds;
  obs::Histogram all;
  struct TenantAgg {
    obs::Histogram latency;
    std::uint32_t completed = 0;
    std::uint32_t rejected = 0;
  };
  std::map<std::string, TenantAgg> tenants;
  for (const JobRecord& job : result.jobs) {
    TenantAgg& agg = tenants[job.tenant];
    if (job.outcome != JobOutcome::kCompleted) {
      ++result.rejected;
      ++agg.rejected;
      continue;
    }
    ++result.completed;
    if (job.cache_hit) ++result.cache_hits;
    all.observe(job.latency());
    agg.latency.observe(job.latency());
    ++agg.completed;
    result.makespan = std::max(result.makespan, job.finish);
  }
  result.p50_latency = all.percentile(50.0);
  result.p99_latency = all.percentile(99.0);
  result.mean_latency =
      all.count() > 0 ? all.sum() / static_cast<double>(all.count()) : 0.0;
  result.jobs_per_sec =
      result.makespan > 0.0 ? static_cast<double>(result.completed) / result.makespan : 0.0;
  for (auto& [name, agg] : tenants) {
    TenantStats stats;
    stats.tenant = name;
    stats.completed = agg.completed;
    stats.rejected = agg.rejected;
    stats.p50_latency = agg.latency.percentile(50.0);
    stats.p99_latency = agg.latency.percentile(99.0);
    stats.mean_latency = agg.latency.count() > 0
                             ? agg.latency.sum() / static_cast<double>(agg.latency.count())
                             : 0.0;
    result.tenants.push_back(std::move(stats));
  }
  result.cache = cache_.stats();
  return result;
}

obs::JsonValue serve_report(const ServeResult& result, const RequestTrace& trace,
                            const ServiceOptions& options) {
  using obs::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(obs::kServeSchema));

  JsonValue t = JsonValue::object();
  t.set("mix", mix_name(trace.spec.mix));
  t.set("jobs", static_cast<std::uint64_t>(trace.spec.jobs));
  t.set("seed", static_cast<std::uint64_t>(trace.spec.seed));
  t.set("requests", static_cast<std::uint64_t>(trace.requests.size()));
  t.set("invalidate_rate", trace.spec.invalidate_rate);
  JsonValue tenant_specs = JsonValue::array();
  for (const TenantSpec& tenant : trace.spec.tenants) {
    JsonValue entry = JsonValue::object();
    entry.set("name", tenant.name);
    entry.set("priority", static_cast<std::uint64_t>(tenant.priority));
    entry.set("weight", tenant.weight);
    tenant_specs.push_back(std::move(entry));
  }
  t.set("tenants", std::move(tenant_specs));
  JsonValue cancers = JsonValue::array();
  for (const std::string& code : trace.spec.cancers) cancers.push_back(code);
  t.set("cancers", std::move(cancers));
  doc.set("trace", std::move(t));

  JsonValue service = JsonValue::object();
  service.set("gpus", static_cast<std::uint64_t>(options.gpus));
  service.set("max_concurrent", static_cast<std::uint64_t>(options.max_concurrent));
  service.set("queue_capacity", static_cast<std::uint64_t>(options.queue_capacity));
  service.set("tenant_quota", static_cast<std::uint64_t>(options.tenant_quota));
  service.set("work_units_per_gpu_second", options.work_units_per_gpu_second);
  service.set("round_overhead", options.round_overhead);
  service.set("reduce_latency", options.reduce_latency);
  service.set("cache_hit_seconds", options.cache_hit_seconds);
  service.set("result_cache", options.result_cache);
  doc.set("service", std::move(service));

  JsonValue summary = JsonValue::object();
  summary.set("rounds", static_cast<std::uint64_t>(result.rounds));
  summary.set("completed", static_cast<std::uint64_t>(result.completed));
  summary.set("rejected", static_cast<std::uint64_t>(result.rejected));
  summary.set("cache_hits", static_cast<std::uint64_t>(result.cache_hits));
  summary.set("makespan", result.makespan);
  summary.set("p50_latency", result.p50_latency);
  summary.set("p99_latency", result.p99_latency);
  summary.set("mean_latency", result.mean_latency);
  summary.set("jobs_per_sec", result.jobs_per_sec);
  doc.set("summary", std::move(summary));

  JsonValue tenants = JsonValue::array();
  for (const TenantStats& stats : result.tenants) {
    JsonValue entry = JsonValue::object();
    entry.set("tenant", stats.tenant);
    entry.set("completed", static_cast<std::uint64_t>(stats.completed));
    entry.set("rejected", static_cast<std::uint64_t>(stats.rejected));
    entry.set("p50_latency", stats.p50_latency);
    entry.set("p99_latency", stats.p99_latency);
    entry.set("mean_latency", stats.mean_latency);
    tenants.push_back(std::move(entry));
  }
  doc.set("tenants", std::move(tenants));

  JsonValue cache = JsonValue::object();
  cache.set("dataset_builds", static_cast<std::uint64_t>(result.cache.dataset_builds));
  cache.set("dataset_rebuilds", static_cast<std::uint64_t>(result.cache.dataset_rebuilds));
  cache.set("dataset_hits", static_cast<std::uint64_t>(result.cache.dataset_hits));
  cache.set("result_hits", static_cast<std::uint64_t>(result.cache.result_hits));
  cache.set("result_misses", static_cast<std::uint64_t>(result.cache.result_misses));
  cache.set("invalidations", static_cast<std::uint64_t>(result.cache.invalidations));
  doc.set("cache", std::move(cache));

  JsonValue jobs = JsonValue::array();
  for (const JobRecord& job : result.jobs) {
    JsonValue entry = JsonValue::object();
    entry.set("id", static_cast<std::uint64_t>(job.id));
    entry.set("client", static_cast<std::uint64_t>(job.client));
    entry.set("tenant", job.tenant);
    entry.set("cancer", job.cancer);
    entry.set("hits", static_cast<std::uint64_t>(job.hits));
    entry.set("priority", static_cast<std::uint64_t>(job.priority));
    entry.set("arrival", job.arrival);
    entry.set("start", job.start);
    entry.set("finish", job.finish);
    entry.set("outcome", outcome_name(job.outcome));
    entry.set("cache_hit", job.cache_hit);
    entry.set("iterations", static_cast<std::uint64_t>(job.iterations));
    entry.set("rounds", static_cast<std::uint64_t>(job.rounds));
    entry.set("gpu_rounds", static_cast<std::uint64_t>(job.gpu_rounds));
    if (job.outcome == JobOutcome::kCompleted) entry.set("latency", job.latency());
    JsonValue selections = JsonValue::array();
    for (const auto& combo : job.selections) {
      JsonValue genes = JsonValue::array();
      for (const std::uint32_t gene : combo) genes.push_back(static_cast<std::uint64_t>(gene));
      selections.push_back(std::move(genes));
    }
    entry.set("selections", std::move(selections));
    jobs.push_back(std::move(entry));
  }
  doc.set("jobs", std::move(jobs));
  return doc;
}

obs::SloInput slo_input(const ServeResult& result) {
  obs::SloInput input;
  input.jobs.reserve(result.jobs.size());
  for (const JobRecord& job : result.jobs) {
    obs::SloJob row;
    row.tenant = job.tenant;
    row.arrival = job.arrival;
    row.finish = job.finish;
    row.rejected = job.outcome != JobOutcome::kCompleted;
    row.cache_hit = job.cache_hit;
    if (!row.rejected) row.latency = job.latency();
    input.jobs.push_back(std::move(row));
  }
  return input;
}

void apply_scenario(TraceSpec& spec, ServiceOptions& options, Scenario scenario) {
  switch (scenario) {
    case Scenario::kNone:
      return;
    case Scenario::kOverload:
      // Bursts far beyond a shrunken queue: the backlog pins at capacity and
      // admission sheds load -> queue_saturation.
      spec.mix = ArrivalMix::kBursty;
      spec.burst_size = 12;
      spec.burst_every = 60.0;
      options.queue_capacity = 6;
      options.max_concurrent = 4;
      return;
    case Scenario::kStarvation:
      // A closed loop of three zero-think clients over two round slots and a
      // heavy gold majority (result cache off, so every gold job really
      // occupies a slot): a completing gold client resubmits at the same
      // instant, so gold's own queue age stays ~0 while a bronze roll waits
      // until a second client also rolls bronze -> tenant_starvation on
      // bronze against a near-zero fleet-relative baseline.
      spec.mix = ArrivalMix::kClosed;
      spec.clients = 3;
      spec.think_time = 0.0;
      spec.tenants = {{"gold", 2, 6.0}, {"bronze", 0, 1.0}};
      options.max_concurrent = 2;
      options.tenant_quota = 16;
      options.result_cache = false;
      return;
    case Scenario::kBurn:
      // An open-loop flood over a small queue with the result cache off:
      // rejections dominate and the windowed bad fraction torches the error
      // budget -> slo_fast_burn / slo_slow_burn (given a budget objective in
      // the SLO spec).
      spec.mix = ArrivalMix::kOpen;
      spec.mean_interarrival = 2.5;
      options.queue_capacity = 4;
      options.max_concurrent = 2;
      options.result_cache = false;
      return;
    case Scenario::kThrash:
      // An invalidation storm concentrated on one cancer type: nearly every
      // analyze rebuilds its dataset from scratch -> cache_thrash.
      spec.mix = ArrivalMix::kOpen;
      spec.invalidate_rate = 2.0;
      spec.cancers = {"BRCA"};
      return;
  }
}

}  // namespace multihit::serve
