#pragma once
// Deterministic multi-tenant job service on the simulated clock.
//
// The paper partitions ONE job's λ space across G GPUs with the equi-area
// scheduler. The service generalizes that to N concurrent jobs: on every
// iteration boundary ("round") it splits the G simulated GPUs across the
// running jobs proportionally to each job's modeled next-iteration work (the
// same equal-area principle, one level up), then splits each job's grant
// over its own λ space with the ordinary equi-area schedule. Every running
// job advances exactly one greedy iteration per round through its
// multihit::Engine session — the session API is what makes a job a
// resumable, preemptible object — and the round's simulated length is the
// slowest job's iteration (a BSP barrier; re-partitioning happens only at
// these boundaries, exactly like the paper's fault re-partitions).
//
// Admission control: a bounded backlog (queue_capacity), per-tenant quotas
// on in-flight jobs, and priorities (higher runs first; preemption at
// iteration boundaries only). Completed selections land in the per-cancer
// result cache; an identical later request is served from cache in
// cache_hit_seconds without touching a GPU.
//
// Everything is deterministic: arrivals come from the seeded trace, compute
// times from the workload model, and ties break on (priority desc, arrival
// asc, id asc) — two replays of one trace produce byte-identical
// multihit.serve.v1 artifacts, on any bitops backend, and every job's
// selections are bit-identical to a standalone single-job run (pinned in
// tests/test_serve.cpp and scripts/ci.sh).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/slo.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"

namespace multihit::obs {
struct Recorder;
}  // namespace multihit::obs

namespace multihit::serve {

struct ServiceOptions {
  std::uint32_t gpus = 24;           ///< simulated fleet size G
  std::uint32_t max_concurrent = 8;  ///< jobs per round (also capped by G)
  /// Bound on admitted-but-unfinished jobs; arrivals beyond it are shed.
  std::uint32_t queue_capacity = 16;
  /// Max in-flight (admitted, unfinished) jobs per tenant.
  std::uint32_t tenant_quota = 6;
  /// Modeled per-GPU throughput in workload-model work units. Deliberately
  /// throttled so a serve-scale iteration occupies seconds of *simulated*
  /// time — the shape a paper-scale job has on the real machine (DESIGN §13).
  double work_units_per_gpu_second = 2.0e4;
  /// Per-round fixed cost: N-over-G schedule build + dispatch barrier.
  double round_overhead = 0.25;
  /// Per-tree-level candidate reduce/broadcast latency within a job.
  double reduce_latency = 1.5e-6;
  /// Modeled time to serve a result-cache hit (lookup + transfer).
  double cache_hit_seconds = 0.5;
  bool result_cache = true;
  /// Optional observability: per-tenant labeled serve.* metrics, per-job
  /// trace lanes, serve_round spans on the scheduler lane. Null changes
  /// nothing (the usual bit-identical-off contract).
  obs::Recorder* recorder = nullptr;
  /// SLO objectives (obs::parse_slo). The latency targets decide which
  /// completions count *bad* in the cumulative serve.slo_total / serve.slo_bad
  /// trace counters that drive the monitor's burn detectors; empty means only
  /// rejections are bad. Evaluation itself is obs::evaluate_slo — this list
  /// does not change scheduling.
  std::vector<obs::SloObjective> slo;
};

/// The N-over-G split: grants `gpus` across jobs proportionally to `work`
/// (modeled next-iteration work per running job), at least one GPU each,
/// remainder by largest fractional share with lowest-index tie-break.
/// Requires 1 <= work.size() <= gpus; all work values must be >= 0.
std::vector<std::uint32_t> partition_gpus_across_jobs(const std::vector<double>& work,
                                                      std::uint32_t gpus);

struct TenantStats {
  std::string tenant;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double mean_latency = 0.0;
};

struct ServeResult {
  std::vector<JobRecord> jobs;  ///< every request, in admission order
  std::uint64_t rounds = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  std::uint32_t cache_hits = 0;
  double makespan = 0.0;  ///< last completion time (simulated s)
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double mean_latency = 0.0;
  double jobs_per_sec = 0.0;  ///< completed / makespan
  std::vector<TenantStats> tenants;  ///< sorted by tenant name
  CancerCache::Stats cache;
};

class JobService {
 public:
  explicit JobService(ServiceOptions options);

  /// Replays one trace to completion. The cache persists across replay()
  /// calls on the same service (a second replay of an identical trace is
  /// mostly cache hits — pinned in tests).
  ServeResult replay(const RequestTrace& trace);

  const ServiceOptions& options() const noexcept { return options_; }
  CancerCache& cache() noexcept { return cache_; }

 private:
  ServiceOptions options_;
  CancerCache cache_;
};

/// The multihit.serve.v1 artifact: trace echo, service config, per-job
/// records (selections included), aggregate + per-tenant latency stats.
obs::JsonValue serve_report(const ServeResult& result, const RequestTrace& trace,
                            const ServiceOptions& options);

/// The SLO evaluator's view of a finished replay: one row per analyze
/// request, in admission order. Bit-identical to
/// obs::slo_input_from_serve_json over this run's serve_report (the
/// byte-identity contract behind `obstool slo`).
obs::SloInput slo_input(const ServeResult& result);

/// Rewrites `spec` and `options` so the scenario's failure class manifests
/// (kNone leaves both untouched). Shared by multihit-serve --scenario and
/// the detector-quality tests, so the planted ground truth is one
/// definition.
void apply_scenario(TraceSpec& spec, ServiceOptions& options, Scenario scenario);

}  // namespace multihit::serve
