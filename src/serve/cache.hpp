#pragma once
// Per-cancer-type matrix and result caching for the job service.
//
// Building a job's input is not free: the gene-sample matrices must be
// materialized (in production: fetched, parsed, bit-packed) before a single
// combination can be scored, and two tenants asking for the same cancer type
// at the same hit count get — by determinism — the same answer. The cache
// therefore holds two layers per registry code:
//
//   matrices:  the serve-scale Dataset, built once per (code, generation);
//   results:   completed selections keyed by (code, hits), valid only for
//              the generation they were computed against.
//
// Invalidation is explicit (a kInvalidate request, i.e. "new cohort data
// landed for this type"): it bumps the code's generation, which atomically
// drops both layers. The synthetic generator is deterministic per spec, so a
// rebuilt dataset is bit-identical to the dropped one — which is exactly
// what keeps the service's determinism invariant (every job's selections
// equal a standalone run) independent of where invalidations land in the
// trace.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/registry.hpp"

namespace multihit::serve {

class CancerCache {
 public:
  struct Stats {
    std::uint64_t dataset_builds = 0;
    /// The subset of dataset_builds forced by an earlier invalidation (the
    /// generation had already been bumped) — the cache-thrash signal.
    std::uint64_t dataset_rebuilds = 0;
    std::uint64_t dataset_hits = 0;
    std::uint64_t result_hits = 0;
    std::uint64_t result_misses = 0;
    std::uint64_t invalidations = 0;
  };

  /// The serve-scale matrices for a registry code; built on first use and on
  /// first use after an invalidation. Throws std::invalid_argument for codes
  /// the registry does not know.
  const Dataset& dataset(const std::string& code);

  /// Current generation of a code (0 until the first invalidation).
  std::uint64_t generation(const std::string& code) const noexcept;

  /// Cached selections for (code, hits) at the current generation; nullptr
  /// on miss. Counts a result hit/miss either way.
  const std::vector<std::vector<std::uint32_t>>* find_result(const std::string& code,
                                                             std::uint32_t hits);

  void store_result(const std::string& code, std::uint32_t hits,
                    std::vector<std::vector<std::uint32_t>> selections);

  /// Drops the code's matrices and every result computed from them.
  void invalidate(const std::string& code);

  const Stats& stats() const noexcept { return stats_; }

  /// The serve-scale downscale of a registry entry's functional spec: small
  /// enough that a whole multi-tenant trace replays in CI seconds, planted
  /// the same way. Deterministic per registry entry.
  static SyntheticSpec serve_spec(const CancerType& type);

 private:
  struct Entry {
    std::uint64_t generation = 0;
    bool built = false;
    Dataset dataset;
    /// hits -> selections, valid for `generation` only (cleared on bump).
    std::map<std::uint32_t, std::vector<std::vector<std::uint32_t>>> results;
  };

  Entry& entry(const std::string& code);

  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace multihit::serve
