#pragma once
// Job and request-trace types for the multi-tenant analysis service.
//
// The paper runs ONE weighted-set-cover job partitioned across the whole
// fleet; the serving layer's unit of work is instead a *request*: a tenant
// asks for the multi-hit analysis of one cancer type. A request trace is a
// seeded, fully deterministic sequence of such requests — open-loop
// (Poisson), closed-loop (a fixed client population with think times),
// bursty, or diurnal — that the JobService replays on the simulated clock.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace multihit::serve {

enum class RequestKind {
  kAnalyze,     ///< run (or serve from cache) one cancer-type analysis
  kInvalidate,  ///< drop the cancer type's cached matrices and results
};

struct Request {
  /// Simulated arrival second. Open mixes carry absolute times; in a
  /// closed-loop trace only each client's FIRST request is absolute — later
  /// ones hold the think time added to the client's previous completion.
  double arrival = 0.0;
  std::uint32_t client = 0;  ///< closed-loop client id; unused in open mixes
  std::string tenant;
  std::uint32_t priority = 0;  ///< higher is scheduled first (iteration-boundary preemption)
  RequestKind kind = RequestKind::kAnalyze;
  std::string cancer;  ///< registry code ("BRCA", "LUAD", ...)
  /// 0 = the registry's estimated hit count for the cancer type.
  std::uint32_t hits = 0;
};

enum class ArrivalMix { kOpen, kClosed, kBursty, kDiurnal };

const char* mix_name(ArrivalMix mix) noexcept;
std::optional<ArrivalMix> parse_mix(std::string_view name) noexcept;

struct TenantSpec {
  std::string name;
  std::uint32_t priority = 0;
  double weight = 1.0;  ///< sampling weight in the request mix
};

struct TraceSpec {
  ArrivalMix mix = ArrivalMix::kOpen;
  std::uint32_t jobs = 24;  ///< analyze requests to generate
  std::uint64_t seed = 1;
  double mean_interarrival = 20.0;  ///< s (open; bursty/diurnal base rate)
  std::uint32_t clients = 4;        ///< closed-loop population
  double think_time = 15.0;         ///< closed-loop think time (s)
  std::uint32_t burst_size = 6;     ///< bursty: requests per burst
  double burst_every = 120.0;       ///< bursty: burst period (s)
  double diurnal_period = 600.0;    ///< diurnal: one "day" (s)
  double diurnal_amplitude = 0.8;   ///< rate modulation in [0, 1)
  /// Extra invalidation requests as a fraction of `jobs`, spread uniformly
  /// over the arrival window (open mixes only).
  double invalidate_rate = 0.0;
  /// Defaults to gold(2)/silver(1)/bronze(0) with weights 1/2/3.
  std::vector<TenantSpec> tenants;
  /// Registry codes to sample from; defaults to the full cancer registry.
  std::vector<std::string> cancers;
};

struct RequestTrace {
  TraceSpec spec;  ///< with defaults materialized
  /// Arrival-ordered for open mixes; per-client program order preserved for
  /// closed loop (the service materializes actual arrival times).
  std::vector<Request> requests;
};

/// Planted serve pathologies for detector scoring: each scenario rewrites a
/// trace spec + service config so exactly one failure class manifests, and
/// the matching monitor detector (queue_saturation, tenant_starvation,
/// slo_*_burn, cache_thrash) must catch it — the serve-side analogue of the
/// cluster fault injector's labeled ground truth.
enum class Scenario { kNone, kOverload, kStarvation, kBurn, kThrash };

const char* scenario_name(Scenario scenario) noexcept;
std::optional<Scenario> parse_scenario(std::string_view name) noexcept;

/// Deterministic: the same spec always yields byte-for-byte the same trace.
RequestTrace generate_trace(const TraceSpec& spec);

enum class JobOutcome { kCompleted, kRejectedQueueFull, kRejectedQuota };

const char* outcome_name(JobOutcome outcome) noexcept;

/// Everything the service records about one admitted-or-rejected request.
struct JobRecord {
  std::uint32_t id = 0;
  std::uint32_t client = 0;
  std::string tenant;
  std::string cancer;
  std::uint32_t hits = 0;
  std::uint32_t priority = 0;
  double arrival = 0.0;
  double start = -1.0;   ///< first scheduling round it ran in (-1 = never ran)
  double finish = -1.0;  ///< completion time (-1 = rejected)
  std::uint32_t iterations = 0;  ///< greedy iterations committed
  std::uint32_t rounds = 0;      ///< scheduling rounds participated in
  std::uint64_t gpu_rounds = 0;  ///< Σ GPUs held per round (GPU·round occupancy)
  bool cache_hit = false;
  JobOutcome outcome = JobOutcome::kCompleted;
  std::vector<std::vector<std::uint32_t>> selections;  ///< the analysis answer

  double latency() const noexcept { return finish - arrival; }
};

}  // namespace multihit::serve
