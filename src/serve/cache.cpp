#include "serve/cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/generator.hpp"

namespace multihit::serve {

SyntheticSpec CancerCache::serve_spec(const CancerType& type) {
  // The registry's functional downscale targets single-job experiments; a
  // trace replays dozens of jobs (twice, under two bitops backends) inside
  // CI, so 4-plus-hit types shrink further. C(44,4) ≈ 1.4e5 combinations
  // per iteration keeps a whole bursty trace under a second even on the
  // scalar backend.
  SyntheticSpec spec = type.functional;
  if (spec.hits >= 4) {
    spec.genes = std::min<std::uint32_t>(spec.genes, 44);
    spec.tumor_samples = std::min<std::uint32_t>(spec.tumor_samples, 56);
    spec.normal_samples = std::min<std::uint32_t>(spec.normal_samples, 44);
  } else {
    spec.genes = std::min<std::uint32_t>(spec.genes, 96);
    spec.tumor_samples = std::min<std::uint32_t>(spec.tumor_samples, 80);
    spec.normal_samples = std::min<std::uint32_t>(spec.normal_samples, 64);
  }
  spec.num_combinations = std::min<std::uint32_t>(spec.num_combinations, 3);
  return spec;
}

CancerCache::Entry& CancerCache::entry(const std::string& code) {
  const auto it = entries_.find(code);
  if (it != entries_.end()) return it->second;
  if (!find_cancer_type(code)) {
    throw std::invalid_argument("serve cache: unknown cancer type '" + code + "'");
  }
  return entries_[code];
}

const Dataset& CancerCache::dataset(const std::string& code) {
  Entry& e = entry(code);
  if (!e.built) {
    const auto type = find_cancer_type(code);
    e.dataset = generate_dataset(serve_spec(*type));
    e.dataset.name = code;
    e.built = true;
    ++stats_.dataset_builds;
    if (e.generation > 0) ++stats_.dataset_rebuilds;
  } else {
    ++stats_.dataset_hits;
  }
  return e.dataset;
}

std::uint64_t CancerCache::generation(const std::string& code) const noexcept {
  const auto it = entries_.find(code);
  return it == entries_.end() ? 0 : it->second.generation;
}

const std::vector<std::vector<std::uint32_t>>* CancerCache::find_result(const std::string& code,
                                                                        std::uint32_t hits) {
  Entry& e = entry(code);
  const auto it = e.results.find(hits);
  if (it == e.results.end()) {
    ++stats_.result_misses;
    return nullptr;
  }
  ++stats_.result_hits;
  return &it->second;
}

void CancerCache::store_result(const std::string& code, std::uint32_t hits,
                               std::vector<std::vector<std::uint32_t>> selections) {
  entry(code).results[hits] = std::move(selections);
}

void CancerCache::invalidate(const std::string& code) {
  Entry& e = entry(code);
  ++e.generation;
  e.built = false;
  e.dataset = Dataset{};
  e.results.clear();
  ++stats_.invalidations;
}

}  // namespace multihit::serve
