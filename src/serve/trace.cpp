#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/registry.hpp"
#include "serve/job.hpp"
#include "util/rng.hpp"

namespace multihit::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Inverse-CDF exponential variate; deterministic from the trace Rng.
double exponential(Rng& rng, double mean) {
  const double u = rng.uniform_double();  // [0, 1)
  return -std::log(1.0 - u) * mean;
}

std::size_t weighted_pick(Rng& rng, const std::vector<TenantSpec>& tenants) {
  double total = 0.0;
  for (const TenantSpec& t : tenants) total += t.weight;
  double mark = rng.uniform_double() * total;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    mark -= tenants[i].weight;
    if (mark < 0.0) return i;
  }
  return tenants.size() - 1;
}

}  // namespace

const char* mix_name(ArrivalMix mix) noexcept {
  switch (mix) {
    case ArrivalMix::kOpen:
      return "open";
    case ArrivalMix::kClosed:
      return "closed";
    case ArrivalMix::kBursty:
      return "bursty";
    case ArrivalMix::kDiurnal:
      return "diurnal";
  }
  return "?";
}

std::optional<ArrivalMix> parse_mix(std::string_view name) noexcept {
  if (name == "open") return ArrivalMix::kOpen;
  if (name == "closed") return ArrivalMix::kClosed;
  if (name == "bursty") return ArrivalMix::kBursty;
  if (name == "diurnal") return ArrivalMix::kDiurnal;
  return std::nullopt;
}

const char* scenario_name(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kNone:
      return "none";
    case Scenario::kOverload:
      return "overload";
    case Scenario::kStarvation:
      return "starvation";
    case Scenario::kBurn:
      return "burn";
    case Scenario::kThrash:
      return "thrash";
  }
  return "?";
}

std::optional<Scenario> parse_scenario(std::string_view name) noexcept {
  if (name == "none") return Scenario::kNone;
  if (name == "overload") return Scenario::kOverload;
  if (name == "starvation") return Scenario::kStarvation;
  if (name == "burn") return Scenario::kBurn;
  if (name == "thrash") return Scenario::kThrash;
  return std::nullopt;
}

const char* outcome_name(JobOutcome outcome) noexcept {
  switch (outcome) {
    case JobOutcome::kCompleted:
      return "completed";
    case JobOutcome::kRejectedQueueFull:
      return "rejected_queue_full";
    case JobOutcome::kRejectedQuota:
      return "rejected_quota";
  }
  return "?";
}

RequestTrace generate_trace(const TraceSpec& spec_in) {
  RequestTrace trace;
  trace.spec = spec_in;
  TraceSpec& spec = trace.spec;
  if (spec.jobs == 0) throw std::invalid_argument("trace: jobs must be > 0");
  if (spec.mean_interarrival <= 0.0) {
    throw std::invalid_argument("trace: mean_interarrival must be > 0");
  }
  if (spec.mix == ArrivalMix::kClosed && spec.clients == 0) {
    throw std::invalid_argument("trace: closed loop needs clients > 0");
  }
  if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("trace: diurnal_amplitude must be in [0, 1)");
  }
  if (spec.mix == ArrivalMix::kBursty && spec.burst_size == 0) {
    throw std::invalid_argument("trace: bursty mix needs burst_size > 0");
  }
  if (spec.tenants.empty()) {
    spec.tenants = {{"gold", 2, 1.0}, {"silver", 1, 2.0}, {"bronze", 0, 3.0}};
  }
  if (spec.cancers.empty()) {
    for (const CancerType& type : cancer_registry()) spec.cancers.push_back(type.code);
  }

  Rng rng(spec.seed);
  const auto flesh_out = [&](Request& r) {
    const TenantSpec& tenant = spec.tenants[weighted_pick(rng, spec.tenants)];
    r.tenant = tenant.name;
    r.priority = tenant.priority;
    r.cancer = spec.cancers[rng.uniform(spec.cancers.size())];
  };

  double t = 0.0;
  for (std::uint32_t i = 0; i < spec.jobs; ++i) {
    Request r;
    switch (spec.mix) {
      case ArrivalMix::kOpen:
        t += exponential(rng, spec.mean_interarrival);
        r.arrival = t;
        break;
      case ArrivalMix::kBursty:
        // Whole bursts land at the period marks — the thundering herd the
        // admission queue and quotas exist for.
        r.arrival = static_cast<double>(i / spec.burst_size) * spec.burst_every;
        break;
      case ArrivalMix::kDiurnal: {
        // Rate modulated over the "day": the local mean interarrival
        // stretches in the trough and compresses at the peak.
        const double phase = std::sin(2.0 * kPi * t / spec.diurnal_period);
        const double local_mean =
            spec.mean_interarrival / (1.0 + spec.diurnal_amplitude * phase);
        t += exponential(rng, local_mean);
        r.arrival = t;
        break;
      }
      case ArrivalMix::kClosed:
        // Client i%C's program; only its first request carries an absolute
        // arrival (a staggered session start), later ones carry think time.
        r.client = i % spec.clients;
        r.arrival = i < spec.clients ? rng.uniform_double() * spec.think_time
                                     : spec.think_time;
        break;
    }
    flesh_out(r);  // tenant/priority/cancer
    trace.requests.push_back(std::move(r));
  }

  if (spec.mix != ArrivalMix::kClosed && spec.invalidate_rate > 0.0) {
    const double window = trace.requests.empty() ? 0.0 : trace.requests.back().arrival;
    const auto invalidations =
        static_cast<std::uint32_t>(spec.invalidate_rate * static_cast<double>(spec.jobs));
    for (std::uint32_t i = 0; i < invalidations; ++i) {
      Request r;
      r.kind = RequestKind::kInvalidate;
      r.arrival = rng.uniform_double() * window;
      r.tenant = "admin";
      r.cancer = spec.cancers[rng.uniform(spec.cancers.size())];
      trace.requests.push_back(std::move(r));
    }
    std::stable_sort(trace.requests.begin(), trace.requests.end(),
                     [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  }
  return trace;
}

}  // namespace multihit::serve
