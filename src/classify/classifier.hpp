#pragma once
// Combination classifier (paper §IV-F, Fig. 9).
//
// A sample is classified as *tumor* iff it carries mutations in every gene
// of at least one identified combination; otherwise *normal*. Evaluated on
// the held-out 25% test split, the paper reports 83% average sensitivity and
// 90% average specificity across 11 cancer types, with Wilson-style 95%
// confidence intervals.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/stats.hpp"

namespace multihit {

class CombinationClassifier {
 public:
  /// `combinations`: gene-id sets selected by the greedy engine on the
  /// training split.
  explicit CombinationClassifier(std::vector<std::vector<std::uint32_t>> combinations);

  /// True iff sample `sample` of `matrix` is predicted to be a tumor.
  bool predict_tumor(const BitMatrix& matrix, std::uint32_t sample) const noexcept;

  const std::vector<std::vector<std::uint32_t>>& combinations() const noexcept {
    return combinations_;
  }

 private:
  std::vector<std::vector<std::uint32_t>> combinations_;
};

/// Sensitivity/specificity of a classifier on one dataset.
struct ClassificationReport {
  std::uint64_t true_positives = 0;   ///< tumor samples predicted tumor
  std::uint64_t false_negatives = 0;  ///< tumor samples predicted normal
  std::uint64_t true_negatives = 0;   ///< normal samples predicted normal
  std::uint64_t false_positives = 0;  ///< normal samples predicted tumor

  double sensitivity() const noexcept;
  double specificity() const noexcept;
  /// 95% Wilson intervals.
  stats::Interval sensitivity_ci() const;
  stats::Interval specificity_ci() const;
};

/// Applies the classifier to every sample of `data` (tumor matrix samples
/// are positives, normal matrix samples negatives).
ClassificationReport evaluate_classifier(const CombinationClassifier& classifier,
                                         const Dataset& data);

}  // namespace multihit
