#include "classify/classifier.hpp"

namespace multihit {

CombinationClassifier::CombinationClassifier(
    std::vector<std::vector<std::uint32_t>> combinations)
    : combinations_(std::move(combinations)) {}

bool CombinationClassifier::predict_tumor(const BitMatrix& matrix,
                                          std::uint32_t sample) const noexcept {
  for (const auto& combo : combinations_) {
    bool all_mutated = true;
    for (std::uint32_t gene : combo) {
      if (!matrix.get(gene, sample)) {
        all_mutated = false;
        break;
      }
    }
    if (all_mutated && !combo.empty()) return true;
  }
  return false;
}

double ClassificationReport::sensitivity() const noexcept {
  const std::uint64_t positives = true_positives + false_negatives;
  return positives == 0 ? 0.0
                        : static_cast<double>(true_positives) / static_cast<double>(positives);
}

double ClassificationReport::specificity() const noexcept {
  const std::uint64_t negatives = true_negatives + false_positives;
  return negatives == 0 ? 0.0
                        : static_cast<double>(true_negatives) / static_cast<double>(negatives);
}

stats::Interval ClassificationReport::sensitivity_ci() const {
  return stats::wilson_interval(true_positives, true_positives + false_negatives);
}

stats::Interval ClassificationReport::specificity_ci() const {
  return stats::wilson_interval(true_negatives, true_negatives + false_positives);
}

ClassificationReport evaluate_classifier(const CombinationClassifier& classifier,
                                         const Dataset& data) {
  ClassificationReport report;
  for (std::uint32_t s = 0; s < data.tumor_samples(); ++s) {
    if (classifier.predict_tumor(data.tumor, s)) {
      ++report.true_positives;
    } else {
      ++report.false_negatives;
    }
  }
  for (std::uint32_t s = 0; s < data.normal_samples(); ++s) {
    if (classifier.predict_tumor(data.normal, s)) {
      ++report.false_positives;
    } else {
      ++report.true_negatives;
    }
  }
  return report;
}

}  // namespace multihit
