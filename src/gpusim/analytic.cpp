#include "gpusim/analytic.hpp"

#include <algorithm>
#include <cassert>

#include "combinat/linearize.hpp"

namespace multihit {

namespace {

// Threads of [level_first, level_last) that fall inside [begin, end).
std::uint64_t clip(std::uint64_t level_first, std::uint64_t level_last, std::uint64_t begin,
                   std::uint64_t end) noexcept {
  const std::uint64_t lo = std::max(level_first, begin);
  const std::uint64_t hi = std::min(level_last, end);
  return hi > lo ? hi - lo : 0;
}

}  // namespace

KernelStats analytic_stats_4hit(Scheme4 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words) {
  KernelStats stats;
  if (begin >= end) return stats;
  const std::uint64_t W = static_cast<std::uint64_t>(tumor_words) + normal_words;

  switch (scheme) {
    case Scheme4::k3x1: {
      // Levels by largest gene k: threads [C(k,3), C(k+1,3)), work m = G-1-k.
      const std::uint32_t k_lo = tetrahedral_level(begin);
      const std::uint32_t k_hi = tetrahedral_level(end - 1);
      for (std::uint32_t k = k_lo; k <= k_hi; ++k) {
        const std::uint64_t n = clip(tetrahedral(k), tetrahedral(k + 1), begin, end);
        if (n == 0) continue;
        const std::uint64_t m = genes - 1 - k;
        if (m == 0) continue;  // kernel skips zero-work threads entirely
        stats.combinations += n * m;
        stats.distinct_rows += n * 2 * (3 + m);
        if (opts.prefetch_j) {
          stats.word_ops += n * (2 + m) * W;
          stats.global_words += n * (3 + m) * W;
          stats.local_words += n * m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += n * 3 * m * W;
          stats.global_words += n * (1 + 3 * m) * W;
          stats.local_words += n * m * W;
        } else {
          stats.word_ops += n * 3 * m * W;
          stats.global_words += n * 4 * m * W;
        }
      }
      break;
    }
    case Scheme4::k2x2: {
      // Levels by larger gene j: threads [C(j,2), C(j+1,2)), count j.
      const std::uint32_t j_lo = unrank_pair(begin).j;
      const std::uint32_t j_hi = unrank_pair(end - 1).j;
      for (std::uint32_t j = j_lo; j <= j_hi; ++j) {
        const std::uint64_t n = clip(triangular(j), triangular(j + 1), begin, end);
        if (n == 0) continue;
        if (j + 2 >= genes) {  // zero-work thread: kernel counts 4 distinct rows
          stats.distinct_rows += n * 4;
          continue;
        }
        const std::uint64_t m = triangular(genes - 1 - j);
        const std::uint64_t nk = genes - 2 - j;
        stats.combinations += n * m;
        stats.distinct_rows += n * 2 * (2 + (genes - 1 - j));
        if (opts.prefetch_j) {
          stats.word_ops += n * (1 + nk + m) * W;
          stats.global_words += n * (2 + nk + m) * W;
          stats.local_words += n * m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += n * 3 * m * W;
          stats.global_words += n * (1 + 3 * m) * W;
          stats.local_words += n * m * W;
        } else {
          stats.word_ops += n * 3 * m * W;
          stats.global_words += n * 4 * m * W;
        }
      }
      break;
    }
    case Scheme4::k1x3: {
      for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
        const auto i = static_cast<std::uint32_t>(lambda);
        const std::uint64_t m = tetrahedral(genes - 1 - i);
        const std::uint64_t nj = genes >= i + 3 ? genes - 3 - i : 0;
        const std::uint64_t nk = genes >= i + 2 ? triangular(genes - 2 - i) : 0;
        stats.combinations += m;
        stats.distinct_rows += 2 * (genes - i);
        if (opts.prefetch_j) {
          stats.word_ops += (nj + nk + m) * W;
          stats.global_words += (1 + nj + nk + m) * W;
          stats.local_words += m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += 3 * m * W;
          stats.global_words += (1 + 3 * m) * W;
          stats.local_words += m * W;
        } else {
          stats.word_ops += 3 * m * W;
          stats.global_words += 4 * m * W;
        }
      }
      break;
    }
    case Scheme4::k4x1: {
      const std::uint64_t n = end - begin;
      stats.combinations += n;
      stats.word_ops += n * 3 * W;
      stats.global_words += n * 4 * W;
      stats.distinct_rows += n * 8;
      break;
    }
  }
  return stats;
}

KernelStats analytic_stats_3hit(Scheme3 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words) {
  KernelStats stats;
  if (begin >= end) return stats;
  const std::uint64_t W = static_cast<std::uint64_t>(tumor_words) + normal_words;

  switch (scheme) {
    case Scheme3::k2x1: {
      const std::uint32_t j_lo = unrank_pair(begin).j;
      const std::uint32_t j_hi = unrank_pair(end - 1).j;
      for (std::uint32_t j = j_lo; j <= j_hi; ++j) {
        const std::uint64_t n = clip(triangular(j), triangular(j + 1), begin, end);
        if (n == 0) continue;
        const std::uint64_t m = genes - 1 - j;
        if (m == 0) {
          stats.distinct_rows += n * 4;
          continue;
        }
        stats.combinations += n * m;
        stats.distinct_rows += n * 2 * (2 + m);
        if (opts.prefetch_j) {
          stats.word_ops += n * (1 + m) * W;
          stats.global_words += n * (2 + m) * W;
          stats.local_words += n * m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += n * 2 * m * W;
          stats.global_words += n * (1 + 2 * m) * W;
          stats.local_words += n * m * W;
        } else {
          stats.word_ops += n * 2 * m * W;
          stats.global_words += n * 3 * m * W;
        }
      }
      break;
    }
    case Scheme3::k1x2: {
      for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
        const auto i = static_cast<std::uint32_t>(lambda);
        const std::uint64_t m = triangular(genes - 1 - i);
        const std::uint64_t nj = genes >= i + 2 ? genes - 2 - i : 0;
        stats.combinations += m;
        stats.distinct_rows += 2 * (genes - i);
        if (opts.prefetch_j) {
          stats.word_ops += (nj + m) * W;
          stats.global_words += (1 + nj + m) * W;
          stats.local_words += m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += 2 * m * W;
          stats.global_words += (1 + 2 * m) * W;
          stats.local_words += m * W;
        } else {
          stats.word_ops += 2 * m * W;
          stats.global_words += 3 * m * W;
        }
      }
      break;
    }
    case Scheme3::k3x1: {
      const std::uint64_t n = end - begin;
      stats.combinations += n;
      stats.word_ops += n * 2 * W;
      stats.global_words += n * 3 * W;
      stats.distinct_rows += n * 6;
      break;
    }
  }
  return stats;
}

KernelStats analytic_stats_2hit(Scheme2 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words) {
  KernelStats stats;
  if (begin >= end) return stats;
  const std::uint64_t W = static_cast<std::uint64_t>(tumor_words) + normal_words;
  const bool prefetch = opts.prefetch_i || opts.prefetch_j;

  switch (scheme) {
    case Scheme2::k1x1: {
      for (std::uint64_t lambda = begin; lambda < end; ++lambda) {
        const auto i = static_cast<std::uint32_t>(lambda);
        const std::uint64_t m = genes - 1 - i;
        if (m == 0) continue;
        stats.combinations += m;
        stats.word_ops += m * W;
        stats.global_words += (prefetch ? W : 0) + m * (prefetch ? 1 : 2) * W;
        stats.local_words += prefetch ? m * W : 0;
        stats.distinct_rows += 2 * (genes - i);
      }
      break;
    }
    case Scheme2::k2x1: {
      const std::uint64_t n = end - begin;
      stats.combinations += n;
      stats.word_ops += n * W;
      stats.global_words += n * 2 * W;
      stats.distinct_rows += n * 4;
      break;
    }
  }
  return stats;
}

KernelStats analytic_stats_5hit(Scheme5 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words) {
  KernelStats stats;
  if (begin >= end) return stats;
  const std::uint64_t W = static_cast<std::uint64_t>(tumor_words) + normal_words;

  switch (scheme) {
    case Scheme5::k4x1: {
      // Levels by largest gene l: threads [C(l,4), C(l+1,4)), work m = G-1-l.
      const std::uint32_t l_lo = quartic_level(begin);
      const std::uint32_t l_hi = quartic_level(end - 1);
      for (std::uint32_t l = l_lo; l <= l_hi; ++l) {
        const std::uint64_t n = clip(quartic(l), quartic(l + 1), begin, end);
        if (n == 0) continue;
        const std::uint64_t m = genes - 1 - l;
        if (m == 0) continue;
        stats.combinations += n * m;
        stats.distinct_rows += n * 2 * (4 + m);
        if (opts.prefetch_j) {
          stats.word_ops += n * (3 + m) * W;
          stats.global_words += n * (4 + m) * W;
          stats.local_words += n * m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += n * 4 * m * W;
          stats.global_words += n * (1 + 4 * m) * W;
          stats.local_words += n * m * W;
        } else {
          stats.word_ops += n * 4 * m * W;
          stats.global_words += n * 5 * m * W;
        }
      }
      break;
    }
    case Scheme5::k3x2: {
      const std::uint32_t k_lo = tetrahedral_level(begin);
      const std::uint32_t k_hi = tetrahedral_level(end - 1);
      for (std::uint32_t k = k_lo; k <= k_hi; ++k) {
        const std::uint64_t n = clip(tetrahedral(k), tetrahedral(k + 1), begin, end);
        if (n == 0) continue;
        if (k + 2 >= genes) {
          stats.distinct_rows += n * 6;
          continue;
        }
        const std::uint64_t m = triangular(genes - 1 - k);
        const std::uint64_t nl = genes - 2 - k;
        stats.combinations += n * m;
        stats.distinct_rows += n * 2 * (3 + (genes - 1 - k));
        if (opts.prefetch_j) {
          stats.word_ops += n * (2 + nl + m) * W;
          stats.global_words += n * (3 + nl + m) * W;
          stats.local_words += n * m * W;
        } else if (opts.prefetch_i) {
          stats.word_ops += n * 4 * m * W;
          stats.global_words += n * (1 + 4 * m) * W;
          stats.local_words += n * m * W;
        } else {
          stats.word_ops += n * 4 * m * W;
          stats.global_words += n * 5 * m * W;
        }
      }
      break;
    }
  }
  return stats;
}

}  // namespace multihit
