#include "gpusim/smsim.hpp"

#include <algorithm>
#include <vector>

namespace multihit {

namespace {

struct WarpState {
  std::uint64_t comp_left = 0;
  std::uint64_t mem_left = 0;
  std::uint64_t stride = 0;          // compute instructions between loads
  std::uint64_t comp_since_mem = 0;
  std::uint64_t ready_at = 0;
  bool waiting_mem = false;

  bool done() const noexcept { return comp_left == 0 && mem_left == 0 && !waiting_mem; }

  bool next_is_load() const noexcept {
    if (mem_left == 0) return false;
    return comp_left == 0 || comp_since_mem >= stride;
  }
};

WarpState make_state(const WarpWork& work) {
  WarpState state;
  state.comp_left = work.compute_instructions;
  state.mem_left = work.memory_requests;
  state.stride = work.memory_requests > 0
                     ? work.compute_instructions / work.memory_requests
                     : 0;
  // Start mid-stride so the first load does not fire on cycle 0 for every
  // warp at once (matches staggered real launches, keeps determinism).
  state.comp_since_mem = 0;
  return state;
}

}  // namespace

SmResult simulate_sm(const SmConfig& config, std::span<const WarpWork> warps) {
  SmResult result;
  if (warps.empty()) return result;

  std::vector<WarpState> resident;
  resident.reserve(config.max_resident_warps);
  std::size_t next_pending = 0;
  auto refill = [&] {
    while (resident.size() < config.max_resident_warps && next_pending < warps.size()) {
      resident.push_back(make_state(warps[next_pending++]));
    }
  };
  refill();

  std::uint64_t outstanding = 0;
  std::uint64_t cycle = 0;
  std::size_t rr_cursor = 0;  // round-robin fairness
  std::uint64_t total_requests = 0;

  while (true) {
    // Retire finished warps and complete memory requests due this cycle.
    for (auto& w : resident) {
      if (w.waiting_mem && w.ready_at <= cycle) {
        w.waiting_mem = false;
        --outstanding;
      }
    }
    resident.erase(std::remove_if(resident.begin(), resident.end(),
                                  [](const WarpState& w) { return w.done(); }),
                   resident.end());
    refill();
    if (resident.empty()) break;

    // Try to issue one instruction, round-robin.
    bool issued = false;
    bool saw_throttled = false;
    bool saw_mem_wait = false;
    bool saw_exec_wait = false;
    const std::size_t count = resident.size();
    for (std::size_t probe = 0; probe < count && !issued; ++probe) {
      WarpState& w = resident[(rr_cursor + probe) % count];
      if (w.done()) continue;
      if (w.waiting_mem) {
        saw_mem_wait = true;
        continue;
      }
      if (w.ready_at > cycle) {
        saw_exec_wait = true;
        continue;
      }
      if (w.next_is_load()) {
        if (outstanding >= config.max_outstanding_requests) {
          saw_throttled = true;
          continue;
        }
        --w.mem_left;
        w.comp_since_mem = 0;
        w.waiting_mem = true;
        w.ready_at = cycle + config.memory_latency;
        ++outstanding;
        ++total_requests;
      } else {
        --w.comp_left;
        ++w.comp_since_mem;
        w.ready_at = cycle + config.compute_latency;
      }
      ++result.issued_instructions;
      rr_cursor = (rr_cursor + probe + 1) % count;
      issued = true;
    }

    if (!issued) {
      if (saw_throttled) {
        ++result.stall_memory_throttle;
      } else if (saw_mem_wait) {
        ++result.stall_memory_dependency;
      } else if (saw_exec_wait) {
        ++result.stall_execution_dependency;
      }
    }
    ++cycle;
  }

  result.cycles = cycle;
  result.request_rate =
      cycle > 0 ? static_cast<double>(total_requests) / static_cast<double>(cycle) : 0.0;
  result.issue_efficiency =
      cycle > 0 ? static_cast<double>(result.issued_instructions) / static_cast<double>(cycle)
                : 0.0;
  return result;
}

}  // namespace multihit
