#pragma once
// Closed-form kernel accounting.
//
// For full-scale spaces (C(19411,4) ≈ 5.9e15 combinations) the enumeration
// kernels cannot run, but their operation and traffic counts are exactly
// summable over the level structure of each scheme. These functions produce
// byte-for-byte the same KernelStats the kernels in core/schemes.cpp count —
// a property pinned by tests — which is what lets the performance model
// price paper-scale runs without enumerating anything.

#include <cstdint>

#include "core/schemes.hpp"

namespace multihit {

/// Stats the 4-hit kernel would count over threads [begin, end).
/// `tumor_words` / `normal_words` are the packed row widths.
KernelStats analytic_stats_4hit(Scheme4 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words);

/// Stats the 3-hit kernel would count over threads [begin, end).
KernelStats analytic_stats_3hit(Scheme3 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words);

/// Stats the 2-hit kernel would count over threads [begin, end).
KernelStats analytic_stats_2hit(Scheme2 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words);

/// Stats the 5-hit kernel would count over threads [begin, end).
KernelStats analytic_stats_5hit(Scheme5 scheme, std::uint32_t genes, std::uint64_t begin,
                                std::uint64_t end, const MemOpts& opts,
                                std::uint32_t tumor_words, std::uint32_t normal_words);

}  // namespace multihit
