#pragma once
// Cycle-level single-SM warp scheduler simulation.
//
// The analytic performance model (perfmodel.hpp) *assumes* a latency-hiding
// law: achieved memory efficiency rises with resident-warp count and is
// capped by outstanding-request capacity. This module derives that behaviour
// from first principles with a deterministic round-robin warp scheduler:
//
//  - each warp executes its instruction stream in order; a memory request
//    stalls the warp for `memory_latency` cycles (one outstanding load per
//    warp, as in an in-order SIMT core);
//  - at most `max_outstanding_requests` loads may be in flight per SM; a
//    warp whose next instruction is a load while the queue is full is
//    throttled (the NVPROF "memory throttle" stall);
//  - one instruction issues per cycle when any warp is ready; cycles with no
//    ready warp are attributed to the blocking reason, reproducing the
//    paper's Fig. 6(c) stall taxonomy.
//
// The integration test pins the analytic mem_eff(occupancy) curve against
// this simulator's achieved request rates.

#include <cstdint>
#include <span>

namespace multihit {

struct SmConfig {
  std::uint32_t warp_size = 32;
  std::uint32_t max_resident_warps = 64;       ///< V100: 2048 threads / 32
  std::uint32_t memory_latency = 400;          ///< cycles to DRAM and back
  std::uint32_t max_outstanding_requests = 64; ///< MSHR-style cap
  std::uint32_t compute_latency = 1;           ///< back-to-back ALU issue
};

/// One warp's aggregate instruction mix. Memory requests are spread evenly
/// through the compute stream (the enumeration kernels alternate row loads
/// with AND+popcount chains, so this matches their shape).
struct WarpWork {
  std::uint64_t compute_instructions = 0;
  std::uint64_t memory_requests = 0;
};

struct SmResult {
  std::uint64_t cycles = 0;
  std::uint64_t issued_instructions = 0;
  /// Cycles with no ready warp because every live warp awaits a load.
  std::uint64_t stall_memory_dependency = 0;
  /// Cycles where the only issueable instructions were loads blocked by the
  /// outstanding-request cap.
  std::uint64_t stall_memory_throttle = 0;
  /// Cycles lost to ALU result latency (compute_latency > 1 chains).
  std::uint64_t stall_execution_dependency = 0;

  /// Achieved memory requests per cycle (the SM's DRAM pressure).
  double request_rate = 0.0;
  /// issued / cycles: the Fig. 6 "compute utilization" analogue.
  double issue_efficiency = 0.0;
};

/// Simulates the warps to completion. At most max_resident_warps execute
/// concurrently; additional warps start as earlier ones retire (block
/// scheduling). Deterministic.
SmResult simulate_sm(const SmConfig& config, std::span<const WarpWork> warps);

}  // namespace multihit
