#include "gpusim/perfmodel.hpp"

#include <algorithm>
#include <cmath>

namespace multihit {

GpuTiming model_gpu_time(const DeviceSpec& spec, const KernelStats& stats,
                         std::uint64_t threads) {
  GpuTiming t;
  t.occupancy = std::min(
      1.0, static_cast<double>(threads) / static_cast<double>(spec.resident_capacity()));
  t.mem_efficiency =
      spec.mem_eff_floor +
      (1.0 - spec.mem_eff_floor) * std::pow(t.occupancy, spec.occupancy_exponent);

  // Only the post-reuse traffic reaches DRAM; the rest is served by the L2 /
  // warp-level broadcast of rows shared across neighbouring threads.
  const double global_bytes = static_cast<double>(stats.global_words) * 8.0 / spec.l2_reuse;
  t.memory_time = global_bytes / (spec.dram_bandwidth * t.mem_efficiency);
  t.compute_time = static_cast<double>(stats.word_ops) / spec.word_op_rate;
  t.memory_bound = t.memory_time >= t.compute_time;

  // parallelReduceMax: the maxF kernel already reduced each 512-thread block
  // to one candidate, so the second kernel touches blocks-many elements in
  // a log-depth sweep; cost is effectively linear in block count.
  const std::uint64_t blocks = (threads + spec.block_size - 1) / spec.block_size;
  t.reduce_time = static_cast<double>(blocks) * spec.reduce_op_cost;
  t.overhead = 2.0 * spec.kernel_launch_overhead;  // maxF + parallelReduceMax

  t.time = std::max(t.memory_time, t.compute_time) + t.reduce_time + t.overhead;
  t.dram_throughput = t.time > 0.0 ? global_bytes / t.time : 0.0;
  return t;
}

StallBreakdown stall_breakdown(const GpuTiming& timing) {
  // Heuristic attribution mirroring the NVPROF categories of Fig. 6c:
  //  - memory dependency grows as latency hiding degrades (low occupancy);
  //  - memory throttle grows when the launch saturates bandwidth
  //    (memory-bound at high occupancy => many outstanding transactions);
  //  - execution dependency covers the issue stalls of the AND/popcount
  //    chains, relatively larger when compute-bound.
  // Inputs are clamped to their model ranges so the fraction invariants
  // (each in [0, 1], summing to 1) hold for any GpuTiming, not just ones
  // produced by model_gpu_time — the property test feeds adversarial
  // profiles (e.g. mem_efficiency > 1) straight into this function.
  StallBreakdown s;
  const double memory_time = std::max(timing.memory_time, 0.0);
  const double compute_time = std::max(timing.compute_time, 0.0);
  const double occupancy = std::clamp(timing.occupancy, 0.0, 1.0);
  const double mem_efficiency = std::clamp(timing.mem_efficiency, 0.0, 1.0);
  const double mem_pressure = memory_time / std::max(memory_time + compute_time, 1e-30);
  const double latency_exposure = 1.0 - mem_efficiency;

  double memory_dependency = 0.30 + 0.45 * latency_exposure + 0.10 * mem_pressure;
  double memory_throttle = 0.05 + 0.25 * mem_pressure * occupancy;
  double execution_dependency = 0.08 + 0.30 * (1.0 - mem_pressure);

  const double known = memory_dependency + memory_throttle + execution_dependency;
  if (known > 0.95) {
    const double scale = 0.95 / known;
    memory_dependency *= scale;
    memory_throttle *= scale;
    execution_dependency *= scale;
  }
  s.memory_dependency = memory_dependency;
  s.memory_throttle = memory_throttle;
  s.execution_dependency = execution_dependency;
  s.other = 1.0 - (s.memory_dependency + s.memory_throttle + s.execution_dependency);
  return s;
}

}  // namespace multihit
