#pragma once
// Functional V100 device model.
//
// Executes the paper's two-kernel pipeline over a thread-range partition:
//
//   kernel 1 (maxF): every thread evaluates its combinations; each
//     512-thread block performs a single-stage reduction and emits ONE
//     candidate — this is the §III-E optimization that shrinks the candidate
//     list by the block size (24.3 TB -> 47.5 GB at paper scale).
//   kernel 2 (parallelReduceMax): a multi-stage pairwise tree over the
//     per-block candidates yields the device's single best combination.
//
// Execution is functionally exact (the real bit-matrix kernels run on the
// real data); timing comes from the perfmodel over the counted stats.

#include <cstdint>
#include <vector>

#include "bitmat/bitmatrix.hpp"
#include "core/arena.hpp"
#include "core/schemes.hpp"
#include "gpusim/perfmodel.hpp"
#include "obs/profile.hpp"
#include "sched/schedule.hpp"

namespace multihit::obs {
struct Recorder;
}  // namespace multihit::obs

namespace multihit {

/// Outcome of one device launch over a partition.
struct DeviceRunResult {
  EvalResult best;          ///< device-level winner
  KernelStats stats;        ///< counted ops/traffic
  std::uint64_t blocks = 0; ///< maxF blocks launched
  std::uint64_t candidate_bytes = 0;  ///< per-block candidate list footprint
  GpuTiming timing;         ///< modeled execution profile
};

class GpuDevice {
 public:
  explicit GpuDevice(DeviceSpec spec = DeviceSpec::v100(), obs::Recorder* recorder = nullptr)
      : spec_(spec), recorder_(recorder) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// Attaches (or detaches, with nullptr) an observability recorder: every
  /// launch then lands kernel metrics (gpu.kernel_launches, gpu.dram_bytes,
  /// occupancy/throughput/stall histograms) in its registry. Never affects
  /// results or modeled times.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Runs the 4-hit maxF + parallelReduceMax pipeline over threads
  /// [partition.begin, partition.end) of `scheme`.
  DeviceRunResult run_4hit(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                           Scheme4 scheme, const Partition& partition,
                           const MemOpts& opts = {}) const;

  /// 3-hit counterpart.
  DeviceRunResult run_3hit(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                           Scheme3 scheme, const Partition& partition,
                           const MemOpts& opts = {}) const;

  /// 2-hit counterpart.
  DeviceRunResult run_2hit(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                           Scheme2 scheme, const Partition& partition,
                           const MemOpts& opts = {}) const;

  /// 5-hit counterpart (requires C(genes,5) to fit u64).
  DeviceRunResult run_5hit(const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx,
                           Scheme5 scheme, const Partition& partition,
                           const MemOpts& opts = {}) const;

 private:
  template <typename EvalBlock>
  DeviceRunResult run_pipeline(const Partition& partition, EvalBlock&& eval_block) const;
  void record_launch(const DeviceRunResult& result, const Partition& partition) const;

  DeviceSpec spec_;
  obs::Recorder* recorder_ = nullptr;
  /// Launch-scoped kernel scratch: reset per simulated block dispatch, so a
  /// functional run performs one allocation per device instead of one per
  /// 512-thread block. Launches on one device are serialized (as on the real
  /// card), which is what makes the mutable member safe.
  mutable Arena arena_;
};

/// The multi-stage pairwise reduction of kernel 2, exposed for testing:
/// repeatedly merges element pairs until one remains. Associativity of
/// merge_results guarantees the same winner as a linear scan.
EvalResult parallel_reduce_max(std::vector<EvalResult> candidates);

/// Bytes per stored candidate: four gene ids + one F value (paper: 20 B).
inline constexpr std::uint64_t kCandidateBytes = 20;

/// DeviceSpec constants mirrored into the profile artifact's device section.
obs::ProfileDevice profile_device_info(const DeviceSpec& spec);

/// Builds the NVPROF-style launch record for one pipeline execution: counted
/// traffic before/after L2 reuse, prefetch-served bytes, occupancy/resident
/// warps, the roofline decomposition, reduce stages, and the stall taxonomy.
/// Shared by GpuDevice (counted stats) and the paper-scale analytic model
/// (analytic stats) so both paths profile identically. The traced placement
/// (sim_begin/sim_seconds) is left for Profiler::record / annotate_last.
obs::KernelProfile kernel_profile_from(const DeviceSpec& spec, const KernelStats& stats,
                                       const GpuTiming& timing, const Partition& partition);

}  // namespace multihit
