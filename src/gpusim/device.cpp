#include "gpusim/device.hpp"

#include <algorithm>

#include "obs/recorder.hpp"

namespace multihit {

EvalResult parallel_reduce_max(std::vector<EvalResult> candidates) {
  if (candidates.empty()) return {};
  // Multi-stage tree: each stage halves the candidate count, exactly the
  // shape of the parallelReduceMax kernel's shared-memory sweeps.
  std::size_t active = candidates.size();
  while (active > 1) {
    const std::size_t half = (active + 1) / 2;
    for (std::size_t idx = 0; idx + half < active; ++idx) {
      candidates[idx] = merge_results(candidates[idx], candidates[idx + half]);
    }
    active = half;
  }
  return candidates[0];
}

template <typename EvalBlock>
DeviceRunResult GpuDevice::run_pipeline(const Partition& partition,
                                        EvalBlock&& eval_block) const {
  DeviceRunResult result;
  const std::uint64_t span = partition.size();
  if (span == 0) return result;

  result.blocks = (span + spec_.block_size - 1) / spec_.block_size;
  std::vector<EvalResult> block_candidates;
  block_candidates.reserve(static_cast<std::size_t>(result.blocks));

  // Kernel 1: maxF with in-block single-stage reduction — one candidate per
  // 512-thread block.
  for (std::uint64_t b = 0; b < result.blocks; ++b) {
    const std::uint64_t begin = partition.begin + b * spec_.block_size;
    const std::uint64_t end = std::min<std::uint64_t>(begin + spec_.block_size, partition.end);
    arena_.reset();  // block scratch reuses the device arena across launches
    block_candidates.push_back(eval_block(begin, end, &result.stats));
  }
  result.candidate_bytes = result.blocks * kCandidateBytes;

  // Kernel 2: multi-stage reduction over the block candidates.
  result.best = parallel_reduce_max(std::move(block_candidates));
  result.timing = model_gpu_time(spec_, result.stats, span);
  if (recorder_) record_launch(result, partition);
  return result;
}

void GpuDevice::record_launch(const DeviceRunResult& result, const Partition& partition) const {
  if (recorder_->profile.enabled()) {
    recorder_->profile.record(
        kernel_profile_from(spec_, result.stats, result.timing, partition));
  }
  obs::MetricsRegistry& m = recorder_->metrics;
  // Two launches per pipeline: maxF and parallelReduceMax.
  m.counter("gpu.kernel_launches").add(2.0);
  m.counter("gpu.blocks").add(static_cast<double>(result.blocks));
  m.counter("gpu.combinations").add(static_cast<double>(result.stats.combinations));
  m.counter("gpu.word_ops").add(static_cast<double>(result.stats.word_ops));
  m.counter("gpu.dram_bytes").add(static_cast<double>(result.stats.global_words) * 8.0);
  m.counter("gpu.candidate_bytes").add(static_cast<double>(result.candidate_bytes));
  m.counter(result.timing.memory_bound ? "gpu.launches_memory_bound"
                                       : "gpu.launches_compute_bound")
      .add(1.0);
  m.histogram("gpu.kernel_seconds").observe(result.timing.time);
  m.histogram("gpu.occupancy").observe(result.timing.occupancy);
  m.histogram("gpu.mem_efficiency").observe(result.timing.mem_efficiency);
  m.histogram("gpu.dram_throughput_bytes_per_sec").observe(result.timing.dram_throughput);
  const StallBreakdown stalls = stall_breakdown(result.timing);
  m.histogram("gpu.stall_fraction", {{"reason", "memory_dependency"}})
      .observe(stalls.memory_dependency);
  m.histogram("gpu.stall_fraction", {{"reason", "memory_throttle"}})
      .observe(stalls.memory_throttle);
  m.histogram("gpu.stall_fraction", {{"reason", "execution_dependency"}})
      .observe(stalls.execution_dependency);
  m.histogram("gpu.stall_fraction", {{"reason", "other"}}).observe(stalls.other);
}

obs::ProfileDevice profile_device_info(const DeviceSpec& spec) {
  obs::ProfileDevice info;
  info.sm_count = spec.sm_count;
  info.max_threads_per_sm = spec.max_threads_per_sm;
  info.block_size = spec.block_size;
  info.warp_size = spec.warp_size;
  info.dram_bandwidth = spec.dram_bandwidth;
  info.word_op_rate = spec.word_op_rate;
  info.l2_reuse = spec.l2_reuse;
  return info;
}

obs::KernelProfile kernel_profile_from(const DeviceSpec& spec, const KernelStats& stats,
                                       const GpuTiming& timing, const Partition& partition) {
  obs::KernelProfile k;
  k.lambda_begin = partition.begin;
  k.lambda_end = partition.end;
  k.combinations = stats.combinations;
  k.blocks = (partition.size() + spec.block_size - 1) / spec.block_size;
  k.candidate_bytes = k.blocks * kCandidateBytes;
  // parallelReduceMax halves the candidate list per stage until one remains.
  for (std::uint64_t active = k.blocks; active > 1; active = (active + 1) / 2) {
    ++k.reduce_stages;
  }
  k.word_ops = stats.word_ops;
  // gpu.dram_bytes (the metrics counter) counts what the kernel *requested*;
  // the profile splits it into the counted pre-reuse traffic and what the
  // L2 / row broadcast lets through to DRAM.
  k.global_bytes = static_cast<double>(stats.global_words) * 8.0;
  k.dram_bytes = spec.l2_reuse > 0.0 ? k.global_bytes / spec.l2_reuse : k.global_bytes;
  k.local_bytes = static_cast<double>(stats.local_words) * 8.0;
  k.occupancy = timing.occupancy;
  k.resident_warps = timing.occupancy * static_cast<double>(spec.resident_capacity()) /
                     static_cast<double>(spec.warp_size);
  k.mem_efficiency = timing.mem_efficiency;
  k.compute_seconds = timing.compute_time;
  k.memory_seconds = timing.memory_time;
  k.reduce_seconds = timing.reduce_time;
  k.overhead_seconds = timing.overhead;
  k.modeled_seconds = timing.time;
  k.memory_bound = timing.memory_bound;
  k.dram_throughput = timing.dram_throughput;
  k.arithmetic_intensity =
      k.dram_bytes > 0.0 ? static_cast<double>(stats.word_ops) / k.dram_bytes : 0.0;
  const StallBreakdown stalls = stall_breakdown(timing);
  k.stall_memory_dependency = stalls.memory_dependency;
  k.stall_memory_throttle = stalls.memory_throttle;
  k.stall_execution_dependency = stalls.execution_dependency;
  k.stall_other = stalls.other;
  return k;
}

DeviceRunResult GpuDevice::run_4hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme4 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_4hit(tumor, normal, ctx, scheme, begin, end, opts, stats, &arena_);
  });
}

DeviceRunResult GpuDevice::run_3hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme3 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_3hit(tumor, normal, ctx, scheme, begin, end, opts, stats, &arena_);
  });
}

DeviceRunResult GpuDevice::run_2hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme2 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_2hit(tumor, normal, ctx, scheme, begin, end, opts, stats, &arena_);
  });
}

DeviceRunResult GpuDevice::run_5hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme5 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_5hit(tumor, normal, ctx, scheme, begin, end, opts, stats, &arena_);
  });
}

}  // namespace multihit
