#include "gpusim/device.hpp"

#include <algorithm>

namespace multihit {

EvalResult parallel_reduce_max(std::vector<EvalResult> candidates) {
  if (candidates.empty()) return {};
  // Multi-stage tree: each stage halves the candidate count, exactly the
  // shape of the parallelReduceMax kernel's shared-memory sweeps.
  std::size_t active = candidates.size();
  while (active > 1) {
    const std::size_t half = (active + 1) / 2;
    for (std::size_t idx = 0; idx + half < active; ++idx) {
      candidates[idx] = merge_results(candidates[idx], candidates[idx + half]);
    }
    active = half;
  }
  return candidates[0];
}

template <typename EvalBlock>
DeviceRunResult GpuDevice::run_pipeline(const Partition& partition,
                                        EvalBlock&& eval_block) const {
  DeviceRunResult result;
  const std::uint64_t span = partition.size();
  if (span == 0) return result;

  result.blocks = (span + spec_.block_size - 1) / spec_.block_size;
  std::vector<EvalResult> block_candidates;
  block_candidates.reserve(static_cast<std::size_t>(result.blocks));

  // Kernel 1: maxF with in-block single-stage reduction — one candidate per
  // 512-thread block.
  for (std::uint64_t b = 0; b < result.blocks; ++b) {
    const std::uint64_t begin = partition.begin + b * spec_.block_size;
    const std::uint64_t end = std::min<std::uint64_t>(begin + spec_.block_size, partition.end);
    block_candidates.push_back(eval_block(begin, end, &result.stats));
  }
  result.candidate_bytes = result.blocks * kCandidateBytes;

  // Kernel 2: multi-stage reduction over the block candidates.
  result.best = parallel_reduce_max(std::move(block_candidates));
  result.timing = model_gpu_time(spec_, result.stats, span);
  return result;
}

DeviceRunResult GpuDevice::run_4hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme4 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_4hit(tumor, normal, ctx, scheme, begin, end, opts, stats);
  });
}

DeviceRunResult GpuDevice::run_3hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme3 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_3hit(tumor, normal, ctx, scheme, begin, end, opts, stats);
  });
}

DeviceRunResult GpuDevice::run_2hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme2 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_2hit(tumor, normal, ctx, scheme, begin, end, opts, stats);
  });
}

DeviceRunResult GpuDevice::run_5hit(const BitMatrix& tumor, const BitMatrix& normal,
                                    const FContext& ctx, Scheme5 scheme,
                                    const Partition& partition, const MemOpts& opts) const {
  return run_pipeline(partition, [&](std::uint64_t begin, std::uint64_t end,
                                     KernelStats* stats) {
    return evaluate_range_5hit(tumor, normal, ctx, scheme, begin, end, opts, stats);
  });
}

}  // namespace multihit
