#pragma once
// Analytic V100 performance model.
//
// The simulator executes kernels functionally (device.hpp) and prices them
// with this roofline-plus-occupancy model:
//
//   occupancy  = min(1, resident_threads / (sm_count · max_threads_per_sm))
//   mem_eff    = floor + (1 - floor) · occupancy^kappa      (latency hiding)
//   mem_time   = global_bytes / (dram_bandwidth · mem_eff)
//   cmp_time   = word_ops / word_op_rate
//   time       = max(mem_time, cmp_time) + launch overheads
//
// The occupancy term is what reproduces the paper's §IV-C/§IV-D findings:
// 2x2 partitions that hold only a few thousand heavy threads cannot hide
// DRAM latency and crawl, while 3x1 partitions always saturate the device.
// The max() roofline reproduces the memory-bound → compute-bound transition
// the paper observes past GPU #500 (Fig. 6).
//
// Constants are V100-shaped (published peak DRAM bandwidth 900 GB/s, with
// ~0.85 achievable; 64-bit logical-op throughput ~1.2e12 word-ops/s), but the
// model's claims are about *shape* — absolute times are documented as modeled
// in EXPERIMENTS.md.

#include <cstdint>

#include "core/result.hpp"

namespace multihit {

struct DeviceSpec {
  std::uint32_t sm_count = 80;             ///< V100 streaming multiprocessors
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t block_size = 512;          ///< the paper's maxF block size
  std::uint32_t warp_size = 32;
  double dram_bandwidth = 765e9;           ///< B/s achievable (0.85 x 900 GB/s)
  double word_op_rate = 1.2e12;            ///< 64-bit AND+popcount ops/s
  double mem_eff_floor = 0.06;             ///< latency-bound efficiency floor
  double occupancy_exponent = 0.65;         ///< kappa in the latency-hiding law
  /// Effective row-broadcast/L2 reuse: threads of a warp/block share inner-
  /// loop rows, so only 1/l2_reuse of per-thread global words reach DRAM.
  double l2_reuse = 3.0;
  double kernel_launch_overhead = 8e-6;    ///< s per kernel launch
  double reduce_op_cost = 2e-9;            ///< s per element in parallelReduceMax

  std::uint64_t resident_capacity() const noexcept {
    return static_cast<std::uint64_t>(sm_count) * max_threads_per_sm;
  }

  /// The published-V100 configuration used throughout the benches.
  static DeviceSpec v100() noexcept { return {}; }
};

/// Modeled execution profile of one kernel launch (or one GPU's share of an
/// iteration: maxF + its reduction).
struct GpuTiming {
  double compute_time = 0.0;     ///< s on the op-throughput roofline
  double memory_time = 0.0;      ///< s on the bandwidth roofline
  double reduce_time = 0.0;      ///< s in parallelReduceMax
  double overhead = 0.0;         ///< launch overheads
  double time = 0.0;             ///< total modeled seconds
  double occupancy = 0.0;        ///< resident-thread fraction
  double mem_efficiency = 0.0;   ///< achieved fraction of peak bandwidth
  bool memory_bound = false;
  double dram_throughput = 0.0;  ///< achieved B/s over the whole launch
};

/// Prices one maxF launch of `threads` threads with the counted/analytic
/// `stats`, including the in-block and multi-stage reductions (§III-E).
GpuTiming model_gpu_time(const DeviceSpec& spec, const KernelStats& stats,
                         std::uint64_t threads);

/// NVPROF-style warp-stall attribution (paper Fig. 6c): fractions summing to
/// 1 across the four recorded reasons, derived from the timing profile.
struct StallBreakdown {
  double memory_dependency = 0.0;   ///< load/store resources not available
  double memory_throttle = 0.0;     ///< too many pending memory operations
  double execution_dependency = 0.0;///< input operands not ready
  double other = 0.0;
};

StallBreakdown stall_breakdown(const GpuTiming& timing);

}  // namespace multihit
