#pragma once
// Triangular and tetrahedral linearizations.
//
// These are the paper's contributions #2: mapping the upper-triangular
// (i < j) and upper-tetrahedral (i < j < k) index spaces to a dense thread id
// λ so that no GPU thread is assigned redundant or empty work.
//
// Canonical ranking (combinatorial number system, 0-based):
//   pair   (i, j),    0 <= i < j < G:      λ = C(j,2) + i
//   triple (i, j, k), 0 <= i < j < k < G:  λ = C(k,3) + C(j,2) + i
//
// Unranking inverts these with closed-form root formulas (the paper's
// Algorithm 1 line 2 and Algorithm 3 lines 2-7), followed by an integer
// fix-up loop: the floating-point roots can be off by one ULP-induced step
// at 64-bit-scale λ, and exactness here is non-negotiable — a mis-unranked λ
// silently evaluates the wrong gene combination.

#include <cstdint>

#include "combinat/binomial.hpp"

namespace multihit {

struct Pair {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  friend bool operator==(const Pair&, const Pair&) = default;
};

struct Triple {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::uint32_t k = 0;
  friend bool operator==(const Triple&, const Triple&) = default;
};

struct Quad {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::uint32_t k = 0;
  std::uint32_t l = 0;
  friend bool operator==(const Quad&, const Quad&) = default;
};

/// λ for pair (i, j). Requires i < j.
u64 rank_pair(Pair p) noexcept;

/// Inverse of rank_pair. Requires λ < C(G,2) for the caller's G (the result
/// satisfies i < j but is not range-checked against any G).
Pair unrank_pair(u64 lambda) noexcept;

/// λ for triple (i, j, k). Requires i < j < k.
u64 rank_triple(Triple t) noexcept;

/// Inverse of rank_triple via floating-point cube root + integer fix-up.
Triple unrank_triple(u64 lambda) noexcept;

/// The paper's §III-F variant: computes the Cardano discriminant
/// sqrt(729λ²-3) without 128-bit arithmetic via exp(0.5·(log(3λ)+
/// log(243λ-1/λ))), then applies the same integer fix-up. Provided to
/// document and validate the published formulation; agrees with
/// unrank_triple for all λ (tested to C(20000,3) and at u64-scale values).
Triple unrank_triple_logexp(u64 lambda) noexcept;

/// Largest k with C(k,3) <= lambda; the "workload level" used by the O(G)
/// equi-area scheduler (every thread at level k runs an inner loop of
/// G-1-k iterations).
std::uint32_t tetrahedral_level(u64 lambda) noexcept;

/// λ for quadruple (i, j, k, l), i < j < k < l:
///   λ = C(l,4) + C(k,3) + C(j,2) + i.
/// The thread index space of the 5-hit "4x1" scheme, and the global 4-hit
/// combination rank used for deterministic tie-breaking.
u64 rank_quad(Quad q) noexcept;

/// Inverse of rank_quad (quartic root guess + integer fix-up).
Quad unrank_quad(u64 lambda) noexcept;

/// Largest l with C(l,4) <= lambda (the 5-hit scheduler's workload level).
std::uint32_t quartic_level(u64 lambda) noexcept;

}  // namespace multihit
