#pragma once
// Exact binomial coefficients.
//
// The combination spaces in this project reach C(20000, 4) ≈ 6.7e15 (fits in
// 64 bits) and C(20000, 5) ≈ 2.7e19 (does not). The 128-bit variants exist so
// the generic unranking code and the schedulers never silently overflow.

#include <cstdint>
#include <optional>

namespace multihit {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// C(n, k) in 128-bit arithmetic. Returns nullopt if the exact value
/// overflows 128 bits (far beyond anything this project enumerates).
std::optional<u128> binomial128(u64 n, u64 k) noexcept;

/// C(n, k) as u64. Returns nullopt when the value exceeds 2^64 - 1.
std::optional<u64> binomial_checked(u64 n, u64 k) noexcept;

/// C(n, k) as u64; terminates the process (assert-style) on overflow.
/// Use in contexts where the caller has already bounded n and k.
u64 binomial(u64 n, u64 k) noexcept;

/// Triangular number T(n) = C(n, 2) = n(n-1)/2.
constexpr u64 triangular(u64 n) noexcept { return n * (n - 1) / 2; }

/// C(n, 2) in 128 bits for unranking fix-up probes near u64-scale λ.
constexpr u128 triangular128(u64 n) noexcept {
  return static_cast<u128>(n) * (n - 1) / 2;
}

/// C(n, 3) in 128 bits for unranking fix-up probes near u64-scale λ.
constexpr u128 tetrahedral128(u64 n) noexcept {
  if (n < 3) return 0;
  return static_cast<u128>(n) * (n - 1) * (n - 2) / 6;
}

/// Tetrahedral number = C(n, 3) = n(n-1)(n-2)/6.
constexpr u64 tetrahedral(u64 n) noexcept {
  // Divide out factors before multiplying to postpone overflow: among any
  // three consecutive integers one is divisible by 3 and one by 2.
  u64 a = n, b = n >= 1 ? n - 1 : 0, c = n >= 2 ? n - 2 : 0;
  if (a % 3 == 0) a /= 3;
  else if (b % 3 == 0) b /= 3;
  else c /= 3;
  if (a % 2 == 0) a /= 2;
  else if (b % 2 == 0) b /= 2;
  else c /= 2;
  return a * b * c;
}

/// C(n, 4) in 128 bits — used by the (un)ranking fix-up loops, whose probes
/// can step past the largest n whose C(n,4) fits u64 (n = 152108).
constexpr u128 quartic128(u64 n) noexcept {
  if (n < 4) return 0;
  return static_cast<u128>(tetrahedral(n)) * (n - 3) / 4;
}

/// Quartic figurate number = C(n, 4). The intermediate C(n,3)·(n-3) is
/// evaluated in 128 bits (it exceeds u64 from n ≈ 102570, well below the
/// largest representable result); the *result* must fit u64 (n <= 152108),
/// which holds for every λ-derived value since λ itself is 64-bit.
constexpr u64 quartic(u64 n) noexcept {
  return static_cast<u64>(quartic128(n));
}

/// Pentatope number = C(n, 5), for the 5-hit extension. C(n,5) itself
/// overflows u64 for n > 18580, so callers must bound n (the checked
/// variant reports overflow; see binomial_checked).
constexpr u64 quintic(u64 n) noexcept {
  if (n < 5) return 0;
  // C(n,5)·5 = C(n,4)·(n-4) is exact; the intermediate needs 128 bits at
  // large n even when the result fits 64.
  return static_cast<u64>(static_cast<u128>(quartic(n)) * (n - 4) / 5);
}

}  // namespace multihit
