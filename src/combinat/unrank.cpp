#include "combinat/unrank.hpp"

#include <cassert>

namespace multihit {

u64 rank_combination(std::span<const std::uint32_t> combo) noexcept {
  u64 lambda = 0;
  for (std::size_t t = 0; t < combo.size(); ++t) {
    lambda += binomial(combo[t], static_cast<u64>(t) + 1);
  }
  return lambda;
}

std::vector<std::uint32_t> unrank_combination(u64 lambda, std::uint32_t h) {
  assert(h >= 1);
  std::vector<std::uint32_t> combo(h);
  u64 rem = lambda;
  for (std::uint32_t t = h; t >= 1; --t) {
    // Largest c with C(c, t) <= rem. Galloping + binary search keeps this
    // O(log c) per digit without floating point.
    u64 lo = t - 1;  // C(t-1, t) = 0 <= rem always holds
    u64 hi = lo + 1;
    while (true) {
      const auto v = binomial128(hi, t);
      if (v && *v <= static_cast<u128>(rem)) {
        lo = hi;
        hi *= 2;
      } else {
        break;
      }
    }
    while (lo + 1 < hi) {
      const u64 mid = lo + (hi - lo) / 2;
      const auto v = binomial128(mid, t);
      if (v && *v <= static_cast<u128>(rem)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    combo[t - 1] = static_cast<std::uint32_t>(lo);
    rem -= binomial(lo, t);
  }
  return combo;
}

bool next_combination_colex(std::span<std::uint32_t> combo, std::uint32_t universe) noexcept {
  const std::size_t h = combo.size();
  // Find the lowest position that can be advanced: combo[t] can move up if
  // it stays below combo[t+1] (or below universe for the top position).
  for (std::size_t t = 0; t < h; ++t) {
    const std::uint32_t limit = (t + 1 < h) ? combo[t + 1] : universe;
    if (combo[t] + 1 < limit) {
      ++combo[t];
      // Reset everything below to the smallest values.
      for (std::size_t s = 0; s < t; ++s) combo[s] = static_cast<std::uint32_t>(s);
      return true;
    }
  }
  return false;
}

std::vector<std::uint32_t> first_combination(std::uint32_t h) {
  std::vector<std::uint32_t> combo(h);
  for (std::uint32_t t = 0; t < h; ++t) combo[t] = t;
  return combo;
}

}  // namespace multihit
