#include "combinat/binomial.hpp"

#include <cstdio>
#include <cstdlib>

namespace multihit {

std::optional<u128> binomial128(u64 n, u64 k) noexcept {
  if (k > n) return u128{0};
  if (k > n - k) k = n - k;
  u128 result = 1;
  for (u64 i = 1; i <= k; ++i) {
    const u128 numerator = static_cast<u128>(n - k + i);
    // result * numerator / i is always exact because the running product of
    // i consecutive terms is divisible by i!. Check for overflow first.
    const u128 max128 = ~u128{0};
    if (result > max128 / numerator) return std::nullopt;
    result = result * numerator / static_cast<u128>(i);
  }
  return result;
}

std::optional<u64> binomial_checked(u64 n, u64 k) noexcept {
  const auto wide = binomial128(n, k);
  if (!wide || *wide > static_cast<u128>(~u64{0})) return std::nullopt;
  return static_cast<u64>(*wide);
}

u64 binomial(u64 n, u64 k) noexcept {
  const auto value = binomial_checked(n, k);
  if (!value) {
    std::fprintf(stderr, "binomial(%llu, %llu) overflows u64\n",
                 static_cast<unsigned long long>(n), static_cast<unsigned long long>(k));
    std::abort();
  }
  return *value;
}

}  // namespace multihit
