#pragma once
// Generic h-combination (un)ranking via the combinatorial number system.
//
// The pair/triple specializations in linearize.hpp are the hot paths the
// paper's kernels use; this generic form supports the serial reference
// engine for arbitrary hit counts (h = 2..9, the paper's biological range)
// and the property tests that pin the specializations to it.
//
// Ranking is colexicographic: for c_0 < c_1 < ... < c_{h-1},
//   λ = Σ_t C(c_t, t+1).

#include <cstdint>
#include <span>
#include <vector>

#include "combinat/binomial.hpp"

namespace multihit {

/// λ for a strictly increasing combination. Requires combo non-empty,
/// strictly increasing, and the rank to fit in u64.
u64 rank_combination(std::span<const std::uint32_t> combo) noexcept;

/// Inverse of rank_combination for combinations of size h >= 1.
std::vector<std::uint32_t> unrank_combination(u64 lambda, std::uint32_t h);

/// Advances `combo` (strictly increasing values in [0, universe)) to its
/// colexicographic successor, matching rank order. Returns false when combo
/// was the last one (and leaves it unspecified).
bool next_combination_colex(std::span<std::uint32_t> combo, std::uint32_t universe) noexcept;

/// First combination in colex order: {0, 1, ..., h-1}.
std::vector<std::uint32_t> first_combination(std::uint32_t h);

}  // namespace multihit
