#include "combinat/linearize.hpp"

#include <cmath>

namespace multihit {

namespace {

// Largest j with C(j,2) <= lambda, by float guess + exact fix-up. Probes
// compare in 128 bits: C(j+1,2) can exceed u64 when λ is near u64-max.
std::uint32_t triangular_level(u64 lambda) noexcept {
  const double x = static_cast<double>(lambda);
  // Solve j(j-1)/2 = x  =>  j = (1 + sqrt(1 + 8x)) / 2.
  auto j = static_cast<u64>((1.0 + std::sqrt(1.0 + 8.0 * x)) / 2.0);
  while (j > 0 && triangular128(j) > lambda) --j;
  while (triangular128(j + 1) <= lambda) ++j;
  return static_cast<std::uint32_t>(j);
}

std::uint32_t fixup_tetrahedral(u64 k_guess, u64 lambda) noexcept {
  u64 k = k_guess;
  while (k > 0 && tetrahedral128(k) > lambda) --k;
  while (tetrahedral128(k + 1) <= lambda) ++k;
  return static_cast<std::uint32_t>(k);
}

}  // namespace

u64 rank_pair(Pair p) noexcept { return triangular(p.j) + p.i; }

Pair unrank_pair(u64 lambda) noexcept {
  const std::uint32_t j = triangular_level(lambda);
  return Pair{static_cast<std::uint32_t>(lambda - triangular(j)), j};
}

u64 rank_triple(Triple t) noexcept {
  return tetrahedral(t.k) + triangular(t.j) + t.i;
}

std::uint32_t tetrahedral_level(u64 lambda) noexcept {
  // Initial guess from k^3/6 ≈ λ; cbrt is monotone so the guess is within a
  // couple of steps of the true level.
  const auto guess = static_cast<u64>(std::cbrt(6.0 * static_cast<double>(lambda))) + 1;
  return fixup_tetrahedral(guess, lambda);
}

Triple unrank_triple(u64 lambda) noexcept {
  const std::uint32_t k = tetrahedral_level(lambda);
  const u64 rem = lambda - tetrahedral(k);
  const std::uint32_t j = triangular_level(rem);
  return Triple{static_cast<std::uint32_t>(rem - triangular(j)), j, k};
}

u64 rank_quad(Quad q) noexcept {
  return quartic(q.l) + tetrahedral(q.k) + triangular(q.j) + q.i;
}

std::uint32_t quartic_level(u64 lambda) noexcept {
  // Initial guess from l^4/24 ≈ λ, then exact fix-up. Comparisons run in
  // 128 bits: near λ ~ 2^62 the probe C(l+1,4) can exceed u64.
  const auto guess =
      static_cast<u64>(std::sqrt(std::sqrt(24.0 * static_cast<double>(lambda)))) + 2;
  u64 l = guess;
  while (l > 0 && quartic128(l) > lambda) --l;
  while (quartic128(l + 1) <= lambda) ++l;
  return static_cast<std::uint32_t>(l);
}

Quad unrank_quad(u64 lambda) noexcept {
  const std::uint32_t l = quartic_level(lambda);
  const u64 rem = lambda - quartic(l);
  const Triple t = unrank_triple(rem);
  return Quad{t.i, t.j, t.k, l};
}

Triple unrank_triple_logexp(u64 lambda) noexcept {
  u64 k_guess = 0;
  if (lambda >= 1) {
    // Cardano solution of k(k+1)(k+2)/6 = λ (the paper's 1-based T_z form):
    //   q = (sqrt(729λ² - 3) + 27λ)^(1/3)
    //   k = q / 3^(2/3) + 3^(1/3) / q - 1
    // 729λ² overflows u64 for λ >= 2^32/27, so the discriminant is computed
    // in log space: sqrt(729λ²-3) = exp(0.5·(log(3λ) + log(243λ - 1/λ))).
    const double lam = static_cast<double>(lambda);
    const double a = std::exp(0.5 * (std::log(3.0 * lam) + std::log(243.0 * lam - 1.0 / lam)));
    const double q = std::cbrt(a + 27.0 * lam);
    const double k1 = q / std::pow(3.0, 2.0 / 3.0) + std::pow(3.0, 1.0 / 3.0) / q - 1.0;
    // The paper's k counts levels of the *1-based* tetrahedral sequence
    // k(k+1)(k+2)/6; our canonical C(k,3) = (k-2)(k-1)k/6 level is shifted
    // by two. Guard against the float landing barely below zero.
    k1 > 0.0 ? k_guess = static_cast<u64>(k1) + 2 : k_guess = 2;
  }
  const std::uint32_t k = fixup_tetrahedral(k_guess, lambda);
  const u64 rem = lambda - tetrahedral(k);
  const std::uint32_t j = triangular_level(rem);
  return Triple{static_cast<std::uint32_t>(rem - triangular(j)), j, k};
}

}  // namespace multihit
