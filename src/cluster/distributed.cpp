#include "cluster/distributed.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "gpusim/device.hpp"
#include "obs/recorder.hpp"
#include "sched/memaware.hpp"
#include "sched/workload.hpp"
#include "util/log.hpp"

namespace multihit {

const char* scheduler_name(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kEquiDistance: return "equi_distance";
    case SchedulerKind::kEquiArea: return "equi_area";
    case SchedulerKind::kMemoryAware: return "memory_aware";
  }
  return "?";
}

namespace {

WorkloadModel make_model(const DistributedOptions& options, std::uint32_t genes) {
  switch (options.hits) {
    case 2:
      return WorkloadModel::for_scheme2(options.scheme2, genes);
    case 3:
      return WorkloadModel::for_scheme3(options.scheme3, genes);
    case 5:
      return WorkloadModel::for_scheme5(options.scheme5, genes);
    default:
      return WorkloadModel::for_scheme4(options.scheme4, genes);
  }
}

DeviceRunResult run_device(const GpuDevice& device, const DistributedOptions& options,
                           const BitMatrix& tumor, const BitMatrix& normal,
                           const FContext& ctx, const Partition& partition) {
  switch (options.hits) {
    case 2:
      return device.run_2hit(tumor, normal, ctx, options.scheme2, partition,
                             options.mem_opts);
    case 3:
      return device.run_3hit(tumor, normal, ctx, options.scheme3, partition,
                             options.mem_opts);
    case 5:
      return device.run_5hit(tumor, normal, ctx, options.scheme5, partition,
                             options.mem_opts);
    default:
      return device.run_4hit(tumor, normal, ctx, options.scheme4, partition,
                             options.mem_opts);
  }
}

Partition intersect(const Partition& a, const Partition& b) noexcept {
  const u64 begin = std::max(a.begin, b.begin);
  const u64 end = std::min(a.end, b.end);
  return begin < end ? Partition{begin, end} : Partition{};
}

}  // namespace

ClusterRunResult ClusterRunner::run(const Dataset& data,
                                    const DistributedOptions& options) const {
  if (options.hits < 2 || options.hits > 5) {
    throw std::invalid_argument("ClusterRunner supports hits in [2, 5]");
  }
  options.faults.validate(config_.nodes);

  ClusterRunResult result;
  const std::uint32_t gpn = config_.gpus_per_node;
  const std::uint32_t total_units = config_.units();
  obs::Recorder* const rec = options.recorder;
  const GpuDevice device(config_.device, rec);

  // The workload model depends only on G, which never changes across
  // iterations (BitSplicing removes samples, not genes) — built once,
  // exactly as rank 0 does in the paper. The *schedule* is rebuilt over the
  // surviving GPUs after every rank failure.
  const WorkloadModel model = make_model(options, data.genes());
  const double schedule_build_time =
      static_cast<double>(model.levels().size()) * config_.schedule_seconds_per_level;
  const auto build_schedule = [&](std::uint32_t units) {
    switch (options.scheduler) {
      case SchedulerKind::kEquiDistance:
        return equidistance_schedule(model, units);
      case SchedulerKind::kMemoryAware:
        return memaware_schedule(model, units,
                                 memory_cost_weights(options.hits, options.mem_opts));
      case SchedulerKind::kEquiArea:
      default:
        return equiarea_schedule(model, units);
    }
  };
  std::vector<Partition> schedule = build_schedule(total_units);
  result.schedule_time = schedule_build_time;

  // State threaded through the whole run: the communicator (clocks and
  // liveness persist across iterations — a crashed rank stays dead), the
  // injector, and checkpoint bookkeeping.
  SimComm comm(config_.nodes, config_.comm);
  comm.set_recorder(rec);
  FaultInjector injector(options.faults, config_.nodes);
  injector.set_recorder(rec);

  if (rec) {
    if (rec->profile.enabled()) rec->profile.set_device(profile_device_info(config_.device));
    rec->trace.set_lane_name(obs::kEngineLane, "engine");
    rec->trace.set_lane_name(obs::kSchedulerLane, "scheduler");
    for (std::uint32_t r = 0; r < config_.nodes; ++r) {
      rec->trace.set_lane_name(r, "rank " + std::to_string(r));
    }
    rec->trace.complete(obs::kSchedulerLane, "schedule_build", "driver", 0.0,
                        schedule_build_time, {{"units", std::to_string(total_units)}});
    rec->metrics.gauge("cluster.nodes").set(static_cast<double>(config_.nodes));
    rec->metrics.gauge("cluster.gpus").set(static_cast<double>(total_units));
  }

  // Collective/phase spans are deltas of the per-rank simulated clocks: a
  // snapshot before, the phase itself, then one span per rank whose clock
  // advanced. Dead ranks' clocks are frozen, so they emit nothing.
  std::vector<double> clock_snap(config_.nodes);
  const auto snap_clocks = [&] {
    for (std::uint32_t r = 0; r < config_.nodes; ++r) clock_snap[r] = comm.clock(r);
  };
  const auto emit_clock_spans = [&](const char* name, const char* category,
                                    obs::SpanArgs args = {}) {
    for (std::uint32_t r = 0; r < config_.nodes; ++r) {
      if (comm.clock(r) > clock_snap[r]) {
        rec->trace.complete(r, name, category, clock_snap[r], comm.clock(r), args);
      }
    }
  };
  std::uint32_t iter = 0;
  double abort_time = 0.0;           // allocation restarts; outside the clocks
  double last_checkpoint_mark = 0.0; // comm wall-clock at the last snapshot

  // One distributed greedy iteration: compute -> reduce -> (recover) ->
  // broadcast -> splice. The engine supplies the greedy loop and
  // BitSplicing.
  const Evaluator evaluator = [&](const BitMatrix& tumor, const BitMatrix& normal,
                                  const FContext& ctx) -> EvalResult {
    IterationTelemetry telemetry;
    telemetry.gpus.resize(total_units);
    telemetry.rank_compute.assign(config_.nodes, 0.0);
    telemetry.rank_comm.assign(config_.nodes, 0.0);

    const double t_start = comm.finish_time();
    std::vector<double> compute_at_start(config_.nodes), comm_at_start(config_.nodes);
    for (std::uint32_t r = 0; r < config_.nodes; ++r) {
      compute_at_start[r] = comm.compute_time(r);
      comm_at_start[r] = comm.comm_time(r);
    }

    // Whole-allocation loss: the rerun from the last checkpoint replays this
    // exact state bit-identically (the determinism invariant), so the fault
    // costs only the wall-clock since the snapshot plus a fresh job launch —
    // no work is redone here.
    if (injector.job_abort(iter)) {
      const double penalty =
          (t_start - last_checkpoint_mark) + config_.job_overhead() + schedule_build_time;
      abort_time += penalty;
      result.recovery_time += penalty;
      injector.record({FaultKind::kJobAbort, 0, iter, t_start, penalty});
      // Operational telemetry (distinct from the injector's ground-truth
      // instant): the driver genuinely observes its own allocation bouncing,
      // so the restart is visible to the health monitor.
      if (rec) {
        rec->trace.instant(obs::kEngineLane, "job_restart", "driver", t_start,
                           {{"iteration", std::to_string(iter)}});
      }
    }

    // Message-drop budget for this iteration, consumed in deterministic
    // clock order by the collectives below.
    std::vector<std::uint32_t> drop_budget(config_.nodes);
    bool any_drops = false;
    for (std::uint32_t r = 0; r < config_.nodes; ++r) {
      drop_budget[r] = injector.drops(r, iter);
      any_drops = any_drops || drop_budget[r] > 0;
    }
    if (any_drops) {
      // A rank's whole drop budget hits its next tree message as repeated
      // lost attempts (retransmissions can be lost too), so the full count
      // is always charged — a reduce leaf only sends once per iteration.
      comm.set_message_faults([&](std::uint32_t src, std::uint32_t, std::uint64_t) {
        MessageFault fault;
        if (drop_budget[src] > 0) {
          fault.drops = drop_budget[src];
          drop_budget[src] = 0;
          injector.record({FaultKind::kMessageDrop, src, iter, comm.clock(src),
                           fault.drops * config_.comm.retransmit_timeout});
        }
        return fault;
      });
    }

    // --- compute phase over the current schedule (surviving nodes only).
    // Units are schedule slots: node at position `pos` of the survivor list
    // drives slots [pos*gpn, (pos+1)*gpn). Fault-free this equals the
    // original absolute unit numbering.
    const std::vector<std::uint32_t> active = comm.alive_ranks();
    std::vector<EvalResult> rank_candidates(config_.nodes);
    std::vector<Partition> lost;                       // λ ranges of this iteration's dead
    std::vector<std::pair<std::uint32_t, double>> crashed;  // (rank, death time)
    for (std::uint32_t pos = 0; pos < active.size(); ++pos) {
      const std::uint32_t node = active[pos];
      const double straggle = injector.straggle_factor(node, iter);
      const double crash_frac = injector.crash_fraction(node, iter);
      const double c0 = comm.clock(node);
      EvalResult node_best;
      double node_time = 0.0;  // the node's GPUs run concurrently
      double occupancy_peak = 0.0, throughput_sum = 0.0;  // counter-track samples
      for (std::uint32_t g = 0; g < gpn; ++g) {
        const std::uint32_t unit = pos * gpn + g;
        if (rec) rec->profile.set_context({node, unit, iter, /*recovery=*/false});
        const DeviceRunResult run =
            run_device(device, options, tumor, normal, ctx, schedule[unit]);
        GpuTiming timing = run.timing;
        const double slowdown = config_.jitter_factor(unit) * config_.noise_factor() * straggle;
        timing.time *= slowdown;
        telemetry.gpus[unit] = timing;
        telemetry.candidate_bytes_total += run.candidate_bytes;
        telemetry.combinations += run.stats.combinations;
        node_best = merge_results(node_best, run.best);
        node_time = std::max(node_time, timing.time);
        // An empty partition never launches: run_pipeline returned without
        // recording, so there is no profile row to place on the clock.
        if (rec && run.blocks > 0) rec->profile.annotate_last(c0, timing.time);
        if (rec && timing.time > 0.0) {
          // The node's GPUs run concurrently: each kernel span starts at the
          // rank clock, nested inside the compute span emitted below.
          const StallBreakdown stalls = stall_breakdown(timing);
          occupancy_peak = std::max(occupancy_peak, timing.occupancy);
          // Effective throughput: the same bytes over a slowdown-stretched
          // window. This is what a real DCGM counter would read on a
          // straggling device — and what the gpu_collapse detector watches.
          throughput_sum += timing.dram_throughput / slowdown;
          rec->trace.complete(
              node, "gpu_kernel", "gpu", c0, c0 + timing.time,
              {{"gpu", std::to_string(g)},
               {"occupancy", std::to_string(timing.occupancy)},
               {"dram_throughput", std::to_string(timing.dram_throughput)},
               {"memory_bound", timing.memory_bound ? "true" : "false"},
               {"stall_memory_dependency", std::to_string(stalls.memory_dependency)},
               {"global_bytes",
                obs::json_number(static_cast<double>(run.stats.global_words) * 8.0)}});
        }
      }
      // Perfetto counter tracks: the rank's peak kernel occupancy and summed
      // DRAM throughput over the compute window, dropped back to zero when
      // the window ends (at the crash for a dying rank).
      if (rec && node_time > 0.0) {
        rec->trace.counter(node, "gpu_occupancy", c0, occupancy_peak);
        rec->trace.counter(node, "gpu_dram_throughput", c0, throughput_sum);
        const double window_end =
            crash_frac >= 0.0 ? c0 + crash_frac * node_time : c0 + node_time;
        rec->trace.counter(node, "gpu_occupancy", window_end, 0.0);
        rec->trace.counter(node, "gpu_dram_throughput", window_end, 0.0);
      }
      if (crash_frac >= 0.0) {
        // Dies mid-compute: the partial work is lost with it, and its λ
        // ranges must be re-run on the survivors.
        comm.fail(node, comm.clock(node) + crash_frac * node_time);
        for (std::uint32_t g = 0; g < gpn; ++g) lost.push_back(schedule[pos * gpn + g]);
        crashed.emplace_back(node, comm.clock(node));
        ++result.ranks_lost;
        if (rec) {
          // The partial work died with the rank: flag its launch records so
          // the profile's lost_kernels rollups line up with ranks_lost.
          rec->profile.mark_node_lost(node, iter);
          rec->metrics.counter("cluster.ranks_lost").add(1.0);
          rec->trace.complete(node, "compute", "compute", c0,
                              c0 + crash_frac * node_time, {{"crashed", "true"}});
        }
      } else {
        if (straggle > 1.0) {
          injector.record({FaultKind::kStraggler, node, iter, comm.clock(node),
                           node_time * (1.0 - 1.0 / straggle)});
        }
        rank_candidates[node] = node_best;
        comm.compute(node, node_time);
        if (rec && comm.clock(node) > c0) {
          rec->trace.complete(node, "compute", "compute", c0, comm.clock(node),
                              {{"iteration", std::to_string(iter)}});
        }
      }
    }

    // One 20-byte candidate per surviving rank toward the lowest surviving
    // rank; newly-dead ranks are detected here (survivors pay the window).
    const std::uint32_t root = comm.lowest_alive();
    if (rec) snap_clocks();
    EvalResult best =
        comm.reduce(std::span<const EvalResult>(rank_candidates), root, kCandidateBytes,
                    [](const EvalResult& a, const EvalResult& b) { return merge_results(a, b); });
    if (rec) emit_clock_spans("mpi_reduce", "comm", {{"iteration", std::to_string(iter)}});

    // --- recovery: re-partition over the survivors and re-run the lost λ
    // ranges. The new equi-area schedule covers [0, total), so intersecting
    // it with the lost ranges re-runs exactly the missing combinations;
    // merge_results' associativity + commutativity (invalid = identity)
    // makes the re-merged winner identical to the fault-free one.
    if (!lost.empty()) {
      const double t_recover = comm.finish_time();
      const std::vector<std::uint32_t> survivors = comm.alive_ranks();
      std::vector<Partition> next_schedule =
          build_schedule(static_cast<std::uint32_t>(survivors.size()) * gpn);
      result.schedule_time += schedule_build_time;
      if (rec) {
        rec->trace.complete(obs::kSchedulerLane, "schedule_rebuild", "driver", t_recover,
                            t_recover + schedule_build_time,
                            {{"survivors", std::to_string(survivors.size())}});
        snap_clocks();
      }
      comm.broadcast(root, 8);  // root announces the re-partition
      if (rec) emit_clock_spans("mpi_broadcast", "comm", {{"iteration", std::to_string(iter)}});

      std::vector<EvalResult> recovery(config_.nodes);
      // Recovery kernel spans are buffered and emitted *after* the enclosing
      // recovery_compute span: segments of different GPUs start at different
      // offsets, so appending them as they run would break the per-lane
      // monotone order the trace format requires.
      struct PendingKernelSpan {
        double begin = 0.0, end = 0.0;
        std::uint32_t gpu = 0;
        double global_bytes = 0.0;
      };
      std::vector<PendingKernelSpan> pending;
      for (std::uint32_t pos = 0; pos < survivors.size(); ++pos) {
        const std::uint32_t node = survivors[pos];
        const double straggle = injector.straggle_factor(node, iter);
        const double r0 = comm.clock(node);
        double node_time = 0.0;
        pending.clear();
        for (std::uint32_t g = 0; g < gpn; ++g) {
          const std::uint32_t unit = pos * gpn + g;
          double gpu_time = 0.0;  // lost segments run back-to-back on the GPU
          for (const Partition& range : lost) {
            const Partition segment = intersect(next_schedule[unit], range);
            if (segment.size() == 0) continue;
            if (rec) rec->profile.set_context({node, unit, iter, /*recovery=*/true});
            const DeviceRunResult run =
                run_device(device, options, tumor, normal, ctx, segment);
            recovery[node] = merge_results(recovery[node], run.best);
            const double segment_time = run.timing.time * config_.jitter_factor(unit) *
                                        config_.noise_factor() * straggle;
            if (rec && run.blocks > 0) {
              rec->profile.annotate_last(r0 + gpu_time, segment_time);
              if (segment_time > 0.0) {
                pending.push_back(
                    {r0 + gpu_time, r0 + gpu_time + segment_time, g,
                     static_cast<double>(run.stats.global_words) * 8.0});
              }
            }
            gpu_time += segment_time;
            telemetry.candidate_bytes_total += run.candidate_bytes;
            telemetry.combinations += run.stats.combinations;
          }
          node_time = std::max(node_time, gpu_time);
        }
        comm.compute(node, node_time);
        if (rec && comm.clock(node) > r0) {
          rec->trace.complete(node, "recovery_compute", "recovery", r0, comm.clock(node),
                              {{"iteration", std::to_string(iter)}});
          std::stable_sort(pending.begin(), pending.end(),
                           [](const PendingKernelSpan& a, const PendingKernelSpan& b) {
                             return a.begin < b.begin;
                           });
          for (const PendingKernelSpan& span : pending) {
            rec->trace.complete(node, "gpu_kernel", "gpu", span.begin, span.end,
                                {{"gpu", std::to_string(span.gpu)},
                                 {"recovery", "true"},
                                 {"global_bytes", obs::json_number(span.global_bytes)}});
          }
        }
      }
      if (rec) snap_clocks();
      best = merge_results(
          best, comm.reduce(std::span<const EvalResult>(recovery), root, kCandidateBytes,
                            [](const EvalResult& a, const EvalResult& b) {
                              return merge_results(a, b);
                            }));
      if (rec) emit_clock_spans("mpi_reduce", "comm", {{"iteration", std::to_string(iter)}});
      schedule = std::move(next_schedule);

      const double recovered =
          comm.finish_time() - t_recover + config_.comm.detection_window;
      result.recovery_time += recovered;
      for (const auto& [node, death] : crashed) {
        injector.record({FaultKind::kRankCrash, node, iter, death,
                         recovered / static_cast<double>(crashed.size())});
      }
      MH_LOG_INFO << "iteration " << iter << ": " << crashed.size()
                  << " rank(s) lost, re-partitioned onto " << survivors.size()
                  << " nodes (" << survivors.size() * gpn << " GPUs)";
    }

    if (rec) snap_clocks();
    comm.broadcast(root, kCandidateBytes);
    if (rec) emit_clock_spans("mpi_broadcast", "comm", {{"iteration", std::to_string(iter)}});

    // Host-side BitSplicing bookkeeping happens on every surviving rank
    // after the broadcast; charge it to the iteration.
    const double splice_time = static_cast<double>(tumor.genes()) * tumor.words_per_row() /
                               config_.host_word_rate;
    if (rec) snap_clocks();
    for (const std::uint32_t node : comm.alive_ranks()) comm.compute(node, splice_time);
    if (rec) emit_clock_spans("bit_splice", "host", {{"iteration", std::to_string(iter)}});

    telemetry.best = best;
    telemetry.iteration_time = comm.finish_time() - t_start;
    for (std::uint32_t r = 0; r < config_.nodes; ++r) {
      telemetry.rank_compute[r] = comm.compute_time(r) - compute_at_start[r];
      telemetry.rank_comm[r] = comm.comm_time(r) - comm_at_start[r];
    }

    if (rec) {
      rec->metrics.counter("cluster.iterations").add(1.0);
      rec->metrics.counter("cluster.candidate_bytes")
          .add(static_cast<double>(telemetry.candidate_bytes_total));
      rec->metrics.counter("cluster.combinations")
          .add(static_cast<double>(telemetry.combinations));
      rec->metrics.histogram("cluster.iteration_seconds").observe(telemetry.iteration_time);
      rec->metrics.gauge("cluster.alive_ranks")
          .set(static_cast<double>(comm.alive_ranks().size()));
    }

    if (any_drops) comm.set_message_faults({});
    result.iterations.push_back(std::move(telemetry));
    ++iter;
    return best;
  };

  EngineConfig engine;
  engine.hits = options.hits;
  engine.bit_splicing = options.bit_splicing;
  engine.max_iterations = options.max_iterations;
  engine.recorder = rec;
  if (rec) engine.sim_clock = [&comm] { return comm.finish_time(); };
  if (options.checkpoint_every > 0) {
    // Periodic auto-checkpoint (the §IV-A allocation-limit workflow): every
    // rank streams its spliced matrix copy to the burst buffer, then the
    // fleet synchronizes. The snapshot is what a kJobAbort resumes from.
    CheckpointPolicy policy;
    policy.every = options.checkpoint_every;
    policy.sink = [&](const CheckpointState& snapshot) {
      const double bytes =
          static_cast<double>(snapshot.tumor.genes()) * snapshot.tumor.words_per_row() * 8.0 +
          64.0 * static_cast<double>(snapshot.progress.iterations.size());
      const double write_time = bytes / config_.checkpoint_bytes_per_sec;
      if (rec) snap_clocks();
      for (const std::uint32_t node : comm.alive_ranks()) comm.compute(node, write_time);
      comm.barrier();
      result.checkpoint_time += write_time;
      ++result.checkpoints_taken;
      result.last_checkpoint = snapshot;
      last_checkpoint_mark = comm.finish_time();
      if (rec) {
        emit_clock_spans("checkpoint_write", "checkpoint");
        rec->metrics.counter("cluster.checkpoints").add(1.0);
        rec->metrics.histogram("cluster.checkpoint_seconds").observe(write_time);
      }
    };
    EngineConfig bounded = engine;
    result.greedy = [&] {
      CheckpointState state = run_greedy_checkpointed(data.tumor, data.normal, bounded,
                                                      evaluator, options.max_iterations, policy);
      return std::move(state.progress);
    }();
  } else {
    result.greedy = run_greedy(data.tumor, data.normal, engine, evaluator);
  }

  // The engine may call the evaluator one final time and then stop (best
  // covers nothing); that evaluation still costs time and stays recorded.
  result.fault_events = injector.take_records();
  result.total_time = config_.job_overhead() + result.schedule_time + abort_time;
  for (const auto& it : result.iterations) result.total_time += it.iteration_time;
  result.total_time += result.checkpoint_time;
  return result;
}

}  // namespace multihit
