#include "cluster/distributed.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/device.hpp"
#include "sched/memaware.hpp"
#include "sched/workload.hpp"

namespace multihit {

namespace {

WorkloadModel make_model(const DistributedOptions& options, std::uint32_t genes) {
  switch (options.hits) {
    case 2:
      return WorkloadModel::for_scheme2(options.scheme2, genes);
    case 3:
      return WorkloadModel::for_scheme3(options.scheme3, genes);
    case 5:
      return WorkloadModel::for_scheme5(options.scheme5, genes);
    default:
      return WorkloadModel::for_scheme4(options.scheme4, genes);
  }
}

DeviceRunResult run_device(const GpuDevice& device, const DistributedOptions& options,
                           const BitMatrix& tumor, const BitMatrix& normal,
                           const FContext& ctx, const Partition& partition) {
  switch (options.hits) {
    case 2:
      return device.run_2hit(tumor, normal, ctx, options.scheme2, partition,
                             options.mem_opts);
    case 3:
      return device.run_3hit(tumor, normal, ctx, options.scheme3, partition,
                             options.mem_opts);
    case 5:
      return device.run_5hit(tumor, normal, ctx, options.scheme5, partition,
                             options.mem_opts);
    default:
      return device.run_4hit(tumor, normal, ctx, options.scheme4, partition,
                             options.mem_opts);
  }
}

}  // namespace

ClusterRunResult ClusterRunner::run(const Dataset& data,
                                    const DistributedOptions& options) const {
  if (options.hits < 2 || options.hits > 5) {
    throw std::invalid_argument("ClusterRunner supports hits in [2, 5]");
  }

  ClusterRunResult result;
  const std::uint32_t units = config_.units();
  const GpuDevice device(config_.device);

  // The workload model and schedule depend only on G, which never changes
  // across iterations (BitSplicing removes samples, not genes) — built once,
  // exactly as rank 0 does in the paper.
  const WorkloadModel model = make_model(options, data.genes());
  std::vector<Partition> schedule;
  switch (options.scheduler) {
    case SchedulerKind::kEquiDistance:
      schedule = equidistance_schedule(model, units);
      break;
    case SchedulerKind::kEquiArea:
      schedule = equiarea_schedule(model, units);
      break;
    case SchedulerKind::kMemoryAware:
      schedule =
          memaware_schedule(model, units, memory_cost_weights(options.hits, options.mem_opts));
      break;
  }
  result.schedule_time =
      static_cast<double>(model.levels().size()) * config_.schedule_seconds_per_level;

  // The Evaluator closure is one distributed iteration: steps 2-4 of the
  // header comment. The engine supplies the greedy loop and BitSplicing.
  const Evaluator evaluator = [&](const BitMatrix& tumor, const BitMatrix& normal,
                                  const FContext& ctx) -> EvalResult {
    IterationTelemetry telemetry;
    telemetry.gpus.resize(units);
    telemetry.rank_compute.assign(config_.nodes, 0.0);
    telemetry.rank_comm.assign(config_.nodes, 0.0);

    SimComm comm(config_.nodes, config_.comm);
    std::vector<EvalResult> rank_candidates(config_.nodes);

    for (std::uint32_t node = 0; node < config_.nodes; ++node) {
      EvalResult node_best;
      double node_time = 0.0;  // the node's GPUs run concurrently
      for (std::uint32_t g = 0; g < config_.gpus_per_node; ++g) {
        const std::uint32_t unit = node * config_.gpus_per_node + g;
        const DeviceRunResult run =
            run_device(device, options, tumor, normal, ctx, schedule[unit]);
        GpuTiming timing = run.timing;
        timing.time *= config_.jitter_factor(unit) * config_.noise_factor();
        telemetry.gpus[unit] = timing;
        telemetry.candidate_bytes_total += run.candidate_bytes;
        telemetry.combinations += run.stats.combinations;
        node_best = merge_results(node_best, run.best);
        node_time = std::max(node_time, timing.time);
      }
      rank_candidates[node] = node_best;
      comm.compute(node, node_time);
    }

    // One 20-byte candidate per rank to rank 0, then the winner back out.
    const EvalResult best =
        comm.reduce(std::span<const EvalResult>(rank_candidates), 0, kCandidateBytes,
                    [](const EvalResult& a, const EvalResult& b) { return merge_results(a, b); });
    comm.broadcast(0, kCandidateBytes);

    telemetry.best = best;
    telemetry.iteration_time = comm.finish_time();
    for (std::uint32_t node = 0; node < config_.nodes; ++node) {
      telemetry.rank_compute[node] = comm.compute_time(node);
      telemetry.rank_comm[node] = comm.comm_time(node);
    }

    // Host-side BitSplicing bookkeeping happens on every rank after the
    // broadcast; charge it to the iteration.
    telemetry.iteration_time += static_cast<double>(tumor.genes()) * tumor.words_per_row() /
                                config_.host_word_rate;

    result.iterations.push_back(std::move(telemetry));
    return best;
  };

  EngineConfig engine;
  engine.hits = options.hits;
  engine.bit_splicing = options.bit_splicing;
  engine.max_iterations = options.max_iterations;
  result.greedy = run_greedy(data.tumor, data.normal, engine, evaluator);

  // The engine may call the evaluator one final time and then stop (best
  // covers nothing); that evaluation still costs time and stays recorded.
  result.total_time = config_.job_overhead() + result.schedule_time;
  for (const auto& it : result.iterations) result.total_time += it.iteration_time;
  return result;
}

}  // namespace multihit
