#pragma once
// Strong/weak scaling harness (paper §IV-A, Fig. 4).
//
// Strong scaling: fixed problem, growing fleet; efficiency at N nodes is
// T(baseline) * baseline / (T(N) * N).
//
// Weak scaling: fixed work per GPU, growing fleet. The 4-hit workload is
// C(G,4), so holding per-GPU work constant means G(N) = G0 * (N/N0)^(1/4);
// runs are limited to the first greedy iteration exactly as in the paper
// (later iterations produce data-dependent workloads).

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/model.hpp"

namespace multihit {

struct ScalingPoint {
  std::uint32_t nodes = 0;
  std::uint32_t genes = 0;      ///< problem size used at this point
  double time = 0.0;            ///< modeled wall seconds
  double efficiency = 0.0;      ///< relative to the first (baseline) point
};

/// Runs `inputs` on every fleet size in `node_counts` (first entry is the
/// baseline, the paper uses 100 nodes).
std::vector<ScalingPoint> strong_scaling(const SummitConfig& base, const ModelInputs& inputs,
                                         std::span<const std::uint32_t> node_counts);

/// Weak scaling: scales G to hold per-GPU combinations constant and runs the
/// first iteration only.
std::vector<ScalingPoint> weak_scaling(const SummitConfig& base, const ModelInputs& inputs,
                                       std::span<const std::uint32_t> node_counts);

}  // namespace multihit
