#pragma once
// Paper-scale analytic runs.
//
// At G = 19411 the 4-hit space holds ~5.9e15 combinations — nothing
// enumerates that here. But every quantity the wall-clock depends on is
// analytically available: exact per-partition combination/traffic counts
// (gpusim/analytic.hpp), the occupancy/roofline device model, and the
// binomial-tree communication model. This module composes them into modeled
// whole-run times for any fleet size, which is what regenerates the paper's
// scaling and utilization figures at full scale.
//
// Greedy iterations beyond the first shrink the tumor matrix by BitSplicing.
// Real coverage trajectories are data-dependent; the model uses a geometric
// coverage profile (fraction of remaining tumor samples covered per
// iteration) with the default calibrated from this repository's functional
// runs on planted data.

#include <cstdint>
#include <vector>

#include "cluster/distributed.hpp"
#include "cluster/summit.hpp"
#include "core/schemes.hpp"

namespace multihit {

struct ModelInputs {
  std::uint32_t genes = 19411;          ///< BRCA scale by default
  std::uint32_t tumor_samples = 911;
  std::uint32_t normal_samples = 520;
  std::uint32_t hits = 4;               ///< 2, 3, 4, or 5
  Scheme4 scheme4 = Scheme4::k3x1;
  Scheme3 scheme3 = Scheme3::k2x1;
  Scheme2 scheme2 = Scheme2::k1x1;
  Scheme5 scheme5 = Scheme5::k4x1;      ///< 5-hit needs genes <= 18580
  MemOpts mem_opts{.prefetch_i = true, .prefetch_j = true};
  SchedulerKind scheduler = SchedulerKind::kEquiArea;
  bool bit_splicing = true;             ///< false => widths never shrink
  /// Geometric coverage profile: fraction of remaining tumor samples the
  /// best combination covers each iteration.
  double coverage_per_iteration = 0.45;
  std::uint32_t max_iterations = 0;     ///< 0 = run until < 1 sample remains
  bool first_iteration_only = false;    ///< the paper's weak-scaling protocol
  /// Mean time between failures of one node, in hours (0 = fault-free model,
  /// the paper's implicit assumption). Summit-class machines sit around
  /// 20-30 years per node, which still means a failure every few hours
  /// across 1000 nodes.
  double rank_mtbf_hours = 0.0;
  /// Auto-checkpoint period in modeled seconds (0 = no checkpointing).
  double checkpoint_every_seconds = 0.0;
  /// Optional observability context. The analytic path prices launches
  /// without a GpuDevice, so only the kernel profiler is fed (one
  /// KernelProfile per modeled launch when recorder->profile is enabled);
  /// metrics/trace stay untouched. Never affects modeled times.
  obs::Recorder* recorder = nullptr;
};

struct ModeledIteration {
  double time = 0.0;
  std::uint32_t tumor_samples = 0;          ///< width at this iteration
  std::vector<GpuTiming> gpus;              ///< jitter applied
  std::vector<double> rank_compute;
  std::vector<double> rank_comm;
  std::uint64_t candidate_bytes_total = 0;
};

struct ModeledRun {
  double total_time = 0.0;      ///< job overhead + schedule + iterations + fault/checkpoint overheads
  double schedule_time = 0.0;
  std::vector<ModeledIteration> iterations;
  /// Expected rank failures over the run (fault-free duration x fleet size /
  /// MTBF); zero when ModelInputs::rank_mtbf_hours is zero.
  double expected_failures = 0.0;
  /// Expected seconds lost to failures: each costs a detection window, a
  /// schedule rebuild, and the re-run of the dead rank's share of one
  /// iteration spread over the survivors.
  double fault_overhead = 0.0;
  /// Seconds spent writing periodic snapshots (the per-rank matrix copy over
  /// SummitConfig::checkpoint_bytes_per_sec, all ranks concurrent).
  double checkpoint_overhead = 0.0;
};

/// Models a full distributed run on `config` for `inputs`.
ModeledRun model_cluster_run(const SummitConfig& config, const ModelInputs& inputs);

/// Models the same workload on a single GPU (the paper's baseline for the
/// ~7192x speedup claim): one device, no MPI, no job overhead.
double model_single_gpu_time(const DeviceSpec& device, const ModelInputs& inputs);

/// Models the sequential CPU implementation (the paper's 13860-minute
/// 3-hit / ">500 year" 4-hit baselines): pure op count over a scalar rate.
double model_single_cpu_time(const ModelInputs& inputs, double cpu_word_rate = 2.5e9);

/// Derives the geometric coverage fraction that best matches a functional
/// greedy run (mean per-iteration fraction of remaining tumor samples
/// covered). Feed into ModelInputs::coverage_per_iteration to tie
/// paper-scale projections to observed coverage trajectories. Returns the
/// default 0.45 for an empty run.
double calibrate_coverage(const GreedyResult& result);

}  // namespace multihit
