#pragma once
// Functional distributed multi-hit discovery on the simulated Summit.
//
// One greedy iteration, distributed (paper §III):
//   1. rank 0 builds the equi-area schedule over all GPUs (O(G), §III-C);
//   2. every GPU runs maxF + parallelReduceMax over its partition;
//   3. each node merges its six device candidates on the host;
//   4. a binomial-tree MPI reduce carries one 20-byte candidate per rank to
//      rank 0 (§III-E), which broadcasts the winner;
//   5. every rank splices the covered tumor samples out of its local matrix
//      copy (BitSplicing) and the loop repeats.
//
// The run is functionally exact — the same combinations are selected as by
// the serial engine — while clocks, utilization, and traffic are modeled.
//
// Fault tolerance (src/fault): a DistributedOptions::faults plan injects
// rank crashes, stragglers, message drops, and whole-allocation aborts.
// Recovery preserves the determinism invariant — any fault plan yields
// greedy selections bit-identical to the fault-free serial reference, only
// with a longer simulated wall clock:
//
//   crash    -> survivors time out on the dead rank (detection window),
//               rank 0 rebuilds the equi-area schedule over the surviving
//               GPUs, and the dead rank's λ ranges are re-run as the
//               intersection of the new partitions with the lost ranges
//               (merge_results is associative + commutative with invalid as
//               identity, so the re-merged winner is unchanged);
//   straggle -> that rank's compute stretches; the reduce absorbs the skew;
//   drop     -> the message is retransmitted after a timeout, values intact;
//   abort    -> the run restarts from the last auto-checkpoint
//               (checkpoint_every); the replay is bit-identical, so only the
//               lost wall-clock and a fresh job launch are charged.

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/summit.hpp"
#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "data/dataset.hpp"
#include "fault/injector.hpp"
#include "gpusim/device.hpp"
#include "sched/schedule.hpp"

namespace multihit {

/// kMemoryAware is this repository's implementation of the paper's §V
/// future-work item 4: equi-area over traffic-reweighted workloads.
enum class SchedulerKind { kEquiDistance, kEquiArea, kMemoryAware };

/// Stable short name ("equi_distance" / "equi_area" / "memory_aware") for
/// run manifests and logs.
const char* scheduler_name(SchedulerKind kind) noexcept;

struct DistributedOptions {
  std::uint32_t hits = 4;             ///< 2, 3, 4, or 5
  Scheme4 scheme4 = Scheme4::k3x1;    ///< used when hits == 4
  Scheme3 scheme3 = Scheme3::k2x1;    ///< used when hits == 3
  Scheme2 scheme2 = Scheme2::k1x1;    ///< used when hits == 2
  Scheme5 scheme5 = Scheme5::k4x1;    ///< used when hits == 5
  MemOpts mem_opts{.prefetch_i = true, .prefetch_j = true};
  SchedulerKind scheduler = SchedulerKind::kEquiArea;
  bool bit_splicing = true;
  std::uint32_t max_iterations = 0;   ///< 0 = run to full coverage
  /// Deterministic fault injection; an empty plan runs the happy path.
  FaultPlan faults;
  /// Auto-checkpoint period in greedy iterations (0 = off). Needed for
  /// kJobAbort recovery; crashes/stragglers/drops recover without it.
  std::uint32_t checkpoint_every = 0;
  /// Optional observability recorder. When set, the run lands phase spans on
  /// per-rank lanes (compute, GPU kernels, reduce, broadcast, recovery,
  /// splice, checkpoints) plus cluster.*/comm.*/gpu.*/engine.* metrics.
  /// Null (the default) leaves selections and modeled times bit-identical —
  /// instrumentation reads simulated clocks, it never advances them.
  obs::Recorder* recorder = nullptr;
};

/// Telemetry for one distributed greedy iteration.
struct IterationTelemetry {
  EvalResult best;
  double iteration_time = 0.0;             ///< modeled wall seconds
  std::vector<GpuTiming> gpus;              ///< one per GPU, jitter applied
  std::vector<double> rank_compute;         ///< one per node (MPI rank)
  std::vector<double> rank_comm;
  std::uint64_t candidate_bytes_total = 0;  ///< across all GPUs (§III-E list)
  std::uint64_t combinations = 0;
};

struct ClusterRunResult {
  GreedyResult greedy;
  std::vector<IterationTelemetry> iterations;
  double schedule_time = 0.0;  ///< modeled O(G) scheduler cost (initial + fault re-partitions)
  double total_time = 0.0;     ///< job overhead + schedule + iterations + checkpoints + aborts

  // --- fault/recovery telemetry (all zero for an empty fault plan) ---
  std::vector<FaultRecord> fault_events;  ///< faults that fired, in order
  /// Modeled seconds lost to faults: detection windows, recovery re-runs,
  /// and aborted allocations. Crash/straggler/drop costs are already inside
  /// the iteration times; abort penalties are added to total_time directly.
  double recovery_time = 0.0;
  double checkpoint_time = 0.0;           ///< modeled snapshot-write seconds
  std::uint32_t checkpoints_taken = 0;
  std::uint32_t ranks_lost = 0;
  /// Newest auto-checkpoint (present when checkpoint_every fired at least
  /// once) — resuming from it replays the remaining iterations identically.
  std::optional<CheckpointState> last_checkpoint;
};

class ClusterRunner {
 public:
  explicit ClusterRunner(SummitConfig config) : config_(config) {}

  const SummitConfig& config() const noexcept { return config_; }

  /// Runs the full distributed greedy cover on `data` (functional; needs a
  /// laptop-enumerable G). Requires options.hits in [2, 5].
  ClusterRunResult run(const Dataset& data, const DistributedOptions& options) const;

 private:
  SummitConfig config_;
};

}  // namespace multihit
