#include "cluster/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gpusim/analytic.hpp"
#include "gpusim/device.hpp"
#include "obs/recorder.hpp"
#include "sched/memaware.hpp"
#include "sched/workload.hpp"

namespace multihit {

namespace {

constexpr std::uint32_t words_for(std::uint32_t samples) noexcept {
  return (samples + 63) / 64;
}

KernelStats stats_for_partition(const ModelInputs& inputs, const Partition& partition,
                                std::uint32_t tumor_words, std::uint32_t normal_words) {
  switch (inputs.hits) {
    case 2:
      return analytic_stats_2hit(inputs.scheme2, inputs.genes, partition.begin,
                                 partition.end, inputs.mem_opts, tumor_words, normal_words);
    case 3:
      return analytic_stats_3hit(inputs.scheme3, inputs.genes, partition.begin,
                                 partition.end, inputs.mem_opts, tumor_words, normal_words);
    case 5:
      return analytic_stats_5hit(inputs.scheme5, inputs.genes, partition.begin,
                                 partition.end, inputs.mem_opts, tumor_words, normal_words);
    default:
      return analytic_stats_4hit(inputs.scheme4, inputs.genes, partition.begin,
                                 partition.end, inputs.mem_opts, tumor_words, normal_words);
  }
}

WorkloadModel model_for_inputs(const ModelInputs& inputs) {
  switch (inputs.hits) {
    case 2:
      return WorkloadModel::for_scheme2(inputs.scheme2, inputs.genes);
    case 3:
      return WorkloadModel::for_scheme3(inputs.scheme3, inputs.genes);
    case 5:
      return WorkloadModel::for_scheme5(inputs.scheme5, inputs.genes);
    default:
      return WorkloadModel::for_scheme4(inputs.scheme4, inputs.genes);
  }
}

// One modeled distributed iteration at the given tumor width.
ModeledIteration model_iteration(const SummitConfig& config, const ModelInputs& inputs,
                                 const std::vector<Partition>& schedule,
                                 std::uint32_t tumor_samples, std::uint32_t iteration_index) {
  const std::uint32_t units = config.units();
  const std::uint32_t wt = words_for(tumor_samples);
  const std::uint32_t wn = words_for(inputs.normal_samples);

  ModeledIteration iteration;
  iteration.tumor_samples = tumor_samples;
  iteration.gpus.resize(units);
  iteration.rank_compute.assign(config.nodes, 0.0);
  iteration.rank_comm.assign(config.nodes, 0.0);

  SimComm comm(config.nodes, config.comm);
  for (std::uint32_t node = 0; node < config.nodes; ++node) {
    double node_time = 0.0;
    for (std::uint32_t g = 0; g < config.gpus_per_node; ++g) {
      const std::uint32_t unit = node * config.gpus_per_node + g;
      const KernelStats stats = stats_for_partition(inputs, schedule[unit], wt, wn);
      GpuTiming timing = model_gpu_time(config.device, stats, schedule[unit].size());
      // The profile keeps the device-model view (un-jittered) in the modeled
      // fields and the jittered placement in sim_seconds — the same split the
      // functional cluster path records.
      if (inputs.recorder && inputs.recorder->profile.enabled() &&
          schedule[unit].size() > 0) {
        inputs.recorder->profile.set_context({node, unit, iteration_index, false});
        inputs.recorder->profile.record(
            kernel_profile_from(config.device, stats, timing, schedule[unit]));
      }
      timing.time *= config.jitter_factor(unit) * config.noise_factor();
      if (inputs.recorder && inputs.recorder->profile.enabled() &&
          schedule[unit].size() > 0) {
        inputs.recorder->profile.annotate_last(0.0, timing.time);
      }
      iteration.gpus[unit] = timing;
      const std::uint64_t blocks =
          (schedule[unit].size() + config.device.block_size - 1) / config.device.block_size;
      iteration.candidate_bytes_total += blocks * kCandidateBytes;
      node_time = std::max(node_time, timing.time);
    }
    comm.compute(node, node_time);
  }

  // The reduction carries one 20-byte candidate per rank; values are
  // irrelevant for the model, only clocks matter — the timing-only walk.
  comm.reduce_clocks(0, kCandidateBytes);
  comm.broadcast(0, kCandidateBytes);

  iteration.time = comm.finish_time() +
                   static_cast<double>(inputs.genes) * wt / config.host_word_rate;
  for (std::uint32_t node = 0; node < config.nodes; ++node) {
    iteration.rank_compute[node] = comm.compute_time(node);
    iteration.rank_comm[node] = comm.comm_time(node);
  }
  return iteration;
}

}  // namespace

ModeledRun model_cluster_run(const SummitConfig& config, const ModelInputs& inputs) {
  if (inputs.hits < 2 || inputs.hits > 5) {
    throw std::invalid_argument("model_cluster_run supports hits in [2, 5]");
  }
  if (inputs.coverage_per_iteration <= 0.0 || inputs.coverage_per_iteration > 1.0) {
    throw std::invalid_argument("coverage_per_iteration must be in (0, 1]");
  }

  const WorkloadModel model = model_for_inputs(inputs);
  std::vector<Partition> schedule;
  switch (inputs.scheduler) {
    case SchedulerKind::kEquiDistance:
      schedule = equidistance_schedule(model, config.units());
      break;
    case SchedulerKind::kEquiArea:
      schedule = equiarea_schedule(model, config.units());
      break;
    case SchedulerKind::kMemoryAware:
      schedule = memaware_schedule(model, config.units(),
                                   memory_cost_weights(inputs.hits, inputs.mem_opts));
      break;
  }

  ModeledRun run;
  run.schedule_time =
      static_cast<double>(model.levels().size()) * config.schedule_seconds_per_level;

  if (inputs.recorder && inputs.recorder->profile.enabled()) {
    inputs.recorder->profile.set_device(profile_device_info(config.device));
  }
  double remaining = inputs.tumor_samples;
  std::uint32_t iterations = 0;
  while (remaining >= 1.0) {
    const auto width = static_cast<std::uint32_t>(std::ceil(remaining));
    run.iterations.push_back(model_iteration(config, inputs, schedule,
                                             inputs.bit_splicing ? width
                                                                 : inputs.tumor_samples,
                                             iterations));
    ++iterations;
    if (inputs.first_iteration_only) break;
    if (inputs.max_iterations != 0 && iterations >= inputs.max_iterations) break;
    remaining *= 1.0 - inputs.coverage_per_iteration;
  }

  run.total_time = config.job_overhead() + run.schedule_time;
  for (const auto& it : run.iterations) run.total_time += it.time;

  // Fault/checkpoint overheads (§IV-A operational reality, zero by default):
  // expected failures scale with fault-free wall-clock x fleet size, each
  // costing the failure-detector window, a schedule rebuild, and the dead
  // rank's share of one iteration re-run across the survivors.
  const double fault_free_time = run.total_time;
  if (inputs.checkpoint_every_seconds > 0.0) {
    const double snapshots = std::floor(fault_free_time / inputs.checkpoint_every_seconds);
    const double matrix_bytes =
        static_cast<double>(inputs.genes) * words_for(inputs.tumor_samples) * 8.0;
    run.checkpoint_overhead = snapshots * matrix_bytes / config.checkpoint_bytes_per_sec;
  }
  if (inputs.rank_mtbf_hours > 0.0 && !run.iterations.empty()) {
    run.expected_failures =
        fault_free_time * static_cast<double>(config.nodes) / (inputs.rank_mtbf_hours * 3600.0);
    double mean_iteration = 0.0;
    for (const auto& it : run.iterations) mean_iteration += it.time;
    mean_iteration /= static_cast<double>(run.iterations.size());
    const double per_failure = config.comm.detection_window +
                               mean_iteration / static_cast<double>(config.nodes) +
                               run.schedule_time;
    run.fault_overhead = run.expected_failures * per_failure;
  }
  run.total_time += run.fault_overhead + run.checkpoint_overhead;
  return run;
}

double model_single_gpu_time(const DeviceSpec& device, const ModelInputs& inputs) {
  SummitConfig single;
  single.nodes = 1;
  single.gpus_per_node = 1;
  single.device = device;
  single.job_fixed_overhead = 0.0;
  single.job_log_overhead = 0.0;
  single.gpu_jitter = 0.0;
  const ModeledRun run = model_cluster_run(single, inputs);
  return run.total_time;
}

double model_single_cpu_time(const ModelInputs& inputs, double cpu_word_rate) {
  // A sequential scan performs the fully-prefetched op count (the CPU keeps
  // the fixed rows in cache): use the analytic word-op total over the whole
  // space with both prefetch optimizations on.
  ModelInputs seq = inputs;
  seq.mem_opts = MemOpts{.prefetch_i = true, .prefetch_j = true};
  const std::uint32_t wt = (inputs.tumor_samples + 63) / 64;
  const std::uint32_t wn = (inputs.normal_samples + 63) / 64;
  const WorkloadModel model = model_for_inputs(seq);
  const Partition whole{0, model.total_threads()};

  double total_ops = 0.0;
  double remaining = inputs.tumor_samples;
  while (remaining >= 1.0) {
    const auto width = static_cast<std::uint32_t>(std::ceil(remaining));
    const std::uint32_t wti = inputs.bit_splicing ? (width + 63) / 64 : wt;
    const KernelStats stats = stats_for_partition(seq, whole, wti, wn);
    total_ops += static_cast<double>(stats.word_ops);
    if (inputs.first_iteration_only) break;
    remaining *= 1.0 - inputs.coverage_per_iteration;
  }
  return total_ops / cpu_word_rate;
}

double calibrate_coverage(const GreedyResult& result) {
  if (result.iterations.empty()) return 0.45;
  double sum = 0.0;
  for (const IterationRecord& it : result.iterations) {
    sum += static_cast<double>(it.tp) / static_cast<double>(it.tumor_remaining_before);
  }
  return sum / static_cast<double>(result.iterations.size());
}

}  // namespace multihit
