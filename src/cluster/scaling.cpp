#include "cluster/scaling.hpp"

#include <cmath>
#include <stdexcept>

namespace multihit {

std::vector<ScalingPoint> strong_scaling(const SummitConfig& base, const ModelInputs& inputs,
                                         std::span<const std::uint32_t> node_counts) {
  if (node_counts.empty()) throw std::invalid_argument("need at least one node count");
  std::vector<ScalingPoint> points;
  points.reserve(node_counts.size());
  for (const std::uint32_t nodes : node_counts) {
    SummitConfig config = base;
    config.nodes = nodes;
    const ModeledRun run = model_cluster_run(config, inputs);
    points.push_back({nodes, inputs.genes, run.total_time, 0.0});
  }
  const double baseline = points.front().time * points.front().nodes;
  for (auto& p : points) p.efficiency = baseline / (p.time * p.nodes);
  return points;
}

std::vector<ScalingPoint> weak_scaling(const SummitConfig& base, const ModelInputs& inputs,
                                       std::span<const std::uint32_t> node_counts) {
  if (node_counts.empty()) throw std::invalid_argument("need at least one node count");
  std::vector<ScalingPoint> points;
  points.reserve(node_counts.size());
  const double g0 = inputs.genes;
  const double n0 = node_counts.front();
  // Workload is C(G, h) ~ G^h, so constant per-GPU work needs G ~ P^(1/h).
  const double exponent = 1.0 / static_cast<double>(inputs.hits);
  for (const std::uint32_t nodes : node_counts) {
    SummitConfig config = base;
    config.nodes = nodes;
    ModelInputs scaled = inputs;
    scaled.first_iteration_only = true;
    scaled.genes =
        static_cast<std::uint32_t>(std::llround(g0 * std::pow(nodes / n0, exponent)));
    const ModeledRun run = model_cluster_run(config, scaled);
    points.push_back({nodes, scaled.genes, run.total_time, 0.0});
  }
  // Weak-scaling efficiency: baseline time over this point's time (per-GPU
  // work is constant, so ideal scaling keeps time flat).
  const double baseline = points.front().time;
  for (auto& p : points) p.efficiency = baseline / p.time;
  return points;
}

}  // namespace multihit
