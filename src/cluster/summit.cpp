#include "cluster/summit.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace multihit {

double SummitConfig::job_overhead() const noexcept {
  return job_fixed_overhead + job_log_overhead * std::log2(static_cast<double>(units()));
}

double SummitConfig::noise_factor() const noexcept {
  if (units() <= 1) return 1.0;
  return 1.0 + system_noise_log_pct / 100.0 * std::log2(static_cast<double>(units()));
}

double SummitConfig::jitter_factor(std::uint32_t gpu_index) const noexcept {
  std::uint64_t state = jitter_seed ^ (0x9e3779b97f4a7c15ULL * (gpu_index + 1));
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;  // uniform [0,1)
  return 1.0 + gpu_jitter * u;
}

}  // namespace multihit
