#pragma once
// Summit machine model (paper §III-A, Fig. 1).
//
// Each Summit node holds two POWER9 CPUs and six V100 GPUs; the paper
// abstracts a node as one MPI process driving six devices, and so do we.
// The job-level overhead terms model what the paper's wall-clock runs
// include but its kernels do not: jsrun/MPI startup and teardown, which grow
// slowly with fleet size and are what bends strong scaling below 100% once
// per-GPU work shrinks by 10x.

#include <cstdint>

#include "gpusim/perfmodel.hpp"
#include "mpisim/comm.hpp"

namespace multihit {

struct SummitConfig {
  std::uint32_t nodes = 100;
  std::uint32_t gpus_per_node = 6;
  DeviceSpec device = DeviceSpec::v100();
  CommCostModel comm{};

  /// Host-side word rate for BitSplicing / matrix bookkeeping between
  /// iterations (POWER9 single-thread-ish).
  double host_word_rate = 1.5e9;
  /// O(G) equi-area schedule construction cost per workload level
  /// ("less than a minute" at paper scale, §III-C).
  double schedule_seconds_per_level = 2e-7;
  /// Job launch/teardown: fixed + per-log2(GPUs) seconds (jsrun + MPI wireup).
  double job_fixed_overhead = 20.0;
  double job_log_overhead = 5.0;
  /// Per-rank write rate to the parallel filesystem / burst buffer for
  /// checkpoint snapshots (B/s per rank, all ranks write concurrently).
  double checkpoint_bytes_per_sec = 2e9;
  /// Deterministic per-GPU slowdown spread (DVFS/ECC/OS noise), the texture
  /// visible in the paper's utilization plots. 0.03 = up to 3% slower.
  double gpu_jitter = 0.03;
  /// Seed for the per-GPU jitter hash.
  std::uint64_t jitter_seed = 0x5u;
  /// Fleet-wide interference (network/filesystem/OS contention) growing with
  /// fleet size: compute slows by (1 + noise/100 · log2(GPUs)).
  double system_noise_log_pct = 2.5;

  std::uint32_t units() const noexcept { return nodes * gpus_per_node; }

  /// Modeled job startup cost for this fleet size.
  double job_overhead() const noexcept;

  /// Fleet-interference slowdown factor applied to compute time.
  double noise_factor() const noexcept;

  /// Deterministic slowdown factor (>= 1) for one GPU of the fleet.
  double jitter_factor(std::uint32_t gpu_index) const noexcept;
};

}  // namespace multihit
