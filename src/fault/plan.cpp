#include "fault/plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace multihit {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kRankCrash:
      return "crash";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kMessageDrop:
      return "drop";
    case FaultKind::kJobAbort:
      return "abort";
  }
  return "?";
}

void FaultPlan::validate(std::uint32_t ranks) const {
  std::set<std::uint32_t> crashed;
  for (const FaultEvent& e : events) {
    if (e.kind != FaultKind::kJobAbort && e.rank >= ranks) {
      throw std::invalid_argument("fault plan targets rank " + std::to_string(e.rank) +
                                  " of " + std::to_string(ranks));
    }
    switch (e.kind) {
      case FaultKind::kRankCrash:
        if (e.severity <= 0.0 || e.severity > 1.0) {
          throw std::invalid_argument("crash severity must be in (0, 1]");
        }
        if (!crashed.insert(e.rank).second) {
          throw std::invalid_argument("rank " + std::to_string(e.rank) + " crashes twice");
        }
        break;
      case FaultKind::kStraggler:
        if (e.severity < 1.0) throw std::invalid_argument("straggle factor must be >= 1");
        if (e.count == 0) throw std::invalid_argument("straggler window must be >= 1");
        break;
      case FaultKind::kMessageDrop:
        if (e.count == 0) throw std::invalid_argument("drop count must be >= 1");
        break;
      case FaultKind::kJobAbort:
        break;
    }
  }
  if (crashed.size() >= ranks) {
    throw std::invalid_argument("fault plan crashes every rank; no survivor to recover onto");
  }
}

FaultPlan random_fault_plan(const RandomFaultSpec& spec) {
  if (spec.ranks == 0 || spec.iterations == 0) {
    throw std::invalid_argument("random_fault_plan needs ranks > 0 and iterations > 0");
  }
  Rng rng(spec.seed);
  FaultPlan plan;

  std::uint64_t crashes = rng.poisson(spec.crashes);
  crashes = std::min<std::uint64_t>(crashes, spec.ranks - 1);
  const auto crash_ranks = [&] {
    Rng pick(spec.seed ^ 0x9e3779b97f4a7c15ULL);
    return pick.sample_without_replacement(spec.ranks, crashes);
  }();
  for (const std::uint64_t rank : crash_ranks) {
    FaultEvent e;
    e.kind = FaultKind::kRankCrash;
    e.rank = static_cast<std::uint32_t>(rank);
    e.iteration = static_cast<std::uint32_t>(rng.uniform(spec.iterations));
    e.severity = 0.1 + 0.9 * rng.uniform_double();
    plan.events.push_back(e);
  }

  const std::uint64_t stragglers = rng.poisson(spec.stragglers);
  for (std::uint64_t s = 0; s < stragglers; ++s) {
    FaultEvent e;
    e.kind = FaultKind::kStraggler;
    e.rank = static_cast<std::uint32_t>(rng.uniform(spec.ranks));
    e.iteration = static_cast<std::uint32_t>(rng.uniform(spec.iterations));
    e.severity = 1.0 + (spec.max_straggle_factor - 1.0) * rng.uniform_double();
    e.count = 1 + static_cast<std::uint32_t>(rng.uniform(3));
    plan.events.push_back(e);
  }

  const std::uint64_t drops = rng.poisson(spec.drops);
  for (std::uint64_t d = 0; d < drops; ++d) {
    FaultEvent e;
    e.kind = FaultKind::kMessageDrop;
    e.rank = static_cast<std::uint32_t>(rng.uniform(spec.ranks));
    e.iteration = static_cast<std::uint32_t>(rng.uniform(spec.iterations));
    e.count = 1 + static_cast<std::uint32_t>(rng.uniform(spec.max_drop_count));
    plan.events.push_back(e);
  }

  plan.validate(spec.ranks);
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream out;
  out << plan.events.size() << " events:";
  for (const FaultEvent& e : plan.events) {
    out << ' ' << fault_kind_name(e.kind) << "(r" << e.rank << "@i" << e.iteration;
    if (e.kind == FaultKind::kStraggler) out << " x" << e.severity;
    if (e.kind == FaultKind::kMessageDrop) out << " n" << e.count;
    out << ')';
  }
  return out.str();
}

}  // namespace multihit
