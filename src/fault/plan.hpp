#pragma once
// Deterministic fault plans for the simulated cluster.
//
// At 1000 nodes / 6000 GPUs rank failure and stragglers are the norm, not
// the exception — the paper's whole baseline design is dictated by Summit's
// 2-hour allocation window (§IV-A). A FaultPlan is a fixed, seeded list of
// events injected into a ClusterRunner run:
//
//   kRankCrash   — the rank dies mid-compute in one greedy iteration; its
//                  partial results are lost and its λ ranges must be re-run
//                  on the survivors (the rank stays dead for the whole run).
//   kStraggler   — the rank's compute slows by a factor for a window of
//                  iterations (DVFS throttling, a sick node, OS jitter).
//   kMessageDrop — N transmission attempts of the rank's next tree message
//                  in one iteration are lost, each retried after a timeout.
//   kJobAbort    — the whole allocation dies before one iteration; the run
//                  restarts from the last checkpoint (§IV-A's time limit).
//
// Plans are pure data: the same plan against the same dataset produces a
// bit-identical greedy selection sequence (the recovery layer's invariant)
// and the same modeled clock penalty, which makes every fault differentially
// testable against the fault-free serial reference.

#include <cstdint>
#include <string>
#include <vector>

namespace multihit {

enum class FaultKind : std::uint8_t { kRankCrash, kStraggler, kMessageDrop, kJobAbort };

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kRankCrash;
  std::uint32_t rank = 0;       ///< target MPI rank (ignored for kJobAbort)
  std::uint32_t iteration = 0;  ///< greedy iteration the event fires in
  /// kRankCrash: fraction (0, 1] of the rank's compute finished before it
  /// dies. kStraggler: compute slowdown factor (>= 1).
  double severity = 0.5;
  /// kStraggler: consecutive iterations affected (>= 1).
  /// kMessageDrop: lost transmission attempts from `rank` that iteration (>= 1).
  std::uint32_t count = 1;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// Throws std::invalid_argument if any event targets a rank outside
  /// [0, ranks), carries an out-of-range severity/count, or the plan crashes
  /// every rank (at least one survivor must remain to recover onto).
  void validate(std::uint32_t ranks) const;
};

/// Knobs for seeded random plan generation. Rates are expected event counts
/// over the whole horizon (Poisson-drawn), so plans scale with run length.
struct RandomFaultSpec {
  std::uint64_t seed = 1;
  std::uint32_t ranks = 4;
  std::uint32_t iterations = 8;  ///< horizon events are placed in
  double crashes = 0.0;          ///< expected rank crashes (capped at ranks-1)
  double stragglers = 0.0;       ///< expected straggler windows
  double drops = 0.0;            ///< expected message-drop bursts
  double max_straggle_factor = 4.0;
  std::uint32_t max_drop_count = 4;
};

/// Deterministic plan from a spec: identical spec -> identical plan.
FaultPlan random_fault_plan(const RandomFaultSpec& spec);

/// One-line human/log summary, e.g. "2 events: crash(r1@i0) straggler(r2@i1 x2.5)".
std::string describe(const FaultPlan& plan);

}  // namespace multihit
