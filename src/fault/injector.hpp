#pragma once
// Runtime side of fault injection: answers "what goes wrong for rank r in
// iteration i?" queries from the cluster driver, and collects a structured
// record of every fault that actually fired (also emitted through the
// structured logger as `fault.crash rank=.. iter=.. t=.. cost=..` events).

#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "obs/monitor.hpp"

namespace multihit::obs {
struct Recorder;
}  // namespace multihit::obs

namespace multihit {

/// One fault that fired during a run, with its modeled cost attribution.
struct FaultRecord {
  FaultKind kind = FaultKind::kRankCrash;
  std::uint32_t rank = 0;
  std::uint32_t iteration = 0;
  double sim_time = 0.0;  ///< simulated seconds when the fault fired
  double cost = 0.0;      ///< modeled seconds of overhead attributed to it
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Validates the plan against the rank count (throws std::invalid_argument
  /// on malformed plans, see FaultPlan::validate).
  FaultInjector(FaultPlan plan, std::uint32_t ranks);

  bool enabled() const noexcept { return !plan_.empty(); }

  /// Crash fraction for (rank, iteration): the fraction of that rank's
  /// compute completed before it dies, or a negative value if the rank does
  /// not crash in that iteration.
  double crash_fraction(std::uint32_t rank, std::uint32_t iteration) const noexcept;

  /// Combined compute slowdown factor (>= 1) for (rank, iteration); window
  /// events overlapping the iteration multiply together.
  double straggle_factor(std::uint32_t rank, std::uint32_t iteration) const noexcept;

  /// Number of messages sourced at `rank` to drop during `iteration`.
  std::uint32_t drops(std::uint32_t rank, std::uint32_t iteration) const noexcept;

  /// True when the whole allocation dies before `iteration`.
  bool job_abort(std::uint32_t iteration) const noexcept;

  /// Appends a fired-fault record and emits the structured log event; with a
  /// recorder attached, also counts the fault (fault.events{kind}), observes
  /// its cost (fault.cost_seconds{kind}), and drops an instant trace event on
  /// the rank's lane at the fault's simulated time.
  void record(const FaultRecord& rec);

  /// Attaches (or detaches, with nullptr) the observability recorder.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  const std::vector<FaultRecord>& records() const noexcept { return records_; }
  std::vector<FaultRecord> take_records() noexcept { return std::move(records_); }

 private:
  FaultPlan plan_;
  std::vector<FaultRecord> records_;
  obs::Recorder* recorder_ = nullptr;
};

/// Exports fired-fault records as the neutral ground-truth shape the health
/// monitor's scorer consumes (kind names via fault_kind_name: "crash",
/// "straggler", "drop", "abort"). The conversion lives here — not in obs —
/// because obs must not depend on the fault layer.
std::vector<obs::TruthEvent> truth_events(std::span<const FaultRecord> records);

}  // namespace multihit
