#include "fault/injector.hpp"

#include "util/log.hpp"

namespace multihit {

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t ranks) : plan_(std::move(plan)) {
  plan_.validate(ranks);
}

double FaultInjector::crash_fraction(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kRankCrash && e.rank == rank && e.iteration == iteration) {
      return e.severity;
    }
  }
  return -1.0;
}

double FaultInjector::straggle_factor(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStraggler && e.rank == rank && iteration >= e.iteration &&
        iteration < e.iteration + e.count) {
      factor *= e.severity;
    }
  }
  return factor;
}

std::uint32_t FaultInjector::drops(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  std::uint32_t count = 0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kMessageDrop && e.rank == rank && e.iteration == iteration) {
      count += e.count;
    }
  }
  return count;
}

bool FaultInjector::job_abort(std::uint32_t iteration) const noexcept {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kJobAbort && e.iteration == iteration) return true;
  }
  return false;
}

void FaultInjector::record(const FaultRecord& rec) {
  records_.push_back(rec);
  log::emit_event(log::Level::kInfo, std::string("fault.") + fault_kind_name(rec.kind),
                  {log::field("rank", rec.rank), log::field("iter", rec.iteration),
                   log::field("t", rec.sim_time), log::field("cost", rec.cost)});
}

}  // namespace multihit
