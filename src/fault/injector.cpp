#include "fault/injector.hpp"

#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace multihit {

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t ranks) : plan_(std::move(plan)) {
  plan_.validate(ranks);
}

double FaultInjector::crash_fraction(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kRankCrash && e.rank == rank && e.iteration == iteration) {
      return e.severity;
    }
  }
  return -1.0;
}

double FaultInjector::straggle_factor(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStraggler && e.rank == rank && iteration >= e.iteration &&
        iteration < e.iteration + e.count) {
      factor *= e.severity;
    }
  }
  return factor;
}

std::uint32_t FaultInjector::drops(std::uint32_t rank, std::uint32_t iteration) const noexcept {
  std::uint32_t count = 0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kMessageDrop && e.rank == rank && e.iteration == iteration) {
      count += e.count;
    }
  }
  return count;
}

bool FaultInjector::job_abort(std::uint32_t iteration) const noexcept {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kJobAbort && e.iteration == iteration) return true;
  }
  return false;
}

void FaultInjector::record(const FaultRecord& rec) {
  records_.push_back(rec);
  const char* kind = fault_kind_name(rec.kind);
  log::emit_event(log::Level::kInfo, std::string("fault.") + kind,
                  {log::field("rank", rec.rank), log::field("iter", rec.iteration),
                   log::field("t", rec.sim_time), log::field("cost", rec.cost)});
  if (recorder_) {
    const obs::Labels labels{{"kind", kind}};
    recorder_->metrics.counter("fault.events", labels).add(1.0);
    recorder_->metrics.histogram("fault.cost_seconds", labels).observe(rec.cost);
    // Job aborts are fleet-wide, not a rank event: they land on the driver
    // lane so rank lanes keep their monotone span order.
    const std::uint32_t lane =
        rec.kind == FaultKind::kJobAbort ? obs::kEngineLane : rec.rank;
    recorder_->trace.instant(lane, std::string("fault.") + kind, "fault", rec.sim_time,
                             {{"iteration", std::to_string(rec.iteration)},
                              {"cost_s", std::to_string(rec.cost)}});
  }
}

std::vector<obs::TruthEvent> truth_events(std::span<const FaultRecord> records) {
  std::vector<obs::TruthEvent> events;
  events.reserve(records.size());
  for (const FaultRecord& rec : records) {
    events.push_back({fault_kind_name(rec.kind), rec.rank, rec.iteration, rec.sim_time});
  }
  return events;
}

}  // namespace multihit
