#include "mpisim/comm.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/recorder.hpp"

namespace multihit {

SimComm::SimComm(std::uint32_t size, CommCostModel cost)
    : cost_(cost),
      clock_(size, 0.0),
      compute_time_(size, 0.0),
      comm_time_(size, 0.0),
      alive_(size, true),
      detected_(size, true),
      heartbeats_(size, 0),
      retransmits_(size, 0) {
  if (size == 0) throw std::invalid_argument("SimComm requires at least one rank");
}

void SimComm::compute(std::uint32_t rank, double seconds) {
  if (!alive_.at(rank)) return;
  clock_[rank] += seconds;
  compute_time_[rank] += seconds;
}

double SimComm::finish_time() const noexcept {
  double latest = 0.0;
  for (std::uint32_t r = 0; r < clock_.size(); ++r) {
    if (alive_[r]) latest = std::max(latest, clock_[r]);
  }
  return latest;
}

std::uint32_t SimComm::alive_count() const noexcept {
  std::uint32_t count = 0;
  for (const bool a : alive_) count += a ? 1 : 0;
  return count;
}

std::uint32_t SimComm::lowest_alive() const {
  for (std::uint32_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) return r;
  }
  throw std::runtime_error("no surviving rank");
}

std::vector<std::uint32_t> SimComm::alive_ranks() const {
  std::vector<std::uint32_t> ranks;
  ranks.reserve(alive_.size());
  for (std::uint32_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) ranks.push_back(r);
  }
  return ranks;
}

void SimComm::fail(std::uint32_t rank, double at_time) {
  if (!alive_.at(rank)) throw std::invalid_argument("rank is already dead");
  if (alive_count() == 1) throw std::runtime_error("cannot kill the last surviving rank");
  clock_[rank] = std::max(clock_[rank], at_time);
  alive_[rank] = false;
  detected_[rank] = false;
}

void SimComm::detect_failures() {
  double latest_death = -1.0;
  std::uint32_t newly_detected = 0;
  for (std::uint32_t r = 0; r < clock_.size(); ++r) {
    if (!alive_[r] && !detected_[r]) {
      latest_death = std::max(latest_death, clock_[r]);
      detected_[r] = true;
      ++newly_detected;
    }
  }
  if (latest_death < 0.0) return;
  if (recorder_) recorder_->metrics.counter("comm.failures_detected").add(newly_detected);
  // Every survivor blocks on its dead partner until the failure detector
  // fires: it cannot have noticed before the death, and then waits out the
  // full window.
  for (std::uint32_t r = 0; r < clock_.size(); ++r) {
    if (alive_[r]) {
      set_clock_comm(r, std::max(clock_[r], latest_death) + cost_.detection_window);
    }
  }
}

void SimComm::set_clock_comm(std::uint32_t rank, double new_time) {
  if (new_time > clock_[rank]) {
    comm_time_[rank] += new_time - clock_[rank];
    clock_[rank] = new_time;
  }
}

void SimComm::send(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes) {
  if (!alive_.at(src) || !alive_.at(dst)) return;
  const MessageFault fault = fault_fn_ ? fault_fn_(src, dst, bytes) : MessageFault{};
  const double transfer = cost_.cost(bytes);
  // Each dropped attempt stalls the exchange for one retransmission timeout;
  // each duplicate occupies the receiver for one extra transfer. The sender
  // is busy for the injection latency of every copy it puts on the wire.
  const double penalty = fault.drops * cost_.retransmit_timeout +
                         fault.duplicates * transfer;
  const double depart = clock_[src];
  // The edge binds the receiver when the sender's clock is not behind: the
  // receiver sat waiting for this message, so the critical path runs through
  // the sender. A late receiver hides the transfer under its own work.
  const bool binding = clock_[src] >= clock_[dst];
  const double arrival = std::max(clock_[src], clock_[dst]) + penalty + transfer;
  set_clock_comm(src, clock_[src] + cost_.latency * (1 + fault.drops + fault.duplicates));
  set_clock_comm(dst, arrival);
  if (recorder_) {
    recorder_->trace.flow(src, depart, dst, arrival, flow_op_, "comm", binding,
                          {{"bytes", std::to_string(bytes)}});
    obs::MetricsRegistry& metrics = recorder_->metrics;
    metrics.counter("comm.messages").add(1.0);
    metrics.counter("comm.message_bytes").add(static_cast<double>(bytes));
    if (fault.drops > 0) {
      metrics.counter("comm.retransmits").add(fault.drops);
      // Retransmit telemetry lands when the last dropped attempt timed out —
      // the moment the sender's transport layer knew about every loss.
      retransmits_[src] += fault.drops;
      recorder_->trace.counter(src, "comm_retransmits",
                               depart + fault.drops * cost_.retransmit_timeout,
                               static_cast<double>(retransmits_[src]));
    }
    if (fault.duplicates > 0) metrics.counter("comm.duplicates").add(fault.duplicates);
  }
}

void SimComm::barrier() {
  const double begin = finish_time();
  detect_failures();
  // Dissemination barrier: after ceil(log2 P) rounds every surviving rank
  // has heard from every other; all clocks align to the slowest + rounds *
  // latency.
  const std::uint32_t p = alive_count();
  if (p > 1) {
    std::uint32_t rounds = 0;
    for (std::uint32_t span = 1; span < p; span <<= 1) ++rounds;
    const double done = finish_time() + rounds * cost_.latency;
    for (std::uint32_t r = 0; r < clock_.size(); ++r) {
      if (alive_[r]) set_clock_comm(r, done);
    }
  }
  record_collective("barrier", 0, begin);
}

void SimComm::reduce_clocks(std::uint32_t root, std::uint64_t bytes) {
  // Validate the root exactly like broadcast: a dead root is a caller bug,
  // and without this check the position scan below would walk off the end of
  // the surviving-rank list.
  if (!alive_.at(root)) throw std::invalid_argument("reduce root is dead");
  const double begin = finish_time();
  detect_failures();
  // Binomial tree toward root over the surviving ranks (relative position
  // 0): in the round with `stride`, relative position rel+stride sends its
  // partial to rel.
  const std::vector<std::uint32_t> ranks = alive_ranks();
  const std::uint32_t p = static_cast<std::uint32_t>(ranks.size());
  std::uint32_t ri = 0;
  while (ranks[ri] != root) ++ri;
  flow_op_ = "reduce";
  for (std::uint32_t stride = 1; stride < p; stride <<= 1) {
    for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
      send(ranks[(ri + rel + stride) % p], ranks[(ri + rel) % p], bytes);
    }
  }
  flow_op_ = "p2p";
  record_collective("reduce", bytes, begin);
}

void SimComm::broadcast(std::uint32_t root, std::uint64_t bytes) {
  if (!alive_.at(root)) throw std::invalid_argument("broadcast root is dead");
  const double begin = finish_time();
  detect_failures();
  // Binomial tree away from root, mirroring reduce_clocks.
  const std::vector<std::uint32_t> ranks = alive_ranks();
  const std::uint32_t p = static_cast<std::uint32_t>(ranks.size());
  std::uint32_t ri = 0;
  while (ranks[ri] != root) ++ri;
  std::uint32_t top = 1;
  while (top < p) top <<= 1;
  flow_op_ = "broadcast";
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
      send(ranks[(ri + rel) % p], ranks[(ri + rel + stride) % p], bytes);
    }
    if (stride == 1) break;
  }
  flow_op_ = "p2p";
  record_collective("broadcast", bytes, begin);
}

void SimComm::record_collective(const char* op, std::uint64_t bytes, double begin) {
  if (!recorder_) return;
  obs::MetricsRegistry& metrics = recorder_->metrics;
  const obs::Labels labels{{"op", op}};
  metrics.counter("comm.collectives", labels).add(1.0);
  metrics.counter("comm.collective_bytes", labels).add(static_cast<double>(bytes));
  // Critical-path cost: how far past the pre-collective frontier (the
  // slowest participating clock) the collective pushed the job — the
  // quantity Fig. 8 shows hiding under compute variance.
  metrics.histogram("comm.collective_seconds", labels).observe(finish_time() - begin);
  // Every survivor heartbeats at the collective's completion time. Live
  // ranks therefore always share their newest heartbeat timestamp — the
  // monitor's dead-rank detector keys off the one track that fell behind.
  const double done = finish_time();
  for (std::uint32_t r = 0; r < clock_.size(); ++r) {
    if (alive_[r]) {
      recorder_->trace.counter(r, "heartbeat", done,
                               static_cast<double>(++heartbeats_[r]));
    }
  }
}

}  // namespace multihit
