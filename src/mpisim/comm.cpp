#include "mpisim/comm.hpp"

#include <algorithm>
#include <stdexcept>

namespace multihit {

SimComm::SimComm(std::uint32_t size, CommCostModel cost)
    : cost_(cost), clock_(size, 0.0), compute_time_(size, 0.0), comm_time_(size, 0.0) {
  if (size == 0) throw std::invalid_argument("SimComm requires at least one rank");
}

void SimComm::compute(std::uint32_t rank, double seconds) {
  clock_.at(rank) += seconds;
  compute_time_[rank] += seconds;
}

double SimComm::finish_time() const noexcept {
  return *std::max_element(clock_.begin(), clock_.end());
}

void SimComm::set_clock_comm(std::uint32_t rank, double new_time) {
  if (new_time > clock_[rank]) {
    comm_time_[rank] += new_time - clock_[rank];
    clock_[rank] = new_time;
  }
}

void SimComm::send(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes) {
  clock_.at(src);
  clock_.at(dst);
  const double transfer = cost_.cost(bytes);
  // The sender is busy for the injection latency; the receiver completes
  // once both sides are ready and the payload has moved.
  const double arrival = std::max(clock_[src], clock_[dst]) + transfer;
  set_clock_comm(src, clock_[src] + cost_.latency);
  set_clock_comm(dst, arrival);
}

void SimComm::barrier() {
  // Dissemination barrier: after ceil(log2 P) rounds every rank has heard
  // from every other; all clocks align to the slowest + rounds * latency.
  const std::uint32_t p = size();
  if (p == 1) return;
  std::uint32_t rounds = 0;
  for (std::uint32_t span = 1; span < p; span <<= 1) ++rounds;
  const double done = finish_time() + rounds * cost_.latency;
  for (std::uint32_t r = 0; r < p; ++r) set_clock_comm(r, done);
}

void SimComm::reduce_clocks(std::uint32_t root, std::uint64_t bytes) {
  // Binomial tree toward root (relative rank 0): in the round with `stride`,
  // relative rank rel+stride sends its partial to rel.
  const std::uint32_t p = size();
  for (std::uint32_t stride = 1; stride < p; stride <<= 1) {
    for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
      send((root + rel + stride) % p, (root + rel) % p, bytes);
    }
  }
}

void SimComm::broadcast(std::uint32_t root, std::uint64_t bytes) {
  // Binomial tree away from root, mirroring reduce_clocks.
  const std::uint32_t p = size();
  std::uint32_t top = 1;
  while (top < p) top <<= 1;
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
      send((root + rel) % p, (root + rel + stride) % p, bytes);
    }
    if (stride == 1) break;
  }
}

}  // namespace multihit
