#pragma once
// In-process message-passing runtime with a simulated clock.
//
// The paper runs one MPI process per Summit node. This machine has no MPI
// and one core, so the communicator executes collectives functionally
// (values really move and reduce) while advancing per-rank simulated clocks
// under an alpha-beta cost model:
//
//   point-to-point cost(m bytes) = latency + m / bandwidth
//
// Collectives use binomial trees (the shape MPI implementations use for
// small messages — and the paper's messages are 20-byte candidates), so a
// reduce/broadcast over P ranks costs ceil(log2 P) rounds. Clocks make skew
// first-class: a reduce absorbs stragglers exactly the way Fig. 8 shows
// communication hiding under compute variance.
//
// Fault awareness: ranks can die (`fail`), after which collectives run over
// the surviving ranks only. The first collective entered after a death
// charges every survivor the failure-detector timeout (`detection_window`)
// — the modeled cost of waiting on a partner that will never answer — and
// marks the death detected. Point-to-point sends consult an optional
// message-fault hook; dropped messages cost a retransmission timeout and
// duplicated messages cost extra wire time, but the payload always arrives
// (values really move), so faults change clocks, never results.
//
// Determinism: collectives apply the reduction operator in a fixed tree
// order over the ordered surviving-rank list, and the operators used in this
// project (merge_results, max, sum of integers) are associative, so results
// are identical at any rank count and under any fault plan.

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

namespace multihit::obs {
struct Recorder;
}  // namespace multihit::obs

namespace multihit {

/// Alpha-beta transfer cost. Defaults are Summit-like: ~1.5 us MPI latency,
/// dual-rail EDR InfiniBand ~23 GB/s per node.
struct CommCostModel {
  double latency = 1.5e-6;      ///< s per message
  double bandwidth = 23e9;      ///< B/s
  /// Failure-detector timeout: how long survivors wait on a dead partner
  /// inside a collective before declaring it failed (s).
  double detection_window = 0.05;
  /// Wait before a dropped message is retransmitted (s per drop).
  double retransmit_timeout = 1e-3;

  double cost(std::uint64_t bytes) const noexcept {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

/// Faults applied to one point-to-point message.
struct MessageFault {
  std::uint32_t drops = 0;       ///< lost attempts before the copy that lands
  std::uint32_t duplicates = 0;  ///< redundant extra copies received
};

/// Per-send fault decision hook; consulted once per message in clock order,
/// so a deterministic function yields a deterministic run.
using MessageFaultFn =
    std::function<MessageFault(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes)>;

/// A simulated communicator over `size` ranks.
class SimComm {
 public:
  explicit SimComm(std::uint32_t size, CommCostModel cost = {});

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(clock_.size()); }

  /// Advances one rank's clock by local-compute seconds. No-op on a dead
  /// rank (its clock is frozen at the time of death).
  void compute(std::uint32_t rank, double seconds);

  double clock(std::uint32_t rank) const { return clock_.at(rank); }
  double compute_time(std::uint32_t rank) const { return compute_time_.at(rank); }
  double comm_time(std::uint32_t rank) const { return comm_time_.at(rank); }

  /// Latest clock across surviving ranks — the job's wall time so far.
  double finish_time() const noexcept;

  /// Marks `rank` dead at simulated time `at_time` (its clock freezes
  /// there). The death is undetected until the next collective, which
  /// charges survivors the detection window. Throws if already dead or if
  /// this would kill the last survivor.
  void fail(std::uint32_t rank, double at_time);

  bool alive(std::uint32_t rank) const { return alive_.at(rank); }
  std::uint32_t alive_count() const noexcept;
  /// Lowest-numbered surviving rank (the deterministic root choice after the
  /// original root dies).
  std::uint32_t lowest_alive() const;
  /// Surviving ranks in ascending order.
  std::vector<std::uint32_t> alive_ranks() const;

  /// Installs (or clears, with an empty function) the message-fault hook.
  void set_message_faults(MessageFaultFn fn) { fault_fn_ = std::move(fn); }

  /// Attaches (or detaches, with nullptr) an observability recorder: every
  /// point-to-point message and collective then lands in its metrics
  /// registry (comm.messages, comm.retransmits, comm.collective_seconds per
  /// op, ...), and every message additionally lands in its tracer as a flow
  /// edge from the sender's lane at departure to the receiver's lane at
  /// arrival — the dependency graph the trace analyzer's critical-path walk
  /// runs on, and the arrows Perfetto draws between rank lanes. Recording
  /// never advances clocks — instrumented and uninstrumented runs are
  /// bit-identical.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Timed point-to-point transfer of `bytes` from src to dst. The receive
  /// completes at max(src send, dst ready) + cost(bytes), plus any
  /// drop/duplication penalties from the fault hook. Silently discarded if
  /// either endpoint is dead.
  void send(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes);

  /// All surviving ranks wait for the slowest (dissemination barrier,
  /// log2 P rounds).
  void barrier();

  /// Binomial-tree reduce of `values[r]` (one per rank; dead ranks' entries
  /// are ignored) to `root`, which must be alive. `bytes` is the serialized
  /// element size for the cost model. Returns the reduced value (available
  /// at root's clock).
  template <typename T, typename Op>
  T reduce(std::span<const T> values, std::uint32_t root, std::uint64_t bytes, Op op) {
    assert(values.size() == clock_.size());
    reduce_clocks(root, bytes);  // validates the root (throws if dead)
    // Apply the operator in the same binomial-tree order over the surviving
    // ranks the clock walk used, so floating-point results are bitwise
    // stable.
    const std::vector<std::uint32_t> ranks = alive_ranks();
    const std::uint32_t p = static_cast<std::uint32_t>(ranks.size());
    std::uint32_t ri = 0;
    while (ranks[ri] != root) ++ri;
    std::vector<T> partial;
    partial.reserve(p);
    for (const std::uint32_t r : ranks) partial.push_back(values[r]);
    for (std::uint32_t stride = 1; stride < p; stride <<= 1) {
      for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
        const std::uint32_t dst = (ri + rel) % p;
        const std::uint32_t src = (ri + rel + stride) % p;
        partial[dst] = op(partial[dst], partial[src]);
      }
    }
    return partial[ri];
  }

  /// Binomial-tree broadcast of `bytes` from root (must be alive); returns
  /// when all surviving ranks have the value (clocks advanced accordingly).
  void broadcast(std::uint32_t root, std::uint64_t bytes);

  /// Timing-only reduce: advances clocks exactly as reduce() would for a
  /// `bytes`-sized payload toward `root`, without moving values — what the
  /// analytic model layer needs. Root must be alive (throws
  /// std::invalid_argument), exactly like broadcast; this validation is what
  /// keeps the binomial-tree walk inside the surviving-rank list.
  void reduce_clocks(std::uint32_t root, std::uint64_t bytes);

  /// reduce followed by broadcast (how small-message allreduce behaves).
  template <typename T, typename Op>
  T allreduce(std::span<const T> values, std::uint64_t bytes, Op op) {
    const std::uint32_t root = lowest_alive();
    T result = reduce(values, root, bytes, op);
    broadcast(root, bytes);
    return result;
  }

 private:
  /// Charges every survivor the detection window for deaths not yet
  /// detected; called on entry to each collective.
  void detect_failures();
  /// Records a clock move caused by communication (wait + transfer).
  void set_clock_comm(std::uint32_t rank, double new_time);
  /// Lands one finished collective in the attached recorder (no-op without
  /// one): count, bytes, and critical-path seconds labeled by `op`.
  void record_collective(const char* op, std::uint64_t bytes, double begin);

  CommCostModel cost_;
  MessageFaultFn fault_fn_;
  obs::Recorder* recorder_ = nullptr;
  /// Collective context for flow edges emitted by send(): "reduce" or
  /// "broadcast" while inside the corresponding tree walk, "p2p" otherwise.
  const char* flow_op_ = "p2p";
  std::vector<double> clock_;
  std::vector<double> compute_time_;
  std::vector<double> comm_time_;
  std::vector<bool> alive_;
  std::vector<bool> detected_;  ///< death already paid for by survivors
  /// Liveness telemetry: per-rank cumulative collective completions. Every
  /// surviving rank's heartbeat track ticks at each collective's completion
  /// time, so the health monitor sees a dead rank as the one track that
  /// stopped. Emitted as "heartbeat" counter samples on the rank's lane.
  std::vector<std::uint64_t> heartbeats_;
  /// Cumulative retransmissions per sending rank, emitted as the
  /// "comm_retransmits" counter track the monitor's drop detector watches.
  std::vector<std::uint64_t> retransmits_;
};

}  // namespace multihit
