#pragma once
// In-process message-passing runtime with a simulated clock.
//
// The paper runs one MPI process per Summit node. This machine has no MPI
// and one core, so the communicator executes collectives functionally
// (values really move and reduce) while advancing per-rank simulated clocks
// under an alpha-beta cost model:
//
//   point-to-point cost(m bytes) = latency + m / bandwidth
//
// Collectives use binomial trees (the shape MPI implementations use for
// small messages — and the paper's messages are 20-byte candidates), so a
// reduce/broadcast over P ranks costs ceil(log2 P) rounds. Clocks make skew
// first-class: a reduce absorbs stragglers exactly the way Fig. 8 shows
// communication hiding under compute variance.
//
// Determinism: collectives apply the reduction operator in a fixed tree
// order, and the operators used in this project (merge_results, max, sum of
// integers) are associative, so results are identical at any rank count.

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace multihit {

/// Alpha-beta transfer cost. Defaults are Summit-like: ~1.5 us MPI latency,
/// dual-rail EDR InfiniBand ~23 GB/s per node.
struct CommCostModel {
  double latency = 1.5e-6;      ///< s per message
  double bandwidth = 23e9;      ///< B/s

  double cost(std::uint64_t bytes) const noexcept {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

/// A simulated communicator over `size` ranks.
class SimComm {
 public:
  explicit SimComm(std::uint32_t size, CommCostModel cost = {});

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(clock_.size()); }

  /// Advances one rank's clock by local-compute seconds.
  void compute(std::uint32_t rank, double seconds);

  double clock(std::uint32_t rank) const { return clock_.at(rank); }
  double compute_time(std::uint32_t rank) const { return compute_time_.at(rank); }
  double comm_time(std::uint32_t rank) const { return comm_time_.at(rank); }

  /// Latest clock across ranks — the job's wall time so far.
  double finish_time() const noexcept;

  /// Timed point-to-point transfer of `bytes` from src to dst. The receive
  /// completes at max(src send, dst ready) + cost(bytes).
  void send(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes);

  /// All ranks wait for the slowest (dissemination barrier, log2 P rounds).
  void barrier();

  /// Binomial-tree reduce of `values[r]` (one per rank) to `root`.
  /// `bytes` is the serialized element size for the cost model. Returns the
  /// reduced value (available at root's clock).
  template <typename T, typename Op>
  T reduce(std::span<const T> values, std::uint32_t root, std::uint64_t bytes, Op op) {
    assert(values.size() == clock_.size());
    std::vector<T> partial(values.begin(), values.end());
    reduce_clocks(root, bytes);
    // Apply the operator in the same binomial-tree order the clock walk
    // used, so floating-point results are bitwise stable.
    const std::uint32_t p = size();
    for (std::uint32_t stride = 1; stride < p; stride <<= 1) {
      for (std::uint32_t rel = 0; rel + stride < p; rel += stride << 1) {
        const std::uint32_t dst = (root + rel) % p;
        const std::uint32_t src = (root + rel + stride) % p;
        partial[dst] = op(partial[dst], partial[src]);
      }
    }
    return partial[root];
  }

  /// Binomial-tree broadcast of `bytes` from root; returns when all ranks
  /// have the value (clocks advanced accordingly).
  void broadcast(std::uint32_t root, std::uint64_t bytes);

  /// reduce followed by broadcast (how small-message allreduce behaves).
  template <typename T, typename Op>
  T allreduce(std::span<const T> values, std::uint64_t bytes, Op op) {
    T result = reduce(values, 0, bytes, op);
    broadcast(0, bytes);
    return result;
  }

 private:
  void reduce_clocks(std::uint32_t root, std::uint64_t bytes);
  /// Records a clock move caused by communication (wait + transfer).
  void set_clock_comm(std::uint32_t rank, double new_time);

  CommCostModel cost_;
  std::vector<double> clock_;
  std::vector<double> compute_time_;
  std::vector<double> comm_time_;
};

}  // namespace multihit
