#pragma once
// Deterministic, fast pseudo-random number generation for synthetic data
// and property tests.
//
// xoshiro256** seeded via splitmix64: every experiment in this repository is
// reproducible from a single 64-bit seed. std::mt19937_64 is deliberately
// avoided — its seeding is implementation-dependent across stdlib versions.

#include <array>
#include <cstdint>
#include <vector>

namespace multihit {

/// splitmix64 step: used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method; unbiased.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal variate (Box-Muller, one value per call).
  double normal() noexcept;

  /// Poisson variate with mean lambda >= 0 (Knuth for small lambda,
  /// normal approximation above 64).
  std::uint64_t poisson(double lambda) noexcept;

  /// Samples k distinct values from [0, n) in increasing order.
  /// Requires k <= n. O(k) expected time via Floyd's algorithm + sort.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n, std::uint64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace multihit
