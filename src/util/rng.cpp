#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace multihit {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // A theoretically possible all-zero state would make the generator stick.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection of the biased region.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate for statelessness.
  double u1 = uniform_double();
  while (u1 <= 0.0) u1 = uniform_double();
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double v = lambda + std::sqrt(lambda) * normal();
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-lambda);
  std::uint64_t count = 0;
  double product = uniform_double();
  while (product > limit) {
    ++count;
    product *= uniform_double();
  }
  return count;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n, std::uint64_t k) {
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k));
  // Floyd's algorithm: k iterations, each inserts exactly one new element.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::uint64_t> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace multihit
