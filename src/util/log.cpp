#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace multihit::log {

namespace {

std::atomic<Level> g_level{Level::kInfo};
std::mutex g_emit_mutex;
Sink g_sink;  // guarded by g_emit_mutex; empty = stderr

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

std::optional<Level> parse_level(std::string_view name) noexcept {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return std::nullopt;
}

std::string_view level_names() noexcept { return "trace, debug, info, warn, error, off"; }

void emit(Level lvl, std::string_view message) {
  if (level() > lvl) return;
  std::scoped_lock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(lvl, message);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(lvl), static_cast<int>(message.size()),
               message.data());
}

void set_sink(Sink sink) {
  std::scoped_lock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace {

bool needs_quoting(std::string_view value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void append_quoted(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string format_event(std::string_view event, const Fields& fields) {
  std::string out(event);
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    if (needs_quoting(value)) {
      append_quoted(out, value);
    } else {
      out += value;
    }
  }
  return out;
}

std::optional<ParsedEvent> parse_event(std::string_view record) {
  constexpr std::size_t npos = std::string_view::npos;
  ParsedEvent parsed;
  std::size_t pos = record.find(' ');
  parsed.event = std::string(record.substr(0, pos));
  if (parsed.event.empty() || parsed.event.find('"') != std::string::npos ||
      parsed.event.find('=') != std::string::npos) {
    return std::nullopt;
  }
  if (pos == npos) return parsed;

  while (pos < record.size()) {
    if (record[pos] != ' ') return std::nullopt;
    ++pos;  // exactly one separating space per field
    const std::size_t eq = record.find('=', pos);
    if (eq == npos || eq == pos) return std::nullopt;
    std::string key(record.substr(pos, eq - pos));
    if (key.find(' ') != std::string::npos || key.find('"') != std::string::npos) {
      return std::nullopt;
    }
    pos = eq + 1;

    std::string value;
    if (pos < record.size() && record[pos] == '"') {
      ++pos;
      bool closed = false;
      while (pos < record.size()) {
        const char c = record[pos++];
        if (c == '"') {
          closed = true;
          break;
        }
        if (c == '\\') {
          if (pos >= record.size()) return std::nullopt;
          switch (record[pos++]) {
            case '"': value += '"'; break;
            case '\\': value += '\\'; break;
            case 'n': value += '\n'; break;
            case 'r': value += '\r'; break;
            case 't': value += '\t'; break;
            default: return std::nullopt;
          }
        } else {
          value += c;
        }
      }
      if (!closed) return std::nullopt;
      if (pos < record.size() && record[pos] != ' ') return std::nullopt;
    } else {
      std::size_t end = record.find(' ', pos);
      if (end == npos) end = record.size();
      value = std::string(record.substr(pos, end - pos));
      if (value.find('"') != std::string::npos || value.find('=') != std::string::npos) {
        return std::nullopt;
      }
      pos = end;
    }
    parsed.fields.emplace_back(std::move(key), std::move(value));
  }
  return parsed;
}

void emit_event(Level lvl, std::string_view event, const Fields& fields) {
  if (level() > lvl) return;
  emit(lvl, format_event(event, fields));
}

}  // namespace multihit::log
