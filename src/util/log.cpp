#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace multihit::log {

namespace {

std::atomic<Level> g_level{Level::kInfo};
std::mutex g_emit_mutex;
Sink g_sink;  // guarded by g_emit_mutex; empty = stderr

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

Level parse_level(std::string_view name) noexcept {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kInfo;
}

void emit(Level lvl, std::string_view message) {
  if (level() > lvl) return;
  std::scoped_lock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(lvl, message);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(lvl), static_cast<int>(message.size()),
               message.data());
}

void set_sink(Sink sink) {
  std::scoped_lock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

std::string format_event(std::string_view event, const Fields& fields) {
  std::string out(event);
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    if (value.find(' ') != std::string::npos) {
      out += '"';
      out += value;
      out += '"';
    } else {
      out += value;
    }
  }
  return out;
}

void emit_event(Level lvl, std::string_view event, const Fields& fields) {
  if (level() > lvl) return;
  emit(lvl, format_event(event, fields));
}

}  // namespace multihit::log
