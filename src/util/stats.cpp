#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace multihit::stats {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(values.size() - 1));
}

double min(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace multihit::stats
