#pragma once
// ASCII table / CSV emitters used by every bench binary so figure data is
// both human-readable and trivially importable into a plotting tool.

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace multihit {

/// A column-oriented table. Cells are strings, integers, or doubles; doubles
/// render with a configurable precision.
class Table {
 public:
  using Cell = std::variant<std::string, long long, double>;

  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Digits after the decimal point for double cells (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

  /// Renders an aligned, boxed ASCII table.
  void print(std::ostream& out) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& out) const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Prints a "## <title>" section banner benches use between figure panels.
void print_section(std::ostream& out, const std::string& title);

}  // namespace multihit
