#pragma once
// Lightweight leveled logger for library and tool diagnostics.
//
// Messages below the active level are discarded cheaply. Output goes to
// stderr so experiment tables written to stdout stay machine-parseable.

#include <sstream>
#include <string>
#include <string_view>

namespace multihit::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the global log threshold; messages below it are dropped.
void set_level(Level level) noexcept;

/// Returns the current global log threshold.
Level level() noexcept;

/// Parses a level name ("trace", "debug", "info", "warn", "error", "off").
/// Unknown names return kInfo.
Level parse_level(std::string_view name) noexcept;

/// Emits one log record at `level`. Prefer the MH_LOG_* macros below, which
/// skip message formatting entirely when the level is disabled.
void emit(Level level, std::string_view message);

namespace detail {

class Record {
 public:
  explicit Record(Level level) : level_(level) {}
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;
  ~Record() { emit(level_, stream_.str()); }

  template <typename T>
  Record& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace multihit::log

#define MH_LOG_AT(lvl)                            \
  if (::multihit::log::level() <= (lvl))          \
  ::multihit::log::detail::Record(lvl)

#define MH_LOG_TRACE MH_LOG_AT(::multihit::log::Level::kTrace)
#define MH_LOG_DEBUG MH_LOG_AT(::multihit::log::Level::kDebug)
#define MH_LOG_INFO MH_LOG_AT(::multihit::log::Level::kInfo)
#define MH_LOG_WARN MH_LOG_AT(::multihit::log::Level::kWarn)
#define MH_LOG_ERROR MH_LOG_AT(::multihit::log::Level::kError)
