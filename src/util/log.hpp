#pragma once
// Lightweight leveled logger for library and tool diagnostics.
//
// Messages below the active level are discarded cheaply. Output goes to
// stderr so experiment tables written to stdout stay machine-parseable.

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace multihit::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the global log threshold; messages below it are dropped.
void set_level(Level level) noexcept;

/// Returns the current global log threshold.
Level level() noexcept;

/// Parses a level name ("trace", "debug", "info", "warn", "error", "off").
/// Unknown names return nullopt so callers can reject a typo'd --log-level
/// instead of silently running at kInfo.
std::optional<Level> parse_level(std::string_view name) noexcept;

/// The accepted parse_level names, for CLI error messages.
std::string_view level_names() noexcept;

/// Emits one log record at `level`. Prefer the MH_LOG_* macros below, which
/// skip message formatting entirely when the level is disabled.
void emit(Level level, std::string_view message);

/// Redirects emitted records to `sink` instead of stderr (used by tools that
/// collect structured events, and by tests). An empty function restores the
/// default stderr output. The sink sees records that pass the level filter.
using Sink = std::function<void(Level, std::string_view)>;
void set_sink(Sink sink);

/// Ordered key/value pairs attached to a structured event.
using Fields = std::vector<std::pair<std::string, std::string>>;

/// Stringifies one field value with enough precision for doubles to survive.
template <typename T>
std::pair<std::string, std::string> field(std::string_view key, const T& value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return {std::string(key), out.str()};
}

/// Formats a structured record as `event key=value key=value ...`. Values
/// containing spaces, quotes, `=`, backslashes, or control characters (or
/// empty values) are double-quoted with `\`-escaping so every record parses
/// back losslessly via parse_event.
std::string format_event(std::string_view event, const Fields& fields);

/// Parses a format_event record back into (event, fields). Returns nullopt
/// for records that are not well-formed (unterminated quote, missing `=`,
/// bad escape) — the round-trip contract is parse_event(format_event(e, f))
/// == (e, f) for any field content.
struct ParsedEvent {
  std::string event;
  Fields fields;
  bool operator==(const ParsedEvent&) const = default;
};
std::optional<ParsedEvent> parse_event(std::string_view record);

/// Emits one structured record (`event key=value ...`) at `level`. Used for
/// machine-readable run records such as fault-injection events.
void emit_event(Level level, std::string_view event, const Fields& fields);

namespace detail {

class Record {
 public:
  explicit Record(Level level) : level_(level) {}
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;
  ~Record() { emit(level_, stream_.str()); }

  template <typename T>
  Record& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace multihit::log

#define MH_LOG_AT(lvl)                            \
  if (::multihit::log::level() <= (lvl))          \
  ::multihit::log::detail::Record(lvl)

#define MH_LOG_TRACE MH_LOG_AT(::multihit::log::Level::kTrace)
#define MH_LOG_DEBUG MH_LOG_AT(::multihit::log::Level::kDebug)
#define MH_LOG_INFO MH_LOG_AT(::multihit::log::Level::kInfo)
#define MH_LOG_WARN MH_LOG_AT(::multihit::log::Level::kWarn)
#define MH_LOG_ERROR MH_LOG_AT(::multihit::log::Level::kError)
