#pragma once
// Small descriptive-statistics helpers used by the benchmark harness and the
// classifier evaluation (mean, stddev, percentiles, Wilson confidence
// intervals for binomial proportions — the paper's Fig. 9 error bars).

#include <cstddef>
#include <span>

namespace multihit::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double stddev(std::span<const double> values) noexcept;

/// Minimum / maximum; 0 for an empty span.
double min(std::span<const double> values) noexcept;
double max(std::span<const double> values) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::span<const double> values, double p);

/// A two-sided binomial proportion confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for `successes` out of `trials` at confidence
/// `z` standard normal quantiles (1.959964 for 95%). Well-behaved for small
/// n and proportions near 0/1, unlike the normal approximation.
Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.959964);

/// Pearson correlation coefficient of two equal-length series; 0 when either
/// series has zero variance or lengths mismatch.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

}  // namespace multihit::stats
