#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace multihit {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table requires at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table row has " + std::to_string(row.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  const double d = std::get<double>(cell);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision_, d);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto print_rule = [&] {
    out << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) out << ' ';
      out << '|';
    }
    out << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rendered) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& out) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(render_cell(row[c]));
    }
    out << '\n';
  }
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n## " << title << "\n\n";
}

}  // namespace multihit
