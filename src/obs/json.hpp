#pragma once
// Minimal JSON document model for the observability exports.
//
// Every machine-readable artifact this repository emits — metrics snapshots,
// Chrome trace-event files, BENCH_*.json perf records — flows through this
// one writer so escaping and number formatting are correct in exactly one
// place (the structured-log corruption fixed in util/log.cpp is the cautionary
// tale). The parser exists so tests can round-trip what the exporters write
// and so the regression gate can read committed baselines without external
// dependencies. It is a strict, small RFC 8259 subset: no comments, no
// trailing commas, UTF-8 passed through verbatim.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace multihit::obs {

/// Raised by JsonValue::parse on malformed input, with byte offset context.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value. Objects preserve insertion order (exports stay diffable);
/// numbers are doubles (sufficient for every telemetry quantity emitted here
/// — counts stay exact below 2^53).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(std::int64_t value) : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value) : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}
  JsonValue(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value) : kind_(Kind::kString), string_(value) {}
  JsonValue(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  JsonValue(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const { return require(Kind::kBool), bool_; }
  double as_number() const { return require(Kind::kNumber), number_; }
  const std::string& as_string() const { return require(Kind::kString), string_; }
  const Array& as_array() const { return require(Kind::kArray), array_; }
  Array& as_array() { return require(Kind::kArray), array_; }
  const Object& as_object() const { return require(Kind::kObject), object_; }
  Object& as_object() { return require(Kind::kObject), object_; }

  /// Empty-container factories, clearer than JsonValue(Object{}) at call
  /// sites that build documents incrementally.
  static JsonValue object() { return JsonValue(Object{}); }
  static JsonValue array() { return JsonValue(Array{}); }

  /// Element count for arrays and objects; 0 for every scalar kind.
  std::size_t size() const noexcept {
    if (kind_ == Kind::kArray) return array_.size();
    if (kind_ == Kind::kObject) return object_.size();
    return 0;
  }

  /// Array element access (throws on non-arrays / out of range).
  const JsonValue& at(std::size_t index) const { return as_array().at(index); }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;

  /// Appends/overwrites an object member (value becomes an object if null).
  void set(std::string key, JsonValue value);

  /// Appends an array element (value becomes an array if null).
  void push_back(JsonValue value);

  /// Serializes to a compact single-line document.
  std::string dump() const;

  /// Parses a complete JSON document (throws JsonParseError on malformed
  /// input or trailing garbage).
  static JsonValue parse(std::string_view text);

 private:
  void require(Kind kind) const {
    if (kind_ != kind) throw std::logic_error("JsonValue: wrong kind accessed");
  }
  void dump_to(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping (quotes not included): `"`, `\`, and control
/// characters become escape sequences; everything else passes through.
std::string json_escape(std::string_view text);

/// Shortest round-trippable decimal for a double (integral values print
/// without a fraction so counts look like counts).
std::string json_number(double value);

}  // namespace multihit::obs
