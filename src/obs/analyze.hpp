#pragma once
// Trace analytics: from raw spans + flow edges to answers.
//
// PR 2's observability layer emits what happened; this engine answers the
// questions the paper's headline figures ask of that data:
//
//   * critical path — which chain of spans and message hops actually bounds
//     the simulated makespan (the strong-scaling denominator of Fig. 4);
//   * imbalance attribution — per-phase max/mean/stddev across rank lanes
//     and the straggler rank behind the max (the EA-vs-ED story of Fig. 3);
//   * communication overhead — the comm share of busy time per rank and
//     overall (the sub-0.23% claim of Fig. 8).
//
// The engine runs in-process on a live Tracer or offline on a saved
// --trace-out file (tracer_from_chrome reverses Tracer::chrome_trace).
// Everything is deterministic: analysis of byte-identical traces produces
// byte-identical reports, which scripts/ci.sh enforces.
//
// Critical-path algorithm (backward walk over the happens-before graph):
// start at the rank lane whose last span ends latest (the makespan). At the
// current (lane, time), find the latest *binding* flow edge arriving on this
// lane at or before the current time — binding means the receiver actually
// waited on the sender (SimComm records this at send time). The interval
// between that arrival and the current time was spent on this lane
// (attributed to the covering top-level spans, gaps to "wait"); then the
// walk jumps to the edge's departure (from_lane, from_time) and repeats.
// With no binding edge left, the remaining [0, time] belongs to the current
// lane. Every jump strictly decreases the current time (transfers take > 0
// simulated seconds), so the walk terminates, and the attributed segments
// tile [0, makespan] exactly — the critical-path total always equals the
// makespan, and the *breakdown* is the insight.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/trace.hpp"

namespace multihit::obs {

/// Raised on structurally invalid inputs: a --trace-out document that is not
/// a Chrome trace, an unpaired flow event, a metrics file with the wrong
/// schema. (Malformed JSON raises JsonParseError earlier.)
class AnalysisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One phase (top-level span name on rank lanes, e.g. "compute",
/// "mpi_reduce") aggregated across rank lanes.
struct PhaseStat {
  std::string phase;
  std::string category;        ///< trace category ("compute", "comm", ...)
  double total_seconds = 0.0;  ///< summed over rank lanes
  double mean_seconds = 0.0;   ///< mean over rank lanes carrying any span
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
  double max_over_mean = 0.0;  ///< the Fig. 3 imbalance ratio (1.0 = perfect)
  std::uint32_t lanes = 0;     ///< rank lanes contributing
  std::uint32_t straggler_lane = 0;  ///< lane behind max_seconds
};

/// One chronological piece of the critical path.
struct CriticalSegment {
  std::uint32_t lane = 0;
  double begin = 0.0;
  double end = 0.0;
  std::string phase;  ///< covering top-level span name, or "wait" for gaps
};

/// One greedy iteration window (from the engine lane's greedy_iteration
/// spans).
struct IterationWindow {
  std::uint32_t index = 0;
  double begin = 0.0;
  double end = 0.0;
};

struct TraceAnalysis {
  double makespan = 0.0;        ///< latest span end across rank lanes
  std::uint32_t rank_lanes = 0; ///< rank lanes carrying at least one span
  std::vector<PhaseStat> phases;              ///< sorted by phase name
  std::vector<CriticalSegment> critical_path; ///< chronological, tiles [0, makespan]
  /// Critical-path seconds per phase (includes "wait"), sorted by phase name.
  std::vector<std::pair<std::string, double>> critical_by_phase;
  double critical_total = 0.0;  ///< == makespan by construction
  double busy_seconds = 0.0;    ///< top-level span time summed over rank lanes
  double comm_seconds = 0.0;    ///< category "comm" share of busy_seconds
  double comm_fraction = 0.0;   ///< comm_seconds / busy_seconds (Fig. 8)
  std::vector<IterationWindow> iterations;
};

/// Runs the analysis over a tracer's spans and flow edges. Lanes >=
/// kEngineLane are driver lanes: excluded from per-rank statistics, and the
/// engine lane's greedy_iteration spans become the iteration windows.
TraceAnalysis analyze_trace(const Tracer& tracer);

/// Reconstructs a Tracer from a Chrome trace-event document written by
/// Tracer::chrome_trace (the --trace-out format): "X" spans, "i" instants,
/// "M" lane names, "C" counter samples, and "s"/"f" flow pairs matched by
/// id. Throws AnalysisError on documents that do not have that shape.
Tracer tracer_from_chrome(const JsonValue& doc);

/// Counter totals from a parsed multihit.metrics.v1 snapshot, summed over
/// label sets. Throws AnalysisError on wrong-schema documents. Shared by the
/// analysis report's cross-check section and the profiler reconciliation.
std::map<std::string, double> metrics_counter_totals(const JsonValue& metrics);

// ------------------------------------------------------------------ reports
// (implemented in report.cpp)

/// The multihit.analysis.v1 report document. `metrics` is an optional
/// parsed multihit.metrics.v1 snapshot; when present its counters are
/// aggregated over label sets and embedded for cross-checking (message and
/// collective counts next to the trace-derived seconds).
JsonValue analysis_report(const TraceAnalysis& analysis, const JsonValue* metrics = nullptr);

/// Collapsed-stack ("folded") flamegraph lines over the span containment
/// tree: one "laneName;outer;inner <self-microseconds>" line per distinct
/// stack, sorted lexicographically. Feed to flamegraph.pl / speedscope.
std::string folded_stacks(const Tracer& tracer);

/// Human-readable run summary (phase table, critical-path breakdown, comm
/// overhead) — what `multihit-obstool analyze` prints.
std::string analysis_text(const TraceAnalysis& analysis);

}  // namespace multihit::obs
